"""Record BENCH_sweep.json: deep-copy vs. zero-copy capacity retarget.

Thin wrapper over the unified benchmark harness (:mod:`repro.obs.perf`).
The measurement lives in :func:`repro.obs.perf.benches` as the
``sweep.legacy`` / ``sweep.overlay`` specs plus the derived
``sweep.speedup`` ratio: every benchmark x {traditional, aggressive}
compiled once at ``buffer_capacity=None``, then re-targeted through
``with_buffer`` at every Figure 7 capacity — once under the historical
whole-module deep-copy implementation (``REPRO_RETARGET=legacy``) and
once on the default zero-copy overlay path, which materializes only the
preheader blocks that gain ``rec`` directives.  Sample values are the
``with_buffer`` wall seconds (retarget phase only; base compiles are
excluded).  Every cell's retargeted artifacts — assignment table,
``rec`` sites, canonical schedules — must be *byte-identical* across
modes or the benchmark aborts (exit 2).

Budgets (``sweep.speedup``, enforced here and by ``perf compare``):

* full grid (default) and ``--quick`` (CI smoke grid): the overlay
  must re-target >= 3x faster than the deep-copy path.

The output document follows the unified ``repro-bench-v1`` schema (see
``repro.obs.perf.suite``); ``--history PATH`` also appends each result
to the benchmark history JSONL for trend/regression tracking.

Usage:  PYTHONPATH=src python scripts/bench_sweep.py [out.json]
            [--quick] [--samples N] [--history PATH]
"""

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.obs.perf.suite import run_suite_script  # noqa: E402

DESCRIPTION = (
    "Capacity-sweep retarget benchmark: the historical deep-copy "
    "with_buffer (REPRO_RETARGET=legacy) vs. the default zero-copy "
    "overlay (copy-on-write at block granularity, only rec'd "
    "preheaders materialized and rescheduled) over the Figure 7 "
    "capacity sweep: each benchmark x pipeline compiled cold at "
    "capacity=None then re-targeted per buffer capacity.  Sample "
    "values are with_buffer wall seconds.  Every cell's retargeted "
    "artifacts were verified identical across modes (digest group "
    "'sweep').")


def main(argv):
    return run_suite_script(
        argv, suite="sweep", headline="sweep.speedup",
        description=DESCRIPTION, default_out=REPO / "BENCH_sweep.json")


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
