"""Record BENCH_sim.json: reference vs. fast simulator engine, cold grid.

Thin wrapper over the unified benchmark harness (:mod:`repro.obs.perf`).
The actual measurement lives in :func:`repro.obs.perf.benches` as the
``sim.ref`` / ``sim.fast`` specs plus the derived ``sim.speedup`` ratio:
the Figure 7 grid run in-process through ``run_grid`` against fresh
cache dirs, once per engine, timing ``compute_seconds`` (the per-cell
compile+retarget+simulate stage sum, which is what the engine
accelerates).  The two engines' summary lists must be *identical*; any
difference aborts the benchmark (exit 2).

Budgets (``sim.speedup``, enforced here and by ``perf compare``):

* full grid (default): fast must be >= 2x the reference;
* ``--quick`` (CI smoke grid): fast must simply not be slower.

The output document follows the unified ``repro-bench-v1`` schema (see
``repro.obs.perf.suite``); ``--history PATH`` also appends each result
to the benchmark history JSONL for trend/regression tracking.

Usage:  PYTHONPATH=src python scripts/bench_sim.py [out.json]
            [--quick] [--samples N] [--history PATH]
"""

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.obs.perf.suite import run_suite_script  # noqa: E402

DESCRIPTION = (
    "Simulator engine benchmark: the reference per-op interpreter/VLIW "
    "(engine=ref) vs. the predecoded fast path (engine=fast, "
    "repro.sim.engine) on a cold grid, fresh cache dirs, serial "
    "in-process via run_grid.  Sample values are compute_seconds — the "
    "per-cell compile+retarget+simulate stage sum.  The engines' cell "
    "summaries were verified identical (digest group 'sim').")


def main(argv):
    return run_suite_script(
        argv, suite="sim", headline="sim.speedup",
        description=DESCRIPTION, default_out=REPO / "BENCH_sim.json")


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
