"""Record BENCH_sim.json: reference vs. fast simulator engine, cold grid.

Runs the Figure 7 grid in-process through :func:`repro.runner.parallel.
run_grid` twice — once with ``engine="ref"`` (the original per-op
interpreter/VLIW) and once with ``engine="fast"`` (predecoded blocks +
trace cache, :mod:`repro.sim.engine`) — against fresh cache dirs, and
records both compute times plus the speedup.  The two engines' summary
lists must be *identical* (same cycles, fetch splits, bubbles on every
cell); any difference aborts the benchmark.

Times are min-of-``--repeat`` samples (default 2) of ``compute_seconds``
— the sum of per-cell compile+retarget+simulate stage time, which is
what the engine accelerates — with wall time recorded alongside.

Budgets:

* full grid (default): fast must be >= 2x the reference;
* ``--quick`` (CI smoke: 2 benchmarks x 2 pipelines x 2 capacities,
  1 repeat by default): fast must simply not be slower than the
  reference.

Usage:  PYTHONPATH=src python scripts/bench_sim.py [out.json]
            [--quick] [--repeat N]
"""

import json
import os
import platform
import sys
import tempfile
import time
from datetime import date
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.bench import benchmark_names  # noqa: E402
from repro.runner.cache import ArtifactCache  # noqa: E402
from repro.runner.metrics import MetricsRecorder  # noqa: E402
from repro.runner.parallel import expand_grid, run_grid  # noqa: E402

FULL_CAPACITIES = [16, 32, 64, 128, 256, 512, 1024, 2048]
QUICK_NAMES = ["adpcm_enc", "mpeg2_dec"]
QUICK_CAPACITIES = [64, 256]


def _cold_run(engine, cells, tmp, tag):
    cache = ArtifactCache(Path(tmp) / f"cache-{tag}")
    metrics = MetricsRecorder()
    start = time.perf_counter()
    summaries = run_grid(cells, workers=1, cache=cache, metrics=metrics,
                         engine=engine)
    elapsed = time.perf_counter() - start
    payload = metrics.as_dict()
    assert payload["run_cache_hits"] == 0, "cold run hit the cache"
    return summaries, {
        "compute_seconds": round(payload["compute_seconds"], 3),
        "wall_time_s": round(elapsed, 3),
        "cell_count": payload["cell_count"],
    }


def _best_cold_run(engine, cells, tmp, repeat):
    summaries = None
    samples = []
    for i in range(repeat):
        run_summaries, sample = _cold_run(engine, cells, tmp, f"{engine}-{i}")
        if summaries is None:
            summaries = run_summaries
        else:
            assert run_summaries == summaries, \
                f"{engine}: non-deterministic summaries across repeats"
        samples.append(sample)
    best = min(samples, key=lambda s: s["compute_seconds"])
    return summaries, dict(best,
                           samples_s=[s["compute_seconds"] for s in samples])


def main(argv):
    argv = list(argv[1:])
    quick = "--quick" in argv
    if quick:
        argv.remove("--quick")
    repeat = 1 if quick else 2
    if "--repeat" in argv:
        at = argv.index("--repeat")
        repeat = int(argv[at + 1])
        del argv[at:at + 2]
    out_path = Path(argv[0]) if argv else REPO / "BENCH_sim.json"

    names = QUICK_NAMES if quick else benchmark_names()
    capacities = QUICK_CAPACITIES if quick else FULL_CAPACITIES
    cells = expand_grid(names, ("traditional", "aggressive"), capacities)
    budget = 1.0 if quick else 2.0

    with tempfile.TemporaryDirectory(prefix="repro-bench-sim-") as tmp:
        ref_summaries, ref = _best_cold_run("ref", cells, tmp, repeat)
        fast_summaries, fast = _best_cold_run("fast", cells, tmp, repeat)

    if fast_summaries != ref_summaries:
        diffs = [(r, f) for r, f in zip(ref_summaries, fast_summaries)
                 if r != f]
        print(f"ENGINE DIVERGENCE on {len(diffs)} cell(s); first: "
              f"ref={diffs[0][0]!r} fast={diffs[0][1]!r}", file=sys.stderr)
        return 2

    speedup = (ref["compute_seconds"] / fast["compute_seconds"]
               if fast["compute_seconds"] else float("inf"))
    doc = {
        "description": (
            "Simulator engine benchmark: the reference per-op "
            "interpreter/VLIW (engine=ref) vs. the predecoded fast path "
            "(engine=fast, repro.sim.engine) on a cold grid, fresh cache "
            "dirs, serial in-process via run_grid.  compute_seconds is "
            "the per-cell compile+retarget+simulate stage sum.  The "
            "engines' cell summaries were verified identical."),
        "command": (
            "PYTHONPATH=src python scripts/bench_sim.py"
            + (" --quick" if quick else "")),
        "mode": "quick" if quick else "full",
        "grid": {
            "benchmarks": list(names),
            "pipelines": ["traditional", "aggressive"],
            "capacities": list(capacities),
            "cells": len(cells),
        },
        "ref": ref,
        "fast": fast,
        "speedup_compute": round(speedup, 2),
        "speedup_wall": round(ref["wall_time_s"] / fast["wall_time_s"], 2)
        if fast["wall_time_s"] else None,
        "budget_min_speedup": budget,
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "workers": 1,
        },
        "date": date.today().isoformat(),
    }
    out_path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"ref:  {ref['compute_seconds']:.3f}s compute "
          f"({ref['wall_time_s']:.3f}s wall, {ref['cell_count']} cells)")
    print(f"fast: {fast['compute_seconds']:.3f}s compute "
          f"({fast['wall_time_s']:.3f}s wall)")
    print(f"speedup: {speedup:.2f}x compute "
          f"(budget >= {budget:.1f}x, summaries identical)")
    print(f"wrote {out_path}")
    if speedup < budget:
        print("UNDER BUDGET", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
