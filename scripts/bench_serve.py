"""Record BENCH_serve.json: service saturation/load benchmarks.

Thin wrapper over the unified benchmark harness (:mod:`repro.obs.perf`).
The measurements live in :mod:`repro.serve.benches`: the serve grid
driven concurrently (8 client threads) at an in-process
:class:`~repro.serve.service.Service` with a fresh sharded cache —

* ``serve.cold`` / ``serve.warm`` — per-request p50 service-side wall
  seconds on the first pass vs. the repeated (fully cache-warm) pass,
  with p95/p99 recorded as phases;
* ``serve.speedup`` (headline) — cold/warm p50, budget >= 10x in both
  modes: the warm path must answer at least an order of magnitude
  faster than a cold compile+simulate;
* ``serve.hitrate`` — run-cache hit rate of the repeated workload,
  budget >= 0.9 (dimensionless, so it stays gated across machines);
* ``serve.throughput`` — warm requests/s under load (informational).

Cold, warm and loaded responses must carry byte-identical run summaries
(digest group ``serve``); any divergence aborts the benchmark (exit 2).

Usage:  PYTHONPATH=src python scripts/bench_serve.py [out.json]
            [--quick] [--samples N] [--history PATH]
"""

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.obs.perf.suite import run_suite_script  # noqa: E402

DESCRIPTION = (
    "Service load benchmark: the serve grid driven at an in-process "
    "Service (2 workers, sharded cache, 8 concurrent clients).  "
    "serve.cold/serve.warm are p50 service-side request seconds on the "
    "first vs. repeated pass; serve.speedup is their ratio (>= 10x), "
    "serve.hitrate the repeat-pass run-cache hit rate (>= 0.9) and "
    "serve.throughput the warm requests/s.  Summaries verified "
    "byte-identical across temperatures (digest group 'serve').")


def main(argv):
    return run_suite_script(
        argv, suite="serve", headline="serve.speedup",
        description=DESCRIPTION, default_out=REPO / "BENCH_serve.json",
        extras=("serve.hitrate", "serve.throughput"))


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
