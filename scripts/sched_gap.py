"""Heuristic-vs-optimal modulo scheduling gap table (EXPERIMENTS.md).

Compiles every benchmark through both pipelines, then runs the exact
modulo-scheduling oracle (:mod:`repro.sched.oracle`) on every loop the
heuristic modulo-scheduled: the oracle searches ``II < heuristic II``
exhaustively, so each row either *certifies* the heuristic II optimal
(gap 0 — possibly above the MinII bound, when the bound itself is
unachievable) or quantifies how many II cycles the heuristic left on the
table.

Prints a markdown table and optionally writes the rows as JSON.

Usage:  PYTHONPATH=src python scripts/sched_gap.py [--json FILE]
            [--budget N] [--max-ops N] [--benchmarks a,b,...]
"""

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.bench import all_benchmarks  # noqa: E402
from repro.pipeline import (  # noqa: E402
    compile_aggressive,
    compile_traditional,
)
from repro.sched.oracle import (  # noqa: E402
    DEFAULT_MAX_OPS,
    DEFAULT_NODE_BUDGET,
    certify_compiled,
)

_COMPILERS = {
    "traditional": compile_traditional,
    "aggressive": compile_aggressive,
}


def gap_rows(names=None, node_budget=DEFAULT_NODE_BUDGET,
             max_ops=DEFAULT_MAX_OPS):
    """Gap table rows (dicts) for all benchmark loops, both pipelines."""
    rows = []
    for bench in all_benchmarks():
        if names and bench.name not in names:
            continue
        for pipeline, compiler in _COMPILERS.items():
            compiled = compiler(bench.build(), entry=bench.entry,
                                args=bench.args, buffer_capacity=None)
            for row in certify_compiled(compiled, node_budget=node_budget,
                                        max_ops=max_ops):
                data = row.as_dict()
                data.update(benchmark=bench.name, pipeline=pipeline)
                rows.append(data)
    return rows


def markdown_table(rows) -> str:
    lines = [
        "| benchmark | pipeline | loop | ops | MinII | heur II |"
        " optimal II | gap | certified | nodes |",
        "|---|---|---|---|---|---|---|---|---|---|",
    ]
    for r in rows:
        loop = f"{r['function']}/{r['block']}"
        optimal = r["optimal_ii"] if r["optimal_ii"] is not None else "?"
        gap = r["gap"] if r["gap"] is not None else "?"
        lines.append(
            f"| {r['benchmark']} | {r['pipeline']} | {loop} | {r['ops']} "
            f"| {r['min_ii']} | {r['heuristic_ii']} | {optimal} | {gap} "
            f"| {'yes' if r['certified'] else 'no'} | {r['nodes']} |")
    return "\n".join(lines)


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", dest="json_path", default=None,
                        metavar="FILE", help="also write rows as JSON")
    parser.add_argument("--budget", type=int, default=DEFAULT_NODE_BUDGET,
                        help="oracle DFS node budget per loop")
    parser.add_argument("--max-ops", type=int, default=DEFAULT_MAX_OPS,
                        help="skip exact search above this many ops")
    parser.add_argument("--benchmarks", default=None, metavar="A[,B...]",
                        help="restrict to these benchmarks")
    args = parser.parse_args(argv[1:])
    names = (set(n.strip() for n in args.benchmarks.split(","))
             if args.benchmarks else None)

    rows = gap_rows(names, node_budget=args.budget, max_ops=args.max_ops)
    print(markdown_table(rows))
    certified = sum(1 for r in rows if r["certified"])
    gaps = [r for r in rows if r["gap"] not in (None, 0)]
    print(f"\n{len(rows)} loops; {certified} certified; "
          f"{len(gaps)} with a nonzero II gap")
    if args.json_path:
        Path(args.json_path).write_text(
            json.dumps({"rows": rows,
                        "certified": certified,
                        "nonzero_gaps": len(gaps)},
                       indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.json_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
