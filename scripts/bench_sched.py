"""Record BENCH_sched.json: legacy vs. memoized/bitmask schedulers, cold.

Replays the compile side of the Figure 7 grid — every benchmark x
{traditional, aggressive}, compiled once at ``buffer_capacity=None`` and
re-targeted through :func:`repro.pipeline.with_buffer` at every buffer
capacity — twice: once with ``REPRO_SCHED_LEGACY`` semantics (the
original linear-probe, unmemoized schedulers) and once on the default
path (content-keyed dependence-graph + placement memoization, free-slot
bitmask probes, ResMII/RecMII-pruned II search).

The scheduler phase is timed by :data:`repro.sched.cache.STATS`
(``seconds["list"] + seconds["modulo"]``), i.e. exactly the time spent
inside ``schedule_block`` / ``modulo_schedule``, cache replays included.
Every cell's schedules (list placements per block and modulo schedule
per loop) are canonicalized and compared across modes: the optimized
path must be *byte-identical* to the legacy one, or the benchmark
aborts.

Budgets:

* full grid (default): optimized scheduler phase must be >= 2x faster;
* ``--quick`` (CI smoke: 2 benchmarks x 2 pipelines x 2 capacities):
  must simply not be slower.

Usage:  PYTHONPATH=src python scripts/bench_sched.py [out.json]
            [--quick] [--repeat N]
"""

import json
import os
import platform
import sys
import time
from datetime import date
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.bench import all_benchmarks  # noqa: E402
from repro.pipeline import (  # noqa: E402
    compile_aggressive,
    compile_traditional,
    with_buffer,
)
from repro.sched import cache as sched_cache  # noqa: E402

FULL_CAPACITIES = [16, 32, 64, 128, 256, 512, 1024, 2048]
QUICK_NAMES = ["adpcm_enc", "g724_dec"]
QUICK_CAPACITIES = [64, 256]

_COMPILERS = {
    "traditional": compile_traditional,
    "aggressive": compile_aggressive,
}


def _canonical(compiled):
    """Schedule content of a compiled artifact, identity-comparable."""
    placements = {}
    for fname, schedules in compiled.schedules.items():
        for label, sched in schedules.items():
            ops = {op.uid: op
                   for bundle in sched.bundles for _, op in
                   bundle.in_slot_order()}
            placements[(fname, label)] = tuple(sorted(
                (place.cycle, place.slot, repr(ops[uid]))
                for uid, place in sched.placement.items()))
    modulo = {}
    for key, sched in compiled.modulo.items():
        by_uid = {op.uid: op for op in sched.ops}
        modulo[key] = (sched.ii, sched.mve_factor, tuple(sorted(
            (repr(by_uid[uid]), t, sched.slots[uid])
            for uid, t in sched.times.items())))
    return placements, modulo


def _run_mode(legacy, names, capacities):
    """One cold pass over the grid; returns (canonical cells, metrics)."""
    benches = {b.name: b for b in all_benchmarks()}
    sched_cache.clear_caches()
    before = dict(sched_cache.STATS.seconds)
    snapshot = (sched_cache.STATS.list_hits, sched_cache.STATS.list_misses,
                sched_cache.STATS.modulo_hits,
                sched_cache.STATS.modulo_misses)
    cells = {}
    t0 = time.perf_counter()
    with sched_cache.legacy_mode(legacy):
        for name in names:
            bench = benches[name]
            for pipeline in ("traditional", "aggressive"):
                compiled = _COMPILERS[pipeline](
                    bench.build(), entry=bench.entry, args=bench.args,
                    buffer_capacity=None)
                cells[(name, pipeline, None)] = _canonical(compiled)
                for capacity in capacities:
                    cells[(name, pipeline, capacity)] = _canonical(
                        with_buffer(compiled, capacity))
    wall = time.perf_counter() - t0
    seconds = sched_cache.STATS.seconds
    sched_s = sum(seconds.get(kind, 0.0) - before.get(kind, 0.0)
                  for kind in ("list", "modulo"))
    return cells, {
        "sched_seconds": round(sched_s, 3),
        "compile_wall_s": round(wall, 3),
        "cell_count": len(cells),
        "list_hits": sched_cache.STATS.list_hits - snapshot[0],
        "list_misses": sched_cache.STATS.list_misses - snapshot[1],
        "modulo_hits": sched_cache.STATS.modulo_hits - snapshot[2],
        "modulo_misses": sched_cache.STATS.modulo_misses - snapshot[3],
    }


def _best_run(legacy, names, capacities, repeat):
    cells = None
    samples = []
    for _ in range(repeat):
        run_cells, sample = _run_mode(legacy, names, capacities)
        if cells is None:
            cells = run_cells
        else:
            assert run_cells == cells, \
                "non-deterministic schedules across repeats"
        samples.append(sample)
    best = min(samples, key=lambda s: s["sched_seconds"])
    return cells, dict(best, samples_s=[s["sched_seconds"] for s in samples])


def main(argv):
    argv = list(argv[1:])
    quick = "--quick" in argv
    if quick:
        argv.remove("--quick")
    repeat = 1 if quick else 2
    if "--repeat" in argv:
        at = argv.index("--repeat")
        repeat = int(argv[at + 1])
        del argv[at:at + 2]
    out_path = Path(argv[0]) if argv else REPO / "BENCH_sched.json"

    names = (QUICK_NAMES if quick
             else [b.name for b in all_benchmarks()])
    capacities = QUICK_CAPACITIES if quick else FULL_CAPACITIES
    budget = 1.0 if quick else 2.0

    legacy_cells, legacy = _best_run(True, names, capacities, repeat)
    opt_cells, opt = _best_run(False, names, capacities, repeat)

    if opt_cells != legacy_cells:
        diffs = [key for key in legacy_cells
                 if opt_cells.get(key) != legacy_cells[key]]
        print(f"SCHEDULE DIVERGENCE on {len(diffs)} cell(s); first: "
              f"{diffs[0]!r}", file=sys.stderr)
        return 2

    speedup = (legacy["sched_seconds"] / opt["sched_seconds"]
               if opt["sched_seconds"] else float("inf"))
    doc = {
        "description": (
            "Scheduler benchmark: the original linear-probe, unmemoized "
            "list/modulo schedulers (REPRO_SCHED_LEGACY) vs. the default "
            "path (content-keyed dependence-graph and placement "
            "memoization, free-slot bitmask probes, ResMII/RecMII-pruned "
            "II search) over the compile side of the Figure 7 grid: "
            "each benchmark x pipeline compiled cold at capacity=None "
            "then re-targeted per buffer capacity.  sched_seconds is "
            "time inside schedule_block/modulo_schedule "
            "(repro.sched.cache.STATS).  Every cell's schedules were "
            "verified identical across modes."),
        "command": (
            "PYTHONPATH=src python scripts/bench_sched.py"
            + (" --quick" if quick else "")),
        "mode": "quick" if quick else "full",
        "grid": {
            "benchmarks": list(names),
            "pipelines": ["traditional", "aggressive"],
            "capacities": [None] + list(capacities),
            "cells": legacy["cell_count"],
        },
        "legacy": legacy,
        "optimized": opt,
        "speedup_sched": round(speedup, 2),
        "budget_min_speedup": budget,
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "date": date.today().isoformat(),
    }
    out_path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"legacy:    {legacy['sched_seconds']:.3f}s sched "
          f"({legacy['compile_wall_s']:.1f}s compile wall, "
          f"{legacy['cell_count']} cells)")
    print(f"optimized: {opt['sched_seconds']:.3f}s sched "
          f"({opt['compile_wall_s']:.1f}s compile wall, "
          f"hits list={opt['list_hits']} modulo={opt['modulo_hits']})")
    print(f"speedup: {speedup:.2f}x scheduler phase "
          f"(budget >= {budget:.1f}x, schedules identical)")
    print(f"wrote {out_path}")
    if speedup < budget:
        print("UNDER BUDGET", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
