"""Record BENCH_sched.json: legacy vs. memoized/bitmask schedulers, cold.

Thin wrapper over the unified benchmark harness (:mod:`repro.obs.perf`).
The measurement lives in :func:`repro.obs.perf.benches` as the
``sched.legacy`` / ``sched.opt`` specs plus the derived
``sched.speedup`` ratio: the compile side of the Figure 7 grid — every
benchmark x {traditional, aggressive} compiled once at
``buffer_capacity=None`` and re-targeted through ``with_buffer`` at
every capacity — once under ``REPRO_SCHED_LEGACY`` semantics and once on
the default memoized path.  Sample values are the scheduler-phase
seconds from :data:`repro.sched.cache.STATS` (``list`` + ``modulo``),
i.e. exactly the time inside ``schedule_block`` / ``modulo_schedule``.
Every cell's canonicalized schedules must be *byte-identical* across
modes or the benchmark aborts (exit 2).

Budgets (``sched.speedup``, enforced here and by ``perf compare``):

* full grid (default): optimized scheduler phase must be >= 2x faster;
* ``--quick`` (CI smoke grid): must simply not be slower.

The output document follows the unified ``repro-bench-v1`` schema (see
``repro.obs.perf.suite``); ``--history PATH`` also appends each result
to the benchmark history JSONL for trend/regression tracking.

Usage:  PYTHONPATH=src python scripts/bench_sched.py [out.json]
            [--quick] [--samples N] [--history PATH]
"""

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.obs.perf.suite import run_suite_script  # noqa: E402

DESCRIPTION = (
    "Scheduler benchmark: the original linear-probe, unmemoized "
    "list/modulo schedulers (REPRO_SCHED_LEGACY) vs. the default path "
    "(content-keyed dependence-graph and placement memoization, "
    "free-slot bitmask probes, ResMII/RecMII-pruned II search) over the "
    "compile side of the Figure 7 grid: each benchmark x pipeline "
    "compiled cold at capacity=None then re-targeted per buffer "
    "capacity.  Sample values are seconds inside "
    "schedule_block/modulo_schedule (repro.sched.cache.STATS).  Every "
    "cell's schedules were verified identical across modes (digest "
    "group 'sched').")


def main(argv):
    return run_suite_script(
        argv, suite="sched", headline="sched.speedup",
        description=DESCRIPTION, default_out=REPO / "BENCH_sched.json")


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
