"""Record BENCH_obs.json: cold-grid wall time with tracing off vs. on.

Runs the full Figure 7 grid (the BENCH_runner.json grid) twice through
`python -m repro.runner` against fresh cache dirs — once without
`--trace`, once with — and records both wall times plus the overheads:

* disabled: the traced codebase with tracing *off* vs. the recorded
  pre-instrumentation baseline in BENCH_runner.json (target <= 2%);
* enabled: tracing on vs. off, same codebase (target <= 10%).

Wall times are min-of-``--repeat`` samples (default 2): single cold runs
on a shared box carry several percent of scheduler noise, more than the
disabled-overhead budget itself.

Usage:  PYTHONPATH=src python scripts/bench_obs.py [out.json] [--repeat N]
"""

import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from datetime import date
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
GRID = [
    "--pipelines", "traditional,aggressive",
    "--capacities", "16,32,64,128,256,512,1024,2048",
    "--workers", "1", "--quiet",
]


def _cold_run(tmp, tag, *extra):
    out = Path(tmp) / f"{tag}.json"
    cmd = [sys.executable, "-m", "repro.runner", *GRID,
           "--cache-dir", str(Path(tmp) / f"cache-{tag}"),
           "--json", str(out), *extra]
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    env.pop("REPRO_TRACE", None)
    start = time.perf_counter()
    subprocess.run(cmd, check=True, env=env, cwd=REPO)
    elapsed = time.perf_counter() - start
    payload = json.loads(out.read_text())
    assert payload["run_cache_hits"] == 0, "cold run hit the cache"
    return {
        "wall_time_s": round(payload["wall_time_s"], 3),
        "process_wall_s": round(elapsed, 3),
        "compute_seconds": round(payload.get("compute_seconds", 0.0), 3),
        "cell_count": payload["cell_count"],
    }


def _best_cold_run(tmp, tag, repeat, *extra):
    samples = []
    for i in range(repeat):
        run_tmp = Path(tmp) / f"{tag}-{i}"
        run_tmp.mkdir()
        samples.append(_cold_run(run_tmp, tag, *extra))
    best = min(samples, key=lambda s: s["wall_time_s"])
    return dict(best, samples_s=[s["wall_time_s"] for s in samples])


def main(argv):
    argv = list(argv[1:])
    repeat = 2
    if "--repeat" in argv:
        at = argv.index("--repeat")
        repeat = int(argv[at + 1])
        del argv[at:at + 2]
    out_path = Path(argv[0]) if argv else REPO / "BENCH_obs.json"
    baseline = json.loads((REPO / "BENCH_runner.json").read_text())
    base_cold = baseline["cold"]["wall_time_s"]
    with tempfile.TemporaryDirectory(prefix="repro-bench-obs-") as tmp:
        off = _best_cold_run(tmp, "off", repeat)
        on = _best_cold_run(tmp, "on", repeat,
                            "--trace", str(Path(tmp) / "traces"))
    disabled_overhead = (off["wall_time_s"] - base_cold) / base_cold
    enabled_overhead = \
        (on["wall_time_s"] - off["wall_time_s"]) / off["wall_time_s"]
    doc = {
        "description": (
            "Observability overhead on the full Figure 7 cold grid (the "
            "BENCH_runner.json grid, fresh cache dirs, --workers 1): "
            "tracing disabled (default) vs. enabled (--trace)."),
        "command": (
            "python -m repro.runner --pipelines traditional,aggressive "
            "--capacities 16,32,64,128,256,512,1024,2048 --workers 1 "
            "--cache-dir <fresh-dir> --json <out>.json --quiet "
            "[--trace <dir>]"),
        "grid": baseline["grid"],
        "baseline_cold_wall_time_s": base_cold,
        "tracing_off": off,
        "tracing_on": on,
        "overhead_disabled_vs_baseline": round(disabled_overhead, 4),
        "overhead_enabled_vs_disabled": round(enabled_overhead, 4),
        "budget": {"disabled": 0.02, "enabled": 0.10},
        "machine": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "workers": 1,
        },
        "date": date.today().isoformat(),
    }
    out_path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"tracing off: {off['wall_time_s']:.3f}s  "
          f"on: {on['wall_time_s']:.3f}s")
    print(f"disabled overhead vs. baseline: {disabled_overhead:+.2%}  "
          f"(budget +2%)")
    print(f"enabled overhead vs. disabled:  {enabled_overhead:+.2%}  "
          f"(budget +10%)")
    print(f"wrote {out_path}")
    if disabled_overhead > 0.02 or enabled_overhead > 0.10:
        print("OVER BUDGET", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
