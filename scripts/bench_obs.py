"""Record BENCH_obs.json: cold-grid wall time with tracing off vs. on.

Thin wrapper over the unified benchmark harness (:mod:`repro.obs.perf`).
The measurement lives in :func:`repro.obs.perf.benches` as the
``obs.off`` / ``obs.on`` specs plus the derived ``obs.overhead`` ratio
(on / off, lower is better): the Figure 7 grid run through ``python -m
repro.runner`` as a subprocess against fresh cache dirs, once without
``--trace`` and once with.  Sample values are the runner's reported
``wall_time_s``.  Both modes' cell summaries must match (digest group
'obs') or the benchmark aborts (exit 2).

Budgets (``obs.overhead``, a *ceiling* — enforced here and by ``perf
compare``):

* full grid (default): tracing must cost <= 10% (ratio <= 1.10);
* ``--quick``: <= 1.5x, loose because the quick grid's absolute times
  sit near scheduler-noise scale.

The output document follows the unified ``repro-bench-v1`` schema (see
``repro.obs.perf.suite``); ``--history PATH`` also appends each result
to the benchmark history JSONL for trend/regression tracking.

Usage:  PYTHONPATH=src python scripts/bench_obs.py [out.json]
            [--quick] [--samples N] [--history PATH]
"""

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.obs.perf.suite import run_suite_script  # noqa: E402

DESCRIPTION = (
    "Observability overhead on the Figure 7 cold grid (fresh cache "
    "dirs, --workers 1, subprocess python -m repro.runner): tracing "
    "disabled (default) vs. enabled (--trace).  Sample values are the "
    "runner's wall_time_s; obs.overhead = on/off, lower is better.  "
    "Both modes' cell summaries were verified identical (digest group "
    "'obs').")


def main(argv):
    return run_suite_script(
        argv, suite="obs", headline="obs.overhead",
        description=DESCRIPTION, default_out=REPO / "BENCH_obs.json")


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
