"""Shared pytest configuration: hypothesis profiles and the slow marker.

Profiles (select with ``HYPOTHESIS_PROFILE=<name>``):

* ``default`` — per-test example counts as written; what CI's test job
  and local ``pytest`` runs use.
* ``nightly`` — many more examples per property, no deadline; paired
  with ``-m slow`` to also enable the long fuzz sweeps::

      HYPOTHESIS_PROFILE=nightly pytest -m "slow or not slow"

``slow``-marked tests are deselected by default via ``addopts`` in
``pyproject.toml``; select them with ``-m slow`` (only the slow ones) or
``-m "slow or not slow"`` (everything).
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile("default", deadline=None)
settings.register_profile(
    "nightly",
    deadline=None,
    max_examples=300,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


def nightly_examples(fast: int, nightly: int = 200) -> int:
    """Example count for a property: ``fast`` normally, ``nightly`` when
    the nightly profile is active (so per-test ``@settings`` don't pin
    the sweep size down)."""
    if settings.default.max_examples >= 300:
        return nightly
    return fast
