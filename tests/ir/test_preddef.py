"""Exhaustive check of Table 2: predicate-define update semantics."""

import pytest

from repro.ir import PTYPES
from repro.ir.preddef import always_writes, may_write_one, may_write_zero, pred_update

# Table 2 of the paper, transcribed: rows are (guard, cond), columns the
# destination types; entries are the written value or None for "no update".
TABLE2 = {
    (0, 0): {"ut": 0, "uf": 0, "ot": None, "of": None, "at": None, "af": None,
             "ct": None, "cf": None},
    (0, 1): {"ut": 0, "uf": 0, "ot": None, "of": None, "at": None, "af": None,
             "ct": None, "cf": None},
    (1, 0): {"ut": 0, "uf": 1, "ot": None, "of": 1, "at": 0, "af": None,
             "ct": 0, "cf": 1},
    (1, 1): {"ut": 1, "uf": 0, "ot": 1, "of": None, "at": None, "af": 0,
             "ct": 1, "cf": 0},
}


@pytest.mark.parametrize("guard", [0, 1])
@pytest.mark.parametrize("cond", [0, 1])
@pytest.mark.parametrize("ptype", PTYPES)
def test_table2_exhaustive(guard, cond, ptype):
    assert pred_update(ptype, guard, cond) == TABLE2[(guard, cond)][ptype]


def test_unknown_type_rejected():
    with pytest.raises(ValueError):
        pred_update("xx", 1, 1)


def test_truthy_inputs_normalized():
    assert pred_update("ut", 5, -3) == 1


class TestClassificationHelpers:
    def test_always_writes_only_unconditional(self):
        assert {pt for pt in PTYPES if always_writes(pt)} == {"ut", "uf"}

    def test_or_types_never_write_zero(self):
        assert not may_write_zero("ot")
        assert not may_write_zero("of")
        assert may_write_one("ot")

    def test_and_types_never_write_one(self):
        assert not may_write_one("at")
        assert not may_write_one("af")
        assert may_write_zero("at")

    def test_conditional_types_write_both(self):
        for pt in ("ct", "cf"):
            assert may_write_one(pt)
            assert may_write_zero(pt)


class TestAlgebraicProperties:
    """Cross-type identities implied by Table 2."""

    @pytest.mark.parametrize("guard", [0, 1])
    @pytest.mark.parametrize("cond", [0, 1])
    def test_ut_uf_complementary_when_guarded(self, guard, cond):
        ut = pred_update("ut", guard, cond)
        uf = pred_update("uf", guard, cond)
        if guard:
            assert ut ^ uf == 1
        else:
            assert ut == uf == 0

    @pytest.mark.parametrize("cond", [0, 1])
    def test_ot_equals_at_complement_writes(self, cond):
        # When guarded, ot writes 1 exactly when af writes 0.
        ot = pred_update("ot", 1, cond)
        af = pred_update("af", 1, cond)
        assert (ot == 1) == (af == 0)

    @pytest.mark.parametrize("cond", [0, 1])
    def test_ct_matches_cond_when_guarded(self, cond):
        assert pred_update("ct", 1, cond) == cond
        assert pred_update("cf", 1, cond) == cond ^ 1
