"""Unit tests for the IR structural verifier."""

import pytest

from repro.ir import (
    Function,
    IRBuilder,
    Imm,
    Label,
    Module,
    Opcode,
    Operation,
    VerificationError,
    ireg,
    preg,
    verify_function,
    verify_module,
)

from tests.helpers import build_counting_loop, build_if_diamond


def test_good_modules_verify():
    verify_module(build_counting_loop(4))
    verify_module(build_if_diamond())


def test_empty_function_rejected():
    with pytest.raises(VerificationError):
        verify_function(Function("f"))


def test_dangling_branch_target():
    module = build_counting_loop(4)
    func = module.function("main")
    func.block("body").ops[-1].attrs["target"] = "nowhere"
    with pytest.raises(VerificationError, match="dangling"):
        verify_function(func)


def test_wrong_source_count():
    func = Function("f")
    blk = func.add_block("entry")
    blk.append(Operation(Opcode.ADD, [ireg(0)], [Imm(1)]))
    blk.append(Operation(Opcode.RET))
    with pytest.raises(VerificationError, match="sources"):
        verify_function(func)


def test_final_block_must_not_fall_off():
    func = Function("f")
    blk = func.add_block("entry")
    blk.append(Operation(Opcode.ADD, [ireg(0)], [Imm(1), Imm(2)]))
    with pytest.raises(VerificationError, match="falls off"):
        verify_function(func)


def test_unknown_callee_detected():
    module = Module()
    func = Function("main")
    module.add_function(func)
    b = IRBuilder(func, func.add_block("entry"))
    b.call("missing", [])
    b.ret()
    with pytest.raises(VerificationError, match="unknown callee"):
        verify_module(module)


def test_label_in_srcs_rejected():
    func = Function("f")
    blk = func.add_block("entry")
    blk.append(Operation(Opcode.MOV, [ireg(0)], [Label("entry")]))
    blk.append(Operation(Opcode.RET))
    with pytest.raises(VerificationError, match="labels belong"):
        verify_function(func)


def test_unknown_global_detected():
    from repro.ir import GlobalRef

    module = Module()
    func = Function("main")
    module.add_function(func)
    b = IRBuilder(func, func.add_block("entry"))
    b.mov(GlobalRef("ghost"))
    b.ret()
    with pytest.raises(VerificationError, match="unknown global"):
        verify_module(module)


def test_only_pred_ops_write_predicates():
    func = Function("f")
    blk = func.add_block("entry")
    blk.append(Operation(Opcode.MOV, [preg(0)], [Imm(1)]))
    blk.append(Operation(Opcode.RET))
    with pytest.raises(VerificationError, match="predicate"):
        verify_function(func)


def test_store_with_dest_rejected():
    func = Function("f")
    blk = func.add_block("entry")
    op = Operation(Opcode.ST, [], [ireg(0), Imm(0), ireg(1)])
    op.dests = [ireg(2)]
    blk.append(op)
    blk.append(Operation(Opcode.RET))
    with pytest.raises(VerificationError, match="store"):
        verify_function(func)


def test_pred_def_dests_must_be_predicates():
    func = Function("f")
    blk = func.add_block("entry")
    op = Operation(Opcode.PRED_DEF, [preg(0)], [ireg(0), Imm(1)],
                   attrs={"cmp": "lt", "ptypes": ["ut"]})
    op.dests = [ireg(3)]  # bypass the constructor's own check
    blk.append(op)
    blk.append(Operation(Opcode.RET))
    with pytest.raises(VerificationError, match="pred_def dests"):
        verify_function(func)


def test_unreachable_block_rejected():
    func = Function("f")
    b = IRBuilder(func, func.add_block("entry"))
    b.ret(Imm(0))
    b.at(func.add_block("orphan"))
    b.ret(Imm(1))
    with pytest.raises(VerificationError, match="unreachable"):
        verify_function(func)


def test_allow_unreachable_skips_the_check():
    func = Function("f")
    b = IRBuilder(func, func.add_block("entry"))
    b.ret(Imm(0))
    b.at(func.add_block("orphan"))
    b.ret(Imm(1))
    verify_function(func, allow_unreachable=True)
    module = Module()
    module.add_function(func)
    verify_module(module, allow_unreachable=True)
    with pytest.raises(VerificationError):
        verify_module(module)


def test_errors_carry_op_locations():
    module = build_counting_loop(4)
    func = module.function("main")
    func.block("body").ops[-1].attrs["target"] = "nowhere"
    with pytest.raises(VerificationError, match="main/body#2"):
        verify_function(func)


def test_duplicate_labels_detected():
    func = Function("f")
    func.add_block("a")
    blk = func.blocks[0]
    # bypass add_block's own check
    import copy

    dup = copy.copy(blk)
    func.blocks.append(dup)
    with pytest.raises(VerificationError, match="duplicate"):
        verify_function(func)
