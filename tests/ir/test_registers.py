"""Unit tests for IR operand types."""

import pytest

from repro.ir import FImm, GlobalRef, Imm, Label, VReg, freg, ireg, preg


class TestVReg:
    def test_shorthand_constructors(self):
        assert ireg(3) == VReg("i", 3)
        assert freg(0) == VReg("f", 0)
        assert preg(7) == VReg("p", 7)

    def test_kind_predicates(self):
        assert ireg(0).is_int
        assert freg(0).is_float
        assert preg(0).is_predicate
        assert not ireg(0).is_predicate

    def test_hashable_and_equal(self):
        assert len({ireg(1), ireg(1), ireg(2)}) == 2

    def test_repr(self):
        assert repr(ireg(5)) == "i5"
        assert repr(preg(0)) == "p0"

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            VReg("x", 0)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            VReg("i", -1)

    def test_immutability(self):
        reg = ireg(0)
        with pytest.raises(Exception):
            reg.index = 5


class TestOtherOperands:
    def test_imm_repr(self):
        assert repr(Imm(42)) == "42"
        assert repr(Imm(-1)) == "-1"

    def test_fimm_holds_float(self):
        assert FImm(1.5).value == 1.5

    def test_label_and_global_repr(self):
        assert repr(Label("loop")) == "@loop"
        assert repr(GlobalRef("table")) == "$table"

    def test_operands_hashable(self):
        assert len({Imm(1), Imm(1), Label("a"), GlobalRef("a")}) == 3
