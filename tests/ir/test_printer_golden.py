"""Golden-snapshot tests for the IR printer on benchmark programs.

The rendered frontend IR of a few ``repro.bench`` programs is pinned to
checked-in text files: any change to the frontend's lowering or to
``format_module`` output shows up as a readable diff.  Regenerate after
an intentional change with::

    REPRO_UPDATE_GOLDEN=1 pytest tests/ir/test_printer_golden.py
"""

import os
from pathlib import Path

import pytest

from repro.bench import benchmark
from repro.ir.printer import format_function, format_module, op_location

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

#: small / mid-sized benchmarks: enough shape coverage without pinning
#: thousands of lines of text
SNAPSHOT = ["adpcm_dec", "adpcm_enc", "mpeg2_dec"]


def _render(name: str) -> str:
    return format_module(benchmark(name).build()) + "\n"


@pytest.mark.parametrize("name", SNAPSHOT)
def test_matches_golden(name):
    golden = GOLDEN_DIR / f"{name}.ir.txt"
    rendered = _render(name)
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        golden.write_text(rendered)
    assert golden.exists(), \
        f"missing golden file {golden}; run with REPRO_UPDATE_GOLDEN=1"
    assert rendered == golden.read_text(), (
        f"{name}: IR print drifted from {golden.name}; if intentional, "
        "regenerate with REPRO_UPDATE_GOLDEN=1"
    )


@pytest.mark.parametrize("name", SNAPSHOT)
def test_render_is_deterministic(name):
    # two independent frontend builds print identically (round-trip
    # stability is what makes the snapshots meaningful)
    assert _render(name) == _render(name)


def test_golden_dir_has_no_orphans():
    expected = {f"{name}.ir.txt" for name in SNAPSHOT}
    actual = {path.name for path in GOLDEN_DIR.glob("*.ir.txt")}
    assert actual == expected


def test_format_function_labels_match_op_location():
    # every "#index" the printer emits is greppable via op_location()
    func = benchmark("adpcm_enc").build().function("main")
    text = format_function(func)
    for block in func.blocks:
        for index in range(len(block.ops)):
            location = op_location("main", block.label, index)
            assert location == f"main/{block.label}#{index}"
            assert f"#{index:<3d}" in text
