"""Unit tests for Operation construction and queries."""

import pytest

from repro.ir import Imm, Opcode, Operation, Unit, ireg, preg


class TestConstruction:
    def test_simple_add(self):
        op = Operation(Opcode.ADD, [ireg(2)], [ireg(0), ireg(1)])
        assert list(op.writes()) == [ireg(2)]
        assert list(op.reads()) == [ireg(0), ireg(1)]

    def test_guard_is_read(self):
        op = Operation(Opcode.ADD, [ireg(2)], [ireg(0), Imm(1)], guard=preg(0))
        assert preg(0) in list(op.reads())

    def test_non_predicate_guard_rejected(self):
        with pytest.raises(ValueError):
            Operation(Opcode.ADD, [ireg(2)], [ireg(0), Imm(1)], guard=ireg(0))

    def test_pred_def_requires_ptypes(self):
        with pytest.raises(ValueError):
            Operation(Opcode.PRED_DEF, [preg(0)], [ireg(0), Imm(1)],
                      attrs={"cmp": "eq"})

    def test_pred_def_requires_valid_cmp(self):
        with pytest.raises(ValueError):
            Operation(Opcode.PRED_DEF, [preg(0)], [ireg(0), Imm(1)],
                      attrs={"cmp": "bogus", "ptypes": ["ut"]})

    def test_pred_def_dest_must_be_predicate(self):
        with pytest.raises(ValueError):
            Operation(Opcode.PRED_DEF, [ireg(0)], [ireg(0), Imm(1)],
                      attrs={"cmp": "eq", "ptypes": ["ut"]})

    def test_pred_def_two_dests(self):
        op = Operation(Opcode.PRED_DEF, [preg(0), preg(1)], [ireg(0), Imm(8)],
                       attrs={"cmp": "eq", "ptypes": ["ut", "uf"]})
        assert op.unit == Unit.PRED

    def test_br_requires_cmp(self):
        with pytest.raises(ValueError):
            Operation(Opcode.BR, [], [ireg(0), Imm(0)], attrs={"target": "x"})


class TestQueries:
    def test_branch_classification(self):
        br = Operation(Opcode.BR, [], [ireg(0), Imm(0)],
                       attrs={"cmp": "eq", "target": "t"})
        assert br.is_branch
        assert br.is_conditional_branch
        assert not br.is_unconditional_jump
        jump = Operation(Opcode.JUMP, attrs={"target": "t"})
        assert jump.is_branch
        assert jump.is_unconditional_jump

    def test_units_and_latencies(self):
        assert Operation(Opcode.MUL, [ireg(0)], [ireg(1), ireg(2)]).latency == 2
        assert Operation(Opcode.LD, [ireg(0)], [ireg(1), Imm(0)]).latency == 3
        assert Operation(Opcode.DIV, [ireg(0)], [ireg(1), ireg(2)]).latency == 8
        assert Operation(Opcode.ADD, [ireg(0)], [ireg(1), ireg(2)]).latency == 1
        assert Operation(Opcode.LD, [ireg(0)], [ireg(1), Imm(0)]).unit == Unit.MEM

    def test_side_effects(self):
        st = Operation(Opcode.ST, [], [ireg(0), Imm(0), ireg(1)])
        assert st.has_side_effects
        add = Operation(Opcode.ADD, [ireg(0)], [ireg(1), ireg(2)])
        assert not add.has_side_effects


class TestMutation:
    def test_copy_gets_fresh_uid(self):
        op = Operation(Opcode.ADD, [ireg(2)], [ireg(0), ireg(1)])
        dup = op.copy()
        assert dup.uid != op.uid
        assert dup.srcs == op.srcs
        dup.srcs[0] = Imm(9)
        assert op.srcs[0] == ireg(0)

    def test_replace_reads(self):
        op = Operation(Opcode.ADD, [ireg(2)], [ireg(0), ireg(1)], guard=preg(0))
        op.replace_reads({ireg(0): ireg(5), preg(0): preg(3)})
        assert op.srcs[0] == ireg(5)
        assert op.guard == preg(3)

    def test_replace_reads_does_not_touch_dests(self):
        op = Operation(Opcode.ADD, [ireg(2)], [ireg(2), ireg(1)])
        op.replace_reads({ireg(2): ireg(9)})
        assert op.dests == [ireg(2)]
        assert op.srcs[0] == ireg(9)

    def test_replace_writes(self):
        op = Operation(Opcode.ADD, [ireg(2)], [ireg(0), ireg(1)])
        op.replace_writes({ireg(2): ireg(7)})
        assert op.dests == [ireg(7)]

    def test_guard_must_stay_predicate(self):
        op = Operation(Opcode.ADD, [ireg(2)], [ireg(0)], guard=preg(0))
        with pytest.raises(ValueError):
            op.replace_reads({preg(0): ireg(1)})


class TestRepr:
    def test_repr_mentions_guard_and_cmp(self):
        op = Operation(Opcode.BR, [], [ireg(0), Imm(3)], guard=preg(1),
                       attrs={"cmp": "lt", "target": "loop"})
        text = repr(op)
        assert "(p1)" in text
        assert "br.lt" in text
        assert "loop" in text

    def test_pred_def_repr_shows_ptypes(self):
        op = Operation(Opcode.PRED_DEF, [preg(0), preg(1)], [ireg(0), Imm(8)],
                       attrs={"cmp": "eq", "ptypes": ["ut", "uf"]})
        text = repr(op)
        assert "p0<ut>" in text
        assert "p1<uf>" in text
