"""Unit tests for blocks, functions, layout-aware CFG queries."""

import pytest

from repro.ir import Function, IRBuilder, Imm, Opcode, ireg

from tests.helpers import build_counting_loop, build_if_diamond


class TestRegisterAllocation:
    def test_fresh_registers_do_not_collide_with_params(self):
        func = Function("f", [ireg(0), ireg(1)])
        assert func.new_reg().index >= 2

    def test_kinds_tracked_separately(self):
        func = Function("f")
        r0 = func.new_reg("i")
        p0 = func.new_reg("p")
        assert r0.index == 0
        assert p0.index == 0

    def test_sync_reg_counters(self):
        func = Function("f")
        block = func.add_block("entry")
        b = IRBuilder(func, block)
        b.add(ireg(10), Imm(1), dest=ireg(11))
        func.sync_reg_counters()
        assert func.new_reg().index >= 12


class TestBlockLayout:
    def test_duplicate_labels_rejected(self):
        func = Function("f")
        func.add_block("entry")
        with pytest.raises(ValueError):
            func.add_block("entry")

    def test_new_label_unique(self):
        func = Function("f")
        func.add_block("bb0")
        label = func.new_label()
        assert label != "bb0"
        assert not func.has_block(label)

    def test_insert_at_index(self):
        func = Function("f")
        func.add_block("a")
        func.add_block("c")
        func.add_block("b", index=1)
        assert [blk.label for blk in func.blocks] == ["a", "b", "c"]

    def test_remove_block(self):
        func = Function("f")
        func.add_block("a")
        func.add_block("b")
        func.remove_block("a")
        assert not func.has_block("a")
        assert func.entry.label == "b"


class TestCFGQueries:
    def test_loop_successors(self):
        func = build_counting_loop(5).function("main")
        body = func.block("body")
        assert func.successors(body) == ["body", "done"]

    def test_entry_falls_through(self):
        func = build_counting_loop(5).function("main")
        assert func.successors(func.block("entry")) == ["body"]

    def test_ret_has_no_successors(self):
        func = build_counting_loop(5).function("main")
        assert func.successors(func.block("done")) == []

    def test_unconditional_jump_kills_fallthrough(self):
        func = build_if_diamond().function("main")
        then = func.block("then")
        assert func.successors(then) == ["join"]

    def test_predecessors(self):
        func = build_if_diamond().function("main")
        preds = func.predecessors()
        assert sorted(preds["join"]) == ["else", "then"]
        assert preds["entry"] == []

    def test_diamond_branch_successor_order(self):
        func = build_if_diamond().function("main")
        # explicit targets first, fallthrough last
        assert func.successors(func.block("entry")) == ["else", "then"]


class TestSideExitBlocks:
    def test_mid_block_branch_contributes_successor(self):
        func = Function("f")
        b = IRBuilder(func)
        blk = func.add_block("hyper")
        func.add_block("next")
        exit_blk = func.add_block("exit")
        b.at(blk)
        b.add(ireg(0), Imm(1))
        b.br("eq", ireg(0), Imm(0), "exit")
        b.add(ireg(0), Imm(2))
        b.at(exit_blk)
        b.ret()
        assert func.successors(blk) == ["exit", "next"]

    def test_op_count_skips_nops(self):
        func = Function("f")
        blk = func.add_block("entry")
        b = IRBuilder(func, blk)
        b.add(ireg(0), Imm(1))
        b.emit_op(Opcode.NOP)
        b.ret()
        assert func.op_count() == 2
