"""Shared IR-construction helpers for the test suite."""

from __future__ import annotations

from repro.ir import Function, IRBuilder, Imm, Module, ireg


def single_block_function(name: str = "main", nparams: int = 0) -> tuple[Function, IRBuilder]:
    """A function with one entry block and a builder positioned in it."""
    params = [ireg(i) for i in range(nparams)]
    func = Function(name, params)
    for _ in range(nparams):
        func.new_reg()  # reserve the param indices
    block = func.add_block("entry")
    return func, IRBuilder(func, block)


def build_counting_loop(bound: int) -> Module:
    """``main() { s = 0; for (i = 0; i < bound; i++) s += i; return s; }``

    A canonical simple loop: preheader, one-block body with a loop-back
    branch, and an exit block.
    """
    module = Module("counting")
    func = Function("main")
    module.add_function(func)
    b = IRBuilder(func)

    entry = func.add_block("entry")
    body = func.add_block("body")
    done = func.add_block("done")

    b.at(entry)
    i = b.movi(0)
    s = b.movi(0)

    b.at(body)
    b.add(s, i, dest=s)
    b.add(i, Imm(1), dest=i)
    b.br("lt", i, Imm(bound), "body")

    b.at(done)
    b.ret(s)
    return module


def build_nested_loop(outer: int = 8, inner: int = 8) -> Module:
    """The Figure 2 shape: an outer loop with a small counted inner loop.

    ``main()``::

        acc = 0
        for (j = 0; j < outer; j++) {      # OUTER
            for (i = 0; i < inner; i++)    # INNER
                acc = acc + (j * 8 + i)
        }
        return acc
    """
    module = Module("nested")
    func = Function("main")
    module.add_function(func)
    b = IRBuilder(func)

    entry = func.add_block("entry")
    outer_blk = func.add_block("outer")
    inner_blk = func.add_block("inner")
    latch = func.add_block("latch")
    done = func.add_block("done")

    b.at(entry)
    acc = b.movi(0)
    j = b.movi(0)

    b.at(outer_blk)
    i = b.movi(0)

    b.at(inner_blk)
    t = b.mul(j, Imm(8))
    t2 = b.add(t, i)
    b.add(acc, t2, dest=acc)
    b.add(i, Imm(1), dest=i)
    b.br("lt", i, Imm(inner), "inner")

    b.at(latch)
    b.add(j, Imm(1), dest=j)
    b.br("lt", j, Imm(outer), "outer")

    b.at(done)
    b.ret(acc)
    return module


def build_if_diamond() -> Module:
    """``main(x) { if (x < 10) y = x + 1; else y = x - 1; return y; }``"""
    module = Module("diamond")
    x = ireg(0)
    func = Function("main", [x])
    module.add_function(func)
    b = IRBuilder(func)

    entry = func.add_block("entry")
    then = func.add_block("then")
    els = func.add_block("else")
    join = func.add_block("join")

    y = func.new_reg()
    b.at(entry)
    b.br("ge", x, Imm(10), "else")
    b.at(then)
    b.add(x, Imm(1), dest=y)
    b.jump("join")
    b.at(els)
    b.sub(x, Imm(1), dest=y)
    b.at(join)
    b.ret(y)
    return module
