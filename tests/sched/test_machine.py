"""Unit tests for the machine description (Figure 6 reconstruction)."""

from repro.ir import Opcode, Unit
from repro.ir.opcodes import unit_of
from repro.sched.machine import DEFAULT_MACHINE, MachineDescription


class TestUnitCounts:
    """Section 7's prose resource counts."""

    def test_eight_ialus(self):
        assert DEFAULT_MACHINE.unit_count(Unit.IALU) == 8

    def test_two_integer_multipliers(self):
        assert DEFAULT_MACHINE.unit_count(Unit.IMUL) == 2

    def test_three_memory_units(self):
        assert DEFAULT_MACHINE.unit_count(Unit.MEM) == 3

    def test_one_branch_unit(self):
        assert DEFAULT_MACHINE.unit_count(Unit.BRANCH) == 1

    def test_two_fp_units(self):
        assert DEFAULT_MACHINE.unit_count(Unit.FPU) == 2

    def test_four_predicate_units(self):
        assert DEFAULT_MACHINE.unit_count(Unit.PRED) == 4

    def test_width_eight(self):
        assert DEFAULT_MACHINE.width == 8


class TestSlotSelection:
    def test_branch_only_slot_seven(self):
        assert DEFAULT_MACHINE.slots_for(Unit.BRANCH) == [7]

    def test_ialu_everywhere(self):
        assert len(DEFAULT_MACHINE.slots_for(Unit.IALU)) == 8

    def test_scarce_slots_first(self):
        # IALU list should prefer slots with the fewest other capabilities
        slots = DEFAULT_MACHINE.slots_for(Unit.IALU)
        caps = [len(DEFAULT_MACHINE.slot_units[s]) for s in slots]
        assert caps == sorted(caps)

    def test_slots_for_op(self):
        assert DEFAULT_MACHINE.slots_for_op(Opcode.BR) == [7]
        assert set(DEFAULT_MACHINE.slots_for_op(Opcode.LD)) == {4, 5, 6}
        assert set(DEFAULT_MACHINE.slots_for_op(Opcode.MUL)) == {2, 3}
        assert set(DEFAULT_MACHINE.slots_for_op(Opcode.PRED_DEF)) == {0, 1, 4, 5}

    def test_parameters(self):
        assert DEFAULT_MACHINE.int_registers == 64
        assert DEFAULT_MACHINE.predicate_registers == 8
        assert DEFAULT_MACHINE.branch_penalty == 3
        assert DEFAULT_MACHINE.operation_bits == 32


class TestSlotMasks:
    """The free-slot bitmask probe must mirror the linear probe exactly."""

    def test_full_mask_covers_width(self):
        assert DEFAULT_MACHINE.full_mask == 0xFF

    def test_slot_mask_matches_slots_for(self):
        for unit in Unit:
            mask = DEFAULT_MACHINE.slot_mask(unit)
            slots = {s for s in range(DEFAULT_MACHINE.width)
                     if mask >> s & 1}
            assert slots == set(DEFAULT_MACHINE.slots_for(unit))

    def test_pick_slot_equals_linear_probe_exhaustively(self):
        # every unit x every possible free-slot subset: the table-driven
        # pick must return the first capable free slot in the same
        # scarcest-capability-first order the linear scan uses
        for opcode in (Opcode.ADD, Opcode.MUL, Opcode.LD, Opcode.BR,
                       Opcode.PRED_DEF, Opcode.FADD):
            ordered = DEFAULT_MACHINE.slots_for_op(opcode)
            for free in range(1 << DEFAULT_MACHINE.width):
                expected = next((s for s in ordered if free >> s & 1), None)
                assert DEFAULT_MACHINE.pick_slot(opcode, free) == expected, \
                    (opcode, free)

    def test_pick_slot_empty_mask_is_none(self):
        assert DEFAULT_MACHINE.pick_slot(Opcode.ADD, 0) is None

    def test_wide_machine_falls_back_to_linear(self):
        # beyond the pick-table width the probe scans, same order
        wide = MachineDescription(
            slot_units=DEFAULT_MACHINE.slot_units * 2)
        assert wide.width == 16
        ordered = wide.slots_for_op(Opcode.LD)
        free = wide.full_mask & ~(1 << ordered[0])
        assert wide.pick_slot(Opcode.LD, free) == ordered[1]
        assert wide.pick_slot(Opcode.LD, 0) is None

    def test_slot_mask_for_op_routes_through_unit(self):
        assert (DEFAULT_MACHINE.slot_mask_for_op(Opcode.MUL)
                == DEFAULT_MACHINE.slot_mask(unit_of(Opcode.MUL)))
