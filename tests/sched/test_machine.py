"""Unit tests for the machine description (Figure 6 reconstruction)."""

from repro.ir import Opcode, Unit
from repro.sched.machine import DEFAULT_MACHINE


class TestUnitCounts:
    """Section 7's prose resource counts."""

    def test_eight_ialus(self):
        assert DEFAULT_MACHINE.unit_count(Unit.IALU) == 8

    def test_two_integer_multipliers(self):
        assert DEFAULT_MACHINE.unit_count(Unit.IMUL) == 2

    def test_three_memory_units(self):
        assert DEFAULT_MACHINE.unit_count(Unit.MEM) == 3

    def test_one_branch_unit(self):
        assert DEFAULT_MACHINE.unit_count(Unit.BRANCH) == 1

    def test_two_fp_units(self):
        assert DEFAULT_MACHINE.unit_count(Unit.FPU) == 2

    def test_four_predicate_units(self):
        assert DEFAULT_MACHINE.unit_count(Unit.PRED) == 4

    def test_width_eight(self):
        assert DEFAULT_MACHINE.width == 8


class TestSlotSelection:
    def test_branch_only_slot_seven(self):
        assert DEFAULT_MACHINE.slots_for(Unit.BRANCH) == [7]

    def test_ialu_everywhere(self):
        assert len(DEFAULT_MACHINE.slots_for(Unit.IALU)) == 8

    def test_scarce_slots_first(self):
        # IALU list should prefer slots with the fewest other capabilities
        slots = DEFAULT_MACHINE.slots_for(Unit.IALU)
        caps = [len(DEFAULT_MACHINE.slot_units[s]) for s in slots]
        assert caps == sorted(caps)

    def test_slots_for_op(self):
        assert DEFAULT_MACHINE.slots_for_op(Opcode.BR) == [7]
        assert set(DEFAULT_MACHINE.slots_for_op(Opcode.LD)) == {4, 5, 6}
        assert set(DEFAULT_MACHINE.slots_for_op(Opcode.MUL)) == {2, 3}
        assert set(DEFAULT_MACHINE.slots_for_op(Opcode.PRED_DEF)) == {0, 1, 4, 5}

    def test_parameters(self):
        assert DEFAULT_MACHINE.int_registers == 64
        assert DEFAULT_MACHINE.predicate_registers == 8
        assert DEFAULT_MACHINE.branch_penalty == 3
        assert DEFAULT_MACHINE.operation_bits == 32
