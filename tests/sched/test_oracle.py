"""Exact modulo-scheduling oracle: certificates, legality, agreement."""

import pytest

from repro.analysis.dependence import build_dependence_graph
from repro.ir import BasicBlock, Imm, Opcode, Operation, ireg
from repro.sched.machine import DEFAULT_MACHINE
from repro.sched.modulo import modulo_schedule
from repro.sched.oracle import (
    LoopGap,
    as_modulo_schedule,
    certify_compiled,
    oracle_schedule,
    safe_horizon,
    swap_oracle_schedules,
)


def _counting_loop():
    return BasicBlock("loop", [
        Operation(Opcode.ADD, [ireg(0)], [ireg(0), ireg(1)]),
        Operation(Opcode.ADD, [ireg(1)], [ireg(1), Imm(1)]),
        Operation(Opcode.BR_CLOOP, [], [],
                  attrs={"target": "loop", "lc": "l0"}),
    ])


def _memory_loop():
    ops = [
        Operation(Opcode.LD, [ireg(10 + i)], [ireg(0), Imm(i)])
        for i in range(6)
    ] + [
        Operation(Opcode.ADD, [ireg(20)], [ireg(10), ireg(11)]),
        Operation(Opcode.BR_CLOOP, [], [],
                  attrs={"target": "loop", "lc": "l0"}),
    ]
    return BasicBlock("loop", ops)


def _recurrence_loop():
    return BasicBlock("loop", [
        Operation(Opcode.LD, [ireg(0)], [ireg(0), Imm(0)]),
        Operation(Opcode.ADD, [ireg(1)], [ireg(1), Imm(1)]),
        Operation(Opcode.BR, [], [ireg(1), Imm(10)],
                  attrs={"cmp": "lt", "target": "loop"}),
    ])


def _assert_legal(block, sched):
    """Precedence + modulo reservation constraints hold."""
    ops = [op for op in block.ops if op.opcode != Opcode.NOP]
    graph = build_dependence_graph(ops, loop_carried=True)
    times = {i: sched.times[op.uid] for i, op in enumerate(ops)}
    for edge in graph.edges:
        assert (times[edge.src] + edge.latency
                - sched.ii * edge.distance <= times[edge.dst]), edge
    seen = set()
    for op in ops:
        key = (sched.slots[op.uid], sched.times[op.uid] % sched.ii)
        assert key not in seen
        seen.add(key)
        assert sched.slots[op.uid] in DEFAULT_MACHINE.slots_for_op(op.opcode)


class TestOracleSearch:
    def test_counting_loop_optimal_at_one(self):
        result = oracle_schedule(_counting_loop())
        assert result.status == "optimal"
        assert result.ii == 1
        assert result.min_ii == 1

    def test_memory_loop_achieves_min_ii(self):
        result = oracle_schedule(_memory_loop())
        assert result.status == "optimal"
        assert result.res_mii == 2          # 6 loads over 3 memory slots
        assert result.ii == result.min_ii   # RecMII (4) dominates here

    def test_recurrence_loop_matches_recmii(self):
        result = oracle_schedule(_recurrence_loop())
        assert result.status == "optimal"
        assert result.ii == result.rec_mii >= 3

    def test_max_ii_below_min_ii_is_bound_proof(self):
        result = oracle_schedule(_memory_loop(), max_ii=1)
        assert result.status == "infeasible"
        assert result.ii is None
        assert result.nodes == 0

    def test_too_large_is_reported_not_searched(self):
        result = oracle_schedule(_memory_loop(), max_ops=2)
        assert result.status == "too-large"
        assert result.ii is None

    def test_budget_exhaustion_is_unknown_not_wrong(self):
        result = oracle_schedule(_memory_loop(), node_budget=0)
        assert result.status == "unknown"
        assert result.ii is None

    def test_oracle_never_beats_a_proven_bound(self):
        for block in (_counting_loop(), _memory_loop(), _recurrence_loop()):
            result = oracle_schedule(block)
            assert result.ii is not None
            assert result.ii >= result.min_ii


class TestOracleSchedules:
    def test_solution_is_a_legal_modulo_schedule(self):
        for make in (_counting_loop, _memory_loop, _recurrence_loop):
            block = make()
            result = oracle_schedule(block)
            sched = as_modulo_schedule(block, result)
            assert sched.ii == result.ii
            _assert_legal(block, sched)

    def test_mve_factor_recomputed_for_oracle_times(self):
        block = _counting_loop()
        sched = as_modulo_schedule(block, oracle_schedule(block))
        assert sched.mve_factor >= 1
        assert sched.buffered_op_count == (sched.kernel_op_count
                                           * sched.mve_factor)

    def test_no_solution_raises(self):
        block = _memory_loop()
        with pytest.raises(ValueError):
            as_modulo_schedule(block, oracle_schedule(block, max_ii=1))


class TestHeuristicAgreement:
    def test_oracle_never_above_heuristic(self):
        for make in (_counting_loop, _memory_loop, _recurrence_loop):
            block = make()
            heur = modulo_schedule(make())
            result = oracle_schedule(block, max_ii=heur.ii)
            assert result.ii is not None
            assert result.ii <= heur.ii

    def test_safe_horizon_grows_with_ops_and_ii(self):
        ops = [op for op in _memory_loop().ops]
        assert safe_horizon(ops, 4) > safe_horizon(ops, 2)
        assert safe_horizon(ops, 2) > safe_horizon(ops[:2], 2)


@pytest.mark.slow
class TestBenchmarkLoops:
    """Oracle-vs-heuristic agreement on real benchmark loops."""

    def test_g724_enc_traditional_all_certified(self):
        from repro.bench import all_benchmarks
        from repro.pipeline import compile_traditional

        bench = next(b for b in all_benchmarks() if b.name == "g724_enc")
        compiled = compile_traditional(bench.build(), entry=bench.entry,
                                       args=bench.args,
                                       buffer_capacity=None)
        rows = certify_compiled(compiled)
        assert rows, "expected modulo-scheduled loops"
        for row in rows:
            assert isinstance(row, LoopGap)
            assert row.certified, row.as_dict()
            assert row.gap == 0, row.as_dict()
            assert row.optimal_ii == row.heuristic_ii

    def test_swapped_schedules_simulate_identically(self):
        from repro.bench import all_benchmarks
        from repro.pipeline import compile_traditional, run_compiled

        bench = next(b for b in all_benchmarks() if b.name == "g724_enc")
        compiled = compile_traditional(bench.build(), entry=bench.entry,
                                       args=bench.args, buffer_capacity=64)
        swapped, swaps = swap_oracle_schedules(compiled)
        assert swaps, "oracle should solve at least one loop"
        reference = run_compiled(compiled)
        observed = run_compiled(swapped)
        assert observed.result.value == reference.result.value
        # II never worse, so neither is the cycle count
        assert observed.cycles <= reference.cycles
