"""Unit tests for iterative modulo scheduling."""


from repro.analysis.dependence import build_dependence_graph
from repro.ir import BasicBlock, Imm, Opcode, Operation, ireg
from repro.sched.machine import DEFAULT_MACHINE
from repro.sched.modulo import (
    ModuloSchedule,
    modulo_schedule,
    recurrence_mii,
    resource_mii,
)


def _counting_body(counted=True):
    """s += i; i += 1; loop-back  (a classic 1-recurrence loop).

    With ``counted`` the loop-back is a ``br_cloop`` (no register reads),
    allowing II=1; a plain ``br`` reading the induction register adds a
    flow-into-branch + branch-into-next-iteration recurrence forcing II=2
    — exactly the penalty the paper's counted-loop conversion removes.
    """
    back = (
        Operation(Opcode.BR_CLOOP, [], [], attrs={"target": "b", "lc": "l0"})
        if counted else
        Operation(Opcode.BR, [], [ireg(1), Imm(100)],
                  attrs={"cmp": "lt", "target": "b"})
    )
    return [
        Operation(Opcode.ADD, [ireg(0)], [ireg(0), ireg(1)]),
        Operation(Opcode.ADD, [ireg(1)], [ireg(1), Imm(1)]),
        back,
    ]


class TestMII:
    def test_resmii_single_branch_unit(self):
        ops = [
            Operation(Opcode.BR, [], [ireg(0), Imm(0)],
                      attrs={"cmp": "eq", "target": "x"}),
        ] + [
            Operation(Opcode.ADD, [ireg(10 + i)], [ireg(i), Imm(1)])
            for i in range(4)
        ]
        assert resource_mii(ops, DEFAULT_MACHINE) == 1

    def test_resmii_memory_bound(self):
        # 7 loads over 3 memory slots -> ceil(7/3) = 3
        ops = [
            Operation(Opcode.LD, [ireg(10 + i)], [ireg(0), Imm(i)])
            for i in range(7)
        ]
        assert resource_mii(ops, DEFAULT_MACHINE) == 3

    def test_resmii_width_bound(self):
        ops = [
            Operation(Opcode.ADD, [ireg(10 + i)], [ireg(i), Imm(1)])
            for i in range(17)
        ]
        assert resource_mii(ops, DEFAULT_MACHINE) == 3  # ceil(17/8)

    def test_recmii_counted_loop_is_one(self):
        graph = build_dependence_graph(_counting_body(), loop_carried=True)
        # i += 1 each iteration: latency 1, distance 1 -> RecMII 1
        assert recurrence_mii(graph) == 1

    def test_recmii_conditional_backbranch_costs_one(self):
        # br reads the induction value: flow into the branch plus the
        # next-iteration control edge -> II >= 2 (motivates br_cloop)
        graph = build_dependence_graph(_counting_body(counted=False),
                                       loop_carried=True)
        assert recurrence_mii(graph) == 2

    def test_recmii_long_recurrence(self):
        # x = load(x): latency-3 self-recurrence forces II >= 3
        ops = [Operation(Opcode.LD, [ireg(0)], [ireg(0), Imm(0)])]
        graph = build_dependence_graph(ops, loop_carried=True)
        assert recurrence_mii(graph) == 3


class TestModuloScheduling:
    def test_counting_loop(self):
        block = BasicBlock("loop", _counting_body())
        sched = modulo_schedule(block)
        assert sched.ii == 1
        assert len(sched.times) == 3
        _assert_valid(block, sched)

    def test_memory_heavy_loop(self):
        ops = [
            Operation(Opcode.LD, [ireg(10 + i)], [ireg(0), Imm(i)])
            for i in range(6)
        ] + [
            Operation(Opcode.ADD, [ireg(20)], [ireg(10), ireg(11)]),
            Operation(Opcode.BR_CLOOP, [], [], attrs={"target": "loop", "lc": "l0"}),
        ]
        block = BasicBlock("loop", ops)
        sched = modulo_schedule(block)
        assert sched.ii >= 2  # 6 loads / 3 mem slots
        _assert_valid(block, sched)

    def test_recurrence_limited_loop(self):
        ops = [
            Operation(Opcode.LD, [ireg(0)], [ireg(0), Imm(0)]),
            Operation(Opcode.ADD, [ireg(1)], [ireg(1), Imm(1)]),
            Operation(Opcode.BR, [], [ireg(1), Imm(10)],
                      attrs={"cmp": "lt", "target": "loop"}),
        ]
        block = BasicBlock("loop", ops)
        sched = modulo_schedule(block)
        assert sched.ii >= 3
        _assert_valid(block, sched)

    def test_stages_and_length(self):
        block = BasicBlock("loop", _counting_body())
        sched = modulo_schedule(block)
        assert sched.schedule_length >= 1
        assert sched.stages == -(-sched.schedule_length // sched.ii)

    def test_mve_factor_flat_loop(self):
        block = BasicBlock("loop", _counting_body())
        sched = modulo_schedule(block)
        assert sched.mve_factor >= 1
        assert sched.buffered_op_count == sched.kernel_op_count * sched.mve_factor

    def test_mve_needed_for_long_lifetime(self):
        # a load's value consumed 3 cycles later while II could be 1:
        # lifetime > II forces kernel expansion
        ops = [
            Operation(Opcode.LD, [ireg(2)], [ireg(0), Imm(0)]),
            Operation(Opcode.ADD, [ireg(3)], [ireg(2), Imm(1)]),
            Operation(Opcode.ADD, [ireg(0)], [ireg(0), Imm(1)]),
            Operation(Opcode.BR, [], [ireg(0), Imm(64)],
                      attrs={"cmp": "lt", "target": "loop"}),
        ]
        block = BasicBlock("loop", ops)
        sched = modulo_schedule(block)
        if sched.ii < 3:
            assert sched.mve_factor > 1


def _assert_valid(block, sched: ModuloSchedule):
    """All modulo-scheduling constraints hold on the result."""
    ops = [op for op in block.ops if op.opcode != Opcode.NOP]
    graph = build_dependence_graph(ops, loop_carried=True)
    times = {i: sched.times[op.uid] for i, op in enumerate(ops)}
    for edge in graph.edges:
        assert (times[edge.src] + edge.latency - sched.ii * edge.distance
                <= times[edge.dst]), f"violated {edge}"
    # modulo resource constraint: one op per (slot, time mod II)
    seen = set()
    for op in ops:
        key = (sched.slots[op.uid], sched.times[op.uid] % sched.ii)
        assert key not in seen
        seen.add(key)
        assert sched.slots[op.uid] in DEFAULT_MACHINE.slots_for_op(op.opcode)


class TestRecMIIBisection:
    """The doubling+bisection RecMII search must match the linear scan."""

    def _graphs(self):
        yield build_dependence_graph(_counting_body(), loop_carried=True)
        yield build_dependence_graph(_counting_body(counted=False),
                                     loop_carried=True)
        # chained loads: x = load(x) k times -> RecMII = 3k
        for k in (1, 2, 4):
            ops = [
                Operation(Opcode.LD, [ireg((i + 1) % k)],
                          [ireg(i), Imm(0)])
                for i in range(k)
            ]
            yield build_dependence_graph(ops, loop_carried=True)

    def test_matches_legacy_scan_on_known_graphs(self):
        from repro.sched import cache as sched_cache

        for graph in self._graphs():
            with sched_cache.legacy_mode():
                expected = recurrence_mii(graph)
            assert recurrence_mii(graph) == expected

    def test_chained_load_recurrence_known_answer(self):
        # 4 chained latency-3 loads, one cycle of distance 1 -> RecMII 12
        ops = [
            Operation(Opcode.LD, [ireg((i + 1) % 4)], [ireg(i), Imm(0)])
            for i in range(4)
        ]
        graph = build_dependence_graph(ops, loop_carried=True)
        assert recurrence_mii(graph) == 12

    def test_no_loop_carried_edge_short_circuits(self):
        ops = [
            Operation(Opcode.ADD, [ireg(1)], [ireg(0), Imm(1)]),
            Operation(Opcode.ADD, [ireg(2)], [ireg(1), Imm(1)]),
        ]
        graph = build_dependence_graph(ops, loop_carried=True)
        if not any(edge.distance for edge in graph.edges):
            assert recurrence_mii(graph) == 1
