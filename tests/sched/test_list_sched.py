"""Unit tests for the acyclic list scheduler."""

from repro.ir import BasicBlock, Imm, Opcode, Operation, ireg, preg
from repro.sched.list_sched import schedule_block
from repro.sched.machine import DEFAULT_MACHINE


def _block(ops):
    return BasicBlock("b", ops)


def _add(dst, a, b):
    return Operation(Opcode.ADD, [ireg(dst)], [ireg(a), ireg(b)])


class TestBasicScheduling:
    def test_independent_ops_share_cycle(self):
        ops = [_add(10 + i, i, i) for i in range(8)]
        sched = schedule_block(_block(ops))
        assert sched.length == 1
        assert sched.bundles[0].op_count == 8

    def test_nine_ialu_ops_need_two_cycles(self):
        ops = [_add(10 + i, i, i) for i in range(9)]
        sched = schedule_block(_block(ops))
        assert sched.length == 2

    def test_flow_dependence_respected(self):
        ops = [
            _add(1, 0, 0),
            Operation(Opcode.ADD, [ireg(2)], [ireg(1), Imm(1)]),
        ]
        sched = schedule_block(_block(ops))
        assert sched.cycle_of(ops[1]) >= sched.cycle_of(ops[0]) + 1

    def test_load_latency_respected(self):
        ld = Operation(Opcode.LD, [ireg(1)], [ireg(0), Imm(0)])
        use = Operation(Opcode.ADD, [ireg(2)], [ireg(1), Imm(1)])
        sched = schedule_block(_block([ld, use]))
        assert sched.cycle_of(use) >= sched.cycle_of(ld) + 3

    def test_every_op_placed_in_capable_slot(self):
        ops = [
            Operation(Opcode.LD, [ireg(1)], [ireg(0), Imm(0)]),
            Operation(Opcode.MUL, [ireg(2)], [ireg(0), ireg(0)]),
            Operation(Opcode.PRED_DEF, [preg(0)], [ireg(0), Imm(3)],
                      attrs={"cmp": "lt", "ptypes": ["ut"]}),
            _add(3, 0, 0),
        ]
        sched = schedule_block(_block(ops))
        for op in ops:
            slot = sched.slot_of(op)
            assert slot in DEFAULT_MACHINE.slots_for_op(op.opcode)

    def test_three_memory_ops_per_cycle_max(self):
        loads = [
            Operation(Opcode.LD, [ireg(10 + i)], [ireg(0), Imm(i)])
            for i in range(6)
        ]
        sched = schedule_block(_block(loads))
        assert sched.length == 2
        for bundle in sched.bundles:
            mems = [op for op in bundle.ops.values() if op.opcode == Opcode.LD]
            assert len(mems) <= 3

    def test_single_branch_slot(self):
        # two branches cannot share a cycle (and control deps order them)
        ops = [
            Operation(Opcode.BR, [], [ireg(0), Imm(0)],
                      attrs={"cmp": "eq", "target": "x"}),
            Operation(Opcode.BR, [], [ireg(1), Imm(0)],
                      attrs={"cmp": "eq", "target": "y"}),
        ]
        sched = schedule_block(_block(ops))
        assert sched.cycle_of(ops[1]) > sched.cycle_of(ops[0])

    def test_branch_order_preserved(self):
        ops = [
            _add(1, 0, 0),
            Operation(Opcode.BR, [], [ireg(1), Imm(0)],
                      attrs={"cmp": "eq", "target": "x"}),
            Operation(Opcode.ST, [], [ireg(0), Imm(0), ireg(1)]),
        ]
        sched = schedule_block(_block(ops))
        assert sched.cycle_of(ops[0]) <= sched.cycle_of(ops[1])
        assert sched.cycle_of(ops[2]) > sched.cycle_of(ops[1])

    def test_nops_dropped(self):
        ops = [Operation(Opcode.NOP), _add(1, 0, 0)]
        sched = schedule_block(_block(ops))
        assert sched.op_count == 1


class TestPredicateAwareScheduling:
    def test_disjoint_guards_schedule_together(self):
        # the Figure 2(d) effect: mov and add on complementary predicates
        # may issue in the same cycle
        pd = Operation(Opcode.PRED_DEF, [preg(1), preg(2)], [ireg(5), Imm(7)],
                       attrs={"cmp": "eq", "ptypes": ["ut", "uf"]})
        mov = Operation(Opcode.MOV, [ireg(2)], [Imm(0)], guard=preg(1))
        add = Operation(Opcode.ADD, [ireg(2)], [ireg(2), Imm(1)], guard=preg(2))
        sched = schedule_block(_block([pd, mov, add]))
        assert sched.cycle_of(mov) == sched.cycle_of(add)

    def test_guard_flow_respected(self):
        pd = Operation(Opcode.PRED_DEF, [preg(1)], [ireg(5), Imm(7)],
                       attrs={"cmp": "eq", "ptypes": ["ut"]})
        use = Operation(Opcode.MOV, [ireg(2)], [Imm(0)], guard=preg(1))
        sched = schedule_block(_block([pd, use]))
        assert sched.cycle_of(use) > sched.cycle_of(pd)


class TestUtilization:
    def test_utilization_metric(self):
        ops = [_add(10 + i, i, i) for i in range(4)]
        sched = schedule_block(_block(ops))
        assert sched.utilization(8) == 0.5
