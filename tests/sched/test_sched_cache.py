"""Scheduler memoization: content-keyed hits, legacy equivalence, stats."""

import pytest

from repro.analysis.dependence import (
    build_dependence_graph,
    dependence_cache_stats,
    dependence_graph,
    ops_fingerprint,
)
from repro.ir import BasicBlock, Imm, Opcode, Operation, ireg
from repro.sched import cache as sched_cache
from repro.sched.list_sched import schedule_block
from repro.sched.modulo import modulo_schedule


@pytest.fixture(autouse=True)
def _fresh_caches():
    sched_cache.clear_caches()
    yield
    sched_cache.clear_caches()


def _body():
    """A block with some ILP and a branch (fresh Operation objects)."""
    return [
        Operation(Opcode.LD, [ireg(2)], [ireg(0), Imm(0)]),
        Operation(Opcode.ADD, [ireg(3)], [ireg(2), Imm(1)]),
        Operation(Opcode.MUL, [ireg(4)], [ireg(3), ireg(3)]),
        Operation(Opcode.ADD, [ireg(0)], [ireg(0), Imm(4)]),
        Operation(Opcode.BR, [], [ireg(0), Imm(64)],
                  attrs={"cmp": "lt", "target": "loop"}),
    ]


def _loop_body():
    return [
        Operation(Opcode.ADD, [ireg(0)], [ireg(0), ireg(1)]),
        Operation(Opcode.ADD, [ireg(1)], [ireg(1), Imm(1)]),
        Operation(Opcode.BR_CLOOP, [], [],
                  attrs={"target": "loop", "lc": "l0"}),
    ]


def _canonical(schedule, ops):
    return tuple(sorted((schedule.placement[op.uid].cycle,
                         schedule.placement[op.uid].slot, repr(op))
                        for op in ops))


class TestContentKeys:
    def test_same_content_same_fingerprint(self):
        assert ops_fingerprint(_body()) == ops_fingerprint(_body())

    def test_different_content_different_fingerprint(self):
        other = _body()
        other[1] = Operation(Opcode.SUB, [ireg(3)], [ireg(2), Imm(1)])
        assert ops_fingerprint(_body()) != ops_fingerprint(other)

    def test_uids_do_not_leak_into_fingerprint(self):
        a, b = _body(), _body()
        assert [op.uid for op in a] != [op.uid for op in b]
        assert ops_fingerprint(a) == ops_fingerprint(b)


class TestListScheduleCache:
    def test_identical_blocks_hit_and_replay_identically(self):
        before = sched_cache.STATS.list_hits
        ops_a, ops_b = _body(), _body()
        sched_a = schedule_block(BasicBlock("loop", ops_a))
        sched_b = schedule_block(BasicBlock("loop", ops_b))
        assert sched_cache.STATS.list_hits == before + 1
        assert _canonical(sched_a, ops_a) == _canonical(sched_b, ops_b)

    def test_replayed_schedule_binds_callers_operations(self):
        schedule_block(BasicBlock("loop", _body()))
        ops = _body()
        sched = schedule_block(BasicBlock("loop", ops))
        placed = {op for bundle in sched.bundles
                  for _, op in bundle.in_slot_order()}
        assert placed == set(ops)

    def test_exit_live_is_part_of_the_key(self):
        ops_a, ops_b = _body(), _body()
        schedule_block(BasicBlock("loop", ops_a))
        misses = sched_cache.STATS.list_misses
        schedule_block(BasicBlock("loop", ops_b),
                       exit_live={4: {ireg(3)}})
        assert sched_cache.STATS.list_misses == misses + 1

    def test_legacy_mode_skips_the_cache(self):
        hits = sched_cache.STATS.list_hits
        misses = sched_cache.STATS.list_misses
        with sched_cache.legacy_mode():
            schedule_block(BasicBlock("loop", _body()))
            schedule_block(BasicBlock("loop", _body()))
        assert sched_cache.STATS.list_hits == hits
        assert sched_cache.STATS.list_misses == misses

    def test_legacy_and_optimized_schedules_identical(self):
        for make in (_body, _loop_body):
            ops_a, ops_b = make(), make()
            with sched_cache.legacy_mode():
                legacy = schedule_block(BasicBlock("loop", ops_a))
            optimized = schedule_block(BasicBlock("loop", ops_b))
            assert (_canonical(legacy, ops_a)
                    == _canonical(optimized, ops_b))


class TestModuloCache:
    def test_identical_loops_hit_with_identical_schedules(self):
        ops_a, ops_b = _loop_body(), _loop_body()
        sched_a = modulo_schedule(BasicBlock("loop", ops_a))
        before = sched_cache.STATS.modulo_hits
        sched_b = modulo_schedule(BasicBlock("loop", ops_b))
        assert sched_cache.STATS.modulo_hits == before + 1
        assert sched_a.ii == sched_b.ii
        assert sched_a.mve_factor == sched_b.mve_factor
        assert ([sched_a.times[op.uid] for op in ops_a]
                == [sched_b.times[op.uid] for op in ops_b])
        assert ([sched_a.slots[op.uid] for op in ops_a]
                == [sched_b.slots[op.uid] for op in ops_b])

    def test_cached_schedule_rebinds_uids(self):
        modulo_schedule(BasicBlock("loop", _loop_body()))
        ops = _loop_body()
        sched = modulo_schedule(BasicBlock("loop", ops))
        assert set(sched.times) == {op.uid for op in ops}

    def test_legacy_and_optimized_agree(self):
        ops_a, ops_b = _loop_body(), _loop_body()
        with sched_cache.legacy_mode():
            legacy = modulo_schedule(BasicBlock("loop", ops_a))
        optimized = modulo_schedule(BasicBlock("loop", ops_b))
        assert legacy.ii == optimized.ii
        assert ([legacy.times[op.uid] for op in ops_a]
                == [optimized.times[op.uid] for op in ops_b])
        assert ([legacy.slots[op.uid] for op in ops_a]
                == [optimized.slots[op.uid] for op in ops_b])


class TestDependenceCache:
    def test_hit_rebinds_edges_onto_caller_ops(self):
        ops_a, ops_b = _body(), _body()
        graph_a = dependence_graph(ops_a, fingerprint=ops_fingerprint(ops_a))
        hits = dependence_cache_stats().hits
        graph_b = dependence_graph(ops_b, fingerprint=ops_fingerprint(ops_b))
        assert dependence_cache_stats().hits == hits + 1
        assert graph_b.ops == list(ops_b)
        assert ([(e.src, e.dst, e.kind, e.latency, e.distance)
                 for e in graph_a.edges]
                == [(e.src, e.dst, e.kind, e.latency, e.distance)
                    for e in graph_b.edges])

    def test_cached_graph_matches_fresh_build(self):
        ops = _loop_body()
        fresh = build_dependence_graph(ops, loop_carried=True)
        dependence_graph(_loop_body(), loop_carried=True,
                         fingerprint=ops_fingerprint(ops))
        cached = dependence_graph(ops, loop_carried=True,
                                  fingerprint=ops_fingerprint(ops))
        assert ([(e.src, e.dst, e.kind, e.latency, e.distance)
                 for e in fresh.edges]
                == [(e.src, e.dst, e.kind, e.latency, e.distance)
                    for e in cached.edges])

    def test_stats_roundtrip_in_as_dict(self):
        data = sched_cache.STATS.as_dict()
        assert set(data) >= {"list_hits", "list_misses", "modulo_hits",
                             "modulo_misses", "seconds", "dependence"}
