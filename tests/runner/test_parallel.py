"""Grid executor tests: determinism, serial/parallel equality, caching,
retry semantics.

The equality tests run real cells (adpcm — the fastest Table 1 programs)
across both pipelines, serial vs. pooled, cold vs. warm cache; the retry
tests inject failing executors instead of simulating real crashes.
"""

import os

import pytest

from repro.runner.cache import ArtifactCache
from repro.runner.metrics import MetricsRecorder
from repro.runner.parallel import (
    ENV_WORKERS,
    Cell,
    _run_serial,
    base_key,
    expand_grid,
    resolve_workers,
    run_cell,
    run_grid,
    run_key,
)

NAMES = ["adpcm_enc", "adpcm_dec"]
GRID = expand_grid(NAMES, ("traditional", "aggressive"), (64,))


@pytest.fixture
def cache(tmp_path):
    return ArtifactCache(tmp_path / "cache")


class TestWorkers:
    def test_default_is_core_count(self, monkeypatch):
        monkeypatch.delenv(ENV_WORKERS, raising=False)
        assert resolve_workers(None) == (os.cpu_count() or 1)

    def test_environment_and_argument_precedence(self, monkeypatch):
        monkeypatch.setenv(ENV_WORKERS, "3")
        assert resolve_workers(None) == 3
        assert resolve_workers(7) == 7  # explicit argument wins
        monkeypatch.setenv(ENV_WORKERS, "not-a-number")
        assert resolve_workers(None) == (os.cpu_count() or 1)


class TestGrid:
    def test_expand_grid_order(self):
        cells = expand_grid(["a", "b"], ("p",), (1, 2))
        assert cells == [Cell("a", "p", 1), Cell("a", "p", 2),
                         Cell("b", "p", 1), Cell("b", "p", 2)]

    def test_keys_distinct_per_cell(self):
        keys = {run_key(c.name, c.pipeline, c.capacity) for c in GRID}
        assert len(keys) == len(GRID)
        # the run key differs from the base key (capacity is in the flags)
        cell = GRID[0]
        assert run_key(cell.name, cell.pipeline, cell.capacity) \
            != base_key(cell.name, cell.pipeline)


class TestSerialVsParallel:
    def test_equality_and_ordering(self, tmp_path):
        serial_cache = ArtifactCache(tmp_path / "serial")
        pool_cache = ArtifactCache(tmp_path / "pool")
        serial = run_grid(GRID, workers=1, cache=serial_cache)
        parallel = run_grid(GRID, workers=2, cache=pool_cache)
        assert serial == parallel
        for cell, summary in zip(GRID, serial):
            assert (summary.name, summary.pipeline, summary.capacity) \
                == (cell.name, cell.pipeline, cell.capacity)

    def test_warm_cache_identical_and_hits(self, cache):
        metrics_cold = MetricsRecorder()
        cold = run_grid(GRID, workers=1, cache=cache, metrics=metrics_cold)
        assert metrics_cold.run_cache_hits == 0

        metrics_warm = MetricsRecorder()
        warm = run_grid(GRID, workers=1, cache=cache, metrics=metrics_warm)
        assert warm == cold
        assert metrics_warm.run_cache_hits == len(GRID)

    def test_parallel_reads_serial_cache(self, cache):
        cold = run_grid(GRID, workers=1, cache=cache)
        metrics = MetricsRecorder()
        warm = run_grid(GRID, workers=2, cache=cache, metrics=metrics)
        assert warm == cold
        assert metrics.run_cache_hits == len(GRID)

    def test_no_cache_still_correct(self):
        summaries = run_grid(GRID[:2], workers=1, cache=None)
        assert all(s.ops_issued > 0 for s in summaries)

    def test_corrupted_entries_recomputed(self, cache):
        cold = run_grid(GRID, workers=1, cache=cache)
        # smash every cached artifact
        for path in cache.root.rglob("*.pkl"):
            path.write_bytes(b"garbage")
        metrics = MetricsRecorder()
        again = run_grid(GRID, workers=1, cache=cache, metrics=metrics)
        assert again == cold
        assert metrics.cache.evictions > 0
        assert metrics.run_cache_hits == 0


class TestRunCell:
    def test_matches_grid_and_records_metrics(self, cache):
        metrics = MetricsRecorder()
        summary = run_cell("adpcm_enc", "traditional", 64, cache=cache,
                           metrics=metrics)
        (grid_summary,) = run_grid(
            [Cell("adpcm_enc", "traditional", 64)], workers=1, cache=cache)
        assert summary == grid_summary
        assert len(metrics.cells) == 1
        assert metrics.cells[0].stages.get("simulate", 0) > 0

    def test_unknown_pipeline(self):
        with pytest.raises(ValueError):
            run_cell("adpcm_enc", "mystery", 64)


class TestRetry:
    def _flaky(self, fail_times, exc=RuntimeError):
        calls = {"n": 0}

        def execute(cell, cache, base, checked=False):
            calls["n"] += 1
            if calls["n"] <= fail_times:
                raise exc("transient")
            from repro.runner.metrics import CellMetrics
            from repro.runner.summary import RunSummary

            summary = RunSummary(cell.name, cell.pipeline, cell.capacity,
                                 1, 1, 1, 1, 0, 1, 0)
            return summary, CellMetrics(cell.name, cell.pipeline,
                                        cell.capacity), None

        return execute, calls

    def test_transient_failure_retried_once(self):
        execute, calls = self._flaky(1)
        metrics = MetricsRecorder()
        cells = [Cell("a", "traditional", 64)]
        results = _run_serial(cells, None, metrics, _execute=execute)
        assert len(results) == 1
        assert calls["n"] == 2
        assert metrics.cells[0].attempts == 2
        assert metrics.cells[0].retries == 1

    def test_second_failure_propagates(self):
        execute, calls = self._flaky(2)
        with pytest.raises(RuntimeError):
            _run_serial([Cell("a", "traditional", 64)], None,
                        MetricsRecorder(), _execute=execute)
        assert calls["n"] == 2

    def test_checksum_mismatch_not_retried(self):
        execute, calls = self._flaky(1, exc=AssertionError)
        with pytest.raises(AssertionError):
            _run_serial([Cell("a", "traditional", 64)], None,
                        MetricsRecorder(), _execute=execute)
        assert calls["n"] == 1
