"""Metrics reporting: table alignment, the totals row, JSON payloads."""

from repro.runner.metrics import CellMetrics, MetricsRecorder
from repro.runner.summary import format_table


class TestFormatTable:
    def test_default_layout_is_all_left(self):
        table = format_table(["a", "bb"], [["x", 1], ["yy", 22]])
        assert table.splitlines() == [
            "a   bb",
            "--  --",
            "x   1 ",
            "yy  22",
        ]

    def test_right_alignment_and_separator(self):
        table = format_table(
            ["name", "n"],
            [["a", 5], ["bb", 123], "-", ["total", 128]],
            align=["l", "r"],
        )
        assert table.splitlines() == [
            "name     n",
            "-----  ---",
            "a        5",
            "bb     123",
            "-----  ---",
            "total  128",
        ]


class TestToTable:
    def _recorder(self):
        metrics = MetricsRecorder()
        metrics.add_cell(CellMetrics(
            "adpcm_enc", "aggressive", 64,
            stages={"compile": 1.5, "retarget": 0.25, "simulate": 0.25}))
        metrics.add_cell(CellMetrics(
            "mpg123", "traditional", 2048,
            stages={"retarget": 0.125, "simulate": 0.375},
            base_cache_hit=True, run_cache_hit=True, worker="pid7",
            retries=1))
        metrics.finish()
        return metrics

    def test_layout_pinned(self):
        # numeric columns right-aligned; a rule then a totals row close
        # the table.  This pins the exact layout: update deliberately.
        table = self._recorder().to_table().split("\n\n")[0]
        assert table.splitlines() == [
            "per-cell runner metrics",
            "cell                   cap  compile s  run s  cache  retries"
            "  worker",
            "--------------------  ----  ---------  -----  -----  -------"
            "  ------",
            "adpcm_enc/aggressive    64      1.500  0.500  miss         0"
            "  serial",
            "mpg123/traditional    2048      0.000  0.500  hit          1"
            "  pid7  ",
            "--------------------  ----  ---------  -----  -----  -------"
            "  ------",
            "total (2 cells)                 1.500  1.000  1 hit        1"
            "        ",
        ]

    def test_retries_in_payload(self):
        cells = self._recorder().as_dict()["cells"]
        assert cells[0]["retries"] == 0
        assert cells[1]["retries"] == 1

    def test_empty_recorder_has_no_totals_row(self):
        metrics = MetricsRecorder()
        metrics.finish()
        table = metrics.to_table()
        assert "total (" not in table

    def test_latency_quantiles_in_payload_and_summary(self):
        metrics = self._recorder()
        latency = metrics.as_dict()["latency"]
        assert latency["compile"]["count"] == 1
        assert latency["compile"]["p50"] == 1.5
        # "run" pools retarget + simulate; both cells contribute
        assert latency["run"]["count"] == 2
        assert latency["run"]["p50"] == 0.5
        assert latency["run"]["p99"] == 0.5
        summary = metrics.to_table().split("\n\n")[-1]
        assert "stage latency s: compile p50=1.500" in summary
        assert "run p50=0.500" in summary

    def test_cache_served_cells_contribute_no_latency(self):
        metrics = MetricsRecorder()
        metrics.add_cell(CellMetrics("a", "p", 1, run_cache_hit=True))
        metrics.finish()
        assert metrics.latency_quantiles() == {}
        assert "stage latency" not in metrics.to_table()

    def test_as_dict_trace_fields(self):
        cm = CellMetrics("a", "p", 1)
        assert "traced" not in cm.as_dict()
        cm.trace = {"replayed": True}
        cm.obs = {"sim_fetch_ops": {}}
        payload = cm.as_dict()
        assert payload["traced"] is True
        assert payload["trace_replayed"] is True
        assert payload["obs"] == {"sim_fetch_ops": {}}
