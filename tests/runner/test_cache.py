"""Unit tests for the content-addressed artifact cache."""

import pickle

import pytest

from repro.runner.cache import (
    CACHE_FORMAT,
    ArtifactCache,
    cache_key,
    default_cache,
)


@pytest.fixture
def cache(tmp_path):
    return ArtifactCache(tmp_path / "cache")


SOURCE = "int main() { return 42; }"


class Payload:
    """Module-level so pickle can reference it by import path."""

    def __init__(self, value):
        self.value = value


class TestCacheKey:
    def test_stable(self):
        a = cache_key(SOURCE, "aggressive", {"x": 1, "y": 2}, version="1")
        b = cache_key(SOURCE, "aggressive", {"x": 1, "y": 2}, version="1")
        assert a == b
        assert len(a) == 64
        int(a, 16)  # hex digest

    def test_flag_order_irrelevant(self):
        a = cache_key(SOURCE, "aggressive", {"x": 1, "y": 2}, version="1")
        b = cache_key(SOURCE, "aggressive", {"y": 2, "x": 1}, version="1")
        assert a == b

    def test_every_component_matters(self):
        base = cache_key(SOURCE, "aggressive", {"x": 1}, version="1")
        assert cache_key(SOURCE + " ", "aggressive", {"x": 1},
                         version="1") != base
        assert cache_key(SOURCE, "traditional", {"x": 1},
                         version="1") != base
        assert cache_key(SOURCE, "aggressive", {"x": 2},
                         version="1") != base
        assert cache_key(SOURCE, "aggressive", {"x": 1},
                         version="2") != base

    def test_default_version_is_package_version(self):
        import repro

        assert cache_key(SOURCE, "aggressive") == cache_key(
            SOURCE, "aggressive", version=repro.__version__)


class TestStoreLoad:
    def test_roundtrip(self, cache):
        key = cache_key(SOURCE, "aggressive")
        cache.store(key, "run", {"cycles": 7})
        assert cache.load(key, "run") == {"cycles": 7}
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1

    def test_miss_on_absent(self, cache):
        assert cache.load("0" * 64, "run") is None
        assert cache.stats.misses == 1

    def test_kinds_are_namespaced(self, cache):
        key = cache_key(SOURCE, "aggressive")
        cache.store(key, "base", "compiled")
        assert cache.load(key, "run") is None
        assert cache.load(key, "base") == "compiled"

    def test_disabled_cache_never_touches_disk(self, tmp_path):
        cache = ArtifactCache(tmp_path / "c", enabled=False)
        key = cache_key(SOURCE, "aggressive")
        assert cache.store(key, "run", 1) is None
        assert cache.load(key, "run") is None
        assert not (tmp_path / "c").exists()

    def test_atomic_store_leaves_no_temp_files(self, cache):
        key = cache_key(SOURCE, "aggressive")
        path = cache.store(key, "run", list(range(100)))
        assert path.exists()
        assert [p.name for p in path.parent.iterdir()] == [path.name]


class TestCorruptionTolerance:
    def _stored(self, cache):
        key = cache_key(SOURCE, "aggressive")
        path = cache.store(key, "run", {"cycles": 7})
        return key, path

    def test_truncated_pickle_evicted(self, cache):
        key, path = self._stored(cache)
        path.write_bytes(path.read_bytes()[:10])
        assert cache.load(key, "run") is None
        assert not path.exists()
        assert cache.stats.evictions == 1
        assert cache.stats.misses == 1

    def test_garbage_bytes_evicted(self, cache):
        key, path = self._stored(cache)
        path.write_bytes(b"\x00not a pickle at all")
        assert cache.load(key, "run") is None
        assert not path.exists()

    def test_stale_format_evicted(self, cache):
        key, path = self._stored(cache)
        path.write_bytes(pickle.dumps(
            {"format": CACHE_FORMAT + 1, "key": key, "payload": 1}))
        assert cache.load(key, "run") is None
        assert not path.exists()

    def test_foreign_envelope_evicted(self, cache):
        key, path = self._stored(cache)
        path.write_bytes(pickle.dumps([1, 2, 3]))
        assert cache.load(key, "run") is None
        assert not path.exists()

    def test_key_mismatch_evicted(self, cache):
        # an entry renamed/copied to the wrong key must not be served
        key, path = self._stored(cache)
        other = "f" * 64
        target = cache.path_for(other, "run")
        target.parent.mkdir(parents=True, exist_ok=True)
        path.rename(target)
        assert cache.load(other, "run") is None
        assert not target.exists()

    def test_unimportable_class_evicted(self, cache):
        # entries referring to classes that no longer exist must be
        # evicted, not crash the load; simulate by corrupting the class's
        # module path inside the pickle stream
        key, path = self._stored(cache)
        blob = pickle.dumps({"format": CACHE_FORMAT, "key": key,
                             "payload": Payload(7)})
        path.write_bytes(blob.replace(b"test_cache", b"gone_module"))
        assert cache.load(key, "run") is None
        assert not path.exists()


class TestDeterministicArtifacts:
    """Two cold compile+simulate runs of the same Figure 7 cell must
    leave byte-identical cached ``RunSummary`` artifacts — the property
    the whole disk cache (and CI result comparison) rests on."""

    CELL = ("adpcm_enc", "traditional", 16)

    def _cold_run_bytes(self, root):
        from repro.runner.parallel import run_cell, run_key

        cache = ArtifactCache(root)
        name, pipeline, capacity = self.CELL
        summary = run_cell(name, pipeline, capacity, cache=cache)
        path = cache.path_for(run_key(name, pipeline, capacity), "run")
        return summary, path.read_bytes()

    def test_cold_runs_byte_identical(self, tmp_path):
        first, blob_a = self._cold_run_bytes(tmp_path / "a")
        second, blob_b = self._cold_run_bytes(tmp_path / "b")
        assert first == second
        assert blob_a == blob_b

    def test_warm_run_served_from_identical_artifact(self, tmp_path):
        from repro.runner.parallel import run_cell, run_key

        cache = ArtifactCache(tmp_path / "c")
        name, pipeline, capacity = self.CELL
        cold = run_cell(name, pipeline, capacity, cache=cache)
        path = cache.path_for(run_key(name, pipeline, capacity), "run")
        blob = path.read_bytes()
        warm = run_cell(name, pipeline, capacity, cache=cache)
        assert warm == cold
        assert path.read_bytes() == blob  # the hit did not rewrite it


class TestDefaultCache:
    def test_env_dir_and_disable(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        cache = default_cache()
        assert cache.root == tmp_path / "envcache"
        assert cache.enabled
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert not default_cache().enabled

    def test_arguments_beat_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        cache = default_cache(tmp_path / "arg", enabled=False)
        assert cache.root == tmp_path / "arg"
        assert not cache.enabled
