"""Unit tests for the content-addressed artifact cache."""

import pickle

import pytest

from repro.runner.cache import (
    CACHE_FORMAT,
    ArtifactCache,
    cache_key,
    default_cache,
)


@pytest.fixture
def cache(tmp_path):
    return ArtifactCache(tmp_path / "cache")


SOURCE = "int main() { return 42; }"


class Payload:
    """Module-level so pickle can reference it by import path."""

    def __init__(self, value):
        self.value = value


class TestCacheKey:
    def test_stable(self):
        a = cache_key(SOURCE, "aggressive", {"x": 1, "y": 2}, version="1")
        b = cache_key(SOURCE, "aggressive", {"x": 1, "y": 2}, version="1")
        assert a == b
        assert len(a) == 64
        int(a, 16)  # hex digest

    def test_flag_order_irrelevant(self):
        a = cache_key(SOURCE, "aggressive", {"x": 1, "y": 2}, version="1")
        b = cache_key(SOURCE, "aggressive", {"y": 2, "x": 1}, version="1")
        assert a == b

    def test_every_component_matters(self):
        base = cache_key(SOURCE, "aggressive", {"x": 1}, version="1")
        assert cache_key(SOURCE + " ", "aggressive", {"x": 1},
                         version="1") != base
        assert cache_key(SOURCE, "traditional", {"x": 1},
                         version="1") != base
        assert cache_key(SOURCE, "aggressive", {"x": 2},
                         version="1") != base
        assert cache_key(SOURCE, "aggressive", {"x": 1},
                         version="2") != base

    def test_default_version_is_package_version(self):
        import repro

        assert cache_key(SOURCE, "aggressive") == cache_key(
            SOURCE, "aggressive", version=repro.__version__)


class TestStoreLoad:
    def test_roundtrip(self, cache):
        key = cache_key(SOURCE, "aggressive")
        cache.store(key, "run", {"cycles": 7})
        assert cache.load(key, "run") == {"cycles": 7}
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1

    def test_miss_on_absent(self, cache):
        assert cache.load("0" * 64, "run") is None
        assert cache.stats.misses == 1

    def test_kinds_are_namespaced(self, cache):
        key = cache_key(SOURCE, "aggressive")
        cache.store(key, "base", "compiled")
        assert cache.load(key, "run") is None
        assert cache.load(key, "base") == "compiled"

    def test_disabled_cache_never_touches_disk(self, tmp_path):
        cache = ArtifactCache(tmp_path / "c", enabled=False)
        key = cache_key(SOURCE, "aggressive")
        assert cache.store(key, "run", 1) is None
        assert cache.load(key, "run") is None
        assert not (tmp_path / "c").exists()

    def test_atomic_store_leaves_no_temp_files(self, cache):
        key = cache_key(SOURCE, "aggressive")
        path = cache.store(key, "run", list(range(100)))
        assert path.exists()
        assert [p.name for p in path.parent.iterdir()] == [path.name]


class TestCorruptionTolerance:
    def _stored(self, cache):
        key = cache_key(SOURCE, "aggressive")
        path = cache.store(key, "run", {"cycles": 7})
        return key, path

    def test_truncated_pickle_evicted(self, cache):
        key, path = self._stored(cache)
        path.write_bytes(path.read_bytes()[:10])
        assert cache.load(key, "run") is None
        assert not path.exists()
        assert cache.stats.evictions == 1
        assert cache.stats.misses == 1

    def test_garbage_bytes_evicted(self, cache):
        key, path = self._stored(cache)
        path.write_bytes(b"\x00not a pickle at all")
        assert cache.load(key, "run") is None
        assert not path.exists()

    def test_stale_format_evicted(self, cache):
        key, path = self._stored(cache)
        path.write_bytes(pickle.dumps(
            {"format": CACHE_FORMAT + 1, "key": key, "payload": 1}))
        assert cache.load(key, "run") is None
        assert not path.exists()

    def test_foreign_envelope_evicted(self, cache):
        key, path = self._stored(cache)
        path.write_bytes(pickle.dumps([1, 2, 3]))
        assert cache.load(key, "run") is None
        assert not path.exists()

    def test_key_mismatch_evicted(self, cache):
        # an entry renamed/copied to the wrong key must not be served
        key, path = self._stored(cache)
        other = "f" * 64
        target = cache.path_for(other, "run")
        target.parent.mkdir(parents=True, exist_ok=True)
        path.rename(target)
        assert cache.load(other, "run") is None
        assert not target.exists()

    def test_unimportable_class_evicted(self, cache):
        # entries referring to classes that no longer exist must be
        # evicted, not crash the load; simulate by corrupting the class's
        # module path inside the pickle stream
        key, path = self._stored(cache)
        blob = pickle.dumps({"format": CACHE_FORMAT, "key": key,
                             "payload": Payload(7)})
        path.write_bytes(blob.replace(b"test_cache", b"gone_module"))
        assert cache.load(key, "run") is None
        assert not path.exists()


class TestDeterministicArtifacts:
    """Two cold compile+simulate runs of the same Figure 7 cell must
    leave byte-identical cached ``RunSummary`` artifacts — the property
    the whole disk cache (and CI result comparison) rests on."""

    CELL = ("adpcm_enc", "traditional", 16)

    def _cold_run_bytes(self, root):
        from repro.runner.parallel import run_cell, run_key

        cache = ArtifactCache(root)
        name, pipeline, capacity = self.CELL
        summary = run_cell(name, pipeline, capacity, cache=cache)
        path = cache.path_for(run_key(name, pipeline, capacity), "run")
        return summary, path.read_bytes()

    def test_cold_runs_byte_identical(self, tmp_path):
        first, blob_a = self._cold_run_bytes(tmp_path / "a")
        second, blob_b = self._cold_run_bytes(tmp_path / "b")
        assert first == second
        assert blob_a == blob_b

    def test_warm_run_served_from_identical_artifact(self, tmp_path):
        from repro.runner.parallel import run_cell, run_key

        cache = ArtifactCache(tmp_path / "c")
        name, pipeline, capacity = self.CELL
        cold = run_cell(name, pipeline, capacity, cache=cache)
        path = cache.path_for(run_key(name, pipeline, capacity), "run")
        blob = path.read_bytes()
        warm = run_cell(name, pipeline, capacity, cache=cache)
        assert warm == cold
        assert path.read_bytes() == blob  # the hit did not rewrite it


class TestDefaultCache:
    def test_env_dir_and_disable(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        cache = default_cache()
        assert cache.root == tmp_path / "envcache"
        assert cache.enabled
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert not default_cache().enabled

    def test_arguments_beat_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        cache = default_cache(tmp_path / "arg", enabled=False)
        assert cache.root == tmp_path / "arg"
        assert not cache.enabled


class TestMaintenance:
    """The scan/usage/LRU-gc helpers behind ``runner cache`` and the
    service's sharded gc."""

    def _fill(self, cache, n=6, kind="base"):
        keys = []
        for i in range(n):
            key = cache_key(SOURCE, "aggressive", {"i": i})
            cache.store(key, kind, Payload(i))
            keys.append(key)
        return keys

    def test_iter_entries_sees_stores(self, cache):
        from repro.runner.cache import iter_entries

        keys = self._fill(cache, 4)
        entries = iter_entries(cache.root)
        assert {e.key for e in entries} == set(keys)
        assert all(e.kind == "base" and e.bytes > 0 for e in entries)

    def test_iter_entries_skips_temp_and_foreign_files(self, cache):
        from repro.runner.cache import iter_entries

        [key] = self._fill(cache, 1)
        sub = cache.root / key[:2]
        (sub / f"{key}.base.pkl.tmp1234").write_bytes(b"partial write")
        (sub / "README").write_text("not a cache entry")
        (cache.root / "not-a-prefix").mkdir()
        entries = iter_entries(cache.root)
        assert [e.key for e in entries] == [key]

    def test_iter_entries_prefix_filter(self, cache):
        from repro.runner.cache import iter_entries

        keys = self._fill(cache, 8)
        some = {k[:2] for k in keys if int(k[:2], 16) % 2 == 0}
        got = iter_entries(cache.root, prefixes=some)
        assert {e.key for e in got} == {k for k in keys if k[:2] in some}

    def test_usage_by_kind(self, cache):
        from repro.runner.cache import iter_entries, usage_by_kind

        key = cache_key(SOURCE, "aggressive", {})
        cache.store(key, "base", Payload(1))
        cache.store(key, "run", Payload(2))
        other = cache_key(SOURCE, "traditional", {})
        cache.store(other, "run", Payload(3))
        usage = usage_by_kind(iter_entries(cache.root))
        assert usage["base"]["entries"] == 1
        assert usage["run"]["entries"] == 2
        assert usage["run"]["bytes"] > 0

    def test_gc_lru_evicts_oldest_first(self, cache):
        import os

        from repro.runner.cache import gc_lru, iter_entries

        keys = self._fill(cache, 5)
        # pin explicit mtimes: keys[0] oldest ... keys[4] newest
        for i, key in enumerate(keys):
            os.utime(cache.path_for(key, "base"), (1000 + i, 1000 + i))
        entries = iter_entries(cache.root)
        per_entry = entries[0].bytes
        keep = 2 * per_entry
        evicted, kept = gc_lru(cache.root, keep)
        assert [e.key for e in evicted] == keys[:3]
        assert kept <= keep
        left = {e.key for e in iter_entries(cache.root)}
        assert left == set(keys[3:])

    def test_gc_lru_dry_run_deletes_nothing(self, cache):
        from repro.runner.cache import gc_lru, iter_entries

        self._fill(cache, 4)
        before = {e.key for e in iter_entries(cache.root)}
        evicted, _ = gc_lru(cache.root, 0, dry_run=True)
        assert len(evicted) == 4
        assert {e.key for e in iter_entries(cache.root)} == before

    def test_load_touches_mtime_for_recency(self, cache):
        import os

        from repro.runner.cache import gc_lru

        a, b = self._fill(cache, 2)
        os.utime(cache.path_for(a, "base"), (1000, 1000))
        os.utime(cache.path_for(b, "base"), (2000, 2000))
        assert cache.load(a, "base") is not None  # refreshes a's mtime
        evicted, _ = gc_lru(cache.root, 0)
        # b is now the least recently used despite the later store
        assert [e.key for e in evicted][0] == b


class TestCacheCli:
    """``python -m repro.runner cache stats|gc``."""

    def _seed(self, root, n=3):
        cache = ArtifactCache(root)
        for i in range(n):
            cache.store(cache_key(SOURCE, "aggressive", {"i": i}),
                        "base", Payload(i))
        return cache

    def test_stats_reports_usage(self, tmp_path, capsys):
        import json

        from repro.runner.cli import main

        self._seed(tmp_path / "c", 3)
        out = tmp_path / "usage.json"
        assert main(["cache", "--cache-dir", str(tmp_path / "c"),
                     "stats", "--json", str(out)]) == 0
        text = capsys.readouterr().out
        assert "artifact cache usage" in text
        payload = json.loads(out.read_text())
        assert payload["kinds"]["base"]["entries"] == 3
        assert payload["entries"] == 3
        assert payload["bytes"] > 0

    def test_gc_enforces_bound(self, tmp_path, capsys):
        from repro.runner.cache import iter_entries
        from repro.runner.cli import main

        self._seed(tmp_path / "c", 4)
        assert main(["cache", "--cache-dir", str(tmp_path / "c"),
                     "gc", "--max-bytes", "1"]) == 0
        assert "evicted 4" in capsys.readouterr().out
        assert iter_entries(tmp_path / "c") == []

    def test_gc_dry_run_and_size_suffix(self, tmp_path, capsys):
        from repro.runner.cache import iter_entries
        from repro.runner.cli import main

        self._seed(tmp_path / "c", 2)
        assert main(["cache", "--cache-dir", str(tmp_path / "c"),
                     "gc", "--max-bytes", "1k", "--dry-run"]) == 0
        assert "would evict" in capsys.readouterr().out
        assert len(iter_entries(tmp_path / "c")) == 2

    def test_size_suffixes(self):
        from repro.runner.cli import _size

        assert _size("1024") == 1024
        assert _size("4k") == 4096
        assert _size("2m") == 2 * 1024 * 1024
        assert _size("1.5g") == int(1.5 * (1 << 30))
