"""End-to-end pipeline integration tests (compile -> simulate)."""


from repro.pipeline import (
    compile_aggressive,
    compile_traditional,
    run_compiled,
    with_buffer,
)
from repro.sim.interp import run_module

from tests.helpers import build_counting_loop, build_nested_loop
from tests.looptrans.test_collapse import build_add_block
from tests.predication.test_ifconvert import (
    build_loop_with_diamond,
    expected_diamond,
)


class TestTraditionalPipeline:
    def test_counting_loop(self):
        module = build_counting_loop(50)
        compiled = compile_traditional(module)
        outcome = run_compiled(compiled)
        assert outcome.result.value == sum(range(50))
        assert outcome.counters.cycles > 0

    def test_buffer_captures_simple_loop(self):
        module = build_counting_loop(500)
        compiled = compile_traditional(module, buffer_capacity=64)
        outcome = run_compiled(compiled)
        assert outcome.buffer_issue_fraction > 0.9

    def test_diamond_loop_not_bufferable(self):
        # without if-conversion the loop body spans several blocks: no
        # simple loop, (almost) nothing from the buffer
        module = build_loop_with_diamond(200)
        compiled = compile_traditional(module)
        outcome = run_compiled(compiled)
        assert outcome.result.value == expected_diamond(200)
        assert outcome.buffer_issue_fraction == 0.0


class TestAggressivePipeline:
    def test_diamond_loop_buffered(self):
        module = build_loop_with_diamond(200)
        compiled = compile_aggressive(module)
        outcome = run_compiled(compiled)
        assert outcome.result.value == expected_diamond(200)
        assert outcome.buffer_issue_fraction > 0.7

    def test_nested_loop_collapsed_and_buffered(self):
        module = build_nested_loop(outer=16, inner=16)
        expected = run_module(build_nested_loop(outer=16, inner=16)).value
        compiled = compile_aggressive(module)
        outcome = run_compiled(compiled)
        assert outcome.result.value == expected
        assert outcome.buffer_issue_fraction > 0.5

    def test_add_block_figure2(self):
        module = build_add_block()
        baseline = run_module(build_add_block())
        compiled = compile_aggressive(module)
        outcome = run_compiled(compiled)
        base_addr = baseline.loader.global_addr("rfp")
        out_addr = outcome.result.loader.global_addr("rfp")
        assert (outcome.result.memory.read_block(out_addr, 128)
                == baseline.memory.read_block(base_addr, 128))

    def test_speedup_over_traditional(self):
        module = build_loop_with_diamond(500)
        trad = run_compiled(compile_traditional(module))
        aggr = run_compiled(compile_aggressive(module))
        assert aggr.result.value == trad.result.value
        assert aggr.counters.cycles < trad.counters.cycles

    def test_buffer_issue_improves(self):
        module = build_loop_with_diamond(500)
        trad = run_compiled(compile_traditional(module))
        aggr = run_compiled(compile_aggressive(module))
        assert aggr.buffer_issue_fraction > trad.buffer_issue_fraction


class TestBufferSizeSweep:
    def test_with_buffer_retargets(self):
        module = build_loop_with_diamond(300)
        base = compile_aggressive(module, buffer_capacity=None)
        fractions = {}
        for size in (16, 64, 256):
            compiled = with_buffer(base, size)
            outcome = run_compiled(compiled)
            assert outcome.result.value == expected_diamond(300)
            fractions[size] = outcome.buffer_issue_fraction
        assert fractions[256] >= fractions[16]

    def test_with_buffer_reuses_modulo_schedules(self):
        # the sweep must not re-run modulo scheduling per capacity: the
        # schedules are capacity-independent and are shared by identity
        module = build_loop_with_diamond(300)
        base = compile_aggressive(module, buffer_capacity=None)
        assert base.modulo  # the diamond loop modulo-schedules
        retargeted = with_buffer(base, 64)
        assert set(retargeted.modulo) == set(base.modulo)
        for key, sched in retargeted.modulo.items():
            assert sched is base.modulo[key]
        # and the base object is untouched by the retarget
        assert base.buffer_capacity is None
        assert base.assignment is None

    def test_no_buffer_all_memory(self):
        module = build_counting_loop(100)
        compiled = compile_traditional(module, buffer_capacity=None)
        outcome = run_compiled(compiled)
        assert outcome.counters.ops_from_buffer == 0
        assert outcome.counters.ops_from_memory > 0


class TestEnergyModel:
    def test_buffered_run_cheaper(self):
        from repro.sim.power import unbuffered_baseline

        module = build_counting_loop(1000)
        compiled = compile_traditional(module, buffer_capacity=256)
        outcome = run_compiled(compiled)
        baseline = unbuffered_baseline(outcome.counters.ops_issued)
        assert outcome.energy.normalized_to(baseline) < 0.5
