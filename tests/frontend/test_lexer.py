"""Unit tests for the MKC lexer."""

import pytest

from repro.frontend.lexer import LexError, tokenize


def kinds(src):
    return [(t.kind, t.text) for t in tokenize(src) if t.kind != "eof"]


class TestTokens:
    def test_keywords_and_identifiers(self):
        assert kinds("int x while whilst") == [
            ("keyword", "int"), ("ident", "x"),
            ("keyword", "while"), ("ident", "whilst"),
        ]

    def test_decimal_and_hex_literals(self):
        assert kinds("42 0x1F 0") == [
            ("int_lit", "42"), ("int_lit", "0x1F"), ("int_lit", "0"),
        ]

    def test_char_literal(self):
        assert kinds("'A'") == [("int_lit", "65")]

    def test_multichar_operators_longest_match(self):
        assert kinds("a <<= b >> c <= d") == [
            ("ident", "a"), ("op", "<<="), ("ident", "b"), ("op", ">>"),
            ("ident", "c"), ("op", "<="), ("ident", "d"),
        ]

    def test_increment_vs_plus(self):
        assert kinds("i++ + ++j") == [
            ("ident", "i"), ("op", "++"), ("op", "+"),
            ("op", "++"), ("ident", "j"),
        ]

    def test_line_comments(self):
        assert kinds("a // comment\n b") == [("ident", "a"), ("ident", "b")]

    def test_block_comments(self):
        assert kinds("a /* x\ny */ b") == [("ident", "a"), ("ident", "b")]

    def test_line_numbers(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[1].column == 3

    def test_unterminated_comment_rejected(self):
        with pytest.raises(LexError, match="unterminated"):
            tokenize("/* oops")

    def test_bad_character_rejected(self):
        with pytest.raises(LexError):
            tokenize("a @ b")

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "eof"
