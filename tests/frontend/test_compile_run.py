"""Frontend semantics: MKC programs compiled and run against C oracles."""

import pytest

from repro.frontend import ParseError, LowerError, compile_source
from repro.sim.interp import run_module


def run_src(src, args=None):
    return run_module(compile_source(src), args=list(args or [])).value


class TestExpressions:
    def test_arithmetic_precedence(self):
        assert run_src("int main() { return 2 + 3 * 4 - 10 / 2; }") == 9

    def test_parentheses(self):
        assert run_src("int main() { return (2 + 3) * 4; }") == 20

    def test_unary_ops(self):
        assert run_src("int main() { return -5 + ~0 + !0 + !7; }") == -5

    def test_shifts_arithmetic(self):
        assert run_src("int main() { return (-16 >> 2) + (3 << 4); }") == 44

    def test_bitwise(self):
        assert run_src("int main() { return (12 & 10) | (1 ^ 3); }") == 10

    def test_comparisons_produce_01(self):
        assert run_src("int main() { return (3 < 4) + (4 <= 4) + (5 > 9); }") == 2

    def test_division_truncates_toward_zero(self):
        assert run_src("int main() { return -7 / 2; }") == -3
        assert run_src("int main() { return -7 % 2; }") == -1

    def test_ternary(self):
        assert run_src("int main(int x) { return x > 0 ? 10 : 20; }", [5]) == 10
        assert run_src("int main(int x) { return x > 0 ? 10 : 20; }", [-5]) == 20

    def test_logical_and_or(self):
        src = "int main(int x) { return (x > 0 && x < 10) + (x < 0 || x > 100); }"
        assert run_src(src, [5]) == 1
        assert run_src(src, [-1]) == 1
        assert run_src(src, [50]) == 0

    def test_short_circuit_skips_side_effect(self):
        # g() must not run when the left side already decides
        src = """
        int calls[1];
        int g() { calls[0] += 1; return 1; }
        int main() {
            int a = 0 && g();
            int b = 1 || g();
            return calls[0] * 10 + a + b;
        }
        """
        assert run_src(src) == 1

    def test_ternary_impure_arm_not_evaluated(self):
        src = """
        int calls[1];
        int g() { calls[0] += 1; return 7; }
        int main() { int v = 1 ? 3 : g(); return calls[0] * 10 + v; }
        """
        assert run_src(src) == 3


class TestStatements:
    def test_while_loop(self):
        assert run_src("""
        int main() { int s = 0; int i = 0;
            while (i < 10) { s += i; i++; } return s; }""") == 45

    def test_for_loop(self):
        assert run_src("""
        int main() { int s = 0;
            for (int i = 0; i < 10; i++) s += i; return s; }""") == 45

    def test_do_while(self):
        assert run_src("""
        int main() { int i = 0; do { i++; } while (i < 5); return i; }""") == 5

    def test_do_while_runs_once(self):
        assert run_src("""
        int main() { int i = 100; do { i++; } while (i < 5); return i; }""") == 101

    def test_break(self):
        assert run_src("""
        int main() { int s = 0;
            for (int i = 0; i < 100; i++) { if (i == 5) break; s += i; }
            return s; }""") == 10

    def test_continue(self):
        assert run_src("""
        int main() { int s = 0;
            for (int i = 0; i < 10; i++) { if (i % 2) continue; s += i; }
            return s; }""") == 20

    def test_nested_loops(self):
        assert run_src("""
        int main() { int s = 0;
            for (int i = 0; i < 4; i++)
                for (int j = 0; j < 4; j++) s += i * j;
            return s; }""") == 36

    def test_if_else_chain(self):
        src = """
        int main(int x) {
            if (x < 0) return -1;
            else if (x == 0) return 0;
            else return 1;
        }"""
        assert run_src(src, [-5]) == -1
        assert run_src(src, [0]) == 0
        assert run_src(src, [9]) == 1

    def test_compound_assignment(self):
        assert run_src("""
        int main() { int x = 10; x += 5; x *= 2; x -= 3; x /= 2; x <<= 1;
            return x; }""") == 26

    def test_scoped_shadowing(self):
        assert run_src("""
        int main() { int x = 1;
            if (1) { int x = 50; x += 1; }
            return x; }""") == 1


class TestArraysAndPointers:
    def test_global_array_init(self):
        assert run_src("""
        int t[4] = {5, 6, 7, 8};
        int main() { return t[0] + t[3]; }""") == 13

    def test_global_array_zero_fill(self):
        assert run_src("""
        int t[8] = {1};
        int main() { return t[0] + t[7]; }""") == 1

    def test_local_array(self):
        assert run_src("""
        int main() { int a[4];
            for (int i = 0; i < 4; i++) a[i] = i * i;
            return a[3]; }""") == 9

    def test_local_array_initializer(self):
        assert run_src("""
        int main() { int a[3] = {4, 5, 6}; return a[1]; }""") == 5

    def test_array_element_incdec(self):
        assert run_src("""
        int a[2] = {10, 20};
        int main() { a[0]++; --a[1]; return a[0] * 100 + a[1]; }""") == 1119

    def test_pointer_param(self):
        assert run_src("""
        int buf[4] = {1, 2, 3, 4};
        int sum(int *p, int n) {
            int s = 0;
            for (int i = 0; i < n; i++) s += p[i];
            return s;
        }
        int main() { return sum(buf, 4); }""") == 10

    def test_postfix_increment_value(self):
        assert run_src("""
        int main() { int i = 5; int j = i++; return j * 10 + i; }""") == 56

    def test_prefix_increment_value(self):
        assert run_src("""
        int main() { int i = 5; int j = ++i; return j * 10 + i; }""") == 66


class TestFunctionsAndIntrinsics:
    def test_recursion(self):
        assert run_src("""
        int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
        int main() { return fib(10); }""") == 55

    def test_void_function(self):
        assert run_src("""
        int state[1];
        void bump(int v) { state[0] += v; }
        int main() { bump(3); bump(4); return state[0]; }""") == 7

    def test_intrinsics(self):
        assert run_src(
            "int main() { return __sat_add(30000, 10000); }") == 32767
        assert run_src(
            "int main() { return __clip(300, 0, 255); }") == 255
        assert run_src("int main() { return __abs(-9); }") == 9
        assert run_src("int main() { return __min(3, -2) + __max(3, -2); }") == 1

    def test_unknown_function_rejected(self):
        with pytest.raises(LowerError, match="unknown function"):
            compile_source("int main() { return missing(); }")

    def test_undefined_variable_rejected(self):
        with pytest.raises(LowerError, match="undefined"):
            compile_source("int main() { return ghost; }")

    def test_duplicate_variable_rejected(self):
        with pytest.raises(LowerError, match="duplicate"):
            compile_source("int main() { int x = 1; int x = 2; return x; }")

    def test_parse_error_reported(self):
        with pytest.raises(ParseError):
            compile_source("int main() { return 1 +; }")


class TestLoopShape:
    def test_for_loop_is_counted(self):
        """Lowered for-loops match the canonical trip-count pattern."""
        from repro.analysis.loops import analyze_trip_count, find_loops
        from repro.opt.simplify_cfg import simplify_cfg

        module = compile_source("""
        int main() { int s = 0;
            for (int i = 0; i < 37; i++) s += i; return s; }""")
        func = module.function("main")
        simplify_cfg(func)
        loops = find_loops(func)
        assert len(loops) == 1
        trip = analyze_trip_count(func, loops[0])
        assert trip is not None and trip.count == 37
