"""Long differential sweeps — the nightly (slow-marked) fuzz smoke.

The fast suite replays the corpus and spot-checks a handful of seeds;
this module is the in-process cousin of the CI job's
``python -m repro.fuzz run --seeds 300``.
"""

import pytest

from repro.fuzz.gen import generate
from repro.fuzz.oracle import check_many, default_configs


@pytest.mark.slow
def test_hundred_seed_sweep_is_divergence_free():
    programs = [generate(seed) for seed in range(100)]
    reports = check_many(programs, default_configs())
    bad = [(r.seed, r.divergences[0].describe())
           for r in reports if not r.ok]
    assert not bad, f"divergences: {bad}"


@pytest.mark.slow
@pytest.mark.parametrize("fault", ["cloop-reload-off-by-one",
                                   "dce-drop-store",
                                   "ifconvert-guard-drop"])
def test_every_fault_is_caught_within_forty_seeds(fault):
    programs = [generate(seed) for seed in range(40)]
    reports = check_many(programs, default_configs(), fault=fault)
    assert any(not r.ok for r in reports), \
        f"fault {fault} survived 40 seeds undetected"
