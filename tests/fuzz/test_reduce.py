"""Tests for the delta-debugging minimizer — including the end-to-end
acceptance property: an injected compiler bug is caught by the oracle and
minimized to a handful of source lines."""

import pytest

from repro.fuzz.gen import Assign, Decl, For, FuzzProgram, If, generate
from repro.fuzz.oracle import check_program
from repro.fuzz.reduce import divergence_predicate, minimize


def _marker_predicate(marker):
    """Interesting = the rendered source still contains ``marker``."""
    return lambda program: marker in program.source


class TestStructuralReduction:
    def test_irrelevant_statements_deleted(self):
        program = FuzzProgram(body=[
            Decl("v0", "1"),
            Decl("v1", "2"),
            Assign("v0", "+=", "41"),
            Assign("v1", "*=", "3"),
            If("v0 > 0", [Assign("v0", "-=", "1")]),
        ], ret="v0")
        small = minimize(program, _marker_predicate("v0 += 41"))
        assert "v0 += 41" in small.source
        assert small.stmt_count() < program.stmt_count()
        assert "v1" not in small.source

    def test_loop_unrolled_away_when_possible(self):
        program = FuzzProgram(body=[
            Decl("v0", "0"),
            For("i0", 5, [Assign("v0", "+=", "7")]),
        ], ret="v0")
        small = minimize(program, _marker_predicate("v0 += 7"))
        assert "v0 += 7" in small.source
        assert "for" not in small.source  # the unloop edit fired

    def test_if_spliced_into_kept_arm(self):
        program = FuzzProgram(body=[
            Decl("v0", "0"),
            If("v0 < 5",
               [Assign("v0", "+=", "11")],
               [Assign("v0", "-=", "13")]),
        ], ret="v0")
        small = minimize(program, _marker_predicate("v0 += 11"))
        assert "v0 += 11" in small.source
        assert "if" not in small.source
        assert "v0 -= 13" not in small.source

    def test_input_must_be_a_tree(self):
        with pytest.raises(TypeError, match="FuzzProgram"):
            minimize("int main() { return 0; }", lambda p: True)

    def test_original_program_untouched(self):
        program = generate(5)
        before = program.source
        minimize(program, _marker_predicate("return"))
        assert program.source == before

    def test_budget_bounds_predicate_calls(self):
        calls = []

        def predicate(candidate):
            calls.append(1)
            return False

        minimize(generate(2), predicate, budget=10)
        assert len(calls) <= 10


class TestAcceptance:
    """ISSUE acceptance property: a deliberately injected miscompilation
    is caught by the differential oracle and the minimizer shrinks the
    divergent program to a reproducer of at most 15 source lines."""

    @pytest.mark.parametrize("fault,seed", [
        ("cloop-reload-off-by-one", 4),
        ("dce-drop-store", 1),
        ("ifconvert-guard-drop", 19),
    ])
    def test_injected_bug_caught_and_minimized(self, fault, seed):
        program = generate(seed)
        report = check_program(program, fault=fault)
        assert not report.ok, f"{fault} not caught on seed {seed}"
        failing = [v.config for v in report.divergences]
        predicate = divergence_predicate(failing, fault=fault)
        small = minimize(program, predicate)
        assert predicate(small), "reduction lost the divergence"
        assert small.line_count <= 15, small.source
        assert small.line_count < program.line_count
