"""Tests for the ``python -m repro.fuzz`` command-line driver."""

import json

import pytest

from repro.fuzz.cli import main
from repro.fuzz.gen import generate


class TestGen:
    def test_prints_the_seeded_program(self, capsys):
        assert main(["gen", "--seed", "7"]) == 0
        assert capsys.readouterr().out == generate(7).source


class TestRun:
    def test_clean_sweep_exits_zero(self, tmp_path, capsys):
        code = main(["run", "--seeds", "3", "--workers", "0",
                     "--corpus", str(tmp_path / "corpus"),
                     "--capacities", "none,16", "--no-checked"])
        assert code == 0
        assert "0 divergence(s)" in capsys.readouterr().out
        assert not (tmp_path / "corpus").exists()

    def test_fault_run_saves_minimized_reproducers(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        artifacts = tmp_path / "artifacts"
        code = main(["run", "--seeds", "1", "--start", "4", "--workers", "0",
                     "--inject-fault", "cloop-reload-off-by-one",
                     "--corpus", str(corpus),
                     "--artifacts", str(artifacts)])
        assert code == 1
        out = capsys.readouterr().out
        assert "DIVERGENCE seed=4" in out
        saved = list(corpus.glob("*.json"))
        assert len(saved) == 1
        entry = json.loads(saved[0].read_text())
        assert entry["fault"] == "cloop-reload-off-by-one"
        assert len(entry["source"].splitlines()) <= 15  # minimized
        summary = json.loads((artifacts / "summary.json").read_text())
        assert summary["divergences"] == 1
        assert (artifacts / f"{entry['id']}.mkc").exists()

    def test_json_summary(self, tmp_path, capsys):
        out_file = tmp_path / "result.json"
        main(["run", "--seeds", "2", "--workers", "0", "--quiet",
              "--corpus", str(tmp_path / "corpus"),
              "--capacities", "none", "--no-checked",
              "--json", str(out_file)])
        payload = json.loads(out_file.read_text())
        assert payload["seeds"] == 2
        assert payload["divergences"] == 0


class TestReplay:
    def test_empty_corpus_ok(self, tmp_path, capsys):
        code = main(["replay", "--corpus", str(tmp_path / "nothing")])
        assert code == 0
        assert "no entries" in capsys.readouterr().out

    def test_roundtrip_through_run(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        main(["run", "--seeds", "1", "--start", "4", "--workers", "0",
              "--inject-fault", "cloop-reload-off-by-one",
              "--corpus", str(corpus), "--no-minimize"])
        capsys.readouterr()
        # without the fault the saved reproducer must replay green
        code = main(["replay", "--corpus", str(corpus), "--workers", "0"])
        assert code == 0
        assert "0 regression(s)" in capsys.readouterr().out


class TestMinimize:
    def test_requires_seed(self, capsys):
        assert main(["minimize"]) == 2

    def test_reports_clean_seed(self, capsys):
        code = main(["minimize", "--seed", "3",
                     "--capacities", "none", "--no-checked"])
        assert code == 0
        assert "no divergence" in capsys.readouterr().out

    def test_prints_minimized_reproducer(self, capsys):
        code = main(["minimize", "--seed", "4",
                     "--inject-fault", "cloop-reload-off-by-one"])
        assert code == 1
        out = capsys.readouterr().out
        assert "# seed 4:" in out
        assert "int main()" in out


class TestParsing:
    def test_unknown_fault_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "--inject-fault", "bogus"])

    def test_capacity_list_parses_none(self, capsys, tmp_path):
        code = main(["run", "--seeds", "1", "--workers", "0", "--quiet",
                     "--corpus", str(tmp_path / "corpus"),
                     "--capacities", "None,32", "--no-checked"])
        assert code == 0
