"""Tests for the persistent reproducer corpus."""

import json

import pytest

from repro.fuzz.corpus import Corpus, CorpusEntry, default_corpus, entry_id
from repro.fuzz.gen import generate
from repro.fuzz.oracle import Config, check_program, default_configs

CLEAN = "int main() { return 5; }\n"


def _entry(source=CLEAN, **kwargs):
    defaults = dict(kind="value-mismatch",
                    configs=[Config("traditional", 16, True).as_dict()],
                    seed=9, fault=None, detail="d", note="n")
    defaults.update(kwargs)
    return CorpusEntry(source=source, **defaults)


class TestEntry:
    def test_id_is_content_addressed(self):
        assert _entry().id == entry_id(CLEAN)
        assert _entry().id != _entry(source=CLEAN + "\n").id
        assert len(_entry().id) == 12

    def test_dict_roundtrip(self):
        entry = _entry()
        again = CorpusEntry.from_dict(entry.as_dict())
        assert again == entry

    def test_config_objects(self):
        assert _entry().config_objects() == [Config("traditional", 16, True)]

    def test_from_report(self):
        report = check_program(generate(4), default_configs(),
                               fault="cloop-reload-off-by-one")
        assert not report.ok
        entry = CorpusEntry.from_report(report,
                                        fault="cloop-reload-off-by-one")
        assert entry.source == report.source
        assert entry.seed == 4
        assert entry.fault == "cloop-reload-off-by-one"
        assert entry.configs  # the failing configs were recorded

    def test_from_report_requires_divergence(self):
        report = check_program(CLEAN, default_configs(checked=False))
        with pytest.raises(ValueError, match="no divergences"):
            CorpusEntry.from_report(report)


class TestCorpusStore:
    def test_add_load_roundtrip(self, tmp_path):
        corpus = Corpus(tmp_path / "corpus")
        path = corpus.add(_entry())
        assert path.name == f"{_entry().id}.json"
        assert len(corpus) == 1
        assert corpus.entries() == [_entry()]

    def test_add_is_idempotent(self, tmp_path):
        corpus = Corpus(tmp_path / "corpus")
        corpus.add(_entry())
        corpus.add(_entry())
        assert len(corpus) == 1

    def test_entries_sorted_and_json_readable(self, tmp_path):
        corpus = Corpus(tmp_path / "corpus")
        corpus.add(_entry())
        corpus.add(_entry(source="int main() { return 6; }\n"))
        names = [path.name for path in corpus.paths()]
        assert names == sorted(names)
        data = json.loads(corpus.paths()[0].read_text())
        assert set(data) >= {"id", "source", "kind", "configs"}

    def test_empty_corpus(self, tmp_path):
        corpus = Corpus(tmp_path / "missing")
        assert len(corpus) == 0
        assert corpus.entries() == []
        assert corpus.replay() == []

    def test_default_corpus_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FUZZ_CORPUS", str(tmp_path / "env"))
        assert default_corpus().root == tmp_path / "env"
        assert default_corpus(tmp_path / "arg").root == tmp_path / "arg"


class TestReplay:
    def test_clean_entries_replay_green(self, tmp_path):
        corpus = Corpus(tmp_path / "corpus")
        corpus.add(_entry())
        corpus.add(_entry(source=generate(3).source, seed=3))
        results = corpus.replay(workers=0)
        assert len(results) == 2
        assert all(report.ok for _, report in results)

    def test_faulty_entries_replay_without_fault(self, tmp_path):
        # recorded under an injected fault, replayed clean: must pass
        report = check_program(generate(4), fault="cloop-reload-off-by-one")
        corpus = Corpus(tmp_path / "corpus")
        corpus.add(CorpusEntry.from_report(report,
                                           fault="cloop-reload-off-by-one"))
        results = corpus.replay(workers=0)
        assert all(r.ok for _, r in results)

    def test_explicit_configs_override(self, tmp_path):
        corpus = Corpus(tmp_path / "corpus")
        corpus.add(_entry())
        grid = (Config("traditional", None, False),)
        results = corpus.replay(configs=grid, workers=0)
        ((_, report),) = results
        assert [v.config for v in report.verdicts] == list(grid)
