"""Tests for the seeded random MKC program generator."""

from repro.frontend import compile_source
from repro.fuzz.gen import (
    ARRAY_SIZE,
    Assign,
    Break,
    For,
    If,
    Store,
    generate,
    generate_source,
    render,
)
from repro.fuzz.oracle import reference_outcome

SWEEP = range(60)


def _walk(body):
    for stmt in body:
        yield stmt
        if isinstance(stmt, If):
            yield from _walk(stmt.then)
            yield from _walk(stmt.orelse)
        elif isinstance(stmt, For):
            yield from _walk(stmt.body)


def _all_stmts(program):
    yield from _walk(program.body)
    if program.helper is not None:
        yield from _walk(program.helper.body)


class TestDeterminism:
    def test_same_seed_same_source(self):
        assert generate(7).source == generate(7).source
        assert generate_source(7) == generate(7).source

    def test_distinct_seeds_distinct_sources(self):
        sources = {generate(seed).source for seed in SWEEP}
        assert len(sources) == len(SWEEP)

    def test_seed_recorded(self):
        assert generate(42).seed == 42


class TestTotality:
    """Every generated program must interpret to a value: constant loop
    bounds, non-zero constant divisors and masked indices make the
    reference execution total by construction."""

    def test_all_seeds_interpret_to_value(self):
        for seed in SWEEP:
            outcome = reference_outcome(generate(seed).source)
            assert outcome[0] == "value", (seed, outcome)

    def test_source_parses(self):
        for seed in SWEEP:
            compile_source(generate(seed).source)  # must not raise


class TestGrammarCoverage:
    """The sweep must actually exercise the constructs the transforms
    under test care about (loops, nests, diamonds, side exits, stores,
    helper calls)."""

    def _programs(self):
        return [generate(seed) for seed in SWEEP]

    def test_loops_and_nests_present(self):
        programs = self._programs()
        assert any(isinstance(s, For) for p in programs
                   for s in _all_stmts(p))
        # a 2-deep counted nest somewhere in the sweep
        assert any(
            isinstance(inner, For)
            for p in programs for s in _all_stmts(p) if isinstance(s, For)
            for inner in _walk(s.body)
        )

    def test_diamonds_and_side_exits_present(self):
        programs = self._programs()
        assert any(isinstance(s, If) and s.orelse for p in programs
                   for s in _all_stmts(p))
        assert any(isinstance(s, Break) for p in programs
                   for s in _all_stmts(p))

    def test_stores_and_helpers_present(self):
        programs = self._programs()
        assert any(isinstance(s, Store) for p in programs
                   for s in _all_stmts(p))
        assert any(p.helper is not None for p in programs)
        helper_names = {p.helper.name for p in programs
                        if p.helper is not None}
        assert any(
            isinstance(s, Assign) and any(name in s.expr
                                          for name in helper_names)
            for p in programs for s in _all_stmts(p)
        )

    def test_array_indices_are_masked(self):
        mask = f"& {ARRAY_SIZE - 1}"
        for p in self._programs():
            for s in _all_stmts(p):
                if isinstance(s, Store):
                    assert mask in s.index


class TestCloneAndRender:
    def test_clone_is_deep(self):
        program = generate(3)
        twin = program.clone()
        assert twin.source == program.source
        for stmt in twin.body:
            if isinstance(stmt, (If, For)):
                target = stmt.then if isinstance(stmt, If) else stmt.body
                target.clear()
                break
        else:  # no compound statement at top level: mutate a leaf
            twin.body.pop()
        assert twin.source != program.source
        assert program.source == generate(3).source

    def test_render_is_stable(self):
        program = generate(11)
        assert render(program) == render(program.clone())

    def test_stmt_count_counts_nested(self):
        program = generate(5)
        assert program.stmt_count() == sum(1 for _ in _all_stmts(program))
