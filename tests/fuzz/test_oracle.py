"""Tests for the differential interp-vs-VLIW oracle."""

import pytest

from repro.fuzz.gen import generate
from repro.fuzz.oracle import (
    Config,
    check_many,
    check_program,
    default_configs,
    oracle_configs,
    reference_outcome,
    retarget_configs,
)
from repro.runner.cache import ArtifactCache

CLEAN_SEED = 3
#: these seeds are known to diverge under the named injected fault (see
#: tests/fuzz/test_reduce.py, which minimizes them)
FAULTY = {"cloop-reload-off-by-one": 4, "dce-drop-store": 1,
          "ifconvert-guard-drop": 19}

SMALL_GRID = default_configs(capacities=(None, 16), checked=False)


class TestConfig:
    def test_label(self):
        assert Config("aggressive", 64, True).label == "aggressive@64+checked"
        assert Config("traditional").label == "traditional@none"

    def test_dict_roundtrip(self):
        config = Config("aggressive", 16, True)
        assert Config.from_dict(config.as_dict()) == config

    def test_default_grid_shape(self):
        grid = default_configs()
        assert len(grid) == 2 * 3
        assert all(c.checked for c in grid)
        assert len(set(grid)) == len(grid)

    def test_sched_oracle_label_and_roundtrip(self):
        config = Config("traditional", 64, sched_oracle=True)
        assert config.label == "traditional@64+oracle"
        assert Config.from_dict(config.as_dict()) == config

    def test_sched_oracle_off_keeps_legacy_dict_shape(self):
        # pre-flag cache keys and corpus JSON must not change
        assert "sched_oracle" not in Config("traditional", 64).as_dict()

    def test_oracle_grid_shape(self):
        grid = oracle_configs()
        assert grid and all(c.sched_oracle for c in grid)
        assert len(set(grid)) == len(grid)

    def test_retarget_label_and_roundtrip(self):
        config = Config("aggressive", 64, retarget="overlay")
        assert config.label == "aggressive@64+overlay"
        assert Config.from_dict(config.as_dict()) == config

    def test_retarget_direct_keeps_legacy_dict_shape(self):
        # pre-flag cache keys and corpus JSON must not change
        assert "retarget" not in Config("traditional", 64).as_dict()

    def test_retarget_grid_shape(self):
        grid = retarget_configs()
        # both with_buffer implementations per pipeline x capacity point
        assert len(grid) == 2 * 2 * 2
        assert {c.retarget for c in grid} == {"overlay", "legacy"}
        assert all(c.capacity for c in grid)
        assert len(set(grid)) == len(grid)


class TestSchedOracleConfig:
    def test_oracle_swap_agrees_with_reference(self):
        program = generate(CLEAN_SEED)
        configs = (Config("traditional", 16, sched_oracle=True),
                   Config("aggressive", 16, sched_oracle=True))
        report = check_program(program, configs)
        assert report.ok, [v.describe() for v in report.divergences]


class TestRetargetConfig:
    def test_retarget_agrees_with_reference(self):
        program = generate(CLEAN_SEED)
        report = check_program(program, retarget_configs(capacities=(16,)))
        assert report.ok, [v.describe() for v in report.divergences]


class TestReferenceOutcome:
    def test_value(self):
        assert reference_outcome("int main() { return 42; }") == ("value", 42)

    def test_frontend_error(self):
        status, detail = reference_outcome("int main() { return 1 + ; }")
        assert status == "frontend-error"
        assert detail

    def test_trap(self):
        status, detail = reference_outcome(
            "int main() { int a = 0; return 1 / a; }")
        assert status == "trap"

    def test_step_limit_is_a_trap(self):
        src = ("int main() {\n    int s = 0;\n"
               "    for (int i = 0; i < 100000; i++) { s += i; }\n"
               "    return s;\n}")
        assert reference_outcome(src, max_steps=100)[0] == "trap"


class TestCheckProgram:
    def test_clean_program_has_no_divergences(self):
        report = check_program(generate(CLEAN_SEED), SMALL_GRID)
        assert report.ok
        assert len(report.verdicts) == len(SMALL_GRID)
        assert report.seed == CLEAN_SEED

    def test_accepts_raw_source(self):
        report = check_program("int main() { return 7; }", SMALL_GRID)
        assert report.ok
        assert report.seed is None

    def test_matching_traps_are_not_divergences(self):
        # both sides trap on division by zero: parity, not divergence
        report = check_program("int main() { int a = 0; return 9 / a; }",
                               SMALL_GRID)
        assert report.reference[0] == "trap"
        assert report.ok

    @pytest.mark.parametrize("fault,seed", sorted(FAULTY.items()))
    def test_injected_fault_is_caught(self, fault, seed):
        report = check_program(generate(seed), fault=fault)
        assert not report.ok
        kinds = {v.kind for v in report.divergences}
        assert kinds <= {"value-mismatch", "trap-mismatch",
                         "checked-failure", "compile-crash", "sim-crash"}

    def test_fault_does_not_leak(self):
        check_program(generate(FAULTY["cloop-reload-off-by-one"]),
                      SMALL_GRID, fault="cloop-reload-off-by-one")
        # after the faulty check the same program must be clean again
        assert check_program(generate(FAULTY["cloop-reload-off-by-one"]),
                             SMALL_GRID).ok

    def test_unknown_fault_rejected(self):
        with pytest.raises(ValueError, match="unknown fault"):
            check_program(generate(0), SMALL_GRID, fault="no-such-fault")


class TestCheckMany:
    def test_serial_matches_input_order(self):
        programs = [generate(seed) for seed in range(4)]
        reports = check_many(programs, SMALL_GRID, workers=0)
        assert [r.seed for r in reports] == [0, 1, 2, 3]
        assert all(r.ok for r in reports)

    def test_pool_matches_serial(self):
        programs = [generate(seed) for seed in range(4)]
        serial = check_many(programs, SMALL_GRID, workers=0)
        pooled = check_many(programs, SMALL_GRID, workers=2)
        assert [(r.seed, r.ok, r.reference) for r in serial] == \
            [(r.seed, r.ok, r.reference) for r in pooled]

    def test_cache_round_trip(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        programs = [generate(seed) for seed in range(3)]
        first = check_many(programs, SMALL_GRID, workers=0, cache=cache)
        stored = cache.stats.stores
        assert stored == len(programs)
        second = check_many(programs, SMALL_GRID, workers=0, cache=cache)
        assert cache.stats.hits >= len(programs)
        assert [r.reference for r in first] == [r.reference for r in second]

    def test_cache_key_isolates_fault(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        program = generate(FAULTY["dce-drop-store"])
        clean = check_many([program], workers=0, cache=cache)[0]
        faulty = check_many([program], workers=0, cache=cache,
                            fault="dce-drop-store")[0]
        assert clean.ok and not faulty.ok

    def test_progress_callback(self):
        seen = []
        check_many([generate(0), generate(1)], SMALL_GRID, workers=0,
                   progress=lambda index, report: seen.append(index))
        assert seen == [0, 1]
