"""Replay the checked-in regression corpus through the differential
oracle: every program in ``tests/fuzz_corpus`` once diverged and must
never diverge again."""

from pathlib import Path

import pytest

from repro.fuzz.corpus import Corpus

CORPUS_DIR = Path(__file__).resolve().parent.parent / "fuzz_corpus"


def _corpus():
    return Corpus(CORPUS_DIR)


def test_corpus_is_checked_in():
    assert len(_corpus()) > 0, "the seed corpus went missing"


@pytest.mark.parametrize("path", sorted(CORPUS_DIR.glob("*.json")),
                         ids=lambda path: path.stem)
def test_entry_file_is_well_formed(path):
    entry = Corpus.load(path)
    assert path.stem == entry.id, "file name must match the content hash"
    assert entry.source.strip()
    assert entry.kind


def test_no_regressions():
    results = _corpus().replay(workers=0)
    bad = [(entry.id, report.divergences[0].describe())
           for entry, report in results if not report.ok]
    assert not bad, f"corpus regressions: {bad}"
