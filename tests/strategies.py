"""Shared hypothesis strategies for random MKC programs.

These composites are the single home for random-program generation used
by the property-based tests (``tests/test_property_semantics.py``) and
the fuzz-adjacent suites; the seeded grammar-directed generator in
:mod:`repro.fuzz.gen` is exposed here as a strategy too
(:func:`fuzz_program`), so hypothesis shrinking and the differential
fuzzer draw from the same program space.
"""

from hypothesis import strategies as st

from repro.fuzz.gen import generate_source
from repro.ir import Function, Imm, IRBuilder, ireg

BINOPS = ["+", "-", "*", "&", "|", "^"]


@st.composite
def straightline_program(draw):
    """A chain of assignments over a small set of variables."""
    n_vars = draw(st.integers(min_value=2, max_value=5))
    names = [f"v{i}" for i in range(n_vars)]
    lines = [f"int {name} = {draw(st.integers(-100, 100))};"
             for name in names]
    for _ in range(draw(st.integers(1, 12))):
        dst = draw(st.sampled_from(names))
        a = draw(st.sampled_from(names + [str(draw(st.integers(-50, 50)))]))
        b = draw(st.sampled_from(names + [str(draw(st.integers(-50, 50)))]))
        op = draw(st.sampled_from(BINOPS))
        lines.append(f"{dst} = {a} {op} {b};")
    result = " + ".join(names)
    body = "\n    ".join(lines)
    return f"int main() {{\n    {body}\n    return {result};\n}}"


@st.composite
def loop_with_diamond_program(draw):
    bound = draw(st.integers(1, 30))
    threshold = draw(st.integers(-20, 20))
    mul = draw(st.integers(-5, 5))
    add = draw(st.integers(-5, 5))
    return f"""
int main() {{
    int s = 0;
    for (int i = 0; i < {bound}; i++) {{
        int v = i * 7 % 13 - 6;
        if (v < {threshold}) s += v * {mul};
        else s += v + {add};
    }}
    return s;
}}"""


@st.composite
def nested_loop_program(draw):
    outer = draw(st.integers(1, 6))
    inner = draw(st.integers(1, 6))
    return f"""
int main() {{
    int acc = 0;
    for (int j = 0; j < {outer}; j++) {{
        for (int i = 0; i < {inner}; i++)
            acc += j * {inner} + i;
        acc += 1000;
    }}
    return acc;
}}"""


@st.composite
def fuzz_program(draw):
    """Source text from the seeded fuzzer grammar (:mod:`repro.fuzz.gen`).

    Hypothesis shrinks towards seed 0; statement-level minimization of a
    failing program is the fuzzer's job (``repro.fuzz.reduce``).
    """
    return generate_source(draw(st.integers(min_value=0,
                                            max_value=2**32 - 1)))


#: capacities worth sweeping in retarget properties: tiny (nothing
#: fits), the Figure 7 interior, and huge (everything fits)
SWEEP_CAPACITIES = (4, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096)


@st.composite
def capacity_sweeps(draw):
    """A random capacity subset in a random order (possibly repeating).

    Drives the overlay order-independence property: retargeting one
    shared base at these capacities, in this order, must produce
    artifacts that depend only on each capacity — never on sweep order
    or on which retargets happened before.
    """
    caps = draw(st.lists(st.sampled_from(SWEEP_CAPACITIES),
                         min_size=1, max_size=6))
    return tuple(caps)


PRED_DEF_TYPES = ["ut", "uf", "ot", "of", "at", "af", "ct", "cf"]
PRED_CMPS = ["lt", "le", "gt", "ge", "eq", "ne"]

#: parameter values enumerated by the predicate-web soundness oracle;
#: comparisons in generated functions use thresholds in {0, 1}, so this
#: range exercises both outcomes of every comparison
PRED_PARAM_VALUES = (-1, 0, 1, 2)


@st.composite
def predicated_dag_function(draw):
    """A small branchy IR function built from predicate defines.

    The CFG is a forward DAG (every branch targets a later block in
    layout order), so every execution terminates; all comparisons test
    an integer parameter against an immediate in {0, 1}, so enumerating
    :data:`PRED_PARAM_VALUES` per parameter covers every path.  Returns
    the :class:`~repro.ir.Function` — callers enumerate parameter
    assignments and interpret it themselves.
    """
    nparams = draw(st.integers(min_value=1, max_value=3))
    params = [ireg(i) for i in range(nparams)]
    func = Function("main", params)
    for _ in range(nparams):
        func.new_reg()
    pregs = [func.new_pred() for _ in range(draw(st.integers(2, 4)))]
    n_blocks = draw(st.integers(1, 4))
    labels = [f"b{i}" for i in range(n_blocks)]
    blocks = [func.add_block(label) for label in labels]
    b = IRBuilder(func)

    def operand():
        return draw(st.sampled_from(params))

    def threshold():
        return Imm(draw(st.integers(0, 1)))

    def guard():
        return draw(st.sampled_from(pregs + [None] * len(pregs)))

    for bi, block in enumerate(blocks):
        b.at(block)
        for _ in range(draw(st.integers(1, 4))):
            if draw(st.booleans()):
                b.pred_set(draw(st.sampled_from(pregs)),
                           draw(st.integers(0, 1)), guard=guard())
            else:
                dests = draw(st.lists(st.sampled_from(pregs), min_size=1,
                                      max_size=2, unique=True))
                ptypes = [draw(st.sampled_from(PRED_DEF_TYPES))
                          for _ in dests]
                b.pred_def(draw(st.sampled_from(PRED_CMPS)), operand(),
                           threshold(), dests, ptypes, guard=guard())
        if bi + 1 < n_blocks and draw(st.booleans()):
            target = draw(st.sampled_from(labels[bi + 1:]))
            b.br(draw(st.sampled_from(PRED_CMPS)), operand(), threshold(),
                 target)
    b.at(blocks[-1])
    b.ret(Imm(0))
    return func
