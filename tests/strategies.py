"""Shared hypothesis strategies for random MKC programs.

These composites are the single home for random-program generation used
by the property-based tests (``tests/test_property_semantics.py``) and
the fuzz-adjacent suites; the seeded grammar-directed generator in
:mod:`repro.fuzz.gen` is exposed here as a strategy too
(:func:`fuzz_program`), so hypothesis shrinking and the differential
fuzzer draw from the same program space.
"""

from hypothesis import strategies as st

from repro.fuzz.gen import generate_source

BINOPS = ["+", "-", "*", "&", "|", "^"]


@st.composite
def straightline_program(draw):
    """A chain of assignments over a small set of variables."""
    n_vars = draw(st.integers(min_value=2, max_value=5))
    names = [f"v{i}" for i in range(n_vars)]
    lines = [f"int {name} = {draw(st.integers(-100, 100))};"
             for name in names]
    for _ in range(draw(st.integers(1, 12))):
        dst = draw(st.sampled_from(names))
        a = draw(st.sampled_from(names + [str(draw(st.integers(-50, 50)))]))
        b = draw(st.sampled_from(names + [str(draw(st.integers(-50, 50)))]))
        op = draw(st.sampled_from(BINOPS))
        lines.append(f"{dst} = {a} {op} {b};")
    result = " + ".join(names)
    body = "\n    ".join(lines)
    return f"int main() {{\n    {body}\n    return {result};\n}}"


@st.composite
def loop_with_diamond_program(draw):
    bound = draw(st.integers(1, 30))
    threshold = draw(st.integers(-20, 20))
    mul = draw(st.integers(-5, 5))
    add = draw(st.integers(-5, 5))
    return f"""
int main() {{
    int s = 0;
    for (int i = 0; i < {bound}; i++) {{
        int v = i * 7 % 13 - 6;
        if (v < {threshold}) s += v * {mul};
        else s += v + {add};
    }}
    return s;
}}"""


@st.composite
def nested_loop_program(draw):
    outer = draw(st.integers(1, 6))
    inner = draw(st.integers(1, 6))
    return f"""
int main() {{
    int acc = 0;
    for (int j = 0; j < {outer}; j++) {{
        for (int i = 0; i < {inner}; i++)
            acc += j * {inner} + i;
        acc += 1000;
    }}
    return acc;
}}"""


@st.composite
def fuzz_program(draw):
    """Source text from the seeded fuzzer grammar (:mod:`repro.fuzz.gen`).

    Hypothesis shrinks towards seed 0; statement-level minimization of a
    failing program is the fuzzer's job (``repro.fuzz.reduce``).
    """
    return generate_source(draw(st.integers(min_value=0,
                                            max_value=2**32 - 1)))
