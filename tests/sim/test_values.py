"""Unit and property tests for 32-bit machine arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.values import (
    INT_MAX,
    INT_MIN,
    cdiv,
    compare,
    crem,
    saturate,
    to_unsigned,
    wrap32,
)

i32 = st.integers(min_value=INT_MIN, max_value=INT_MAX)
anyint = st.integers(min_value=-(2**40), max_value=2**40)


class TestWrap32:
    def test_identity_in_range(self):
        assert wrap32(123) == 123
        assert wrap32(INT_MIN) == INT_MIN
        assert wrap32(INT_MAX) == INT_MAX

    def test_overflow_wraps(self):
        assert wrap32(INT_MAX + 1) == INT_MIN
        assert wrap32(INT_MIN - 1) == INT_MAX
        assert wrap32(2**32) == 0

    @given(anyint)
    def test_always_in_range(self, x):
        assert INT_MIN <= wrap32(x) <= INT_MAX

    @given(anyint)
    def test_congruent_mod_2_32(self, x):
        assert (wrap32(x) - x) % (2**32) == 0

    @given(i32)
    def test_unsigned_roundtrip(self, x):
        assert wrap32(to_unsigned(x)) == x


class TestWrap32FastPath:
    """The in-range identity short-circuit must not change semantics."""

    @given(i32)
    def test_in_range_returns_same_object(self, x):
        assert wrap32(x) is x

    def test_bool_still_boxes_to_int(self):
        result = wrap32(True)
        assert result == 1 and type(result) is int

    def test_float_still_rejected(self):
        with pytest.raises(TypeError):
            wrap32(1.5)

    def test_in_range_call_is_not_slower_than_formula(self):
        # a coarse guard against regressing the hot path: the identity
        # shortcut must stay at least comparable to the general formula
        # on in-range values (in practice it is ~2x faster); min-of-many
        # and a generous bound keep this stable on loaded CI machines
        import timeit

        def formula(value):
            return ((value - INT_MIN) & 0xFFFFFFFF) + INT_MIN

        args = ",".join(str(v) for v in (-7, 0, 123456, INT_MAX))
        setup = "from repro.sim.values import wrap32"
        fast = min(timeit.repeat(f"for v in ({args},): wrap32(v)",
                                 setup=setup, repeat=7, number=20_000))
        slow = min(timeit.repeat(f"for v in ({args},): formula(v)",
                                 globals={"formula": formula},
                                 repeat=7, number=20_000))
        assert fast < slow * 1.5


class TestSaturate:
    def test_16_bit_bounds(self):
        assert saturate(40000, 16) == 32767
        assert saturate(-40000, 16) == -32768
        assert saturate(100, 16) == 100

    @given(anyint, st.integers(min_value=2, max_value=32))
    def test_in_bounds(self, x, bits):
        result = saturate(x, bits)
        assert -(1 << (bits - 1)) <= result <= (1 << (bits - 1)) - 1

    @given(anyint)
    def test_idempotent(self, x):
        assert saturate(saturate(x, 16), 16) == saturate(x, 16)


class TestCompare:
    def test_signed_tests(self):
        assert compare("lt", -1, 0) == 1
        assert compare("ge", -1, 0) == 0
        assert compare("eq", 3, 3) == 1
        assert compare("ne", 3, 3) == 0
        assert compare("le", 3, 3) == 1
        assert compare("gt", 4, 3) == 1

    def test_unsigned_tests(self):
        # -1 is 0xFFFFFFFF unsigned, the largest 32-bit value
        assert compare("ltu", -1, 0) == 0
        assert compare("geu", -1, 0) == 1
        assert compare("ltu", 1, 2) == 1

    def test_unknown_test_rejected(self):
        with pytest.raises(ValueError):
            compare("spaceship", 1, 2)

    @given(i32, i32)
    def test_lt_ge_complementary(self, a, b):
        assert compare("lt", a, b) ^ compare("ge", a, b) == 1

    @given(i32, i32)
    def test_eq_ne_complementary(self, a, b):
        assert compare("eq", a, b) ^ compare("ne", a, b) == 1

    @given(i32, i32)
    def test_ltu_geu_complementary(self, a, b):
        assert compare("ltu", a, b) ^ compare("geu", a, b) == 1


class TestCDivision:
    def test_truncates_toward_zero(self):
        assert cdiv(7, 2) == 3
        assert cdiv(-7, 2) == -3
        assert cdiv(7, -2) == -3
        assert cdiv(-7, -2) == 3

    def test_remainder_sign_follows_dividend(self):
        assert crem(7, 2) == 1
        assert crem(-7, 2) == -1
        assert crem(7, -2) == 1

    @given(i32, i32.filter(lambda x: x != 0))
    def test_div_rem_identity(self, a, b):
        assert cdiv(a, b) * b + crem(a, b) == a

    @given(i32, i32.filter(lambda x: x != 0))
    def test_rem_magnitude_bounded(self, a, b):
        assert abs(crem(a, b)) < abs(b)
