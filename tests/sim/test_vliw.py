"""Unit tests for the cycle-level VLIW simulator's accounting."""

from repro.ir import Module
from repro.loopbuffer.assign import assign_buffer
from repro.looptrans.cloop import convert_counted_loops
from repro.sched.list_sched import schedule_function
from repro.sched.modulo import modulo_schedule
from repro.sim.interp import profile_module, run_module
from repro.sim.vliw import simulate

from tests.helpers import build_counting_loop, build_if_diamond


def _prepare(module, buffered=True, capacity=64, modulo=True):
    func = module.function("main")
    convert_counted_loops(func)
    if buffered:
        profile, _ = profile_module(module)
        assign_buffer(module, profile, capacity)
    schedules = {f.name: schedule_function(f) for f in module.functions.values()}
    mod = {}
    if modulo:
        from repro.analysis.loops import find_loops, is_simple_loop

        for f in module.functions.values():
            for loop in find_loops(f):
                if is_simple_loop(f, loop):
                    mod[(f.name, loop.header)] = modulo_schedule(
                        f.block(loop.header))
    return schedules, mod


class TestFetchAccounting:
    def test_buffered_loop_records_then_issues(self):
        module = build_counting_loop(100)
        schedules, mod = _prepare(module)
        result, counters, buffer = simulate(module, schedules, mod,
                                            buffer_capacity=64)
        assert result.value == sum(range(100))
        stats = counters.block_stats("main", "body")
        assert stats.passes == 100
        # first pass records from memory, the rest issue from the buffer
        assert stats.buffered_passes == 99
        assert stats.ops_from_memory < stats.ops_from_buffer
        assert buffer.stats.records_started == 1

    def test_unbuffered_everything_from_memory(self):
        module = build_counting_loop(100)
        schedules, mod = _prepare(module, buffered=False)
        _, counters, _ = simulate(module, schedules, mod,
                                  buffer_capacity=None)
        assert counters.ops_from_buffer == 0
        assert counters.ops_from_memory == counters.ops_issued

    def test_fraction_metric(self):
        module = build_counting_loop(1000)
        schedules, mod = _prepare(module)
        _, counters, _ = simulate(module, schedules, mod, buffer_capacity=64)
        assert counters.buffer_issue_fraction > 0.95


class TestCycleAccounting:
    def test_modulo_iterations_charge_ii(self):
        module = build_counting_loop(1000)
        schedules, mod = _prepare(module)
        _, counters, _ = simulate(module, schedules, mod, buffer_capacity=64)
        ii = next(iter(mod.values())).ii
        # steady-state cycles dominated by II per iteration
        assert counters.cycles < 1000 * (ii + 2) + 200

    def test_branch_bubbles_on_unbuffered_loop(self):
        module = build_counting_loop(100)
        schedules, mod = _prepare(module, buffered=False, modulo=False)
        _, counters, _ = simulate(module, schedules, mod,
                                  buffer_capacity=None)
        # 99 taken loop-back branches at 3 cycles each
        assert counters.branch_bubbles >= 99 * 3

    def test_buffered_cloop_has_no_loopback_bubbles(self):
        module = build_counting_loop(100)
        schedules, mod = _prepare(module, buffered=True)
        _, counters, _ = simulate(module, schedules, mod, buffer_capacity=64)
        # only entry/exit control (ret) should bubble
        assert counters.branch_bubbles <= 2 * 3

    def test_buffered_wloop_pays_one_exit_bubble(self):
        module = build_counting_loop(100)  # plain br loop-back -> rec_wloop
        profile, _ = profile_module(module)
        assign_buffer(module, profile, 64)
        schedules = {f.name: schedule_function(f)
                     for f in module.functions.values()}
        _, counters, _ = simulate(module, schedules, {}, buffer_capacity=64)
        # loop-backs free; exit misprediction pays one penalty; ret pays one
        assert counters.branch_bubbles <= 2 * 3

    def test_taken_branch_penalty_in_acyclic_code(self):
        module = build_if_diamond()
        schedules = {f.name: schedule_function(f)
                     for f in module.functions.values()}
        _, taken, _ = simulate(module, schedules, {}, buffer_capacity=None,
                               args=[50])
        _, fall, _ = simulate(module, schedules, {}, buffer_capacity=None,
                              args=[5])
        # x=50 takes the branch to 'else' (penalty); x=5 falls through to
        # 'then' but then jumps to 'join' (also a penalty) - both have one
        # taken transfer plus the ret
        assert taken.branch_bubbles >= 3
        assert fall.branch_bubbles >= 3

    def test_architectural_equivalence_with_interpreter(self):
        module = build_counting_loop(57)
        expected = run_module(build_counting_loop(57)).value
        schedules, mod = _prepare(module)
        result, _, _ = simulate(module, schedules, mod, buffer_capacity=64)
        assert result.value == expected


class TestDivModShiftDifferential:
    """The compiled VLIW must agree with the interpreter on div/mod/shift
    with negative and boundary operands — the same oracle the fuzzer
    (:mod:`repro.fuzz.oracle`) applies, pinned to the nastiest operands."""

    SOURCE = """
int main() {{
    int acc = 0;
    int a = {a};
    for (int i = 0; i < 6; i++) {{
        acc += a / {d};
        acc ^= a % {d};
        acc += a << {sh};
        acc -= a >> {sh};
        a = a * -3 + i;
    }}
    return acc;
}}"""

    CASES = [
        {"a": -(1 << 31), "d": -1, "sh": 31},
        {"a": -7, "d": 2, "sh": 1},
        {"a": (1 << 31) - 1, "d": -7, "sh": 30},
        {"a": -1, "d": 13, "sh": 0},
        {"a": 65535, "d": -3, "sh": 16},
    ]

    def _check(self, case):
        from repro.frontend import compile_source
        from repro.pipeline import (
            compile_aggressive,
            compile_traditional,
            run_compiled,
        )

        src = self.SOURCE.format(**case)
        expected = run_module(compile_source(src)).value
        for compile_fn in (compile_traditional, compile_aggressive):
            outcome = run_compiled(compile_fn(compile_source(src),
                                              buffer_capacity=64))
            assert outcome.result.value == expected, (case, compile_fn)

    def test_boundary_operand_parity(self):
        for case in self.CASES:
            self._check(case)


class TestEviction:
    def test_two_loops_sharing_small_buffer_rerecord(self):
        # two alternating loops too big to cohabit a tiny buffer
        from repro.ir import Function, IRBuilder, Imm

        module = Module()
        func = Function("main")
        module.add_function(func)
        b = IRBuilder(func)
        entry = func.add_block("entry")
        outer = func.add_block("outer")
        l1 = func.add_block("l1")
        mid = func.add_block("mid")
        l2 = func.add_block("l2")
        latch = func.add_block("latch")
        done = func.add_block("done")

        b.at(entry)
        s = b.movi(0)
        k = b.movi(0)
        b.at(outer)
        i = b.movi(0)
        b.at(l1)
        b.add(s, Imm(1), dest=s)
        b.add(s, Imm(2), dest=s)
        b.add(i, Imm(1), dest=i)
        b.br("lt", i, Imm(10), "l1")
        b.at(mid)
        j = b.movi(0)
        b.at(l2)
        b.add(s, Imm(3), dest=s)
        b.add(s, Imm(4), dest=s)
        b.add(j, Imm(1), dest=j)
        b.br("lt", j, Imm(10), "l2")
        b.at(latch)
        b.add(k, Imm(1), dest=k)
        b.br("lt", k, Imm(5), "outer")
        b.at(done)
        b.ret(s)

        profile, _ = profile_module(module)
        assign_buffer(module, profile, 6)  # both loops want the same space
        schedules = {f.name: schedule_function(f)
                     for f in module.functions.values()}
        result, counters, buffer = simulate(module, schedules, {},
                                            buffer_capacity=6)
        assert result.value == 5 * 10 * (1 + 2 + 3 + 4)
        # each outer iteration re-records both loops (mutual eviction)
        assert buffer.stats.invalidations >= 8
