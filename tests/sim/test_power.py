"""Unit tests for the fetch-energy model (Section 7.2 calibration)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.power import (
    CALIBRATION_CAPACITY,
    MEMORY_ENERGY,
    FetchEnergy,
    buffer_energy_per_op,
    unbuffered_baseline,
)


class TestCalibration:
    def test_paper_ratio_at_256(self):
        """The Cacti 2.0 calibration point: 41.8x at a 256-op buffer."""
        assert MEMORY_ENERGY / buffer_energy_per_op(256) == pytest.approx(41.8)

    def test_linear_size_scaling(self):
        assert buffer_energy_per_op(512) == pytest.approx(2.0)
        assert buffer_energy_per_op(128) == pytest.approx(0.5)

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            buffer_energy_per_op(0)


class TestRollup:
    def test_all_memory(self):
        e = FetchEnergy(1000, 0, 256)
        assert e.total == pytest.approx(1000 * MEMORY_ENERGY)

    def test_all_buffer(self):
        e = FetchEnergy(0, 1000, 256)
        assert e.total == pytest.approx(1000.0)

    def test_normalization(self):
        baseline = unbuffered_baseline(1000)
        buffered = FetchEnergy(0, 1000, 256)
        assert buffered.normalized_to(baseline) == pytest.approx(1 / 41.8)

    def test_zero_baseline(self):
        assert FetchEnergy(1, 0, 256).normalized_to(unbuffered_baseline(0)) == 0.0

    @given(st.integers(0, 10**6), st.integers(0, 10**6))
    def test_buffering_never_increases_energy_at_fixed_ops(self, mem, buf):
        """Moving fetch from memory to a <=256-op buffer always helps."""
        mixed = FetchEnergy(mem, buf, 256)
        all_memory = FetchEnergy(mem + buf, 0, 256)
        assert mixed.total <= all_memory.total + 1e-9

    @given(st.integers(1, 4096))
    def test_energy_positive_and_monotone_in_capacity(self, cap):
        assert buffer_energy_per_op(cap) > 0
        assert buffer_energy_per_op(cap) <= buffer_energy_per_op(cap + 64)


class TestBreakEven:
    def test_large_buffer_break_even_point(self):
        """A buffer bigger than 41.8 * 256 ops would cost more per access
        than memory — the model's implied design limit."""
        limit = int(41.8 * CALIBRATION_CAPACITY)
        assert buffer_energy_per_op(limit) <= MEMORY_ENERGY + 1e-6
        assert buffer_energy_per_op(limit + 256) > MEMORY_ENERGY
