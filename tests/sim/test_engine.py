"""The predecoded fast engine vs the reference interpreter/VLIW.

Every test here is differential: the fast path (:mod:`repro.sim.engine`)
must be *bit-identical* to the reference — return values, trap classes,
step counts, profile counts, and the full :class:`SimCounters` tree
including per-block and per-loop fetch stats.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest

from repro.bench import benchmark
from repro.frontend import compile_source
from repro.ir.opcodes import Opcode
from repro.ir.operation import Operation
from repro.pipeline import compile_aggressive, compile_traditional, run_compiled
from repro.sim.engine import (
    DEFAULT_ENGINE,
    ENGINES,
    ENV_ENGINE,
    FastInterpreter,
    engine_choice,
    make_interpreter,
    make_vliw_simulator,
)
from repro.sim.interp import Interpreter, StepLimitExceeded, profile_module, run_module

CORPUS_DIR = Path(__file__).resolve().parents[1] / "fuzz_corpus"


def _counters_dict(counters):
    data = dataclasses.asdict(counters)
    data["per_block"] = {k: dataclasses.asdict(v)
                         for k, v in counters.per_block.items()}
    data["per_loop"] = {k: dataclasses.asdict(v)
                        for k, v in counters.per_loop.items()}
    return data


class TestEngineChoice:
    def test_argument_wins(self, monkeypatch):
        monkeypatch.setenv(ENV_ENGINE, "fast")
        assert engine_choice("ref") == "ref"

    def test_environment_then_default(self, monkeypatch):
        monkeypatch.setenv(ENV_ENGINE, "ref")
        assert engine_choice(None) == "ref"
        monkeypatch.delenv(ENV_ENGINE)
        assert engine_choice(None) == DEFAULT_ENGINE

    def test_unknown_engine_rejected(self, monkeypatch):
        with pytest.raises(ValueError):
            engine_choice("quantum")
        monkeypatch.setenv(ENV_ENGINE, "quantum")
        with pytest.raises(ValueError):
            engine_choice(None)

    def test_factories_dispatch(self):
        module = benchmark("adpcm_dec").build()
        assert type(make_interpreter(module, engine="ref")) is Interpreter
        assert type(make_interpreter(module, engine="fast")) is FastInterpreter
        assert "fast" in ENGINES and "ref" in ENGINES


class TestInterpreterEquality:
    """Same module object through both engines: identical everything."""

    @pytest.mark.parametrize("name", ["adpcm_dec", "g724_enc", "mpeg2_dec"])
    def test_profiled_run_identical(self, name):
        bench = benchmark(name)
        module = bench.build()
        ref_prof, ref = profile_module(module, entry=bench.entry,
                                       args=bench.args, engine="ref")
        fast_prof, fast = profile_module(module, entry=bench.entry,
                                         args=bench.args, engine="fast")
        assert fast.value == ref.value == bench.expected()
        assert fast.steps == ref.steps
        assert dict(fast_prof.blocks) == dict(ref_prof.blocks)
        assert dict(fast_prof.edges) == dict(ref_prof.edges)
        assert dict(fast_prof.ops) == dict(ref_prof.ops)
        assert dict(fast_prof.taken) == dict(ref_prof.taken)
        assert dict(fast_prof.calls) == dict(ref_prof.calls)
        assert fast_prof.total_ops == ref_prof.total_ops

    def test_unprofiled_run_identical(self):
        bench = benchmark("adpcm_enc")
        module = bench.build()
        ref = run_module(module, entry=bench.entry, args=bench.args,
                         engine="ref")
        fast = run_module(module, entry=bench.entry, args=bench.args,
                          engine="fast")
        assert fast.value == ref.value
        assert fast.steps == ref.steps

    def test_step_limit_trips_at_identical_step(self):
        bench = benchmark("adpcm_dec")
        module = bench.build()
        total = run_module(module, entry=bench.entry, args=bench.args,
                           engine="ref").steps
        for budget in (total, total - 1, total // 2):
            sims = [make_interpreter(module, max_steps=budget, engine=eng)
                    for eng in ("ref", "fast")]
            outcomes = []
            for sim in sims:
                try:
                    outcomes.append(("value", sim.run(bench.entry,
                                                      bench.args).value))
                except StepLimitExceeded:
                    outcomes.append(("trap", sim.steps))
            assert outcomes[0] == outcomes[1]


class TestVLIWEquality:
    """Full SimCounters tree identical, per-loop stats included."""

    GRID = [
        ("adpcm_dec", "traditional", 64),
        ("adpcm_enc", "aggressive", 64),
        ("mpeg2_dec", "traditional", 256),
        ("mpeg2_dec", "aggressive", None),
    ]

    @pytest.mark.parametrize("name,pipeline,capacity", GRID)
    def test_counters_identical(self, name, pipeline, capacity):
        bench = benchmark(name)
        compiler = (compile_traditional if pipeline == "traditional"
                    else compile_aggressive)
        compiled = compiler(bench.build(), entry=bench.entry, args=bench.args,
                            buffer_capacity=capacity)
        ref = run_compiled(compiled, engine="ref")
        fast = run_compiled(compiled, engine="fast")
        assert fast.result.value == ref.result.value == bench.expected()
        assert fast.result.steps == ref.result.steps
        assert _counters_dict(fast.counters) == _counters_dict(ref.counters)

    @pytest.mark.parametrize("name", ["adpcm_dec", "mpeg2_dec"])
    def test_per_loop_stats_cover_real_loops(self, name):
        # aggressive @ 256: predicated loop bodies fit, so the equality
        # above is exercised on populated per-loop lifecycle counters
        bench = benchmark(name)
        compiled = compile_aggressive(bench.build(), entry=bench.entry,
                                      args=bench.args, buffer_capacity=256)
        ref = run_compiled(compiled, engine="ref")
        fast = run_compiled(compiled, engine="fast")
        assert ref.counters.per_loop
        assert _counters_dict(fast.counters) == _counters_dict(ref.counters)


class TestTraceCache:
    LOOP_SOURCE = """
int main() {
    int acc = 0;
    for (int i = 0; i < 100; i++) {
        acc += i;
    }
    return acc;
}
"""

    def test_decode_once_across_iterations(self):
        module = compile_source(self.LOOP_SOURCE)
        sim = make_interpreter(module, engine="fast")
        assert sim.run("main").value == 4950
        decoded = sim.cache.decoded_blocks
        # 100 iterations over the loop body decoded each block exactly once
        total_blocks = sum(len(f.blocks) for f in module.functions.values())
        assert decoded <= total_blocks
        assert sim.cache.decoded_ops > 0

    def test_second_run_reuses_decoded_blocks(self):
        module = compile_source(self.LOOP_SOURCE)
        sim = make_interpreter(module, engine="fast")
        sim.run("main")
        decoded = sim.cache.decoded_blocks
        sim.steps = 0
        assert sim.run("main").value == 4950
        assert sim.cache.decoded_blocks == decoded

    def test_invalidate_forces_redecode(self):
        module = compile_source(self.LOOP_SOURCE)
        sim = make_interpreter(module, engine="fast")
        sim.run("main")
        decoded = sim.cache.decoded_blocks
        sim.cache.invalidate("main")
        sim.steps = 0
        assert sim.run("main").value == 4950
        assert sim.cache.decoded_blocks > decoded

    def test_op_list_mutation_redecodes_stale_block(self):
        module = compile_source(self.LOOP_SOURCE)
        sim = make_interpreter(module, engine="fast")
        sim.run("main")
        decoded = sim.cache.decoded_blocks
        func = module.function("main")
        entry = func.entry
        entry.ops.insert(0, Operation(Opcode.NOP))
        sim.steps = 0
        ref = Interpreter(module)
        assert sim.run("main").value == ref.run("main").value == 4950
        assert sim.run("main").steps  # steps reset above; counted the NOP too
        assert sim.cache.decoded_blocks > decoded

    def test_function_identity_change_invalidates(self):
        module = compile_source(self.LOOP_SOURCE)
        sim = make_interpreter(module, engine="fast")
        fprog = sim.cache.function_program(module.function("main"))
        module2 = compile_source(self.LOOP_SOURCE)
        fprog2 = sim.cache.function_program(module2.function("main"))
        assert fprog2 is not fprog


class TestCorpusReproducers:
    """Every minimized fuzz reproducer runs identically on both engines."""

    ENTRIES = sorted(CORPUS_DIR.glob("*.json"))

    @pytest.mark.parametrize("path", ENTRIES, ids=lambda p: p.stem)
    def test_ref_vs_fast_outcomes(self, path):
        from repro.fuzz.oracle import Config, compiled_outcome

        entry = json.loads(path.read_text())
        source = entry["source"]
        for raw in entry["configs"]:
            base = Config.from_dict(raw)
            outcomes = {
                eng: compiled_outcome(
                    source, dataclasses.replace(base, engine=eng))
                for eng in ENGINES
            }
            assert outcomes["fast"] == outcomes["ref"], base.label


class TestRunnerIntegration:
    def test_engine_is_part_of_cache_keys(self):
        from repro.runner.parallel import base_key, run_key

        keys = {
            base_key("adpcm_dec", "traditional", engine="ref"),
            base_key("adpcm_dec", "traditional", engine="fast"),
            base_key("adpcm_dec", "traditional", checked=True, engine="fast"),
            run_key("adpcm_dec", "traditional", 64, engine="ref"),
            run_key("adpcm_dec", "traditional", 64, engine="fast"),
            run_key("adpcm_dec", "traditional", 128, engine="fast"),
        }
        assert len(keys) == 6

    def test_grid_summaries_identical_across_engines(self, tmp_path):
        from repro.runner.cache import ArtifactCache
        from repro.runner.parallel import expand_grid, run_grid

        cells = expand_grid(["adpcm_dec"], ["traditional"], [64, None])
        summaries = {}
        for eng in ENGINES:
            cache = ArtifactCache(tmp_path / eng)
            summaries[eng] = run_grid(cells, workers=1, cache=cache,
                                      engine=eng)
        assert summaries["fast"] == summaries["ref"]

    def test_cli_engine_flag(self, tmp_path, capsys):
        from repro.runner.cli import main

        code = main(["--benchmarks", "adpcm_dec", "--pipelines", "traditional",
                     "--capacities", "64", "--workers", "0", "--engine", "ref",
                     "--cache-dir", str(tmp_path), "--quiet"])
        assert code == 0
