"""Unit and integration tests for the functional interpreter."""

import pytest

from repro.ir import (
    Function,
    GlobalRef,
    IRBuilder,
    Imm,
    Module,
    Opcode,
    ireg,
)
from repro.sim.interp import SimError, StepLimitExceeded, profile_module, run_module

from tests.helpers import build_counting_loop, build_if_diamond


class TestBasics:
    def test_counting_loop(self):
        assert run_module(build_counting_loop(10)).value == 45

    def test_diamond_both_paths(self):
        module = build_if_diamond()
        assert run_module(module, args=[5]).value == 6
        assert run_module(module, args=[20]).value == 19

    def test_arg_count_checked(self):
        with pytest.raises(SimError, match="args"):
            run_module(build_if_diamond(), args=[])

    def test_step_limit(self):
        module = Module()
        func = Function("main")
        module.add_function(func)
        b = IRBuilder(func, func.add_block("spin"))
        b.jump("spin")
        with pytest.raises(StepLimitExceeded):
            run_module(module, max_steps=100)


class TestArithmeticOps:
    def _run_expr(self, emitfn, args=()):
        module = Module()
        params = [ireg(i) for i in range(len(args))]
        func = Function("main", params)
        module.add_function(func)
        b = IRBuilder(func, func.add_block("entry"))
        result = emitfn(b, *params)
        b.ret(result)
        return run_module(module, args=list(args)).value

    def test_saturating_add(self):
        assert self._run_expr(
            lambda b: b.emit(Opcode.SADD, [Imm(30000), Imm(10000)])) == 32767
        assert self._run_expr(
            lambda b: b.emit(Opcode.SSUB, [Imm(-30000), Imm(10000)])) == -32768

    def test_clip(self):
        assert self._run_expr(
            lambda b: b.emit(Opcode.CLIP, [Imm(300), Imm(0), Imm(255)])) == 255
        assert self._run_expr(
            lambda b: b.emit(Opcode.CLIP, [Imm(-3), Imm(0), Imm(255)])) == 0
        assert self._run_expr(
            lambda b: b.emit(Opcode.CLIP, [Imm(77), Imm(0), Imm(255)])) == 77

    def test_select(self):
        assert self._run_expr(
            lambda b: b.emit(Opcode.SELECT, [Imm(1), Imm(10), Imm(20)])) == 10
        assert self._run_expr(
            lambda b: b.emit(Opcode.SELECT, [Imm(0), Imm(10), Imm(20)])) == 20

    def test_mulh(self):
        assert self._run_expr(
            lambda b: b.emit(Opcode.MULH, [Imm(1 << 20), Imm(1 << 20)])) == 256

    def test_shifts(self):
        assert self._run_expr(lambda b: b.emit(Opcode.SHR, [Imm(-1), Imm(28)])) == 15
        assert self._run_expr(lambda b: b.emit(Opcode.SAR, [Imm(-16), Imm(2)])) == -4
        assert self._run_expr(lambda b: b.emit(Opcode.SHL, [Imm(3), Imm(4)])) == 48

    def test_division_semantics(self):
        assert self._run_expr(lambda b: b.emit(Opcode.DIV, [Imm(-7), Imm(2)])) == -3
        assert self._run_expr(lambda b: b.emit(Opcode.REM, [Imm(-7), Imm(2)])) == -1

    def test_div_by_zero_traps(self):
        with pytest.raises(SimError, match="zero"):
            self._run_expr(lambda b: b.emit(Opcode.DIV, [Imm(1), Imm(0)]))

    def test_abs_min_max(self):
        assert self._run_expr(lambda b: b.emit(Opcode.ABS, [Imm(-9)])) == 9
        assert self._run_expr(lambda b: b.emit(Opcode.MIN, [Imm(3), Imm(-2)])) == -2
        assert self._run_expr(lambda b: b.emit(Opcode.MAX, [Imm(3), Imm(-2)])) == 3


class TestDivModShiftEdgeCases:
    """Differential edge cases: the interpreter on MKC source must match a
    pure-Python model of the C semantics (trunc-toward-zero division,
    dividend-signed remainder, count-masked shifts, 32-bit wrap) on
    negative and boundary operands."""

    INT_MIN = -(1 << 31)
    INT_MAX = (1 << 31) - 1

    DIV_OPERANDS = [
        (-7, 2), (7, -2), (-7, -2), (1, -1),
        (INT_MIN, -1),            # the classic overflow case: wraps
        (INT_MIN, 1), (INT_MAX, -1), (INT_MIN, 3), (INT_MAX, 7),
        (0, -5), (-1, INT_MAX), (INT_MAX, INT_MAX), (INT_MIN, INT_MIN),
    ]

    SHIFT_OPERANDS = [
        (-1, 1), (-8, 2), (1, 31), (1, 33),   # counts are masked & 31
        (5, -1),                              # -1 & 31 == 31
        (INT_MIN, 31), (INT_MIN, 1), (INT_MAX, 31), (-1, 32), (3, 0),
    ]

    @staticmethod
    def _run(expr, a, b):
        src = (f"int main() {{\n    int a = {a};\n    int b = {b};\n"
               f"    return {expr};\n}}")
        from repro.frontend import compile_source

        return run_module(compile_source(src)).value

    @pytest.mark.parametrize("a,b", DIV_OPERANDS)
    def test_division_matches_c_model(self, a, b):
        from repro.sim.values import cdiv, wrap32

        assert self._run("a / b", a, b) == wrap32(cdiv(a, b))

    @pytest.mark.parametrize("a,b", DIV_OPERANDS)
    def test_remainder_matches_c_model(self, a, b):
        from repro.sim.values import crem, wrap32

        assert self._run("a % b", a, b) == wrap32(crem(a, b))

    @pytest.mark.parametrize("a,b", DIV_OPERANDS)
    def test_div_rem_reconstruct_dividend(self, a, b):
        from repro.sim.values import wrap32

        q = self._run("a / b", a, b)
        r = self._run("a % b", a, b)
        assert wrap32(q * b + r) == a

    @pytest.mark.parametrize("a,b", SHIFT_OPERANDS)
    def test_left_shift_matches_c_model(self, a, b):
        from repro.sim.values import wrap32

        assert self._run("a << b", a, b) == wrap32(a << (b & 31))

    @pytest.mark.parametrize("a,b", SHIFT_OPERANDS)
    def test_right_shift_is_arithmetic_with_masked_count(self, a, b):
        # MKC ">>" lowers to SAR: sign-propagating, count masked to 5 bits
        assert self._run("a >> b", a, b) == a >> (b & 31)

    def test_rem_by_zero_traps_like_div(self):
        with pytest.raises(SimError, match="zero"):
            self._run("a % b", 1, 0)


class TestMemoryAndGlobals:
    def test_global_load_store(self):
        module = Module()
        module.add_global("table", 4, [10, 20, 30, 40])
        func = Function("main")
        module.add_function(func)
        b = IRBuilder(func, func.add_block("entry"))
        base = b.mov(GlobalRef("table"))
        v = b.load(base, 2)
        b.store(base, 3, v)
        b.ret(v)
        result = run_module(module)
        assert result.value == 30
        table = result.loader.global_addr("table")
        assert result.memory.peek(table + 3) == 30

    def test_frame_locals(self):
        module = Module()
        func = Function("main")
        module.add_function(func)
        func.frame_words = 4
        func.frame_base = func.new_reg()
        b = IRBuilder(func, func.add_block("entry"))
        b.store(func.frame_base, 1, Imm(99))
        v = b.load(func.frame_base, 1)
        b.ret(v)
        assert run_module(module).value == 99

    def test_negative_address_faults(self):
        module = Module()
        func = Function("main")
        module.add_function(func)
        b = IRBuilder(func, func.add_block("entry"))
        v = b.load(Imm(-5), 0)
        b.ret(v)
        with pytest.raises(Exception, match="negative"):
            run_module(module)


class TestCallsAndRecursion:
    def _make_factorial(self):
        module = Module()
        n = ireg(0)
        fact = Function("fact", [n])
        module.add_function(fact)
        b = IRBuilder(fact)
        entry = fact.add_block("entry")
        rec = fact.add_block("rec")
        b.at(entry)
        b.br("gt", n, Imm(1), "rec")
        b.ret(Imm(1))
        b.at(rec)
        n1 = b.sub(n, Imm(1))
        sub = b.call("fact", [n1], dest=fact.new_reg())
        out = b.mul(n, sub)
        b.ret(out)

        main = Function("main", [ireg(0)])
        module.add_function(main)
        b2 = IRBuilder(main, main.add_block("entry"))
        result = b2.call("fact", [ireg(0)], dest=main.new_reg())
        b2.ret(result)
        return module

    def test_recursive_factorial(self):
        assert run_module(self._make_factorial(), args=[6]).value == 720

    def test_call_counts_profiled(self):
        profile, _ = profile_module(self._make_factorial(), args=[5])
        assert profile.call_count("fact") == 5
        assert profile.call_count("main") == 1


class TestPredication:
    def test_guarded_op_nullified(self):
        module = Module()
        x = ireg(0)
        func = Function("main", [x])
        module.add_function(func)
        b = IRBuilder(func, func.add_block("entry"))
        p_true = func.new_pred()
        p_false = func.new_pred()
        b.pred_def("lt", x, Imm(10), [p_true, p_false], ["ut", "uf"])
        y = b.movi(0)
        b.add(x, Imm(1), dest=y, guard=p_true)
        b.sub(x, Imm(1), dest=y, guard=p_false)
        b.ret(y)
        assert run_module(module, args=[5]).value == 6
        assert run_module(module, args=[20]).value == 19

    def test_or_type_accumulation(self):
        # p = (x < 0) || (x > 3), computed with two or-type defines
        module = Module()
        x = ireg(0)
        func = Function("main", [x])
        module.add_function(func)
        b = IRBuilder(func, func.add_block("entry"))
        p = func.new_pred()
        b.pred_set(p, 0)
        b.pred_def("lt", x, Imm(0), [p], ["ot"])
        b.pred_def("gt", x, Imm(3), [p], ["ot"])
        y = b.movi(0)
        b.movi(1, dest=y, guard=p)
        b.ret(y)
        assert run_module(module, args=[-1]).value == 1
        assert run_module(module, args=[5]).value == 1
        assert run_module(module, args=[2]).value == 0

    def test_pred_def_guard_false_still_clears_u_types(self):
        module = Module()
        func = Function("main")
        module.add_function(func)
        b = IRBuilder(func, func.add_block("entry"))
        g = func.new_pred()
        p = func.new_pred()
        b.pred_set(g, 0)
        b.pred_set(p, 1)
        # guard false: ut must write 0 anyway (Table 2 rows 0x)
        b.pred_def("eq", Imm(0), Imm(0), [p], ["ut"], guard=g)
        y = b.movi(7)
        b.movi(3, dest=y, guard=p)
        b.ret(y)
        assert run_module(module).value == 7


class TestCountedLoops:
    def test_cloop(self):
        module = Module()
        func = Function("main")
        module.add_function(func)
        b = IRBuilder(func)
        entry = func.add_block("entry")
        body = func.add_block("body")
        done = func.add_block("done")
        b.at(entry)
        s = b.movi(0)
        b.emit_op(Opcode.CLOOP_SET, [], [Imm(8)], lc="lc0")
        b.at(body)
        b.add(s, Imm(2), dest=s)
        b.emit_op(Opcode.BR_CLOOP, [], [], target="body", lc="lc0")
        b.at(done)
        b.ret(s)
        assert run_module(module).value == 16


class TestProfiles:
    def test_block_and_edge_counts(self):
        profile, result = profile_module(build_counting_loop(10))
        assert result.value == 45
        assert profile.block_count("main", "body") == 10
        assert profile.edge_count("main", "body", "body") == 9
        assert profile.edge_count("main", "body", "done") == 1
        assert profile.edge_count("main", "entry", "body") == 1

    def test_branch_taken_ratio(self):
        module = build_counting_loop(10)
        profile, _ = profile_module(module)
        func = module.function("main")
        branch = func.block("body").ops[-1]
        assert profile.op_count("main", branch.uid) == 10
        assert profile.taken_count("main", branch.uid) == 9
        assert profile.taken_ratio("main", branch.uid) == pytest.approx(0.9)

    def test_total_ops_counted(self):
        profile, _ = profile_module(build_counting_loop(3))
        # entry: 2 ops, body: 3 ops x 3 iterations, done: 1 op
        assert profile.total_ops == 2 + 9 + 1
