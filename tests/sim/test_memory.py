"""Unit tests for the memory model and loader."""

import pytest

from repro.ir import Module
from repro.sim.memory import GLOBAL_BASE, Loader, Memory, MemoryError_


class TestMemory:
    def test_uninitialized_reads_zero(self):
        assert Memory().read(123) == 0

    def test_write_read_roundtrip(self):
        mem = Memory()
        mem.write(10, 42)
        assert mem.read(10) == 42

    def test_access_counters(self):
        mem = Memory()
        mem.write(1, 5)
        mem.read(1)
        mem.read(2)
        assert mem.stores == 1
        assert mem.loads == 2

    def test_peek_poke_do_not_count(self):
        mem = Memory()
        mem.poke(5, 9)
        assert mem.peek(5) == 9
        assert mem.loads == 0
        assert mem.stores == 0

    def test_negative_address_faults(self):
        mem = Memory()
        with pytest.raises(MemoryError_):
            mem.read(-1)
        with pytest.raises(MemoryError_):
            mem.write(-5, 0)

    def test_block_helpers(self):
        mem = Memory()
        mem.write_block(100, [1, 2, 3])
        assert mem.read_block(100, 3) == [1, 2, 3]
        assert mem.read_block(99, 5) == [0, 1, 2, 3, 0]


class TestLoader:
    def _module(self):
        module = Module()
        module.add_global("a", 4, [1, 2, 3])
        module.add_global("b", 2, [9])
        return module

    def test_globals_laid_out_sequentially(self):
        loader = Loader(self._module())
        a = loader.global_addr("a")
        b = loader.global_addr("b")
        assert a == GLOBAL_BASE
        assert b == a + 4

    def test_initializers_zero_padded(self):
        loader = Loader(self._module())
        a = loader.global_addr("a")
        assert loader.memory.read_block(a, 4) == [1, 2, 3, 0]

    def test_frames_stack(self):
        loader = Loader(self._module())
        f1 = loader.push_frame(8)
        f2 = loader.push_frame(4)
        assert f2 == f1 + 8
        loader.pop_frame(4)
        f3 = loader.push_frame(2)
        assert f3 == f2

    def test_stack_underflow(self):
        loader = Loader(self._module())
        with pytest.raises(MemoryError_):
            loader.pop_frame(1)

    def test_unknown_global(self):
        loader = Loader(self._module())
        with pytest.raises(KeyError):
            loader.global_addr("ghost")
