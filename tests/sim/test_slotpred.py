"""Unit tests for the slot-based predication hardware harness (Figure 4)."""

import pytest

from repro.ir import BasicBlock, Imm, Opcode, Operation, ireg, preg
from repro.predication.slots import allocate_slot_predication
from repro.sched.bundle import Schedule
from repro.sim.slotpred import (
    SlotWriteRace,
    run_register_model,
    run_slot_model,
    states_equivalent,
)


def _diamond_kernel():
    """if (r0 < 0) r1 = -r0 else r1 = r0; r2 = r1 + 100"""
    pd = Operation(Opcode.PRED_DEF, [preg(0), preg(1)], [ireg(0), Imm(0)],
                   attrs={"cmp": "lt", "ptypes": ["ut", "uf"]})
    neg = Operation(Opcode.NEG, [ireg(1)], [ireg(0)], guard=preg(0))
    keep = Operation(Opcode.MOV, [ireg(1)], [ireg(0)], guard=preg(1))
    add = Operation(Opcode.ADD, [ireg(2)], [ireg(1), Imm(100)])
    kernel = BasicBlock("k", [pd, neg, keep, add])
    schedule = Schedule()
    schedule.place(pd, 0, 0)
    schedule.place(neg, 1, 2)
    schedule.place(keep, 1, 3)
    schedule.place(add, 2, 0)
    alloc = allocate_slot_predication(kernel, schedule)
    assert alloc.ok
    return kernel, schedule


class TestEquivalence:
    @pytest.mark.parametrize("x", [-9, -1, 0, 1, 42])
    def test_diamond_matches_register_model(self, x):
        kernel, schedule = _diamond_kernel()
        regs = {ireg(0): x}
        ref = run_register_model(kernel, dict(regs))
        got = run_slot_model(kernel, schedule, dict(regs))
        assert states_equivalent(ref, got)
        assert got.regs[ireg(2)] == abs(x) + 100

    def test_memory_ops(self):
        ld = Operation(Opcode.LD, [ireg(1)], [ireg(0), Imm(0)])
        st = Operation(Opcode.ST, [], [ireg(0), Imm(1), ireg(1)])
        kernel = BasicBlock("k", [ld, st])
        schedule = Schedule()
        schedule.place(ld, 0, 4)
        schedule.place(st, 4, 5)
        regs = {ireg(0): 100}
        mem = {100: 77}
        ref = run_register_model(kernel, dict(regs), dict(mem))
        got = run_slot_model(kernel, schedule, dict(regs), dict(mem))
        assert states_equivalent(ref, got)
        assert got.memory[101] == 77


class TestHarnessSemantics:
    def test_update_visible_next_cycle_only(self):
        # consumer co-scheduled with its define sees the OLD standing value
        pd = Operation(Opcode.PRED_DEF, [preg(0)], [ireg(0), Imm(0)],
                       attrs={"cmp": "eq", "ptypes": ["ut"]})
        use = Operation(Opcode.MOV, [ireg(1)], [Imm(5)], guard=preg(0))
        kernel = BasicBlock("k", [pd, use])
        schedule = Schedule()
        schedule.place(pd, 0, 0)
        schedule.place(use, 0, 1)  # same cycle: sees standing=0
        allocate_slot_predication(kernel, schedule)
        got = run_slot_model(kernel, schedule, {ireg(0): 0})
        assert ireg(1) not in got.regs  # nullified despite cond true

    def test_write_race_detected(self):
        pd = Operation(Opcode.PRED_DEF, [preg(0), preg(1)], [ireg(0), Imm(0)],
                       attrs={"cmp": "lt", "ptypes": ["ut", "uf"]})
        # force both complementary values onto one slot
        pd.attrs["slot_route"] = {"p0": [2], "p1": [2]}
        kernel = BasicBlock("k", [pd])
        schedule = Schedule()
        schedule.place(pd, 0, 0)
        with pytest.raises(SlotWriteRace):
            run_slot_model(kernel, schedule, {ireg(0): -1})

    def test_or_contributions_share_slot(self):
        init = Operation(Opcode.PRED_SET, [preg(0)], [Imm(0)])
        init.attrs["slot_route"] = {"p0": [3]}
        d1 = Operation(Opcode.PRED_DEF, [preg(0)], [ireg(0), Imm(0)],
                       attrs={"cmp": "lt", "ptypes": ["ot"],
                              "slot_route": {"p0": [3]}})
        d2 = Operation(Opcode.PRED_DEF, [preg(0)], [ireg(0), Imm(10)],
                       attrs={"cmp": "gt", "ptypes": ["ot"],
                              "slot_route": {"p0": [3]}})
        use = Operation(Opcode.MOV, [ireg(1)], [Imm(1)], guard=preg(0))
        use.attrs["psens"] = True
        kernel = BasicBlock("k", [init, d1, d2, use])
        schedule = Schedule()
        schedule.place(init, 0, 0)
        schedule.place(d1, 1, 0)
        schedule.place(d2, 1, 1)  # same cycle, both may write 1 or nothing
        schedule.place(use, 2, 3)
        for x, expect in ((-5, 1), (20, 1), (5, None)):
            got = run_slot_model(kernel, schedule, {ireg(0): x})
            if expect is None:
                assert ireg(1) not in got.regs
            else:
                assert got.regs[ireg(1)] == expect

    def test_insensitive_op_ignores_standing(self):
        op = Operation(Opcode.MOV, [ireg(1)], [Imm(9)])
        kernel = BasicBlock("k", [op])
        schedule = Schedule()
        schedule.place(op, 0, 0)
        got = run_slot_model(kernel, schedule, {})
        assert got.regs[ireg(1)] == 9
