"""Unit tests for complete loop peeling."""

from repro.analysis.loops import find_loops
from repro.ir import Opcode, verify_module
from repro.looptrans.peel import peel_short_loops
from repro.sim.interp import run_module

from tests.helpers import build_counting_loop, build_nested_loop


class TestPeeling:
    def test_short_loop_peeled(self):
        module = build_counting_loop(4)
        func = module.function("main")
        stats = peel_short_loops(func)
        assert stats.loops_peeled == 1
        assert find_loops(func) == []
        verify_module(module)
        assert run_module(module).value == 6

    def test_long_loop_not_peeled(self):
        module = build_counting_loop(10)
        func = module.function("main")
        stats = peel_short_loops(func)
        assert stats.loops_peeled == 0
        assert "too many" in stats.rejected["body"]
        assert run_module(module).value == 45

    def test_inner_loop_of_nest_peeled(self):
        module = build_nested_loop(outer=8, inner=4)
        expected = run_module(module).value
        func = module.function("main")
        stats = peel_short_loops(func)
        assert stats.loops_peeled == 1
        verify_module(module)
        # only the outer loop remains
        loops = find_loops(func)
        assert len(loops) == 1
        assert loops[0].header == "outer"
        assert run_module(module).value == expected

    def test_op_budget_respected(self):
        module = build_counting_loop(5)
        func = module.function("main")
        stats = peel_short_loops(func, max_new_ops=4)
        assert stats.loops_peeled == 0
        assert "new ops" in stats.rejected["body"]

    def test_branch_removed_from_copies(self):
        module = build_counting_loop(3)
        func = module.function("main")
        peel_short_loops(func)
        body = func.block("body")
        assert not any(op.opcode == Opcode.BR for op in body.ops)
        # 3 copies of the 2 non-branch ops
        assert len(body.ops) == 6

    def test_unknown_trip_count_rejected(self):
        module = build_counting_loop(4)
        func = module.function("main")
        # replace the constant bound with an unanalyzable register
        body = func.block("body")
        bound_reg = func.new_reg()
        body.ops[-1].srcs[1] = bound_reg
        body.ops.insert(0, body.ops[0].copy())
        body.ops[0].dests = [bound_reg]
        stats = peel_short_loops(func)
        assert stats.loops_peeled == 0

    def test_iteration_one_loop(self):
        module = build_counting_loop(1)
        func = module.function("main")
        stats = peel_short_loops(func)
        assert stats.loops_peeled == 1
        assert run_module(module).value == 0
