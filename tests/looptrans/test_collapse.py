"""Unit + integration tests for predicated loop collapsing."""

from repro.analysis.loops import find_loops, is_simple_loop
from repro.ir import (
    Function,
    GlobalRef,
    IRBuilder,
    Imm,
    Module,
    Opcode,
    verify_module,
)
from repro.looptrans.cloop import convert_counted_loops
from repro.looptrans.collapse import collapse_nested_loops
from repro.sim.interp import run_module

from tests.helpers import build_nested_loop


def build_add_block(rows=8, cols=8, incr=8):
    """The mpeg2dec Add_Block loop of Figure 2:

    for (i = 0; i < rows; i++) { for (j = 0; j < cols; j++)
        *rfp++ = clip(*bp++ + 128); rfp += incr; }
    """
    module = Module()
    module.add_global("bp", rows * cols, [(k * 7) % 256 - 128 for k in range(rows * cols)])
    module.add_global("rfp", rows * (cols + incr))
    func = Function("main")
    module.add_function(func)
    b = IRBuilder(func)

    entry = func.add_block("entry")
    outer = func.add_block("outer")
    inner = func.add_block("inner")
    tail = func.add_block("tail")
    done = func.add_block("done")

    b.at(entry)
    r3 = b.mov(GlobalRef("bp"))      # source pointer
    r4 = b.mov(GlobalRef("rfp"))     # dest pointer
    r1 = b.movi(0)                   # outer induction
    r6 = b.movi(incr)

    b.at(outer)
    r2 = b.movi(0)                   # inner induction

    b.at(inner)
    r5 = b.load(r3, 0)
    v = b.add(r5, Imm(128))
    c = b.emit(Opcode.CLIP, [v, Imm(0), Imm(255)])
    b.store(r4, 0, c)
    b.add(r3, Imm(1), dest=r3)
    b.add(r4, Imm(1), dest=r4)
    b.add(r2, Imm(1), dest=r2)
    b.br("lt", r2, Imm(cols), "inner")

    b.at(tail)
    b.add(r4, r6, dest=r4)
    b.add(r1, Imm(1), dest=r1)
    b.br("lt", r1, Imm(rows), "outer")

    b.at(done)
    b.ret(Imm(0))
    return module


def _rfp_contents(result, rows=8, cols=8, incr=8):
    base = result.loader.global_addr("rfp")
    return result.memory.read_block(base, rows * (cols + incr))


class TestCollapseAddBlock:
    def test_collapsed_to_single_simple_loop(self):
        module = build_add_block()
        func = module.function("main")
        stats = collapse_nested_loops(func)
        assert stats.loops_collapsed == 1
        verify_module(module)
        loops = find_loops(func)
        assert len(loops) == 1
        assert is_simple_loop(func, loops[0])
        assert func.block(loops[0].header).hyperblock

    def test_semantics_preserved(self):
        baseline = run_module(build_add_block())
        expected = _rfp_contents(baseline)
        module = build_add_block()
        collapse_nested_loops(module.function("main"))
        result = run_module(module)
        assert _rfp_contents(result) == expected

    def test_non_square_shapes(self):
        for rows, cols in ((1, 8), (8, 1), (3, 5), (2, 2)):
            baseline = run_module(build_add_block(rows, cols))
            expected = _rfp_contents(baseline, rows, cols)
            module = build_add_block(rows, cols)
            stats = collapse_nested_loops(module.function("main"))
            assert stats.loops_collapsed == 1
            result = run_module(module)
            assert _rfp_contents(result, rows, cols) == expected

    def test_total_count_annotation(self):
        module = build_add_block(8, 8)
        func = module.function("main")
        collapse_nested_loops(func)
        loop = find_loops(func)[0]
        term = func.block(loop.header).terminator
        assert term.attrs.get("collapse_total") == 64

    def test_outer_code_guarded(self):
        module = build_add_block()
        func = module.function("main")
        collapse_nested_loops(func)
        loop_blk = func.block(find_loops(func)[0].header)
        guarded = [op for op in loop_blk.ops if op.guard is not None]
        # inner-induction reset, rfp += incr, outer increment, outer exit
        assert len(guarded) >= 3


class TestCollapsePlusCloop:
    def test_figure_2d_form(self):
        module = build_add_block(8, 8)
        baseline = _rfp_contents(run_module(build_add_block(8, 8)))
        func = module.function("main")
        collapse_nested_loops(func)
        stats = convert_counted_loops(func)
        assert stats.loops_converted == 1
        verify_module(module)
        loop = find_loops(func)[0]
        block = func.block(loop.header)
        assert block.terminator.opcode == Opcode.BR_CLOOP
        # the outer-exit branch is gone: fetch falls out of the loop
        assert not any(op.attrs.get("outer_exit") for op in block.ops)
        result = run_module(module)
        assert _rfp_contents(result) == baseline

    def test_cloop_on_plain_counting_loop(self):
        from tests.helpers import build_counting_loop

        module = build_counting_loop(10)
        func = module.function("main")
        stats = convert_counted_loops(func)
        assert stats.loops_converted == 1
        assert run_module(module).value == 45
        body = func.block("body")
        assert body.terminator.opcode == Opcode.BR_CLOOP
        pre = func.block("entry")
        assert any(op.opcode == Opcode.CLOOP_SET for op in pre.ops)


class TestCollapseHeuristics:
    def test_large_outer_code_rejected(self):
        module = build_add_block()
        func = module.function("main")
        stats = collapse_nested_loops(func, max_outer_ops=1)
        assert stats.loops_collapsed == 0
        assert "too large" in stats.rejected["outer"]

    def test_excessive_inner_trips_rejected(self):
        module = build_add_block(rows=2, cols=100)
        func = module.function("main")
        stats = collapse_nested_loops(func, max_inner_trips=64)
        assert stats.loops_collapsed == 0
        assert "too large" in stats.rejected["outer"]

    def test_triple_nest_collapses_iteratively(self):
        # nested_loop has latch code after the inner loop: the canonical
        # H/B/T shape; collapsing then leaves a single loop
        module = build_nested_loop(outer=4, inner=4)
        expected = run_module(module).value
        func = module.function("main")
        stats = collapse_nested_loops(func)
        assert stats.loops_collapsed == 1
        assert run_module(module).value == expected
