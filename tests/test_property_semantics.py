"""Property-based semantics-preservation tests.

Random programs (straight-line arithmetic, diamonds inside loops,
counted nests — see ``tests/strategies.py``) run through the optimizer /
if-conversion / the full aggressive pipeline must always compute the
same result as the original IR — the invariant the whole compiler rests
on.  Example counts scale up automatically under the nightly hypothesis
profile (``HYPOTHESIS_PROFILE=nightly``, see ``tests/conftest.py``).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import compile_source
from repro.opt.dce import eliminate_dead_code
from repro.opt.local import optimize_function
from repro.opt.reassoc import reassociate_function
from repro.opt.simplify_cfg import simplify_cfg
from repro.pipeline import compile_aggressive, compile_traditional, run_compiled
from repro.predication.hyperblock import form_loop_hyperblocks
from repro.sim.interp import run_module

from tests.conftest import nightly_examples
from tests.strategies import (
    fuzz_program,
    loop_with_diamond_program,
    nested_loop_program,
    straightline_program,
)


@settings(max_examples=nightly_examples(30), deadline=None)
@given(straightline_program())
def test_local_opt_preserves_straightline(src):
    module = compile_source(src)
    expected = run_module(module).value
    func = module.function("main")
    optimize_function(func)
    eliminate_dead_code(func)
    reassociate_function(func)
    assert run_module(module).value == expected


@settings(max_examples=nightly_examples(20), deadline=None)
@given(loop_with_diamond_program())
def test_if_conversion_preserves_loops(src):
    module = compile_source(src)
    expected = run_module(module).value
    func = module.function("main")
    simplify_cfg(func)
    form_loop_hyperblocks(func)
    assert run_module(module).value == expected


@settings(max_examples=nightly_examples(10, 100), deadline=None)
@given(loop_with_diamond_program())
def test_full_aggressive_pipeline_preserves(src):
    module = compile_source(src)
    expected = run_module(module).value
    outcome = run_compiled(compile_aggressive(module, buffer_capacity=64))
    assert outcome.result.value == expected


@settings(max_examples=nightly_examples(10, 100), deadline=None)
@given(nested_loop_program())
def test_nest_transforms_preserve(src):
    module = compile_source(src)
    expected = run_module(module).value
    for compile_fn in (compile_traditional, compile_aggressive):
        outcome = run_compiled(compile_fn(module, buffer_capacity=64))
        assert outcome.result.value == expected


@settings(max_examples=nightly_examples(20), deadline=None)
@given(st.integers(-1000, 1000), st.integers(-1000, 1000),
       st.integers(-1000, 1000))
def test_frontend_expression_oracle(a, b, c):
    """MKC expression evaluation agrees with Python on a mixed expression."""
    src = f"""
int main() {{
    int a = {a};
    int b = {b};
    int c = {c};
    return (a * 3 - (b | 12)) ^ (c & a) + (b >> 2);
}}"""
    module = compile_source(src)
    from repro.sim.values import wrap32

    expected = wrap32((a * 3 - (b | 12)) ^ ((c & a) + (b >> 2)))
    assert run_module(module).value == expected


@pytest.mark.slow
@settings(max_examples=nightly_examples(25, 150), deadline=None)
@given(fuzz_program())
def test_fuzz_grammar_full_pipeline_preserves(src):
    """Programs from the fuzzer grammar survive both pipelines (a
    hypothesis-driven slice of what ``python -m repro.fuzz run`` covers)."""
    module = compile_source(src)
    expected = run_module(module).value
    for compile_fn in (compile_traditional, compile_aggressive):
        outcome = run_compiled(compile_fn(module, buffer_capacity=64))
        assert outcome.result.value == expected
