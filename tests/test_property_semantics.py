"""Property-based semantics-preservation tests.

Random programs (straight-line arithmetic, diamonds inside loops,
counted nests) run through the optimizer / if-conversion / the full
aggressive pipeline must always compute the same result as the original
IR — the invariant the whole compiler rests on.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import compile_source
from repro.opt.dce import eliminate_dead_code
from repro.opt.local import optimize_function
from repro.opt.reassoc import reassociate_function
from repro.opt.simplify_cfg import simplify_cfg
from repro.pipeline import compile_aggressive, compile_traditional, run_compiled
from repro.predication.hyperblock import form_loop_hyperblocks
from repro.sim.interp import run_module

_BINOPS = ["+", "-", "*", "&", "|", "^"]


@st.composite
def straightline_program(draw):
    """A chain of assignments over a small set of variables."""
    n_vars = draw(st.integers(min_value=2, max_value=5))
    names = [f"v{i}" for i in range(n_vars)]
    lines = [f"int {name} = {draw(st.integers(-100, 100))};"
             for name in names]
    for _ in range(draw(st.integers(1, 12))):
        dst = draw(st.sampled_from(names))
        a = draw(st.sampled_from(names + [str(draw(st.integers(-50, 50)))]))
        b = draw(st.sampled_from(names + [str(draw(st.integers(-50, 50)))]))
        op = draw(st.sampled_from(_BINOPS))
        lines.append(f"{dst} = {a} {op} {b};")
    result = " + ".join(names)
    body = "\n    ".join(lines)
    return f"int main() {{\n    {body}\n    return {result};\n}}"


@st.composite
def loop_with_diamond_program(draw):
    bound = draw(st.integers(1, 30))
    threshold = draw(st.integers(-20, 20))
    mul = draw(st.integers(-5, 5))
    add = draw(st.integers(-5, 5))
    return f"""
int main() {{
    int s = 0;
    for (int i = 0; i < {bound}; i++) {{
        int v = i * 7 % 13 - 6;
        if (v < {threshold}) s += v * {mul};
        else s += v + {add};
    }}
    return s;
}}"""


@st.composite
def nested_loop_program(draw):
    outer = draw(st.integers(1, 6))
    inner = draw(st.integers(1, 6))
    return f"""
int main() {{
    int acc = 0;
    for (int j = 0; j < {outer}; j++) {{
        for (int i = 0; i < {inner}; i++)
            acc += j * {inner} + i;
        acc += 1000;
    }}
    return acc;
}}"""


@settings(max_examples=30, deadline=None)
@given(straightline_program())
def test_local_opt_preserves_straightline(src):
    module = compile_source(src)
    expected = run_module(module).value
    func = module.function("main")
    optimize_function(func)
    eliminate_dead_code(func)
    reassociate_function(func)
    assert run_module(module).value == expected


@settings(max_examples=20, deadline=None)
@given(loop_with_diamond_program())
def test_if_conversion_preserves_loops(src):
    module = compile_source(src)
    expected = run_module(module).value
    func = module.function("main")
    simplify_cfg(func)
    form_loop_hyperblocks(func)
    assert run_module(module).value == expected


@settings(max_examples=10, deadline=None)
@given(loop_with_diamond_program())
def test_full_aggressive_pipeline_preserves(src):
    module = compile_source(src)
    expected = run_module(module).value
    outcome = run_compiled(compile_aggressive(module, buffer_capacity=64))
    assert outcome.result.value == expected


@settings(max_examples=10, deadline=None)
@given(nested_loop_program())
def test_nest_transforms_preserve(src):
    module = compile_source(src)
    expected = run_module(module).value
    for compile_fn in (compile_traditional, compile_aggressive):
        outcome = run_compiled(compile_fn(module, buffer_capacity=64))
        assert outcome.result.value == expected


@settings(max_examples=20, deadline=None)
@given(st.integers(-1000, 1000), st.integers(-1000, 1000),
       st.integers(-1000, 1000))
def test_frontend_expression_oracle(a, b, c):
    """MKC expression evaluation agrees with Python on a mixed expression."""
    src = f"""
int main() {{
    int a = {a};
    int b = {b};
    int c = {c};
    return (a * 3 - (b | 12)) ^ (c & a) + (b >> 2);
}}"""
    module = compile_source(src)
    from repro.sim.values import wrap32

    expected = wrap32((a * 3 - (b | 12)) ^ ((c & a) + (b >> 2)))
    assert run_module(module).value == expected
