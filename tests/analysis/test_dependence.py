"""Unit tests for dependence-graph construction."""

from repro.analysis.dependence import build_dependence_graph
from repro.analysis.predrel import PredicateRelations
from repro.ir import BasicBlock, Imm, Opcode, Operation, ireg, preg


def _ops_add_chain():
    return [
        Operation(Opcode.MOV, [ireg(0)], [Imm(1)]),
        Operation(Opcode.ADD, [ireg(1)], [ireg(0), Imm(2)]),
        Operation(Opcode.ADD, [ireg(2)], [ireg(1), Imm(3)]),
    ]


def _edges(graph, kind=None):
    return [
        (e.src, e.dst, e.kind, e.latency, e.distance)
        for e in graph.edges
        if kind is None or e.kind == kind
    ]


class TestRegisterDeps:
    def test_flow_chain(self):
        graph = build_dependence_graph(_ops_add_chain())
        flow = _edges(graph, "flow")
        assert (0, 1, "flow", 1, 0) in flow
        assert (1, 2, "flow", 1, 0) in flow
        assert (0, 2, "flow", 1, 0) not in flow

    def test_flow_latency_uses_producer(self):
        ops = [
            Operation(Opcode.LD, [ireg(0)], [ireg(9), Imm(0)]),
            Operation(Opcode.ADD, [ireg(1)], [ireg(0), Imm(1)]),
        ]
        graph = build_dependence_graph(ops)
        assert (0, 1, "flow", 3, 0) in _edges(graph)

    def test_anti_dep(self):
        ops = [
            Operation(Opcode.ADD, [ireg(1)], [ireg(0), Imm(1)]),
            Operation(Opcode.MOV, [ireg(0)], [Imm(5)]),
        ]
        graph = build_dependence_graph(ops)
        assert (0, 1, "anti", 0, 0) in _edges(graph)

    def test_output_dep(self):
        ops = [
            Operation(Opcode.LD, [ireg(0)], [ireg(9), Imm(0)]),
            Operation(Opcode.MOV, [ireg(0)], [Imm(5)]),
        ]
        graph = build_dependence_graph(ops)
        # load latency 3 vs mov latency 1: output latency 3
        assert (0, 1, "output", 3, 0) in _edges(graph)

    def test_guarded_write_does_not_kill_flow(self):
        # def r0; guarded def r0; use r0 -> use depends on BOTH defs
        ops = [
            Operation(Opcode.MOV, [ireg(0)], [Imm(1)]),
            Operation(Opcode.MOV, [ireg(0)], [Imm(2)], guard=preg(0)),
            Operation(Opcode.ADD, [ireg(1)], [ireg(0), Imm(0)]),
        ]
        graph = build_dependence_graph(ops)
        flow = _edges(graph, "flow")
        assert (0, 2, "flow", 1, 0) in flow
        assert (1, 2, "flow", 1, 0) in flow

    def test_guard_register_is_flow_source(self):
        ops = [
            Operation(Opcode.PRED_DEF, [preg(0)], [ireg(0), Imm(3)],
                      attrs={"cmp": "lt", "ptypes": ["ut"]}),
            Operation(Opcode.ADD, [ireg(1)], [ireg(0), Imm(1)], guard=preg(0)),
        ]
        graph = build_dependence_graph(ops)
        assert (0, 1, "flow", 1, 0) in _edges(graph)


class TestDisjointGuardRelaxation:
    def _block(self):
        pd = Operation(Opcode.PRED_DEF, [preg(1), preg(2)], [ireg(5), Imm(7)],
                       attrs={"cmp": "eq", "ptypes": ["ut", "uf"]})
        mov = Operation(Opcode.MOV, [ireg(2)], [Imm(0)], guard=preg(1))
        add = Operation(Opcode.ADD, [ireg(2)], [ireg(2), Imm(1)], guard=preg(2))
        return [pd, mov, add]

    def test_disjoint_guards_drop_reg_conflicts(self):
        ops = self._block()
        rel = PredicateRelations(BasicBlock("b", ops))
        graph = build_dependence_graph(ops, relations=rel)
        pairs = [(e.src, e.dst, e.kind) for e in graph.edges]
        # the Figure 2(d) effect: mov and add are independent
        assert (1, 2, "flow") not in pairs
        assert (1, 2, "output") not in pairs
        assert (1, 2, "anti") not in pairs

    def test_without_relations_conflicts_remain(self):
        ops = self._block()
        graph = build_dependence_graph(ops)
        pairs = [(e.src, e.dst, e.kind) for e in graph.edges]
        assert (1, 2, "flow") in pairs or (1, 2, "output") in pairs


class TestMemoryDeps:
    def test_store_load_same_unknown_address(self):
        ops = [
            Operation(Opcode.ST, [], [ireg(0), Imm(0), ireg(1)]),
            Operation(Opcode.LD, [ireg(2)], [ireg(3), Imm(0)]),
        ]
        graph = build_dependence_graph(ops)
        assert (0, 1, "mem", 1, 0) in _edges(graph)

    def test_same_base_different_offsets_independent(self):
        ops = [
            Operation(Opcode.ST, [], [ireg(0), Imm(0), ireg(1)]),
            Operation(Opcode.LD, [ireg(2)], [ireg(0), Imm(1)]),
        ]
        graph = build_dependence_graph(ops)
        assert _edges(graph, "mem") == []

    def test_base_redefinition_blocks_disambiguation(self):
        ops = [
            Operation(Opcode.ST, [], [ireg(0), Imm(0), ireg(1)]),
            Operation(Opcode.ADD, [ireg(0)], [ireg(0), Imm(4)]),
            Operation(Opcode.LD, [ireg(2)], [ireg(0), Imm(1)]),
        ]
        graph = build_dependence_graph(ops)
        assert (0, 2, "mem", 1, 0) in _edges(graph)

    def test_loads_do_not_conflict(self):
        ops = [
            Operation(Opcode.LD, [ireg(1)], [ireg(0), Imm(0)]),
            Operation(Opcode.LD, [ireg(2)], [ireg(0), Imm(0)]),
        ]
        graph = build_dependence_graph(ops)
        assert _edges(graph, "mem") == []

    def test_store_store_ordered(self):
        ops = [
            Operation(Opcode.ST, [], [ireg(0), Imm(0), ireg(1)]),
            Operation(Opcode.ST, [], [ireg(2), Imm(0), ireg(3)]),
        ]
        graph = build_dependence_graph(ops)
        assert (0, 1, "mem", 1, 0) in _edges(graph)


class TestControlDeps:
    def _branchy(self):
        return [
            Operation(Opcode.ADD, [ireg(1)], [ireg(0), Imm(1)]),
            Operation(Opcode.BR, [], [ireg(1), Imm(0)],
                      attrs={"cmp": "eq", "target": "exit"}),
            Operation(Opcode.ADD, [ireg(2)], [ireg(1), Imm(2)]),
            Operation(Opcode.ST, [], [ireg(9), Imm(0), ireg(2)]),
        ]

    def test_ops_cannot_sink_below_branch(self):
        graph = build_dependence_graph(self._branchy())
        assert (0, 1, "ctrl", 0, 0) in _edges(graph)

    def test_store_cannot_hoist_above_branch(self):
        graph = build_dependence_graph(self._branchy())
        assert (1, 3, "ctrl", 1, 0) in _edges(graph)

    def test_speculable_op_conservative_without_liveinfo(self):
        graph = build_dependence_graph(self._branchy())
        assert (1, 2, "ctrl", 1, 0) in _edges(graph)

    def test_speculable_op_hoists_with_liveinfo(self):
        ops = self._branchy()
        exit_live = {1: {ireg(1)}}  # r2 not live on the exit path
        graph = build_dependence_graph(ops, exit_live=exit_live)
        assert (1, 2, "ctrl", 1, 0) not in _edges(graph)
        # but the store still may not hoist
        assert (1, 3, "ctrl", 1, 0) in _edges(graph)

    def test_dest_live_on_exit_blocks_hoist(self):
        ops = self._branchy()
        exit_live = {1: {ireg(1), ireg(2)}}
        graph = build_dependence_graph(ops, exit_live=exit_live)
        assert (1, 2, "ctrl", 1, 0) in _edges(graph)

    def test_cloop_set_before_br_cloop(self):
        ops = [
            Operation(Opcode.CLOOP_SET, [], [Imm(8)], attrs={"lc": "lc0"}),
            Operation(Opcode.BR_CLOOP, [], [], attrs={"target": "x", "lc": "lc0"}),
        ]
        graph = build_dependence_graph(ops)
        assert (0, 1, "ctrl", 1, 0) in _edges(graph)


class TestLoopCarried:
    def test_recurrence_edge(self):
        # acc = acc + x : flow dep to next iteration, distance 1
        ops = [
            Operation(Opcode.ADD, [ireg(0)], [ireg(0), ireg(1)]),
            Operation(Opcode.BR_CLOOP, [], [], attrs={"target": "b", "lc": "l"}),
        ]
        graph = build_dependence_graph(ops, loop_carried=True)
        assert (0, 0, "flow", 1, 1) in _edges(graph)

    def test_independent_ops_have_no_carried_reg_edges(self):
        ops = [
            Operation(Opcode.ADD, [ireg(0)], [ireg(1), Imm(1)]),
            Operation(Opcode.ADD, [ireg(2)], [ireg(3), Imm(1)]),
        ]
        graph = build_dependence_graph(ops, loop_carried=True)
        kinds = {e.kind for e in graph.edges if e.distance == 1}
        assert "flow" not in kinds

    def test_memory_carried_dependence(self):
        # store then load via different pointers: must serialize across iters
        ops = [
            Operation(Opcode.LD, [ireg(2)], [ireg(1), Imm(0)]),
            Operation(Opcode.ST, [], [ireg(0), Imm(0), ireg(2)]),
        ]
        graph = build_dependence_graph(ops, loop_carried=True)
        assert (1, 0, "mem", 1, 1) in _edges(graph)

    def test_critical_path(self):
        graph = build_dependence_graph(_ops_add_chain())
        assert graph.critical_path_length() == 3
