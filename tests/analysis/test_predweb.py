"""Unit and property tests for the global predicate web analysis.

The property test enumerates every parameter assignment of a small
generated DAG function, interprets it concretely, and checks each claim
the web makes at each executed program point — predicate-pair
disjointness, implication and definedness must hold on every execution.
"""

from hypothesis import given, settings

from repro.analysis.predweb import UNDEF, PredicateWeb
from repro.ir import Function, Imm, IRBuilder, Opcode, preg
from repro.ir.preddef import pred_update

from tests.strategies import PRED_PARAM_VALUES, predicated_dag_function

_CMP = {
    "eq": lambda a, b: int(a == b),
    "ne": lambda a, b: int(a != b),
    "lt": lambda a, b: int(a < b),
    "le": lambda a, b: int(a <= b),
    "gt": lambda a, b: int(a > b),
    "ge": lambda a, b: int(a >= b),
}


def _two_block_function():
    func = Function("main", [])
    b = IRBuilder(func)
    entry = func.add_block("entry")
    body = func.add_block("body")
    return func, b, entry, body


class TestDefinedness:
    def test_cross_block_define_is_defined(self):
        func, b, entry, body = _two_block_function()
        p = func.new_pred()
        b.at(entry)
        x = b.movi(3)
        b.pred_def("lt", x, Imm(10), [p], ["ut"])
        b.at(body)
        y = b.add(x, Imm(1), guard=p)
        b.ret(y)
        web = PredicateWeb(func)
        assert not web.at("body", 0).possibly_undefined(p)

    def test_partial_define_chain_is_possibly_undefined(self):
        # an or-accumulation with no unconditional root leaves p unwritten
        # on the guard-false path
        func, b, entry, body = _two_block_function()
        p = func.new_pred()
        q = func.new_pred()
        b.at(entry)
        x = b.movi(3)
        b.pred_def("lt", x, Imm(10), [q], ["ut"])
        b.pred_def("gt", x, Imm(0), [p], ["ot"], guard=q)
        b.at(body)
        y = b.add(x, Imm(1), guard=p)
        b.ret(y)
        web = PredicateWeb(func)
        assert web.at("body", 0).possibly_undefined(p)

    def test_entry_predicate_param_is_defined(self):
        p = preg(0)
        func = Function("main", [p])
        func.new_pred()
        b = IRBuilder(func)
        entry = func.add_block("entry")
        b.at(entry)
        b.ret(Imm(0))
        web = PredicateWeb(func)
        assert not web.at("entry", 0).possibly_undefined(p)

    def test_never_written_is_undefined(self):
        func, b, entry, body = _two_block_function()
        p = func.new_pred()
        b.at(entry)
        x = b.movi(3)
        b.at(body)
        b.ret(x)
        web = PredicateWeb(func)
        assert web.at("entry", 0).possibly_undefined(p)
        assert UNDEF in web.at("entry", 0).sites(p)


class TestGlobalFacts:
    def test_complement_pair_disjoint_across_blocks(self):
        func, b, entry, body = _two_block_function()
        p = func.new_pred()
        q = func.new_pred()
        b.at(entry)
        x = b.movi(3)
        b.pred_def("lt", x, Imm(10), [p, q], ["ut", "uf"])
        b.at(body)
        b.ret(x)
        web = PredicateWeb(func)
        point = web.at("body", 0)
        assert point.disjoint(p, q)
        assert point.disjoint(q, p)

    def test_zero_rooted_or_chain_subset_of_guard(self):
        # pred_set q 0; (g) q |= cond  =>  q ⊆ g (exact zeroish case)
        func, b, entry, body = _two_block_function()
        g = func.new_pred()
        q = func.new_pred()
        b.at(entry)
        x = b.movi(3)
        b.pred_def("lt", x, Imm(10), [g], ["ut"])
        b.pred_set(q, 0)
        b.pred_def("gt", x, Imm(0), [q], ["ot"], guard=g)
        b.at(body)
        b.ret(x)
        web = PredicateWeb(func)
        point = web.at("body", 0)
        assert point.implies(q, g)
        assert not point.implies(g, q)
        assert point.implies_execution(q, g)

    def test_meet_intersects_facts(self):
        # p ∦ q is only established on one branch arm — not valid at join
        func = Function("main", [])
        b = IRBuilder(func)
        entry = func.add_block("entry")
        arm = func.add_block("arm")
        join = func.add_block("join")
        p = func.new_pred()
        q = func.new_pred()
        b.at(entry)
        x = b.movi(3)
        b.pred_set(p, 1)
        b.pred_set(q, 1)
        b.br("lt", x, Imm(0), "join")
        b.at(arm)
        b.pred_def("lt", x, Imm(10), [p, q], ["ut", "uf"])
        b.at(join)
        b.ret(x)
        web = PredicateWeb(func)
        assert not web.at("arm", 0).disjoint(p, q)  # before the def
        assert web.at("arm", 1).disjoint(p, q)      # after it
        assert not web.at("join", 0).disjoint(p, q)

    def test_redefinition_starts_new_web(self):
        # facts about the first web of p must not survive its replacement
        func, b, entry, body = _two_block_function()
        p = func.new_pred()
        q = func.new_pred()
        b.at(entry)
        x = b.movi(3)
        b.pred_def("lt", x, Imm(10), [p, q], ["ut", "uf"])
        b.pred_def("gt", x, Imm(5), [p], ["ut"])
        b.at(body)
        b.ret(x)
        web = PredicateWeb(func)
        assert not web.at("body", 0).disjoint(p, q)

    def test_site_pinning_across_redefinition(self):
        # the site set captured *before* p's redefinition keeps its facts
        # at later points of the same block walk
        func, b, entry, body = _two_block_function()
        p = func.new_pred()
        q = func.new_pred()
        b.at(entry)
        x = b.movi(3)
        b.pred_def("lt", x, Imm(10), [p, q], ["ut", "uf"])
        redef_index = len(entry.ops)
        b.pred_def("gt", x, Imm(5), [p], ["ut"])
        b.ret(x)
        web = PredicateWeb(func)
        points = web.points("entry")
        old_sites = points[redef_index].sites(p)
        later = points[redef_index + 1]
        assert later.disjoint_sites(old_sites, later.sites(q))
        assert not later.disjoint(p, q)


class TestPropertySoundness:
    @staticmethod
    def _value(env, operand):
        if isinstance(operand, Imm):
            return operand.value
        return env[operand]

    def _execute(self, func, param_values):
        """Interpret ``func``; yield (label, index, preds, written) at
        every point reached, including each block's exit point."""
        ints = dict(zip(func.params, param_values))
        preds: dict = {}
        written: set = set()
        label = func.entry.label
        for _ in range(1000):
            block = func.block(label)
            jump = None
            for index, op in enumerate(block.ops):
                yield label, index, preds, written
                if op.opcode is Opcode.PRED_SET:
                    if op.guard is None or preds.get(op.guard, 0):
                        preds[op.dests[0]] = 1 if op.srcs[0].value else 0
                        written.add(op.dests[0])
                elif op.opcode is Opcode.PRED_DEF:
                    g = 1 if op.guard is None else preds.get(op.guard, 0)
                    cond = _CMP[op.attrs["cmp"]](
                        self._value(ints, op.srcs[0]),
                        self._value(ints, op.srcs[1]))
                    for dest, ptype in zip(op.dests, op.attrs["ptypes"]):
                        update = pred_update(ptype, g, cond)
                        if update is not None:
                            preds[dest] = update
                            written.add(dest)
                elif op.opcode is Opcode.BR:
                    if _CMP[op.attrs["cmp"]](
                            self._value(ints, op.srcs[0]),
                            self._value(ints, op.srcs[1])):
                        jump = op.target
                        break
                elif op.opcode is Opcode.JUMP:
                    jump = op.target
                    break
                elif op.opcode is Opcode.RET:
                    yield label, index, preds, written
                    return
            else:
                yield label, len(block.ops), preds, written
            if jump is not None:
                label = jump
            else:  # fallthrough in layout order
                labels = [blk.label for blk in func.blocks]
                label = labels[labels.index(label) + 1]
        raise AssertionError("runaway execution")

    @settings(max_examples=60, deadline=None)
    @given(func=predicated_dag_function())
    def test_web_claims_hold_on_every_execution(self, func):
        web = PredicateWeb(func)
        pregs = sorted({r for block in func.blocks for op in block.ops
                        for r in [*op.dests, op.guard]
                        if r is not None and r.is_predicate},
                       key=repr)
        points = {block.label: web.points(block.label)
                  for block in func.blocks}
        assignments = [[]]
        for _ in func.params:
            assignments = [a + [v] for a in assignments
                           for v in PRED_PARAM_VALUES]
        for values in assignments:
            for label, index, preds, written in self._execute(func, values):
                point = points[label][index]
                for a in pregs:
                    if not point.possibly_undefined(a):
                        assert a in written, (label, index, a, values)
                    sa = point.sites(a)
                    if point.disjoint_sites(sa, sa):
                        assert not preds.get(a, 0), (label, index, a, values)
                    for b in pregs:
                        if a is b:
                            continue
                        if point.disjoint(a, b):
                            assert not (preds.get(a, 0) and preds.get(b, 0)), \
                                (label, index, a, b, values)
                        if point.implies(a, b):
                            assert (not preds.get(a, 0)) or preds.get(b, 0), \
                                (label, index, a, b, values)
