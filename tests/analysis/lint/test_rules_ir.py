"""One deliberately-broken fixture per IR-phase lint rule.

Each test builds the smallest program that violates exactly the rule under
test and asserts the diagnostic carries that rule's id, so a rule rename or
a silently-dead rule fails loudly.
"""

from repro.analysis.lint import Severity, lint_module
from repro.ir import Function, Imm, IRBuilder, Module, ireg, preg
from repro.predication.slots import SLOTS_PER_DEFINE

from tests.helpers import build_counting_loop, build_if_diamond


def _module_of(func: Function) -> Module:
    module = Module("t")
    module.add_function(func)
    return module


def _rules_fired(module: Module, rule_id: str | None = None):
    diags = lint_module(module,
                        rule_ids=[rule_id] if rule_id is not None else None)
    return diags


def test_clean_modules_lint_clean():
    for module in (build_counting_loop(4), build_if_diamond()):
        assert lint_module(module) == []


def test_use_before_def():
    func = Function("f")
    b = IRBuilder(func, func.add_block("entry"))
    b.add(ireg(7), Imm(1))
    b.ret()
    diags = _rules_fired(_module_of(func), "use-before-def")
    assert [d.rule for d in diags] == ["use-before-def"]
    assert diags[0].severity is Severity.ERROR
    assert diags[0].location == "f/entry#0"


def test_undef_guard_owns_guard_reads():
    func = Function("f")
    b = IRBuilder(func, func.add_block("entry"))
    b.movi(1, guard=preg(3))
    b.ret()
    module = _module_of(func)
    diags = _rules_fired(module, "undef-guard")
    assert [d.rule for d in diags] == ["undef-guard"]
    # the guard read belongs to undef-guard, not use-before-def
    assert _rules_fired(module, "use-before-def") == []


def test_dead_pred_def():
    func = Function("f", [ireg(0)])
    b = IRBuilder(func, func.add_block("entry"))
    b.pred_def("lt", ireg(0), Imm(4), [preg(0)], ["ut"])
    b.ret(ireg(0))
    diags = _rules_fired(_module_of(func), "dead-pred-def")
    assert [d.rule for d in diags] == ["dead-pred-def"]
    assert diags[0].severity is Severity.WARNING


def test_psens_unguarded():
    func = Function("f", [ireg(0)])
    b = IRBuilder(func, func.add_block("entry"))
    b.add(ireg(0), Imm(1))
    func.block("entry").ops[-1].attrs["psens"] = True
    b.ret(ireg(0))
    diags = _rules_fired(_module_of(func), "psens-unguarded")
    assert [d.rule for d in diags] == ["psens-unguarded"]


def test_slot_route_shape_non_define():
    func = Function("f", [ireg(0)])
    b = IRBuilder(func, func.add_block("entry"))
    b.add(ireg(0), Imm(1))
    func.block("entry").ops[-1].attrs["slot_route"] = {repr(ireg(0)): [0]}
    b.ret(ireg(0))
    diags = _rules_fired(_module_of(func), "slot-route-shape")
    assert diags and all(d.rule == "slot-route-shape" for d in diags)


def test_slot_route_shape_bad_key_and_slot():
    func = Function("f", [ireg(0)])
    b = IRBuilder(func, func.add_block("entry"))
    op = b.pred_def("lt", ireg(0), Imm(4), [preg(0)], ["ut"])
    op.attrs["slot_route"] = {repr(preg(9)): [99]}
    b.movi(1, guard=preg(0))
    b.ret(ireg(0))
    diags = _rules_fired(_module_of(func), "slot-route-shape")
    messages = " | ".join(d.message for d in diags)
    assert "not one of its destinations" in messages
    assert "slot 99" in messages


def test_slot_route_width():
    func = Function("f", [ireg(0)])
    b = IRBuilder(func, func.add_block("entry"))
    op = b.pred_def("lt", ireg(0), Imm(4), [preg(0)], ["ut"])
    op.attrs["slot_route"] = {
        repr(preg(0)): list(range(SLOTS_PER_DEFINE + 1))
    }
    b.movi(1, guard=preg(0))
    b.ret(ireg(0))
    diags = _rules_fired(_module_of(func), "slot-route-width")
    assert [d.rule for d in diags] == ["slot-route-width"]
    assert diags[0].severity is Severity.WARNING


def test_unreachable_block():
    func = Function("f")
    b = IRBuilder(func, func.add_block("entry"))
    b.ret(Imm(0))
    dead = func.add_block("dead")
    b.at(dead)
    b.ret(Imm(1))
    diags = _rules_fired(_module_of(func), "unreachable-block")
    assert [d.rule for d in diags] == ["unreachable-block"]
    assert diags[0].block == "dead"
