"""The ``python -m repro.analysis.lint`` sweep CLI."""

import json

from repro.analysis.lint import all_rules
from repro.analysis.lint.cli import main


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in all_rules():
        assert rule.rule_id in out


def test_unknown_benchmark_exits_2(capsys):
    assert main(["--benchmarks", "nosuch"]) == 2
    assert "unknown benchmark" in capsys.readouterr().err


def test_unknown_pipeline_exits_2(capsys):
    assert main(["--pipelines", "mystery"]) == 2
    assert "unknown pipeline" in capsys.readouterr().err


def test_unknown_rule_exits_2(capsys):
    assert main(["--rules", "no-such-rule"]) == 2
    assert "unknown lint rule" in capsys.readouterr().err


def test_sweep_one_benchmark_clean(tmp_path, capsys):
    code = main(["--benchmarks", "adpcm_dec", "--pipelines", "traditional",
                 "--cache-dir", str(tmp_path), "--json", "-"])
    out = capsys.readouterr().out
    assert code == 0
    # --json - prints the summary table first, then the JSON payload
    payload = out[out.index("["):]
    records = json.loads(payload)
    assert all(r["severity"] != "error" for r in records)
