"""The ``python -m repro.analysis.lint`` sweep CLI."""

import json

from repro.analysis.lint import all_rules
from repro.analysis.lint.cli import main


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in all_rules():
        assert rule.rule_id in out


def test_unknown_benchmark_exits_2(capsys):
    assert main(["--benchmarks", "nosuch"]) == 2
    assert "unknown benchmark" in capsys.readouterr().err


def test_unknown_pipeline_exits_2(capsys):
    assert main(["--pipelines", "mystery"]) == 2
    assert "unknown pipeline" in capsys.readouterr().err


def test_unknown_rule_exits_2(capsys):
    assert main(["--rules", "no-such-rule"]) == 2
    assert "unknown lint rule" in capsys.readouterr().err


def test_unknown_exclude_rule_exits_2(capsys):
    assert main(["--exclude-rules", "no-such-rule"]) == 2
    assert "unknown lint rule" in capsys.readouterr().err


def test_sweep_one_benchmark_clean(tmp_path, capsys):
    code = main(["--benchmarks", "adpcm_dec", "--pipelines", "traditional",
                 "--cache-dir", str(tmp_path), "--json", "-"])
    out = capsys.readouterr().out
    assert code == 0
    # --json - prints the summary table first, then the JSON payload
    payload = out[out.index("["):]
    records = json.loads(payload)
    assert all(r["severity"] != "error" for r in records)


def test_exclude_rules_and_table_artifact(tmp_path, capsys):
    table = tmp_path / "lint-table.txt"
    code = main(["--benchmarks", "adpcm_dec", "--pipelines", "traditional",
                 "--cache-dir", str(tmp_path / "cache"),
                 "--exclude-rules", "pred-cycle-disjoint",
                 "--table", str(table), "--quiet"])
    assert code == 0
    report = table.read_text()
    assert "adpcm_dec" in report
    assert "lint sweep at capacity" in report
    # --quiet suppresses stdout but not the artifact
    assert "lint sweep" not in capsys.readouterr().out
