"""One deliberately-broken fixture per buffer-phase lint rule."""

from repro.analysis.lint import LintTarget, Severity, run_rules
from repro.ir import Opcode, Operation
from repro.loopbuffer.assign import Assignment, AssignmentResult
from repro.sched.modulo import modulo_schedule

from tests.helpers import build_counting_loop

#: non-NOP ops in the counting-loop body (add, add, loop-back branch)
BODY_OPS = 3


def _buffered_counting_loop(offset=0, length=BODY_OPS, install_rec=True):
    """Counting loop with a REC_WLOOP in its preheader and the matching
    assignment-table entry (the uncounted recording shape)."""
    module = build_counting_loop(8)
    func = module.function("main")
    if install_rec:
        entry = func.block("entry")
        entry.insert(len(entry.ops), Operation(
            Opcode.REC_WLOOP, [], [], None,
            {"buf_addr": offset, "num": length, "loop": "body"}))
    assignment = AssignmentResult(
        assigned=[Assignment("main", "body", offset, length, counted=False)])
    return module, func, assignment


def _target(module, assignment, capacity=256, modulo=None):
    return LintTarget(module=module, assignment=assignment,
                      buffer_capacity=capacity, modulo=modulo)


def _run(target, rule_id):
    return run_rules(target, rule_ids=[rule_id])


def test_clean_buffered_loop_lints_clean():
    module, _func, assignment = _buffered_counting_loop()
    assert run_rules(_target(module, assignment), phases=("buffer",)) == []


def test_buffer_capacity():
    module, _func, assignment = _buffered_counting_loop(offset=250, length=10)
    diags = _run(_target(module, assignment), "buffer-capacity")
    assert [d.rule for d in diags] == ["buffer-capacity"]
    assert "beyond the 256-op buffer" in diags[0].message


def test_buffer_capacity_negative_offset_and_empty_segment():
    module, _func, assignment = _buffered_counting_loop()
    assignment.assigned[0].offset = -4
    assignment.assigned[0].length = 0
    diags = _run(_target(module, assignment), "buffer-capacity")
    assert len(diags) == 2 and all(d.rule == "buffer-capacity" for d in diags)


def test_buffer_residency_mismatch():
    module, func, assignment = _buffered_counting_loop()
    rec = func.block("entry").ops[-1]
    rec.attrs["buf_addr"] = 17  # table says 0
    diags = _run(_target(module, assignment), "buffer-residency")
    assert [d.rule for d in diags] == ["buffer-residency"]


def test_buffer_residency_orphan_assignment():
    module, _func, assignment = _buffered_counting_loop(install_rec=False)
    diags = _run(_target(module, assignment), "buffer-residency")
    assert [d.rule for d in diags] == ["buffer-residency"]
    assert "no rec operation" in diags[0].message


def test_buffer_residency_rec_without_table():
    module, _func, _assignment = _buffered_counting_loop()
    diags = _run(_target(module, assignment=None), "buffer-residency")
    assert [d.rule for d in diags] == ["buffer-residency"]
    assert "no buffer assignment" in diags[0].message


def test_buffer_pairing_unknown_loop():
    module, func, assignment = _buffered_counting_loop()
    func.block("entry").ops[-1].attrs["loop"] = "nowhere"
    diags = _run(_target(module, assignment), "buffer-pairing")
    assert diags and all(d.rule == "buffer-pairing" for d in diags)


def test_buffer_pairing_counted_mismatch():
    # a rec_cloop recording a loop that loops back with a plain branch
    module, func, assignment = _buffered_counting_loop(install_rec=False)
    entry = func.block("entry")
    entry.insert(len(entry.ops), Operation(
        Opcode.REC_CLOOP, [], [], None,
        {"lc": 0, "buf_addr": 0, "num": BODY_OPS, "loop": "body"}))
    diags = _run(_target(module, assignment), "buffer-pairing")
    assert diags and all(d.rule == "buffer-pairing" for d in diags)
    assert any("counted" in d.message for d in diags)


def test_buffer_pairing_exec_of_unrecorded_loop():
    module, func, assignment = _buffered_counting_loop()
    assignment.assigned.clear()
    func.block("entry").ops.pop()  # drop the rec
    entry = func.block("entry")
    entry.insert(len(entry.ops), Operation(
        Opcode.EXEC_WLOOP, [], [], None,
        {"buf_addr": 0, "num": BODY_OPS, "loop": "body"}))
    diags = _run(_target(module, assignment), "buffer-pairing")
    assert diags and all(d.rule == "buffer-pairing" for d in diags)
    assert any("never recorded" in d.message for d in diags)


def test_buffer_overlap():
    module, _func, assignment = _buffered_counting_loop()
    assignment.assigned.append(
        Assignment("main", "body2", offset=1, length=8, counted=False))
    diags = _run(_target(module, assignment), "buffer-overlap")
    assert [d.rule for d in diags] == ["buffer-overlap"]
    assert diags[0].severity is Severity.WARNING


def test_buffer_footprint_plain_body():
    module, _func, assignment = _buffered_counting_loop(length=BODY_OPS + 5)
    diags = _run(_target(module, assignment), "buffer-footprint")
    assert [d.rule for d in diags] == ["buffer-footprint"]
    assert "loop body op count" in diags[0].message


def test_buffer_footprint_modulo_kernel():
    module, func, assignment = _buffered_counting_loop()
    sched = modulo_schedule(func.block("body"))
    modulo = {("main", "body"): sched}
    assignment.assigned[0].length = sched.buffered_op_count + 1
    func.block("entry").ops[-1].attrs["num"] = sched.buffered_op_count + 1
    diags = _run(_target(module, assignment, modulo=modulo),
                 "buffer-footprint")
    assert [d.rule for d in diags] == ["buffer-footprint"]
    assert "modulo kernel" in diags[0].message
