"""Checked mode: per-pass sanitization with pass attribution."""

import pytest

import repro.pipeline as pipeline_mod
from repro.ir import Opcode, Operation, ireg
from repro.pipeline import (
    CheckedModeError,
    checked_enabled,
    compile_aggressive,
    compile_traditional,
    with_buffer,
)

from tests.helpers import build_counting_loop, build_nested_loop


def test_checked_enabled_resolution(monkeypatch):
    monkeypatch.delenv("REPRO_CHECKED", raising=False)
    assert checked_enabled(None) is False
    assert checked_enabled(True) is True
    monkeypatch.setenv("REPRO_CHECKED", "1")
    assert checked_enabled(None) is True
    assert checked_enabled(False) is False  # explicit argument wins
    monkeypatch.setenv("REPRO_CHECKED", "0")
    assert checked_enabled(None) is False


def test_clean_compiles_pass_checked_mode():
    traditional = compile_traditional(build_counting_loop(16), checked=True)
    assert traditional.stats["checked"] is True
    aggressive = compile_aggressive(build_nested_loop(4, 4), checked=True)
    assert aggressive.stats["checked"] is True


def test_unchecked_compile_has_no_checked_stat(monkeypatch):
    monkeypatch.delenv("REPRO_CHECKED", raising=False)
    compiled = compile_traditional(build_counting_loop(16))
    assert "checked" not in compiled.stats


def _inject_undefined_read(real_pass):
    """Wrap a per-function pass so it plants a read of a never-written
    register — the kind of breakage the sanitizer must pin on the pass."""

    def evil(func, *args, **kwargs):
        result = real_pass(func, *args, **kwargs)
        func.blocks[0].insert(
            0, Operation(Opcode.MOV, [ireg(900)], [ireg(901)]))
        return result

    return evil


def test_violation_attributed_to_offending_pass(monkeypatch):
    monkeypatch.setattr(
        pipeline_mod, "promote_function",
        _inject_undefined_read(pipeline_mod.promote_function))
    with pytest.raises(CheckedModeError) as excinfo:
        compile_aggressive(build_nested_loop(4, 4), checked=True)
    err = excinfo.value
    assert err.pass_name == "promote_function"
    assert err.diagnostics[0].rule == "use-before-def"
    assert all(d.passname == "promote_function" for d in err.diagnostics)
    assert "promote_function" in str(err)


def test_attribution_names_first_offender_not_later_passes(monkeypatch):
    # sink_partially_dead runs before promote_function in the same loop;
    # the error must name it, not anything downstream
    monkeypatch.setattr(
        pipeline_mod, "sink_partially_dead",
        _inject_undefined_read(pipeline_mod.sink_partially_dead))
    with pytest.raises(CheckedModeError) as excinfo:
        compile_aggressive(build_nested_loop(4, 4), checked=True)
    assert excinfo.value.pass_name == "sink_partially_dead"


def test_unchecked_mode_does_not_raise(monkeypatch):
    # the same sabotage goes unnoticed without checked mode (the dead op
    # is swept by DCE later); this is exactly the gap checked mode closes
    monkeypatch.setattr(
        pipeline_mod, "promote_function",
        _inject_undefined_read(pipeline_mod.promote_function))
    compiled = compile_aggressive(build_nested_loop(4, 4), checked=False)
    assert compiled.module is not None


def test_with_buffer_checked_catches_bad_assignment(monkeypatch):
    base = compile_traditional(build_counting_loop(64), buffer_capacity=None)
    real = pipeline_mod.assign_buffer

    def evil(module, profile, capacity, **kwargs):
        result = real(module, profile, capacity, **kwargs)
        assert result.assigned, "fixture loop should be assigned"
        result.assigned[0].offset = capacity + 7  # table now lies
        return result

    monkeypatch.setattr(pipeline_mod, "assign_buffer", evil)
    with pytest.raises(CheckedModeError) as excinfo:
        with_buffer(base, 64, checked=True)
    err = excinfo.value
    assert err.pass_name == "with_buffer"
    assert {d.rule for d in err.diagnostics} & {"buffer-capacity",
                                                "buffer-residency"}


def test_with_buffer_clean_under_checked():
    base = compile_traditional(build_counting_loop(64), buffer_capacity=None)
    compiled = with_buffer(base, 64, checked=True)
    assert compiled.buffer_capacity == 64


def test_checked_error_survives_pickling():
    import pickle

    from repro.analysis.lint import Diagnostic, Severity

    err = CheckedModeError("some_pass", [
        Diagnostic("use-before-def", Severity.ERROR, "boom",
                   function="f", block="entry", index=0,
                   passname="some_pass")])
    clone = pickle.loads(pickle.dumps(err))
    assert clone.pass_name == "some_pass"
    assert clone.diagnostics == err.diagnostics


def test_injected_at_counted_loop_conversion(monkeypatch):
    # a module-level pass (not per-function) also gets attributed
    real = pipeline_mod.convert_counted_loops_all

    def evil(module):
        result = real(module)
        func = next(iter(module.functions.values()))
        func.blocks[0].insert(
            0, Operation(Opcode.MOV, [ireg(900)], [ireg(901)]))
        return result

    monkeypatch.setattr(pipeline_mod, "convert_counted_loops_all", evil)
    with pytest.raises(CheckedModeError) as excinfo:
        compile_traditional(build_counting_loop(16), checked=True)
    assert excinfo.value.pass_name == "convert_counted_loops"
