"""One deliberately-broken fixture per predicate-web lint rule, plus a
clean twin showing each rule stays quiet when the web proves the code
correct."""

from repro.analysis.lint import LintTarget, Severity, lint_module, run_rules
from repro.ir import Function, Imm, IRBuilder, Module, ireg
from repro.sched.bundle import Schedule


def _module_of(func: Function) -> Module:
    module = Module("t")
    module.add_function(func)
    return module


def _run(target: LintTarget, rule_id: str):
    return run_rules(target, rule_ids=[rule_id])


# -- pred-undef-web -----------------------------------------------------------

def test_pred_undef_web():
    # p is only or-accumulated under a guard: the guard-false path leaves
    # it unwritten, yet must-defined sees "a write" and stays quiet
    func = Function("f", [ireg(0)])
    b = IRBuilder(func, func.add_block("entry"))
    q = func.new_pred()
    p = func.new_pred()
    b.pred_def("lt", ireg(0), Imm(4), [q], ["ut"])
    b.pred_def("gt", ireg(0), Imm(0), [p], ["ot"], guard=q)
    y = b.add(ireg(0), Imm(1), guard=p)
    b.ret(y)
    diags = lint_module(_module_of(func), rule_ids=["pred-undef-web"])
    assert [d.rule for d in diags] == ["pred-undef-web"]
    assert diags[0].severity is Severity.WARNING
    # the must-defined rule indeed cannot see it
    assert lint_module(_module_of(func), rule_ids=["undef-guard"]) == []


def test_pred_undef_web_quiet_with_zero_root():
    func = Function("f", [ireg(0)])
    b = IRBuilder(func, func.add_block("entry"))
    q = func.new_pred()
    p = func.new_pred()
    b.pred_def("lt", ireg(0), Imm(4), [q], ["ut"])
    b.pred_set(p, 0)
    b.pred_def("gt", ireg(0), Imm(0), [p], ["ot"], guard=q)
    y = b.add(ireg(0), Imm(1), guard=p)
    b.ret(y)
    assert lint_module(_module_of(func), rule_ids=["pred-undef-web"]) == []


# -- pred-cycle-disjoint ------------------------------------------------------

def _co_issued_writers(ptypes):
    """Two guarded writes to one register co-issued in cycle 1, guards
    from one two-destination pred_def of the given types."""
    func = Function("f", [ireg(0)])
    b = IRBuilder(func, func.add_block("entry"))
    p = func.new_pred()
    q = func.new_pred()
    b.pred_def("lt", ireg(0), Imm(4), [p, q], list(ptypes))
    y = func.new_reg()
    b.movi(1, dest=y, guard=p)
    b.movi(2, dest=y, guard=q)
    b.ret(y)
    module = _module_of(func)
    sched = Schedule()
    ops = func.block("entry").ops
    sched.place(ops[0], 0, 0)
    sched.place(ops[1], 1, 0)
    sched.place(ops[2], 1, 1)
    sched.place(ops[3], 2, 7)
    return LintTarget(module=module, schedules={"f": {"entry": sched}})


def test_pred_cycle_disjoint():
    # ot/of destinations are not complementary (both keep old values on
    # the condition's other side), so the webs are not provably disjoint
    target = _co_issued_writers(["ot", "of"])
    diags = _run(target, "pred-cycle-disjoint")
    assert [d.rule for d in diags] == ["pred-cycle-disjoint"]
    assert diags[0].severity is Severity.WARNING


def test_pred_cycle_disjoint_quiet_on_complement_pair():
    target = _co_issued_writers(["ut", "uf"])
    assert _run(target, "pred-cycle-disjoint") == []


def test_pred_cycle_disjoint_same_guard():
    func = Function("f", [ireg(0)])
    b = IRBuilder(func, func.add_block("entry"))
    p = func.new_pred()
    b.pred_def("lt", ireg(0), Imm(4), [p], ["ut"])
    y = func.new_reg()
    b.movi(1, dest=y, guard=p)
    b.movi(2, dest=y, guard=p)
    b.ret(y)
    module = _module_of(func)
    sched = Schedule()
    ops = func.block("entry").ops
    sched.place(ops[0], 0, 0)
    sched.place(ops[1], 1, 0)
    sched.place(ops[2], 1, 1)
    sched.place(ops[3], 2, 7)
    target = LintTarget(module=module, schedules={"f": {"entry": sched}})
    diags = _run(target, "pred-cycle-disjoint")
    assert [d.rule for d in diags] == ["pred-cycle-disjoint"]


# -- pred-web-redef -----------------------------------------------------------

def test_pred_web_redef():
    # p guards an op, is replaced (establishing fresh facts about its new
    # web), then guards another op: a flow-insensitive consumer of the
    # block facts would apply the new web's disjointness to the first use
    func = Function("f", [ireg(0)])
    b = IRBuilder(func, func.add_block("entry"))
    p = func.new_pred()
    q = func.new_pred()
    b.pred_def("lt", ireg(0), Imm(4), [p], ["ut"])
    y = b.add(ireg(0), Imm(1), guard=p)
    b.pred_def("gt", ireg(0), Imm(9), [p, q], ["ut", "uf"])
    b.add(y, Imm(2), dest=y, guard=p)
    b.ret(y)
    diags = lint_module(_module_of(func), rule_ids=["pred-web-redef"])
    assert [d.rule for d in diags] == ["pred-web-redef"]
    assert diags[0].severity is Severity.WARNING


def test_pred_web_redef_quiet_without_reuse():
    # the redefined predicate is never used again: nothing can conflate
    func = Function("f", [ireg(0)])
    b = IRBuilder(func, func.add_block("entry"))
    p = func.new_pred()
    q = func.new_pred()
    b.pred_def("lt", ireg(0), Imm(4), [p], ["ut"])
    y = b.add(ireg(0), Imm(1), guard=p)
    b.pred_def("gt", ireg(0), Imm(9), [p, q], ["ut", "uf"])
    b.add(y, Imm(2), dest=y, guard=q)
    b.ret(y)
    assert lint_module(_module_of(func), rule_ids=["pred-web-redef"]) == []
