"""One deliberately-broken fixture per schedule-phase lint rule.

List-schedule fixtures schedule a real block and then sabotage the stored
schedule; modulo fixtures run the real modulo scheduler on the counting
loop and corrupt one facet of its output.
"""

import pytest

from repro.analysis.lint import LintTarget, Severity, run_rules
from repro.ir import (
    Function,
    Imm,
    IRBuilder,
    Module,
    Opcode,
    Operation,
    ireg,
    preg,
)
from repro.sched.bundle import Placement, Schedule
from repro.sched.list_sched import schedule_function
from repro.sched.modulo import modulo_schedule

from tests.helpers import build_counting_loop


def _run(target: LintTarget, rule_id: str):
    return run_rules(target, rule_ids=[rule_id])


def _scheduled_counting_loop():
    module = build_counting_loop(8)
    func = module.function("main")
    schedules = {"main": schedule_function(func)}
    return module, func, schedules


def _target(module, schedules=None, modulo=None):
    return LintTarget(module=module, schedules=schedules, modulo=modulo)


def test_clean_schedule_lints_clean():
    module, _func, schedules = _scheduled_counting_loop()
    target = _target(module, schedules=schedules)
    assert run_rules(target, phases=("sched",)) == []


def test_sched_complete():
    module, func, schedules = _scheduled_counting_loop()
    sched = schedules["main"]["body"]
    victim = next(op for op in func.block("body").ops)
    del sched.placement[victim.uid]
    diags = _run(_target(module, schedules=schedules), "sched-complete")
    assert diags and all(d.rule == "sched-complete" for d in diags)


def test_sched_resource():
    module, func, schedules = _scheduled_counting_loop()
    sched = schedules["main"]["body"]
    branch = func.block("body").terminator
    # claim the branch issues from slot 0, which has no branch unit
    placement = sched.placement[branch.uid]
    bundle = sched.bundles[placement.cycle]
    bundle.ops.pop(placement.slot)
    bundle.ops[0] = branch
    sched.placement[branch.uid] = Placement(placement.cycle, 0)
    diags = _run(_target(module, schedules=schedules), "sched-resource")
    assert diags and all(d.rule == "sched-resource" for d in diags)
    assert any("slot 0" in d.message for d in diags)


def test_sched_latency():
    module, func, schedules = _scheduled_counting_loop()
    body = func.block("body")
    # compress the whole body into cycle 0: flow latencies must break
    flat = Schedule()
    for slot, op in enumerate(body.ops):
        flat.place(op, 0, slot)
    schedules["main"]["body"] = flat
    diags = _run(_target(module, schedules=schedules), "sched-latency")
    assert diags and all(d.rule == "sched-latency" for d in diags)
    assert all(d.severity is Severity.ERROR for d in diags)


def test_pred_write_overlap():
    func = Function("f", [ireg(0)])
    b = IRBuilder(func, func.add_block("entry"))
    b.pred_def("lt", ireg(0), Imm(4), [preg(0)], ["ut"])
    y = func.new_reg()
    b.movi(1, dest=y, guard=preg(0))
    b.movi(2, dest=y, guard=preg(0))  # same guard: NOT disjoint
    b.ret(y)
    module = Module("t")
    module.add_function(func)
    sched = Schedule()
    ops = func.block("entry").ops
    sched.place(ops[0], 0, 0)
    sched.place(ops[1], 1, 0)
    sched.place(ops[2], 1, 1)  # co-issued with the other write
    sched.place(ops[3], 2, 7)
    schedules = {"f": {"entry": sched}}
    diags = _run(_target(module, schedules=schedules), "pred-write-overlap")
    assert [d.rule for d in diags] == ["pred-write-overlap"]


def test_slot_route_coverage():
    func = Function("f", [ireg(0)])
    b = IRBuilder(func, func.add_block("entry"))
    define = b.pred_def("lt", ireg(0), Imm(4), [preg(0)], ["ut"])
    define.attrs["slot_route"] = {repr(preg(0)): [0]}
    y = b.add(ireg(0), Imm(1), guard=preg(0))
    consumer = func.block("entry").ops[-1]
    consumer.attrs["psens"] = True
    b.ret(y)
    module = Module("t")
    module.add_function(func)
    sched = Schedule()
    ops = func.block("entry").ops
    sched.place(ops[0], 0, 0)
    sched.place(ops[1], 1, 1)  # issues in slot 1; p0 routed only to slot 0
    sched.place(ops[2], 2, 7)
    schedules = {"f": {"entry": sched}}
    diags = _run(_target(module, schedules=schedules), "slot-route-coverage")
    assert [d.rule for d in diags] == ["slot-route-coverage"]
    assert "slot 1" in diags[0].message


@pytest.fixture
def modulo_loop():
    module = build_counting_loop(8)
    func = module.function("main")
    sched = modulo_schedule(func.block("body"))
    return module, func, {("main", "body"): sched}, sched


def test_clean_modulo_lints_clean(modulo_loop):
    module, _func, modulo, _sched = modulo_loop
    assert run_rules(_target(module, modulo=modulo), phases=("sched",)) == []


def test_modulo_stale(modulo_loop):
    module, func, modulo, _sched = modulo_loop
    # the block changed after modulo scheduling: a new op appears
    func.block("body").insert(0, Operation(Opcode.MOV, [ireg(50)], [Imm(0)]))
    diags = _run(_target(module, modulo=modulo), "modulo-stale")
    assert [d.rule for d in diags] == ["modulo-stale"]
    assert diags[0].severity is Severity.WARNING


def test_modulo_resource(modulo_loop):
    module, _func, modulo, sched = modulo_loop
    # force two kernel ops into the same (slot, cycle mod II) MRT cell
    uids = list(sched.times)
    a, b = uids[0], uids[1]
    sched.times[b] = sched.times[a]
    sched.slots[b] = sched.slots[a]
    diags = _run(_target(module, modulo=modulo), "modulo-resource")
    assert diags and all(d.rule == "modulo-resource" for d in diags)


def test_modulo_latency(modulo_loop):
    module, _func, modulo, sched = modulo_loop
    for uid in sched.times:
        sched.times[uid] = 0  # all distance-0 flow latencies now break
    diags = _run(_target(module, modulo=modulo), "modulo-latency")
    assert diags and all(d.rule == "modulo-latency" for d in diags)


def test_modulo_mve(modulo_loop):
    module, _func, modulo, sched = modulo_loop
    sched.mve_factor = 0  # lifetimes always need at least one kernel copy
    diags = _run(_target(module, modulo=modulo), "modulo-mve")
    assert [d.rule for d in diags] == ["modulo-mve"]
