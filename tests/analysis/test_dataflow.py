"""Unit tests for the generic worklist dataflow engine."""

from repro.analysis.cfgview import CFGView
from repro.analysis.dataflow import (
    BACKWARD,
    FORWARD,
    STATS,
    TOP,
    DataflowProblem,
    close_facts,
    reset_stats,
    solve,
)
from repro.ir import Function, Imm, IRBuilder


def _diamond():
    """entry -> (left | right) -> join, plus an unreachable block."""
    func = Function("main", [])
    b = IRBuilder(func)
    entry = func.add_block("entry")
    left = func.add_block("left")
    right = func.add_block("right")
    join = func.add_block("join")
    func.add_block("orphan")
    b.at(entry)
    x = b.movi(1)
    b.br("lt", x, Imm(0), "right")
    b.at(left)
    b.jump("join")
    b.at(right)
    b.jump("join")
    b.at(join)
    b.ret(x)
    return func, (entry, left, right, join)


class _GenProblem(DataflowProblem):
    """Forward union problem: each block contributes its own label."""

    direction = FORWARD
    name = "test-gen"

    def boundary(self):
        return frozenset()

    def meet(self, values):
        out = frozenset()
        for v in values:
            out |= v
        return out

    def transfer(self, label, value, result):
        return value | {label}


class _MustProblem(DataflowProblem):
    """Forward intersection problem with a TOP identity."""

    direction = FORWARD
    name = "test-must"

    def __init__(self, gen):
        self.gen = gen

    def boundary(self):
        return frozenset()

    def meet(self, values):
        if not values:
            return TOP
        out = values[0]
        for v in values[1:]:
            out &= v
        return out

    def transfer(self, label, value, result):
        return value | self.gen.get(label, frozenset())


class _BackwardProblem(DataflowProblem):
    """Backward union of block labels (liveness-shaped)."""

    direction = BACKWARD
    name = "test-backward"

    def boundary(self):
        return frozenset()

    def meet(self, values):
        out = frozenset()
        for v in values:
            out |= v
        return out

    def transfer(self, label, value, result):
        return value | {label}


class TestSolve:
    def test_forward_union_reaches_join(self):
        func, _ = _diamond()
        result = solve(_GenProblem(), CFGView(func))
        assert result.input["join"] == {"entry", "left", "right"}
        assert result.output["join"] == {"entry", "left", "right", "join"}
        assert result.input["entry"] == frozenset()

    def test_unreachable_block_absent(self):
        func, _ = _diamond()
        result = solve(_GenProblem(), CFGView(func))
        assert "orphan" not in result.input
        assert "orphan" not in result.output
        assert result.input_of("orphan", frozenset()) == frozenset()

    def test_must_problem_intersects_paths(self):
        func, _ = _diamond()
        gen = {"left": frozenset({"L"}), "right": frozenset({"R"}),
               "entry": frozenset({"E"})}
        result = solve(_MustProblem(gen), CFGView(func))
        # only the facts common to both paths survive the join meet
        assert result.input["join"] == {"E"}

    def test_backward_union(self):
        func, _ = _diamond()
        result = solve(_BackwardProblem(), CFGView(func))
        # entry's flow-input is the meet over its successors' outputs
        assert result.input["entry"] == {"left", "right", "join"}
        assert result.output["join"] == {"join"}

    def test_loop_converges(self):
        func = Function("main", [])
        b = IRBuilder(func)
        entry = func.add_block("entry")
        body = func.add_block("body")
        done = func.add_block("done")
        b.at(entry)
        i = b.movi(0)
        b.at(body)
        b.add(i, Imm(1), dest=i)
        b.br("lt", i, Imm(10), "body")
        b.at(done)
        b.ret(i)
        result = solve(_GenProblem(), CFGView(func))
        assert result.input["body"] == {"entry", "body"}
        assert result.input["done"] == {"entry", "body"}

    def test_deterministic(self):
        func, _ = _diamond()
        results = [solve(_GenProblem(), CFGView(func)) for _ in range(3)]
        assert results[0].input == results[1].input == results[2].input
        assert all(r.stats.transfers == results[0].stats.transfers
                   for r in results)


class TestStats:
    def test_stats_recorded_and_accumulated(self):
        func, _ = _diamond()
        reset_stats()
        result = solve(_GenProblem(), CFGView(func))
        assert result.stats.problem == "test-gen"
        assert result.stats.nodes == 4  # orphan excluded
        assert result.stats.transfers >= 4
        assert result.stats.visits >= result.stats.transfers
        solve(_GenProblem(), CFGView(func))
        agg = STATS["test-gen"]
        assert agg.transfers == 2 * result.stats.transfers
        d = result.stats.as_dict()
        assert d["problem"] == "test-gen" and d["nodes"] == 4
        reset_stats()
        assert STATS == {}


class TestCloseFacts:
    def test_saturates_transitively(self):
        def chain(facts):
            return [("s", a, d) for (s1, a, b) in facts if s1 == "s"
                    for (s2, c, d) in facts if s2 == "s" and b == c]

        closed = close_facts({("s", 1, 2), ("s", 2, 3), ("s", 3, 4)},
                             [chain])
        assert ("s", 1, 4) in closed
        assert ("s", 1, 3) in closed and ("s", 2, 4) in closed

    def test_empty(self):
        assert close_facts(set(), []) == frozenset()
