"""Unit tests for the must-defined dataflow analysis."""

from repro.analysis.reachdef import (
    entry_definitions,
    must_defined,
    undefined_reads,
)
from repro.ir import Function, Imm, IRBuilder, ireg, preg

from tests.helpers import build_counting_loop, build_if_diamond


def test_entry_definitions_cover_params():
    func = Function("f", [ireg(0), ireg(1)])
    func.add_block("entry")
    assert ireg(0) in entry_definitions(func)
    assert ireg(1) in entry_definitions(func)


def test_clean_modules_have_no_undefined_reads():
    for module in (build_counting_loop(4), build_if_diamond()):
        func = module.function("main")
        assert undefined_reads(func) == []


def test_read_before_any_write_reported():
    func = Function("f")
    b = IRBuilder(func, func.add_block("entry"))
    b.add(ireg(5), Imm(1))
    b.ret()
    found = undefined_reads(func)
    assert [(label, index, reg) for label, index, _, reg in found] == [
        ("entry", 0, ireg(5))
    ]


def test_one_armed_definition_not_defined_at_join():
    # entry -> (then | fallthrough) -> join; only `then` writes i1
    func = Function("f", [ireg(0)])
    func.new_reg()
    b = IRBuilder(func)
    entry = func.add_block("entry")
    then = func.add_block("then")
    join = func.add_block("join")
    y = func.new_reg()
    b.at(entry)
    b.br("ge", ireg(0), Imm(10), "join")
    b.at(then)
    b.add(ireg(0), Imm(1), dest=y)
    b.at(join)
    b.ret(y)
    info = must_defined(func)
    assert y not in info.at_entry("join")
    assert any(reg == y for _, _, _, reg in undefined_reads(func))


def test_both_arm_definition_defined_at_join():
    module = build_if_diamond()
    func = module.function("main")
    info = must_defined(func)
    # y is written in both `then` and `else`
    ret = func.block("join").ops[-1]
    (y,) = ret.srcs
    assert y in info.at_entry("join")


def test_guarded_write_counts_as_definition():
    # predicated both-arm write: either guard polarity defines i1, and the
    # analysis deliberately treats a guarded write as defining
    func = Function("f", [ireg(0)])
    b = IRBuilder(func, func.add_block("entry"))
    b.pred_def("lt", ireg(0), Imm(10), [preg(0), preg(1)], ["ut", "uf"])
    y = func.new_reg()
    b.add(ireg(0), Imm(1), dest=y, guard=preg(0))
    b.sub(ireg(0), Imm(1), dest=y, guard=preg(1))
    b.ret(y)
    assert undefined_reads(func) == []


def test_unreachable_blocks_not_scanned():
    func = Function("f")
    b = IRBuilder(func, func.add_block("entry"))
    b.ret(Imm(0))
    dead = func.add_block("dead")
    b.at(dead)
    b.add(ireg(9), Imm(1))  # undefined read, but unreachable
    b.ret()
    assert undefined_reads(func) == []


def test_loop_carried_definition_survives_backedge():
    module = build_counting_loop(4)
    func = module.function("main")
    info = must_defined(func)
    # i and s are defined in entry, so must be defined at the body despite
    # the backedge bringing a second predecessor
    entry_written = {dst for op in func.block("entry").ops
                     for dst in op.writes()}
    assert entry_written <= info.at_entry("body")
