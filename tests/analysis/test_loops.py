"""Unit tests for natural-loop detection and trip-count analysis."""

from repro.analysis.cfgview import CFGView
from repro.analysis.loops import (
    analyze_trip_count,
    find_loops,
    innermost_loops,
    is_simple_loop,
)
from repro.ir import Function, IRBuilder, Imm, ireg
from repro.sim.interp import run_module

from tests.helpers import build_counting_loop, build_if_diamond, build_nested_loop


class TestLoopDetection:
    def test_single_loop(self):
        func = build_counting_loop(5).function("main")
        loops = find_loops(func)
        assert len(loops) == 1
        loop = loops[0]
        assert loop.header == "body"
        assert loop.body == {"body"}
        assert loop.latches == ["body"]
        assert loop.depth == 1

    def test_no_loops_in_diamond(self):
        func = build_if_diamond().function("main")
        assert find_loops(func) == []

    def test_nested_loops(self):
        func = build_nested_loop().function("main")
        loops = find_loops(func)
        assert len(loops) == 2
        outer = next(lp for lp in loops if lp.header == "outer")
        inner = next(lp for lp in loops if lp.header == "inner")
        assert outer.depth == 1
        assert inner.depth == 2
        assert inner.parent is outer
        assert inner in outer.children
        assert inner.body < outer.body
        assert innermost_loops(loops) == [inner]

    def test_preheader(self):
        func = build_nested_loop().function("main")
        cfg = CFGView(func)
        loops = find_loops(func, cfg)
        outer = next(lp for lp in loops if lp.header == "outer")
        inner = next(lp for lp in loops if lp.header == "inner")
        assert outer.preheader(cfg) == "entry"
        assert inner.preheader(cfg) == "outer"

    def test_exit_edges(self):
        func = build_nested_loop().function("main")
        cfg = CFGView(func)
        loops = find_loops(func, cfg)
        inner = next(lp for lp in loops if lp.header == "inner")
        assert inner.exit_edges(cfg) == [("inner", "latch")]
        outer = next(lp for lp in loops if lp.header == "outer")
        assert outer.exit_edges(cfg) == [("latch", "done")]


class TestSimpleLoop:
    def test_counting_loop_is_simple(self):
        func = build_counting_loop(5).function("main")
        loop = find_loops(func)[0]
        assert is_simple_loop(func, loop)

    def test_multi_block_loop_not_simple(self):
        func = build_nested_loop().function("main")
        loops = find_loops(func)
        outer = next(lp for lp in loops if lp.header == "outer")
        inner = next(lp for lp in loops if lp.header == "inner")
        assert not is_simple_loop(func, outer)
        assert is_simple_loop(func, inner)

    def test_side_exit_still_simple(self):
        # a simple loop with an infrequent side exit branch remains bufferable
        func = Function("f")
        b = IRBuilder(func)
        entry = func.add_block("entry")
        body = func.add_block("body")
        out = func.add_block("out")
        b.at(entry)
        i = b.movi(0)
        b.at(body)
        b.br("eq", i, Imm(99), "out")  # side exit
        b.add(i, Imm(1), dest=i)
        b.br("lt", i, Imm(10), "body")
        b.at(out)
        b.ret(i)
        loop = find_loops(func)[0]
        assert is_simple_loop(func, loop)


class TestTripCount:
    def _loop_of(self, module, header):
        func = module.function("main")
        loops = find_loops(func)
        return func, next(lp for lp in loops if lp.header == header)

    def test_constant_count(self):
        func, loop = self._loop_of(build_counting_loop(10), "body")
        trip = analyze_trip_count(func, loop)
        assert trip is not None
        assert trip.count == 10
        assert trip.step == 1
        assert trip.cmp == "lt"
        assert trip.runtime_countable

    def test_inner_loop_count(self):
        func, loop = self._loop_of(build_nested_loop(inner=6), "inner")
        trip = analyze_trip_count(func, loop)
        assert trip is not None
        assert trip.count == 6

    def test_count_matches_execution(self):
        for bound in (1, 2, 7, 33):
            module = build_counting_loop(bound)
            func, loop = self._loop_of(module, "body")
            trip = analyze_trip_count(func, loop)
            assert trip is not None
            # the loop body executes `count` times; sum 0..bound-1
            assert run_module(module).value == sum(range(bound))
            assert trip.count == bound

    def test_register_bound_runtime_countable(self):
        # for (i = 0; i < n; i++) with n a parameter
        from repro.ir import Module

        module = Module()
        n = ireg(0)
        func = Function("main", [n])
        module.add_function(func)
        b = IRBuilder(func)
        entry = func.add_block("entry")
        body = func.add_block("body")
        done = func.add_block("done")
        b.at(entry)
        s = b.movi(0)
        i = b.movi(0)
        b.at(body)
        b.add(s, i, dest=s)
        b.add(i, Imm(1), dest=i)
        b.br("lt", i, n, "body")
        b.at(done)
        b.ret(s)
        loop = find_loops(func)[0]
        trip = analyze_trip_count(func, loop)
        assert trip is not None
        assert trip.count is None
        assert trip.bound == n
        assert trip.runtime_countable

    def test_step_two(self):
        func = Function("main")
        from repro.ir import Module

        module = Module()
        module.add_function(func)
        b = IRBuilder(func)
        entry = func.add_block("entry")
        body = func.add_block("body")
        done = func.add_block("done")
        b.at(entry)
        i = b.movi(0)
        b.at(body)
        b.add(i, Imm(2), dest=i)
        b.br("lt", i, Imm(10), "body")
        b.at(done)
        b.ret(i)
        loop = find_loops(func)[0]
        trip = analyze_trip_count(func, loop)
        assert trip is not None
        assert trip.count == 5
        assert trip.step == 2

    def test_guarded_increment_rejected(self):
        module = build_counting_loop(10)
        func = module.function("main")
        pred = func.new_pred()
        inc = func.block("body").ops[1]
        inc.guard = pred
        loop = find_loops(func)[0]
        assert analyze_trip_count(func, loop) is None

    def test_non_invariant_bound_rejected(self):
        module = build_counting_loop(10)
        func = module.function("main")
        body = func.block("body")
        # make the branch compare i against s (redefined in the loop)
        s = body.ops[0].dests[0]
        body.ops[-1].srcs[1] = s
        loop = find_loops(func)[0]
        assert analyze_trip_count(func, loop) is None
