"""Unit tests for the shared predicate-fact semantics."""

from repro.analysis.predfacts import (
    MERGE,
    REPLACE,
    STRENGTHEN,
    WEAKEN,
    close_pred_facts,
    dfact,
    facts_disjoint,
    facts_subset,
    kill_for_redefinition,
    redefinition_kind,
)
from repro.ir import Opcode


class TestRedefinitionKind:
    def test_pred_set(self):
        assert redefinition_kind(Opcode.PRED_SET, None, False) is REPLACE
        assert redefinition_kind(Opcode.PRED_SET, None, True) is MERGE

    def test_unconditional_types_replace(self):
        for ptype in ("ut", "uf"):
            assert redefinition_kind(Opcode.PRED_DEF, ptype, False) is REPLACE
            assert redefinition_kind(Opcode.PRED_DEF, ptype, True) is REPLACE

    def test_or_types_strengthen(self):
        for ptype in ("ot", "of"):
            assert redefinition_kind(Opcode.PRED_DEF, ptype, True) \
                is STRENGTHEN

    def test_and_types_weaken(self):
        for ptype in ("at", "af"):
            assert redefinition_kind(Opcode.PRED_DEF, ptype, True) is WEAKEN

    def test_conditional_types_guard_sensitive(self):
        for ptype in ("ct", "cf"):
            assert redefinition_kind(Opcode.PRED_DEF, ptype, False) is REPLACE
            assert redefinition_kind(Opcode.PRED_DEF, ptype, True) is MERGE

    def test_opaque_write_merges(self):
        assert redefinition_kind(Opcode.ADD, None, False) is MERGE


class TestKill:
    FACTS = frozenset({("s", "a", "b"), dfact("a", "c"), ("z", "a"),
                       ("s", "x", "y")})

    def test_replace_kills_all_mentions(self):
        kept = kill_for_redefinition(self.FACTS, "a", REPLACE)
        assert kept == {("s", "x", "y")}

    def test_merge_kills_all_mentions(self):
        kept = kill_for_redefinition(self.FACTS, "a", MERGE)
        assert kept == {("s", "x", "y")}

    def test_strengthen_keeps_subsets_into_atom(self):
        # a only grows: x ⊆ a survives, a ⊆ b / disjointness / zero do not
        facts = frozenset({("s", "x", "a"), ("s", "a", "b"),
                           dfact("a", "c"), ("z", "a")})
        kept = kill_for_redefinition(facts, "a", STRENGTHEN)
        assert kept == {("s", "x", "a")}

    def test_weaken_keeps_supersets_disjointness_zero(self):
        # a only shrinks: a ⊆ b, a ∦ c and z(a) survive, x ⊆ a does not
        facts = frozenset({("s", "x", "a"), ("s", "a", "b"),
                           dfact("a", "c"), ("z", "a")})
        kept = kill_for_redefinition(facts, "a", WEAKEN)
        assert kept == {("s", "a", "b"), dfact("a", "c"), ("z", "a")}


class TestClosureAndQueries:
    def test_subset_transitive(self):
        closed = close_pred_facts({("s", "a", "b"), ("s", "b", "c")})
        assert facts_subset(closed, "a", "c")

    def test_subset_inherits_disjointness(self):
        closed = close_pred_facts({("s", "a", "b"), dfact("b", "c")})
        assert facts_disjoint(closed, "a", "c")
        assert facts_disjoint(closed, "c", "a")

    def test_zero_propagates_down_subsets(self):
        closed = close_pred_facts({("s", "a", "b"), ("z", "b")})
        assert ("z", "a") in closed

    def test_zero_disjoint_with_everything(self):
        closed = close_pred_facts({("z", "a")})
        assert facts_disjoint(closed, "a", "q")
        assert facts_disjoint(closed, "q", "a")

    def test_zero_subset_of_everything(self):
        closed = close_pred_facts({("z", "a")})
        assert facts_subset(closed, "a", "q")
        assert not facts_subset(closed, "q", "a")

    def test_subset_reflexive(self):
        assert facts_subset(frozenset(), "a", "a")

    def test_dfact_normalized(self):
        assert dfact("b", "a") == dfact("a", "b")

    def test_no_unrelated_inference(self):
        closed = close_pred_facts({("s", "a", "b")})
        assert not facts_disjoint(closed, "a", "b")
        assert not facts_subset(closed, "b", "a")
