"""Unit tests for predicate-aware liveness."""

from repro.analysis.liveness import (
    liveness,
    max_register_pressure,
    op_unconditional_writes,
    per_op_live_out,
)
from repro.ir import Function, IRBuilder, Imm, Opcode, Operation, ireg, preg

from tests.helpers import build_counting_loop, build_if_diamond


class TestUnconditionalWrites:
    def test_plain_op_kills(self):
        op = Operation(Opcode.ADD, [ireg(0)], [ireg(1), ireg(2)])
        assert op_unconditional_writes(op) == [ireg(0)]

    def test_guarded_op_does_not_kill(self):
        op = Operation(Opcode.ADD, [ireg(0)], [ireg(1), ireg(2)], guard=preg(0))
        assert op_unconditional_writes(op) == []

    def test_ut_uf_always_kill_even_guarded(self):
        op = Operation(
            Opcode.PRED_DEF, [preg(1), preg(2)], [ireg(0), Imm(0)],
            guard=preg(0), attrs={"cmp": "eq", "ptypes": ["ut", "uf"]},
        )
        assert op_unconditional_writes(op) == [preg(1), preg(2)]

    def test_or_type_never_kills(self):
        op = Operation(
            Opcode.PRED_DEF, [preg(1)], [ireg(0), Imm(0)],
            attrs={"cmp": "eq", "ptypes": ["ot"]},
        )
        assert op_unconditional_writes(op) == []


class TestBlockLiveness:
    def test_loop_carried_value_live_around_backedge(self):
        func = build_counting_loop(5).function("main")
        info = liveness(func)
        body = func.block("body")
        s = body.ops[0].dests[0]
        i = body.ops[1].dests[0]
        assert s in info.live_in["body"]
        assert i in info.live_in["body"]
        assert s in info.live_out["body"]  # needed by done and next iteration

    def test_param_live_on_both_paths(self):
        func = build_if_diamond().function("main")
        info = liveness(func)
        x = func.params[0]
        assert x in info.live_in["entry"]
        assert x in info.live_in["then"]
        assert x in info.live_in["else"]
        y = func.block("then").ops[0].dests[0]
        assert y in info.live_in["join"]
        assert y not in info.live_in["entry"]  # killed on both paths... defined there

    def test_dead_value_not_live(self):
        func = Function("f")
        b = IRBuilder(func, func.add_block("entry"))
        dead = b.movi(1)
        live = b.movi(2)
        func.add_block("next")
        b.at(func.block("next"))
        b.ret(live)
        info = liveness(func)
        assert live in info.live_in["next"]
        assert dead not in info.live_in["next"]

    def test_guarded_write_keeps_old_value_live(self):
        # r is set before the branch target and conditionally overwritten;
        # the original value must stay live across the guarded write.
        func = Function("f")
        b = IRBuilder(func, func.add_block("entry"))
        r = b.movi(1)
        p = func.new_pred()
        b.pred_set(p, 0)
        blk = func.add_block("body")
        b.at(blk)
        b.movi(9, dest=r, guard=p)
        b.ret(r)
        info = liveness(func)
        assert r in info.live_in["body"]


class TestPerOpLiveness:
    def test_per_op_live_out(self):
        func = build_counting_loop(3).function("main")
        body = func.block("body")
        info = liveness(func)
        live_sets = per_op_live_out(body, info.live_out["body"])
        assert len(live_sets) == len(body.ops)
        s = body.ops[0].dests[0]
        assert s in live_sets[0]

    def test_register_pressure(self):
        func = build_counting_loop(3).function("main")
        assert max_register_pressure(func, "i") == 2  # s and i

    def test_pressure_counts_only_kind(self):
        func = Function("f")
        b = IRBuilder(func, func.add_block("entry"))
        p = func.new_pred()
        b.pred_set(p, 1)
        x = b.movi(3)
        y = b.add(x, Imm(1), guard=p)
        b.ret(y)
        assert max_register_pressure(func, "p") == 1
