"""Unit tests for dominator / postdominator computation."""

from repro.analysis.cfgview import CFGView
from repro.analysis.dominators import dominator_tree, postdominator_tree
from repro.ir import Function, IRBuilder, Imm, ireg

from tests.helpers import build_counting_loop, build_if_diamond


def _diamond_cfg():
    func = build_if_diamond().function("main")
    return func, CFGView(func)


class TestCFGView:
    def test_nodes_and_edges(self):
        func, cfg = _diamond_cfg()
        assert cfg.entry == "entry"
        assert cfg.succs["entry"] == ["else", "then"]
        assert sorted(cfg.preds["join"]) == ["else", "then"]

    def test_reverse_postorder_starts_at_entry(self):
        _, cfg = _diamond_cfg()
        order = cfg.reverse_postorder()
        assert order[0] == "entry"
        assert order[-1] == "join"
        assert set(order) == {"entry", "then", "else", "join"}

    def test_reachable_excludes_orphans(self):
        func = build_if_diamond().function("main")
        orphan = func.add_block("orphan")
        b = IRBuilder(func, orphan)
        b.ret()
        cfg = CFGView(func)
        assert "orphan" not in cfg.reachable()


class TestDominators:
    def test_diamond(self):
        _, cfg = _diamond_cfg()
        dom = dominator_tree(cfg)
        assert dom.dominates("entry", "join")
        assert dom.dominates("entry", "then")
        assert not dom.dominates("then", "join")
        assert not dom.dominates("else", "join")
        assert dom.idom["join"] == "entry"

    def test_reflexive(self):
        _, cfg = _diamond_cfg()
        dom = dominator_tree(cfg)
        for node in cfg.nodes:
            assert dom.dominates(node, node)

    def test_strict(self):
        _, cfg = _diamond_cfg()
        dom = dominator_tree(cfg)
        assert dom.strictly_dominates("entry", "then")
        assert not dom.strictly_dominates("entry", "entry")

    def test_loop(self):
        func = build_counting_loop(3).function("main")
        dom = dominator_tree(CFGView(func))
        assert dom.dominates("entry", "body")
        assert dom.dominates("body", "done")
        assert dom.idom["done"] == "body"

    def test_children(self):
        _, cfg = _diamond_cfg()
        dom = dominator_tree(cfg)
        assert sorted(dom.children("entry")) == ["else", "join", "then"]


class TestPostdominators:
    def test_diamond(self):
        _, cfg = _diamond_cfg()
        pdom = postdominator_tree(cfg)
        assert pdom.dominates("join", "entry")
        assert pdom.dominates("join", "then")
        assert not pdom.dominates("then", "entry")

    def test_loop_exit_postdominates_body(self):
        func = build_counting_loop(3).function("main")
        pdom = postdominator_tree(CFGView(func))
        assert pdom.dominates("done", "body")
        assert pdom.dominates("done", "entry")

    def test_multiple_exits(self):
        # entry -> a (ret) / b (ret): neither postdominates entry
        func = Function("f")
        b = IRBuilder(func)
        entry = func.add_block("entry")
        blk_a = func.add_block("a")
        blk_b = func.add_block("b")
        b.at(entry)
        b.br("lt", ireg(0), Imm(0), "b")
        b.at(blk_a)
        b.ret()
        b.at(blk_b)
        b.ret()
        pdom = postdominator_tree(CFGView(func))
        assert not pdom.dominates("a", "entry")
        assert not pdom.dominates("b", "entry")
