"""Unit tests for predicate relation analysis."""

from repro.analysis.predrel import PredicateRelations
from repro.ir import BasicBlock, Imm, Opcode, Operation, ireg, preg


def _pred_def(dests, ptypes, guard=None, cmp="lt"):
    return Operation(Opcode.PRED_DEF, dests, [ireg(0), Imm(4)],
                     guard=guard, attrs={"cmp": cmp, "ptypes": ptypes})


class TestDisjointness:
    def test_ut_uf_pair_disjoint(self):
        block = BasicBlock("b", [_pred_def([preg(1), preg(2)], ["ut", "uf"])])
        rel = PredicateRelations(block)
        assert rel.disjoint(preg(1), preg(2))
        assert rel.disjoint(preg(2), preg(1))

    def test_same_register_not_disjoint(self):
        block = BasicBlock("b", [_pred_def([preg(1), preg(2)], ["ut", "uf"])])
        rel = PredicateRelations(block)
        assert not rel.disjoint(preg(1), preg(1))

    def test_none_guard_not_disjoint(self):
        block = BasicBlock("b", [_pred_def([preg(1), preg(2)], ["ut", "uf"])])
        rel = PredicateRelations(block)
        assert not rel.disjoint(None, preg(1))
        assert not rel.disjoint(preg(1), None)

    def test_unrelated_predicates_not_disjoint(self):
        block = BasicBlock("b", [
            _pred_def([preg(1)], ["ut"]),
            _pred_def([preg(2)], ["ut"]),
        ])
        rel = PredicateRelations(block)
        assert not rel.disjoint(preg(1), preg(2))

    def test_redefinition_invalidates(self):
        block = BasicBlock("b", [
            _pred_def([preg(1), preg(2)], ["ut", "uf"]),
            _pred_def([preg(1)], ["ut"], cmp="gt"),
        ])
        rel = PredicateRelations(block)
        assert not rel.disjoint(preg(1), preg(2))

    def test_pred_set_invalidates(self):
        block = BasicBlock("b", [
            _pred_def([preg(1), preg(2)], ["ut", "uf"]),
            Operation(Opcode.PRED_SET, [preg(1)], [Imm(1)]),
        ])
        rel = PredicateRelations(block)
        assert not rel.disjoint(preg(1), preg(2))

    def test_ct_cf_pair_disjoint(self):
        block = BasicBlock("b", [_pred_def([preg(1), preg(2)], ["ct", "cf"])])
        rel = PredicateRelations(block)
        assert rel.disjoint(preg(1), preg(2))

    def test_or_types_not_inferred_disjoint(self):
        block = BasicBlock("b", [_pred_def([preg(1), preg(2)], ["ot", "of"])])
        rel = PredicateRelations(block)
        assert not rel.disjoint(preg(1), preg(2))


class TestSubset:
    def test_guarded_ut_subset_of_guard(self):
        block = BasicBlock("b", [
            _pred_def([preg(1), preg(2)], ["ut", "uf"]),
            _pred_def([preg(3)], ["ut"], guard=preg(1)),
        ])
        rel = PredicateRelations(block)
        assert rel.subset(preg(3), preg(1))
        assert not rel.subset(preg(1), preg(3))

    def test_subset_reflexive(self):
        block = BasicBlock("b", [])
        rel = PredicateRelations(block)
        assert rel.subset(preg(1), preg(1))

    def test_subset_transitive(self):
        block = BasicBlock("b", [
            _pred_def([preg(1)], ["ut"]),
            _pred_def([preg(2)], ["ut"], guard=preg(1)),
            _pred_def([preg(3)], ["ut"], guard=preg(2)),
        ])
        rel = PredicateRelations(block)
        assert rel.subset(preg(3), preg(1))

    def test_nested_disjointness_via_subset(self):
        # p1, p2 complementary; p3 ⊆ p1 implies p3 disjoint from p2
        block = BasicBlock("b", [
            _pred_def([preg(1), preg(2)], ["ut", "uf"]),
            _pred_def([preg(3)], ["ut"], guard=preg(1)),
        ])
        rel = PredicateRelations(block)
        assert rel.disjoint(preg(3), preg(2))

    def test_implies_execution(self):
        block = BasicBlock("b", [
            _pred_def([preg(1)], ["ut"]),
            _pred_def([preg(2)], ["ut"], guard=preg(1)),
        ])
        rel = PredicateRelations(block)
        assert rel.implies_execution(preg(2), preg(1))
        assert rel.implies_execution(None, None)
        assert rel.implies_execution(preg(1), None)
        assert not rel.implies_execution(None, preg(1))
