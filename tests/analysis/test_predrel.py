"""Unit tests for predicate relation analysis."""

from repro.analysis.predrel import PredicateRelations
from repro.ir import BasicBlock, Imm, Opcode, Operation, ireg, preg


def _pred_def(dests, ptypes, guard=None, cmp="lt"):
    return Operation(Opcode.PRED_DEF, dests, [ireg(0), Imm(4)],
                     guard=guard, attrs={"cmp": cmp, "ptypes": ptypes})


class TestDisjointness:
    def test_ut_uf_pair_disjoint(self):
        block = BasicBlock("b", [_pred_def([preg(1), preg(2)], ["ut", "uf"])])
        rel = PredicateRelations(block)
        assert rel.disjoint(preg(1), preg(2))
        assert rel.disjoint(preg(2), preg(1))

    def test_same_register_not_disjoint(self):
        block = BasicBlock("b", [_pred_def([preg(1), preg(2)], ["ut", "uf"])])
        rel = PredicateRelations(block)
        assert not rel.disjoint(preg(1), preg(1))

    def test_none_guard_not_disjoint(self):
        block = BasicBlock("b", [_pred_def([preg(1), preg(2)], ["ut", "uf"])])
        rel = PredicateRelations(block)
        assert not rel.disjoint(None, preg(1))
        assert not rel.disjoint(preg(1), None)

    def test_unrelated_predicates_not_disjoint(self):
        block = BasicBlock("b", [
            _pred_def([preg(1)], ["ut"]),
            _pred_def([preg(2)], ["ut"]),
        ])
        rel = PredicateRelations(block)
        assert not rel.disjoint(preg(1), preg(2))

    def test_redefinition_invalidates(self):
        block = BasicBlock("b", [
            _pred_def([preg(1), preg(2)], ["ut", "uf"]),
            _pred_def([preg(1)], ["ut"], cmp="gt"),
        ])
        rel = PredicateRelations(block)
        assert not rel.disjoint(preg(1), preg(2))

    def test_pred_set_invalidates(self):
        block = BasicBlock("b", [
            _pred_def([preg(1), preg(2)], ["ut", "uf"]),
            Operation(Opcode.PRED_SET, [preg(1)], [Imm(1)]),
        ])
        rel = PredicateRelations(block)
        assert not rel.disjoint(preg(1), preg(2))

    def test_ct_cf_pair_disjoint(self):
        block = BasicBlock("b", [_pred_def([preg(1), preg(2)], ["ct", "cf"])])
        rel = PredicateRelations(block)
        assert rel.disjoint(preg(1), preg(2))

    def test_guarded_ct_cf_pair_not_disjoint(self):
        # when the guard is false neither destination is written, so both
        # may retain old (possibly both-true) values — no disjointness
        block = BasicBlock("b", [
            _pred_def([preg(3)], ["ut"]),
            _pred_def([preg(1), preg(2)], ["ct", "cf"], guard=preg(3)),
        ])
        rel = PredicateRelations(block)
        assert not rel.disjoint(preg(1), preg(2))

    def test_guarded_ut_uf_pair_still_disjoint(self):
        # u-types write under both guard polarities (0 when g is false),
        # so the pair is complementary-or-zero regardless of the guard
        block = BasicBlock("b", [
            _pred_def([preg(3)], ["ut"]),
            _pred_def([preg(1), preg(2)], ["ut", "uf"], guard=preg(3)),
        ])
        rel = PredicateRelations(block)
        assert rel.disjoint(preg(1), preg(2))

    def test_or_accumulation_keeps_subset_into_dest(self):
        # p3 ⊆ p1 established, then p1 |= ... (ot): p1 only grows, so the
        # subset fact survives the redefinition
        block = BasicBlock("b", [
            _pred_def([preg(1)], ["ut"]),
            _pred_def([preg(3)], ["ut"], guard=preg(1)),
            _pred_def([preg(1)], ["ot"], cmp="gt"),
        ])
        rel = PredicateRelations(block)
        assert rel.subset(preg(3), preg(1))

    def test_or_accumulation_drops_disjointness_of_dest(self):
        # p1 ∦ p2, then p1 |= ... (ot): p1 may grow into p2's set
        block = BasicBlock("b", [
            _pred_def([preg(1), preg(2)], ["ut", "uf"]),
            _pred_def([preg(1)], ["ot"], cmp="gt"),
        ])
        rel = PredicateRelations(block)
        assert not rel.disjoint(preg(1), preg(2))

    def test_and_accumulation_keeps_superset_facts(self):
        # p3 ⊆ p1, then p3 &= ... (at): p3 only shrinks, still ⊆ p1
        block = BasicBlock("b", [
            _pred_def([preg(1)], ["ut"]),
            _pred_def([preg(3)], ["ut"], guard=preg(1)),
            _pred_def([preg(3)], ["at"], cmp="gt"),
        ])
        rel = PredicateRelations(block)
        assert rel.subset(preg(3), preg(1))

    def test_or_types_not_inferred_disjoint(self):
        block = BasicBlock("b", [_pred_def([preg(1), preg(2)], ["ot", "of"])])
        rel = PredicateRelations(block)
        assert not rel.disjoint(preg(1), preg(2))


class TestSubset:
    def test_guarded_ut_subset_of_guard(self):
        block = BasicBlock("b", [
            _pred_def([preg(1), preg(2)], ["ut", "uf"]),
            _pred_def([preg(3)], ["ut"], guard=preg(1)),
        ])
        rel = PredicateRelations(block)
        assert rel.subset(preg(3), preg(1))
        assert not rel.subset(preg(1), preg(3))

    def test_subset_reflexive(self):
        block = BasicBlock("b", [])
        rel = PredicateRelations(block)
        assert rel.subset(preg(1), preg(1))

    def test_subset_transitive(self):
        block = BasicBlock("b", [
            _pred_def([preg(1)], ["ut"]),
            _pred_def([preg(2)], ["ut"], guard=preg(1)),
            _pred_def([preg(3)], ["ut"], guard=preg(2)),
        ])
        rel = PredicateRelations(block)
        assert rel.subset(preg(3), preg(1))

    def test_nested_disjointness_via_subset(self):
        # p1, p2 complementary; p3 ⊆ p1 implies p3 disjoint from p2
        block = BasicBlock("b", [
            _pred_def([preg(1), preg(2)], ["ut", "uf"]),
            _pred_def([preg(3)], ["ut"], guard=preg(1)),
        ])
        rel = PredicateRelations(block)
        assert rel.disjoint(preg(3), preg(2))

    def test_implies_execution(self):
        block = BasicBlock("b", [
            _pred_def([preg(1)], ["ut"]),
            _pred_def([preg(2)], ["ut"], guard=preg(1)),
        ])
        rel = PredicateRelations(block)
        assert rel.implies_execution(preg(2), preg(1))
        assert rel.implies_execution(None, None)
        assert rel.implies_execution(preg(1), None)
        assert not rel.implies_execution(None, preg(1))
