"""Wire-form and identity-key tests for the service protocol."""

import pytest

from repro.runner.summary import RunSummary
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    Response,
    decode_request,
    decode_response,
    encode,
    summary_from_dict,
    summary_to_dict,
)


def _summary(**overrides):
    fields = dict(name="adpcm_enc", pipeline="aggressive", capacity=64,
                  cycles=100, bundles=50, ops_issued=200,
                  ops_from_buffer=150, ops_from_memory=50, static_ops=40,
                  branch_bubbles=3)
    fields.update(overrides)
    return RunSummary(**fields)


class TestRequestRoundTrip:
    def test_encode_decode(self):
        request = Request(kind="run", benchmark="adpcm_enc",
                          pipeline="traditional", capacity=64,
                          checked=True, id="r1")
        line = encode(request)
        assert line.endswith(b"\n")
        assert decode_request(line) == request

    def test_defaults_survive(self):
        request = Request(kind="run", benchmark="x")
        again = decode_request(encode(request))
        assert again.pipeline == "aggressive"
        assert again.capacity is None
        assert not again.checked

    def test_unknown_fields_rejected(self):
        with pytest.raises(ProtocolError, match="unknown request fields"):
            decode_request(b'{"kind": "ping", "surprise": 1, "v": 1}\n')

    def test_version_mismatch_rejected(self):
        bad = f'{{"kind": "ping", "v": {PROTOCOL_VERSION + 1}}}\n'
        with pytest.raises(ProtocolError, match="protocol version"):
            decode_request(bad)

    def test_bad_json_rejected(self):
        with pytest.raises(ProtocolError, match="bad JSON"):
            decode_request(b"not json\n")
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_request(b"[1, 2]\n")


class TestValidation:
    def test_unknown_kind(self):
        with pytest.raises(ProtocolError, match="unknown request kind"):
            Request(kind="explode").validate()

    def test_run_needs_exactly_one_program(self):
        with pytest.raises(ProtocolError, match="exactly one"):
            Request(kind="run").validate()
        with pytest.raises(ProtocolError, match="exactly one"):
            Request(kind="run", benchmark="a",
                    source="int main() {}").validate()
        Request(kind="run", benchmark="a").validate()
        Request(kind="compile", source="int main() {}").validate()

    def test_ping_needs_nothing(self):
        Request(kind="ping").validate()


class TestIdentityKeys:
    def test_group_covers_base_identity(self):
        base = Request(kind="run", benchmark="a", capacity=64)
        assert base.group == Request(kind="run", benchmark="a",
                                     capacity=256).group
        assert base.group != Request(kind="run", benchmark="b",
                                     capacity=64).group
        assert base.group != Request(kind="run", benchmark="a",
                                     pipeline="traditional").group
        assert base.group != Request(kind="run", benchmark="a",
                                     checked=True).group
        assert base.group != Request(kind="run", benchmark="a",
                                     engine="ref").group
        assert base.group != Request(kind="run", benchmark="a",
                                     max_steps=10).group

    def test_coalesce_key_is_full_identity(self):
        a = Request(kind="run", benchmark="a", capacity=64)
        assert a.coalesce_key() == Request(kind="run", benchmark="a",
                                           capacity=64).coalesce_key()
        assert a.coalesce_key() != Request(kind="run", benchmark="a",
                                           capacity=128).coalesce_key()
        assert a.coalesce_key() != Request(
            kind="run", benchmark="a", capacity=64,
            retarget="legacy").coalesce_key()
        assert a.coalesce_key() != Request(kind="compile",
                                           benchmark="a",
                                           capacity=64).coalesce_key()

    def test_ids_never_affect_identity(self):
        a = Request(kind="run", benchmark="a", capacity=64, id="x")
        b = Request(kind="run", benchmark="a", capacity=64, id="y")
        assert a.coalesce_key() == b.coalesce_key()

    def test_inline_source_hashes_to_program_id(self):
        a = Request(kind="run", source="int main() { return 1; }")
        b = Request(kind="run", source="int main() { return 1; }")
        c = Request(kind="run", source="int main() { return 2; }")
        assert a.program_id == b.program_id
        assert a.program_id != c.program_id
        assert a.program_id.startswith("src:")


class TestResponse:
    def test_round_trip_with_summary(self):
        summary = _summary()
        response = Response(status="ok", id="r1",
                            payload={"summary": summary_to_dict(summary),
                                     "value": 42},
                            meta={"worker": 1, "latency_s": 0.5})
        again = decode_response(encode(response))
        assert again.ok
        assert again.id == "r1"
        assert again.summary() == summary
        assert again.meta["worker"] == 1

    def test_summary_raises_on_failure(self):
        response = Response(status="trap", error="StepLimitExceeded")
        assert not response.ok
        with pytest.raises(ProtocolError, match="no summary"):
            response.summary()

    def test_summary_dict_round_trip(self):
        summary = _summary(capacity=None)
        assert summary_from_dict(summary_to_dict(summary)) == summary

    def test_unknown_fields_rejected(self):
        with pytest.raises(ProtocolError, match="unknown response fields"):
            decode_response(b'{"status": "ok", "shrug": true, "v": 1}\n')
