"""Sharded-cache tests: partitioning, concurrency, corruption, gc.

The hammer tests mix thread and process writers against one cache root
to prove what the atomic-rename design promises: readers never see torn
payloads, the last rename wins, and corrupt files are evicted rather
than raised.
"""

import os
import pickle
import threading
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.runner.cache import CACHE_FORMAT, ArtifactCache, cache_key
from repro.serve.shards import (
    DEFAULT_SHARDS,
    ShardedArtifactCache,
    shard_index,
)


class Payload:
    """Module-level so pickle can reference it by import path."""

    def __init__(self, value):
        self.value = value

    def __eq__(self, other):
        return isinstance(other, Payload) and other.value == self.value


def _keys(n, salt=""):
    return [cache_key(f"program {salt}{i}", "aggressive", {}) for i
            in range(n)]


class TestPartitioning:
    def test_shard_index_spans_all_shards(self):
        owners = {shard_index(k, DEFAULT_SHARDS) for k in _keys(512)}
        assert owners == set(range(DEFAULT_SHARDS))

    def test_prefix_domains_partition_the_key_space(self, tmp_path):
        cache = ShardedArtifactCache(tmp_path, shards=16)
        all_prefixes = [p for shard in cache._shards
                        for p in shard.prefixes]
        assert sorted(all_prefixes) == [f"{i:02x}" for i in range(256)]
        for shard_no, shard in enumerate(cache._shards):
            for prefix in shard.prefixes:
                assert int(prefix, 16) % 16 == shard_no

    def test_layout_compatible_with_plain_cache(self, tmp_path):
        """The runner and the service share one directory and warm
        each other."""
        plain = ArtifactCache(tmp_path)
        sharded = ShardedArtifactCache(tmp_path, shards=8)
        key = cache_key("shared program", "aggressive", {})
        plain.store(key, "base", Payload(1))
        assert sharded.load(key, "base") == Payload(1)
        other = cache_key("other program", "aggressive", {})
        sharded.store(other, "run", Payload(2))
        assert plain.load(other, "run") == Payload(2)

    def test_shard_count_bounds(self, tmp_path):
        with pytest.raises(ValueError):
            ShardedArtifactCache(tmp_path, shards=0)
        with pytest.raises(ValueError):
            ShardedArtifactCache(tmp_path, shards=257)
        ShardedArtifactCache(tmp_path, shards=1)
        ShardedArtifactCache(tmp_path, shards=256)

    def test_stats_aggregate_across_shards(self, tmp_path):
        cache = ShardedArtifactCache(tmp_path, shards=4)
        keys = _keys(8)
        for i, key in enumerate(keys):
            cache.store(key, "base", Payload(i))
        for key in keys:
            assert cache.load(key, "base") is not None
        assert cache.load(cache_key("missing", "aggressive", {}),
                          "base") is None
        stats = cache.stats
        assert stats.stores == 8
        assert stats.hits == 8
        assert stats.misses == 1
        report = cache.shard_report()
        assert sum(row["stores"] for row in report) == 8


def _process_writer(root, key, rounds, tag):
    """Hammer one key from a separate process; returns values written."""
    cache = ArtifactCache(root)
    written = []
    for i in range(rounds):
        value = tag * 1000 + i
        cache.store(key, "base", Payload(value))
        written.append(value)
    return written


class TestConcurrentWriters:
    def test_thread_hammer_one_key_no_torn_reads(self, tmp_path):
        """Concurrent stores + loads on one key: every load returns a
        complete payload some writer stored, never a partial one."""
        cache = ShardedArtifactCache(tmp_path, shards=4)
        key = cache_key("contended", "aggressive", {})
        rounds, writers = 30, 4
        valid = {tag * 1000 + i for tag in range(writers)
                 for i in range(rounds)}
        seen, errors = [], []

        def write(tag):
            try:
                for i in range(rounds):
                    cache.store(key, "base", Payload(tag * 1000 + i))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def read():
            try:
                for _ in range(rounds * 2):
                    got = cache.load(key, "base")
                    if got is not None:
                        seen.append(got.value)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=write, args=(tag,))
                   for tag in range(writers)]
        threads += [threading.Thread(target=read) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert seen, "readers never observed a stored value"
        assert set(seen) <= valid

    def test_process_and_thread_writers_last_rename_wins(self, tmp_path):
        """Thread + process writers on one key: the final value is the
        last completed rename, and it is a complete payload."""
        key = cache_key("cross-process", "aggressive", {})
        cache = ShardedArtifactCache(tmp_path, shards=2)
        rounds = 20

        with ProcessPoolExecutor(max_workers=2) as pool:
            futures = [pool.submit(_process_writer, str(tmp_path), key,
                                   rounds, tag) for tag in (1, 2)]
            for i in range(rounds):
                cache.store(key, "base", Payload(3000 + i))
            written = {v for f in futures for v in f.result()}
        written |= {3000 + i for i in range(rounds)}

        final = cache.load(key, "base")
        assert final is not None
        assert final.value in written
        # exactly one file on disk for the key, no leftover temp files
        sub = tmp_path / key[:2]
        names = sorted(p.name for p in sub.iterdir())
        assert names == [f"{key}.base.pkl"]

    def test_many_keys_across_shards(self, tmp_path):
        """Writers spraying distinct keys across every shard: all land."""
        cache = ShardedArtifactCache(tmp_path, shards=16)
        keys = _keys(64)

        def write(start):
            for i in range(start, len(keys), 4):
                cache.store(keys[i], "run", Payload(i))

        threads = [threading.Thread(target=write, args=(s,))
                   for s in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for i, key in enumerate(keys):
            assert cache.load(key, "run") == Payload(i)


class TestCorruption:
    def test_corrupt_envelope_evicted_not_raised(self, tmp_path):
        cache = ShardedArtifactCache(tmp_path, shards=4)
        key = cache_key("to corrupt", "aggressive", {})
        cache.store(key, "base", Payload(1))
        path = tmp_path / key[:2] / f"{key}.base.pkl"
        path.write_bytes(b"garbage, not a pickle")
        assert cache.load(key, "base") is None
        assert not path.exists()

    def test_wrong_format_envelope_evicted(self, tmp_path):
        cache = ShardedArtifactCache(tmp_path, shards=4)
        key = cache_key("stale format", "aggressive", {})
        path = tmp_path / key[:2] / f"{key}.base.pkl"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(pickle.dumps({"format": CACHE_FORMAT + 1,
                                       "key": key,
                                       "payload": Payload(1)}))
        assert cache.load(key, "base") is None
        assert not path.exists()


class TestSizeBounding:
    def _fill(self, cache, n, kind="base"):
        keys = _keys(n, salt="gc")
        for i, key in enumerate(keys):
            cache.store(key, kind, Payload(i))
        return keys

    def test_forced_gc_enforces_total_bound(self, tmp_path):
        from repro.runner.cache import iter_entries

        cache = ShardedArtifactCache(tmp_path, shards=4, max_bytes=1)
        self._fill(cache, 16)
        evicted = cache.gc()
        assert evicted > 0
        assert iter_entries(tmp_path) == []

    def test_gc_without_bound_is_noop(self, tmp_path):
        from repro.runner.cache import iter_entries

        cache = ShardedArtifactCache(tmp_path, shards=4)
        self._fill(cache, 8)
        assert cache.gc() == 0
        assert len(iter_entries(tmp_path)) == 8

    def test_store_triggered_gc(self, tmp_path, monkeypatch):
        """Every GC_EVERY_STORES stores a shard sweeps itself."""
        from repro.serve import shards as shards_mod

        monkeypatch.setattr(shards_mod, "GC_EVERY_STORES", 2)
        cache = ShardedArtifactCache(tmp_path, shards=1, max_bytes=1)
        self._fill(cache, 8)
        assert cache._shards[0].gc_runs > 0
        assert cache.stats.evictions > 0

    def test_gc_only_touches_own_prefixes(self, tmp_path):
        """One shard's sweep never evicts another shard's entries."""
        from repro.runner.cache import iter_entries

        cache = ShardedArtifactCache(tmp_path, shards=4, max_bytes=1)
        keys = self._fill(cache, 32)
        victim = cache._shards[0]
        with victim.lock:
            cache._gc_shard(victim)
        left = {e.key for e in iter_entries(tmp_path)}
        gone = set(keys) - left
        assert gone, "the sweep evicted nothing"
        assert all(k[:2] in victim.prefixes for k in gone)
