"""Service behaviour: identity with the runner, coalescing, batching,
backpressure, deadlines, affinity and the socket front end."""

import asyncio
import threading
import time

import pytest

from repro.runner.cache import ArtifactCache
from repro.runner.parallel import Cell, run_grid
from repro.serve import Client, Request, Service, ServiceConfig
from repro.serve.client import ServiceError, SocketClient, drive
from repro.serve.pool import Computation, HashRing, QueueFull, WorkerPool
from repro.serve.service import serve_forever

#: the quick Figure 7 grid (matches the perf harness's QUICK_SIM)
GRID_BENCHMARKS = ("adpcm_enc", "mpeg2_dec")
GRID_PIPELINES = ("traditional", "aggressive")
GRID_CAPACITIES = (64, 256)

TRAP_SOURCE = """\
int main() {
    int x = 4;
    int y = 0;
    return x / y;
}
"""

OK_SOURCE = """\
int main() {
    int acc = 0;
    for (int i = 0; i < 8; i++) {
        acc = acc + i;
    }
    return acc;
}
"""


def _grid_cells():
    return [Cell(name, pipeline, capacity)
            for name in GRID_BENCHMARKS
            for pipeline in GRID_PIPELINES
            for capacity in GRID_CAPACITIES]


class TestRunnerIdentity:
    """The acceptance contract: a summary served by the service equals
    the one ``run_grid`` computes, cell for cell."""

    def test_service_summaries_byte_identical_to_run_grid(self, tmp_path):
        cells = _grid_cells()
        direct = run_grid(cells, workers=1,
                          cache=ArtifactCache(tmp_path / "runner"))
        with Service(ServiceConfig(
                workers=2, cache_dir=str(tmp_path / "serve"))) as service:
            client = Client(service)
            via = [client.summary(cell.name, pipeline=cell.pipeline,
                                  capacity=cell.capacity)
                   for cell in cells]
        assert via == direct

    def test_service_and_runner_share_one_cache(self, tmp_path):
        """A grid the runner executed serves warm, and vice versa."""
        cells = _grid_cells()[:2]
        cache = ArtifactCache(tmp_path / "shared")
        direct = run_grid(cells, workers=1, cache=cache)
        with Service(ServiceConfig(
                workers=1, cache_dir=str(tmp_path / "shared"))) as service:
            client = Client(service)
            for cell, expected in zip(cells, direct):
                response = client.run(cell.name, pipeline=cell.pipeline,
                                      capacity=cell.capacity)
                assert response.meta["served"] == "run-cache"
                assert response.summary() == expected


class TestCoalescingAndBatching:
    def test_identical_concurrent_requests_coalesce(self):
        """The batching criterion: computation count < request count."""
        with Service(ServiceConfig(workers=1, cache_dir=None)) as service:
            client = Client(service)
            futures = [client.submit(Request(kind="run",
                                             benchmark="adpcm_enc",
                                             capacity=32))
                       for _ in range(10)]
            responses = [f.result(timeout=120) for f in futures]
        assert all(r.ok for r in responses)
        first = responses[0].summary()
        assert all(r.summary() == first for r in responses)
        assert service.stats.computations < service.stats.requests
        assert service.stats.coalesced > 0
        assert sum(r.meta["coalesced"] for r in responses) == \
            service.stats.coalesced

    def test_capacity_sweep_batches_on_one_base(self):
        """Same-group capacity requests share one compiled base."""
        with Service(ServiceConfig(workers=1, cache_dir=None)) as service:
            client = Client(service)
            futures = [client.submit(Request(kind="run",
                                             benchmark="adpcm_enc",
                                             capacity=capacity))
                       for capacity in (4, 8, 16, 32, 64, 128)]
            responses = [f.result(timeout=120) for f in futures]
        assert all(r.ok for r in responses)
        assert service.stats.base_compiles == 1
        assert service.stats.base_memo_hits + service.stats.batched > 0
        capacities = [r.summary().capacity for r in responses]
        assert capacities == [4, 8, 16, 32, 64, 128]

    def test_warm_hit_rate_on_repeat_workload(self, tmp_path):
        with Service(ServiceConfig(
                workers=2, cache_dir=str(tmp_path))) as service:
            requests = [Request(kind="run", benchmark="adpcm_enc",
                                pipeline=pipeline, capacity=capacity)
                        for pipeline in GRID_PIPELINES
                        for capacity in (16, 64)]
            drive(lambda: Client(service), requests, concurrency=4)
            before = service.stats.run_cache_hits
            responses = drive(lambda: Client(service), requests,
                              concurrency=4)
            hits = service.stats.run_cache_hits - before
        assert all(r.ok for r in responses)
        assert hits / len(requests) >= 0.9
        assert all(r.meta["served"] == "run-cache" for r in responses)


class _BlockedService:
    """A service whose single worker is parked until ``release()``."""

    def __init__(self, **config):
        self.service = Service(ServiceConfig(workers=1, cache_dir=None,
                                             **config))
        self.gate = threading.Event()
        self.entered = threading.Event()
        inner = self.service.pool._execute_batch

        def blocked(worker, batch):
            self.entered.set()
            self.gate.wait(30)
            inner(worker, batch)

        self.service.pool._execute_batch = blocked

    def park(self, client):
        """Occupy the worker with one request; returns its future."""
        future = client.submit(Request(kind="run", benchmark="adpcm_enc",
                                       capacity=1))
        assert self.entered.wait(30)
        return future

    def release(self):
        self.gate.set()

    def close(self):
        self.gate.set()
        self.service.close()


class TestBackpressure:
    def test_overloaded_when_queue_full(self):
        blocked = _BlockedService(queue_depth=2)
        try:
            client = Client(blocked.service)
            parked = blocked.park(client)
            # distinct capacities: same group (same worker), no coalesce
            queued = [client.submit(Request(kind="run",
                                            benchmark="adpcm_enc",
                                            capacity=2 + i))
                      for i in range(2)]
            shed = client.request(Request(kind="run",
                                          benchmark="adpcm_enc",
                                          capacity=99))
            assert shed.status == "overloaded"
            assert "queue_depths" in shed.meta
            blocked.release()
            assert parked.result(timeout=120).ok
            assert all(f.result(timeout=120).ok for f in queued)
        finally:
            blocked.close()
        assert blocked.service.stats.overloaded == 1

    def test_coalesced_waiters_hear_overloaded_too(self):
        """A request that coalesces onto a computation the pool then
        sheds must hear ``overloaded`` rather than hang."""
        with Service(ServiceConfig(workers=1, cache_dir=None)) as service:
            request = Request(kind="run", benchmark="adpcm_enc",
                              capacity=5)
            duplicate = Request(kind="run", benchmark="adpcm_enc",
                                capacity=5)
            captured = {}

            def full_pool_submit(comp):
                # a duplicate arrives while this computation is being
                # dispatched: it coalesces onto the pending entry
                captured["dup"] = service.submit(duplicate)
                raise QueueFull("worker 0 queue at depth 0")

            original = service.pool.submit
            service.pool.submit = full_pool_submit
            try:
                first = service.submit(request).result(timeout=30)
            finally:
                service.pool.submit = original
            dup = captured["dup"].result(timeout=30)
        assert first.status == "overloaded"
        assert dup.status == "overloaded"
        assert dup.meta["coalesced"] is True
        assert service.stats.overloaded == 2
        assert not service._pending

    def test_deadline_expires_to_timeout(self):
        blocked = _BlockedService()
        try:
            client = Client(blocked.service)
            parked = blocked.park(client)
            doomed = client.submit(Request(kind="run",
                                           benchmark="adpcm_enc",
                                           capacity=7, deadline_s=0.05))
            time.sleep(0.2)
            blocked.release()
            response = doomed.result(timeout=120)
            assert response.status == "timeout"
            assert parked.result(timeout=120).ok
        finally:
            blocked.close()
        assert blocked.service.stats.timeouts == 1


class TestAffinity:
    def test_ring_is_deterministic_and_spread(self):
        ring = HashRing(4)
        groups = [("bench%d" % i, "aggressive", False, "", 0)
                  for i in range(64)]
        owners = [ring.worker_for(g) for g in groups]
        assert owners == [HashRing(4).worker_for(g) for g in groups]
        assert len(set(owners)) == 4  # no worker starves at this scale

    def test_resize_moves_few_groups(self):
        groups = [("bench%d" % i, "p", False, "", 0) for i in range(256)]
        before = [HashRing(4).worker_for(g) for g in groups]
        after = [HashRing(5).worker_for(g) for g in groups]
        moved = sum(1 for a, b in zip(before, after) if a != b)
        # consistent hashing: ~1/5 of groups move, not ~4/5
        assert moved < len(groups) // 2

    def test_same_group_always_lands_one_worker(self):
        with Service(ServiceConfig(workers=4, cache_dir=None)) as service:
            client = Client(service)
            responses = [client.request(Request(kind="run",
                                                benchmark="adpcm_enc",
                                                capacity=capacity))
                         for capacity in (4, 8, 16, 32)]
        assert all(r.ok for r in responses)
        workers = {r.meta["worker"] for r in responses}
        assert len(workers) == 1


class TestWorkerPool:
    def test_take_batch_groups_and_preserves_order(self):
        taken = []
        done = threading.Event()
        gate = threading.Event()

        def execute(worker, batch):
            if batch[0].request == "stall":
                gate.wait(10)
                for comp in batch:
                    comp.future.set_result(None)
                return
            taken.append([c.request for c in batch])
            for comp in batch:
                comp.future.set_result(None)
            if sum(len(b) for b in taken) >= 4:
                done.set()

        pool = WorkerPool(1, execute, queue_depth=8)
        # stall the worker so the queue builds up a mixed sequence
        pool.submit(Computation(key=("s",), group=("stall",),
                                request="stall"))
        while pool.queue_depths()[0]:  # until the worker picks it up
            time.sleep(0.005)
        for name, group in (("a1", "A"), ("b1", "B"), ("a2", "A"),
                            ("b2", "B")):
            pool.submit(Computation(key=(name,), group=(group,),
                                    request=name))
        gate.set()
        assert done.wait(10)
        pool.close()
        # first batch after the stall: both A's together, order kept
        assert taken[0] == ["a1", "a2"]
        assert taken[1] == ["b1", "b2"]

    def test_close_fails_pending_with_queue_full(self):
        started = threading.Event()
        gate = threading.Event()

        def execute(worker, batch):
            started.set()
            gate.wait(10)
            for comp in batch:
                comp.future.set_result("ran")

        pool = WorkerPool(1, execute, queue_depth=8)
        running = Computation(key=("r",), group=("r",), request=None)
        pool.submit(running)
        assert started.wait(10)
        pending = Computation(key=("p",), group=("p",), request=None)
        pool.submit(pending)
        # close while the worker is still busy: the queued computation
        # must fail fast, not hang
        pool.close(timeout=0.1)
        assert isinstance(pending.future.exception(timeout=10), QueueFull)
        with pytest.raises(QueueFull):
            pool.submit(Computation(key=("x",), group=("x",),
                                    request=None))
        gate.set()
        assert running.future.result(timeout=10) == "ran"


class TestInlineSource:
    def test_inline_run_value(self):
        with Service(ServiceConfig(workers=1, cache_dir=None)) as service:
            response = Client(service).run(source=OK_SOURCE, capacity=16)
        assert response.ok
        assert response.payload["value"] == 28  # sum(range(8))

    def test_inline_ok_verdict_is_cached(self, tmp_path):
        with Service(ServiceConfig(
                workers=1, cache_dir=str(tmp_path))) as service:
            client = Client(service)
            cold = client.run(source=OK_SOURCE, capacity=16)
            assert cold.ok and cold.meta["served"] == "computed"
            warm = client.run(source=OK_SOURCE, capacity=16)
            assert warm.ok and warm.meta["served"] == "run-cache"
            assert warm.payload == cold.payload

    def test_inline_trap_is_a_result_and_cached(self, tmp_path):
        with Service(ServiceConfig(
                workers=1, cache_dir=str(tmp_path))) as service:
            client = Client(service)
            first = client.run(source=TRAP_SOURCE, capacity=16)
            assert first.status == "trap"
            assert first.error == "SimError"
            again = client.run(source=TRAP_SOURCE, capacity=16)
            assert again.status == "trap"
            assert again.meta["served"] == "run-cache"
            assert again.error == first.error

    def test_summary_raises_service_error_on_trap(self):
        with Service(ServiceConfig(workers=1, cache_dir=None)) as service:
            with pytest.raises(ServiceError, match="trap"):
                Client(service).summary(source=TRAP_SOURCE, capacity=16)


class TestControlRequests:
    def test_ping_stats_and_compile(self, tmp_path):
        with Service(ServiceConfig(
                workers=1, cache_dir=str(tmp_path))) as service:
            client = Client(service)
            assert client.ping().ok
            cold = client.compile("adpcm_enc")
            assert cold.ok and cold.payload["warm"] is False
            warm = client.compile("adpcm_enc")
            assert warm.ok and warm.payload["warm"] is True
            stats = client.stats()
            assert stats["stats"]["requests"] >= 3
            assert len(stats["queue_depths"]) == 1
            assert "cache" in stats

    def test_bad_request_is_an_error_response(self):
        with Service(ServiceConfig(workers=1, cache_dir=None)) as service:
            response = Client(service).request(Request(kind="run"))
        assert response.status == "error"
        assert "exactly one" in response.error


class TestSocketFrontEnd:
    @pytest.fixture
    def server(self, tmp_path):
        path = str(tmp_path / "serve.sock")
        service = Service(ServiceConfig(
            workers=2, cache_dir=str(tmp_path / "cache")))
        ready = threading.Event()
        loops = {}

        def run():
            loop = asyncio.new_event_loop()
            loops["loop"] = loop
            asyncio.set_event_loop(loop)
            task = loop.create_task(serve_forever(
                service, unix_path=path, ready=lambda s: ready.set()))
            try:
                loop.run_until_complete(task)
            except asyncio.CancelledError:
                pass
            finally:
                loop.close()

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        assert ready.wait(10), "server never came up"
        yield path, service
        loop = loops["loop"]
        loop.call_soon_threadsafe(
            lambda: [t.cancel() for t in asyncio.all_tasks(loop)])
        thread.join(timeout=10)
        service.close()

    def test_round_trip_and_warm_path(self, server):
        path, _service = server
        with SocketClient(unix_path=path) as client:
            assert client.ping().ok
            cold = client.run("adpcm_enc", capacity=64)
            assert cold.ok and cold.meta["served"] == "computed"
            warm = client.run("adpcm_enc", capacity=64)
            assert warm.ok and warm.meta["served"] == "run-cache"
            assert warm.summary() == cold.summary()

    def test_protocol_error_keeps_connection_alive(self, server):
        from repro.serve.protocol import decode_response

        path, _service = server
        with SocketClient(unix_path=path) as client:
            client._file.write(b'{"kind": "nonsense", "v": 1}\n')
            client._file.flush()
            response = decode_response(client._file.readline())
            assert response.status == "error"
            assert "protocol" in response.error
            assert client.ping().ok

    def test_concurrent_socket_clients(self, server):
        path, service = server
        requests = [Request(kind="run", benchmark="adpcm_enc",
                            pipeline=pipeline, capacity=capacity)
                    for pipeline in GRID_PIPELINES
                    for capacity in (16, 64)] * 2
        responses = drive(lambda: SocketClient(unix_path=path), requests,
                          concurrency=4)
        assert all(r.ok for r in responses)
        assert service.stats.run_cache_hits > 0


class TestFuzzOracleRoute:
    """The fuzz oracle can route one side of its differential through
    the service."""

    def test_service_configs_agree_with_interpreter(self):
        from repro.fuzz.oracle import check_program, service_configs

        report = check_program(OK_SOURCE, service_configs())
        assert report.ok, [v.describe() for v in report.divergences]
        assert report.reference == ("value", 28)

    def test_trap_programs_trap_identically(self):
        from repro.fuzz.oracle import check_program, service_configs

        report = check_program(TRAP_SOURCE, service_configs())
        assert report.ok, [v.describe() for v in report.divergences]
        assert report.reference[0] == "trap"

    def test_service_config_label_and_round_trip(self):
        from repro.fuzz.oracle import Config, service_configs

        config = service_configs()[0]
        assert config.label.endswith("+serve")
        assert Config.from_dict(config.as_dict()) == config
        # plain configs keep their historical serialized shape
        assert "service" not in Config("aggressive", 64).as_dict()
