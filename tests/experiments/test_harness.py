"""Light unit tests for the experiments infrastructure (one fast sim)."""

import pytest

from repro.experiments import common
from repro.experiments.common import RunSummary, format_table
from repro.experiments.fig7 import Fig7Result
from repro.experiments.fig8 import Fig8Result, Fig8Row
from repro.runner.cache import ArtifactCache


class TestFormatTable:
    def test_alignment_and_floats(self):
        text = format_table(["name", "x"], [["a", 1.23456], ["bb", 2]], "T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "1.235" in text
        assert "bb" in text

    def test_empty_rows(self):
        text = format_table(["h"], [])
        assert "h" in text


class TestRunSummary:
    def _summary(self, buf, mem):
        return RunSummary("b", "p", 256, cycles=10, bundles=10,
                          ops_issued=buf + mem, ops_from_buffer=buf,
                          ops_from_memory=mem, static_ops=5,
                          branch_bubbles=0)

    def test_buffer_fraction(self):
        assert self._summary(75, 25).buffer_fraction == pytest.approx(0.75)

    def test_zero_ops(self):
        assert self._summary(0, 0).buffer_fraction == 0.0


class TestFig7Result:
    def _result(self):
        r = Fig7Result(sizes=(16, 256))
        r.series["traditional"] = {"a": [0.1, 0.4], "b": [0.0, 0.2]}
        r.series["aggressive"] = {"a": [0.2, 0.9], "b": [0.1, 0.8]}
        return r

    def test_fraction_at(self):
        r = self._result()
        assert r.fraction_at("aggressive", "a", 256) == 0.9

    def test_average_with_exclusions(self):
        r = self._result()
        assert r.average_at("traditional", 256) == pytest.approx(0.3)
        assert r.average_at("traditional", 256, exclude=("b",)) == pytest.approx(0.4)

    def test_empty_average(self):
        r = self._result()
        assert r.average_at("traditional", 256, exclude=("a", "b")) == 0.0


class TestRunnerFacade:
    """The historical facade rides on repro.runner but keeps its contract."""

    @pytest.fixture(autouse=True)
    def _isolated_cache(self, tmp_path):
        common.reset(ArtifactCache(tmp_path / "cache"))
        yield
        common.reset()

    def test_run_at_capacity_memoizes_and_caches(self):
        first = run_at_capacity = common.run_at_capacity
        a = first("adpcm_enc", "traditional", 64)
        assert a.name == "adpcm_enc"
        assert a.capacity == 64
        assert a.ops_issued == a.ops_from_buffer + a.ops_from_memory
        # in-process memo: identical object back
        assert run_at_capacity("adpcm_enc", "traditional", 64) is a
        # disk cache: a fresh process-level state still avoids the sim
        cache = common._cache()
        common.reset(cache)
        b = run_at_capacity("adpcm_enc", "traditional", 64)
        assert b == a
        assert common.runner_metrics().run_cache_hits == 1

    def test_compiled_base_memoizes(self):
        base = common.compiled_base("adpcm_enc", "traditional")
        assert common.compiled_base("adpcm_enc", "traditional") is base
        assert base.buffer_capacity is None

    def test_prewarm_seeds_run_at_capacity(self):
        summaries = common.prewarm(["adpcm_enc"], ("traditional",), (64,),
                                   workers=0)
        assert len(summaries) == 1
        assert common.run_at_capacity("adpcm_enc", "traditional", 64) \
            is summaries[0]
        # prewarming the same grid again is a no-op
        assert common.prewarm(["adpcm_enc"], ("traditional",), (64,),
                              workers=0) == []


class TestFig8Result:
    def _row(self, name, speedup, pb, pt):
        return Fig8Row(name, speedup, 1.1, 1.0, 1.2, pb, pt)

    def test_geometric_mean_speedup(self):
        r = Fig8Result(rows=[self._row("a", 2.0, 1, 1),
                             self._row("b", 0.5, 1, 1)])
        assert r.average_speedup() == pytest.approx(1.0)

    def test_power_reduction(self):
        r = Fig8Result(rows=[self._row("a", 1, 0.6, 0.2),
                             self._row("b", 1, 0.8, 0.4)])
        base, trans = r.average_power_reduction()
        assert base == pytest.approx(0.3)
        assert trans == pytest.approx(0.7)

    def test_exclusions(self):
        r = Fig8Result(rows=[self._row("a", 4.0, 1, 1),
                             self._row("b", 1.0, 1, 1)])
        assert r.average_speedup(exclude=("b",)) == pytest.approx(4.0)
