"""Light unit tests for the experiments infrastructure (no heavy sims)."""

import pytest

from repro.experiments.common import RunSummary, format_table
from repro.experiments.fig7 import Fig7Result
from repro.experiments.fig8 import Fig8Result, Fig8Row


class TestFormatTable:
    def test_alignment_and_floats(self):
        text = format_table(["name", "x"], [["a", 1.23456], ["bb", 2]], "T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "1.235" in text
        assert "bb" in text

    def test_empty_rows(self):
        text = format_table(["h"], [])
        assert "h" in text


class TestRunSummary:
    def _summary(self, buf, mem):
        return RunSummary("b", "p", 256, cycles=10, bundles=10,
                          ops_issued=buf + mem, ops_from_buffer=buf,
                          ops_from_memory=mem, static_ops=5,
                          branch_bubbles=0)

    def test_buffer_fraction(self):
        assert self._summary(75, 25).buffer_fraction == pytest.approx(0.75)

    def test_zero_ops(self):
        assert self._summary(0, 0).buffer_fraction == 0.0


class TestFig7Result:
    def _result(self):
        r = Fig7Result(sizes=(16, 256))
        r.series["traditional"] = {"a": [0.1, 0.4], "b": [0.0, 0.2]}
        r.series["aggressive"] = {"a": [0.2, 0.9], "b": [0.1, 0.8]}
        return r

    def test_fraction_at(self):
        r = self._result()
        assert r.fraction_at("aggressive", "a", 256) == 0.9

    def test_average_with_exclusions(self):
        r = self._result()
        assert r.average_at("traditional", 256) == pytest.approx(0.3)
        assert r.average_at("traditional", 256, exclude=("b",)) == pytest.approx(0.4)

    def test_empty_average(self):
        r = self._result()
        assert r.average_at("traditional", 256, exclude=("a", "b")) == 0.0


class TestFig8Result:
    def _row(self, name, speedup, pb, pt):
        return Fig8Row(name, speedup, 1.1, 1.0, 1.2, pb, pt)

    def test_geometric_mean_speedup(self):
        r = Fig8Result(rows=[self._row("a", 2.0, 1, 1),
                             self._row("b", 0.5, 1, 1)])
        assert r.average_speedup() == pytest.approx(1.0)

    def test_power_reduction(self):
        r = Fig8Result(rows=[self._row("a", 1, 0.6, 0.2),
                             self._row("b", 1, 0.8, 0.4)])
        base, trans = r.average_power_reduction()
        assert base == pytest.approx(0.3)
        assert trans == pytest.approx(0.7)

    def test_exclusions(self):
        r = Fig8Result(rows=[self._row("a", 4.0, 1, 1),
                             self._row("b", 1.0, 1, 1)])
        assert r.average_speedup(exclude=("b",)) == pytest.approx(4.0)
