"""Runner trace threading: CellMetrics.trace payloads, cache replay, the
``--trace`` CLI flag and the ``python -m repro.obs`` round trip."""

import json

import pytest

from repro.obs.cli import main as obs_main
from repro.obs.export import validate_chrome_trace
from repro.runner.cache import ArtifactCache
from repro.runner.cli import main as runner_main
from repro.runner.metrics import MetricsRecorder
from repro.runner.parallel import Cell, run_grid

CELL = Cell("adpcm_enc", "aggressive", 64)


@pytest.fixture
def cache(tmp_path):
    return ArtifactCache(tmp_path / "cache")


class TestGridTracing:
    def test_untraced_run_has_no_trace(self, cache):
        metrics = MetricsRecorder()
        run_grid([CELL], workers=1, cache=cache, metrics=metrics)
        assert metrics.cells[0].trace is None
        assert metrics.cells[0].obs is None

    def test_traced_cell_payload(self, cache):
        metrics = MetricsRecorder()
        run_grid([CELL], workers=1, cache=cache, metrics=metrics,
                 trace=True)
        trace = metrics.cells[0].trace
        assert trace is not None and not trace["replayed"]
        assert trace["name"] == CELL.name
        compile_names = [s["name"] for s in trace["compile"]["spans"]]
        assert "compile_aggressive" in compile_names
        run_names = [s["name"] for s in trace["run"]["spans"]]
        assert "with_buffer" in run_names and "simulate" in run_names
        # the folded metrics snapshot rides on CellMetrics.obs
        obs_snapshot = metrics.cells[0].obs
        assert obs_snapshot and "sim_fetch_ops" in obs_snapshot
        payload = metrics.cells[0].as_dict()
        assert payload["traced"] is True
        assert payload["trace_replayed"] is False

    def test_warm_cells_replay_stored_traces(self, cache):
        run_grid([CELL], workers=1, cache=cache, trace=True)
        metrics = MetricsRecorder()
        run_grid([CELL], workers=1, cache=cache, metrics=metrics,
                 trace=True)
        cm = metrics.cells[0]
        assert cm.run_cache_hit
        assert cm.trace["replayed"] is True
        assert cm.trace["run"]["spans"]
        assert cm.obs and "sim_fetch_ops" in cm.obs

    def test_warm_summary_without_trace_recomputes(self, cache):
        # seed the cache untraced: run summaries exist, traces do not
        cold = run_grid([CELL], workers=1, cache=cache)
        metrics = MetricsRecorder()
        traced = run_grid([CELL], workers=1, cache=cache, metrics=metrics,
                          trace=True)
        assert traced == cold
        cm = metrics.cells[0]
        assert cm.trace is not None and not cm.trace["replayed"]

    def test_traced_summaries_match_untraced(self, cache, tmp_path):
        other = ArtifactCache(tmp_path / "other")
        plain = run_grid([CELL], workers=1, cache=cache)
        traced = run_grid([CELL], workers=1, cache=other, trace=True)
        assert plain == traced


class TestCli:
    def _run(self, tmp_path, *extra):
        argv = ["--benchmarks", CELL.name, "--pipelines", CELL.pipeline,
                "--capacities", str(CELL.capacity), "--workers", "1",
                "--cache-dir", str(tmp_path / "cache"), "--quiet",
                *extra]
        return runner_main(argv)

    def test_trace_flag_writes_artifacts(self, tmp_path, capsys):
        trace_dir = tmp_path / "traces"
        assert self._run(tmp_path, "--trace", str(trace_dir)) == 0
        doc = json.loads((trace_dir / "trace.json").read_text())
        assert validate_chrome_trace(doc) == []
        span_names = {e["name"] for e in doc["traceEvents"]
                      if e["ph"] == "X"}
        assert "compile_aggressive" in span_names
        report = json.loads((trace_dir / "report.json").read_text())
        assert report["passes"]
        capsys.readouterr()

        # obs CLI round trip on the artifacts the runner wrote
        assert obs_main(["validate", str(trace_dir)]) == 0
        assert obs_main(["report", str(trace_dir)]) == 0
        out = capsys.readouterr().out
        assert "valid Chrome trace" in out

    def test_env_var_enables_tracing(self, tmp_path, monkeypatch, capsys):
        trace_dir = tmp_path / "env-traces"
        monkeypatch.setenv("REPRO_TRACE", str(trace_dir))
        assert self._run(tmp_path) == 0
        assert (trace_dir / "trace.json").exists()
        capsys.readouterr()

    def test_no_trace_by_default(self, tmp_path, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert self._run(tmp_path) == 0
        assert not (tmp_path / ".repro_trace").exists()
        capsys.readouterr()

    def test_obs_validate_rejects_bad_trace(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": [{"name": "no-ph"}]}))
        assert obs_main(["validate", str(bad)]) == 1
        assert "invalid" in capsys.readouterr().err
