"""``python -m repro.obs perf`` — record/compare/trend wiring and exits."""

import json

import pytest

from repro.obs.cli import main
from repro.obs.perf import harness
from repro.obs.perf.harness import BenchSpec, Sample, register


@pytest.fixture
def registry(monkeypatch):
    """Isolated spec registry with a cheap deterministic toy bench."""
    saved = dict(harness._REGISTRY)
    monkeypatch.delenv(harness.ENV_INJECT, raising=False)

    def fn(mode):
        return Sample(value=0.2, phases={"work": 0.1, "rest": 0.1},
                      meta={"digest": "toy"})

    register(BenchSpec(name="toy.time", fn=fn,
                       config_fn=lambda mode: {"toy": True},
                       budgets={"full": 0.05}, help="toy timing bench"))
    register(BenchSpec(name="toy.loose", fn=fn,
                       config_fn=lambda mode: {"toy": True},
                       gate_budget=2.0,
                       help="toy bench with a per-spec gate budget"))
    yield harness._REGISTRY
    harness._REGISTRY.clear()
    harness._REGISTRY.update(saved)


class TestList:
    def test_lists_builtins(self, capsys):
        assert main(["perf", "list"]) == 0
        out = capsys.readouterr().out
        assert "sim.speedup" in out and "obs.overhead" in out

    def test_json_shape(self, capsys):
        assert main(["perf", "list", "--json"]) == 0
        specs = {s["name"]: s for s in
                 json.loads(capsys.readouterr().out)}
        assert specs["sched.speedup"]["kind"] == "ratio"
        assert specs["sched.speedup"]["direction"] == "higher"
        # most specs gate at the per-unit default; serve.speedup carries
        # its own wider budget (cold/warm noise doesn't divide out)
        assert specs["sched.speedup"]["gate_budget"] is None
        assert specs["serve.speedup"]["gate_budget"] == 0.5


class TestRecord:
    def test_appends_and_writes_json(self, registry, tmp_path, capsys):
        history = tmp_path / "h.jsonl"
        out = tmp_path / "r.json"
        code = main(["perf", "record", "--bench", "toy.time",
                     "--history", str(history), "--samples", "2",
                     "--json", str(out)])
        assert code == 0
        (line,) = history.read_text().splitlines()
        record = json.loads(line)
        assert record["bench"] == "toy.time"
        assert record["samples"] == [0.2, 0.2]
        assert json.loads(out.read_text())["toy.time"]["median"] == 0.2

    def test_no_append_leaves_history_untouched(self, registry, tmp_path):
        history = tmp_path / "h.jsonl"
        assert main(["perf", "record", "--bench", "toy.time",
                     "--history", str(history), "--samples", "1",
                     "--no-append"]) == 0
        assert not history.exists()

    def test_budget_failure_exits_nonzero(self, registry, tmp_path):
        # the toy budget is a 0.05s ceiling in full mode; 0.2 busts it
        assert main(["perf", "record", "--bench", "toy.time",
                     "--mode", "full", "--samples", "1",
                     "--history", str(tmp_path / "h.jsonl")]) == 1


class TestCompare:
    def _args(self, tmp_path, *extra):
        return ["perf", "compare", "--bench", "toy.time",
                "--history", str(tmp_path / "h.jsonl"),
                "--samples", "2", *extra]

    def _seed(self, tmp_path):
        assert main(["perf", "record", "--bench", "toy.time",
                     "--history", str(tmp_path / "h.jsonl"),
                     "--samples", "3"]) == 0

    def test_first_run_records_without_alarm(self, registry, tmp_path,
                                             capsys):
        assert main(self._args(tmp_path)) == 0
        assert "no-baseline" in capsys.readouterr().out

    def test_stable_against_baseline_and_rerunnable(self, registry,
                                                    tmp_path, capsys):
        self._seed(tmp_path)
        baseline = (tmp_path / "h.jsonl").read_text()
        # same SHA, twice: both pass, and the baseline file is untouched
        assert main(self._args(tmp_path)) == 0
        assert main(self._args(tmp_path)) == 0
        assert (tmp_path / "h.jsonl").read_text() == baseline
        assert "gate ok" in capsys.readouterr().out

    def test_record_out_is_separate(self, registry, tmp_path):
        self._seed(tmp_path)
        out = tmp_path / "fresh.jsonl"
        assert main(self._args(tmp_path, "--record-out", str(out))) == 0
        assert len(out.read_text().splitlines()) == 1
        assert len((tmp_path / "h.jsonl").read_text().splitlines()) == 1

    def test_injected_slowdown_fails_and_blames_phase(
            self, registry, tmp_path, monkeypatch, capsys):
        self._seed(tmp_path)
        monkeypatch.setenv(harness.ENV_INJECT, "toy.time:work:3.0")
        verdicts = tmp_path / "v.json"
        code = main(self._args(tmp_path, "--json", str(verdicts)))
        captured = capsys.readouterr()
        assert code == 1
        assert "GATE FAILED: toy.time" in captured.err
        assert "phase 'work'" in captured.err
        (verdict,) = json.loads(verdicts.read_text())["verdicts"]
        assert verdict["status"] == "regression"
        assert verdict["phase"] == "work"

    def test_bad_injection_spec_is_usage_error(self, registry, tmp_path,
                                               monkeypatch):
        monkeypatch.setenv(harness.ENV_INJECT, "garbage")
        assert main(self._args(tmp_path)) == 2

    def test_spec_gate_budget_loosens_the_gate(self, registry, tmp_path,
                                               monkeypatch):
        # a 2x slowdown busts the 50% seconds default but sits inside
        # toy.loose's own 200% gate budget; an explicit --budget still
        # overrides the spec either way
        loose = ["perf", "compare", "--bench", "toy.loose",
                 "--history", str(tmp_path / "h.jsonl"), "--samples", "2"]
        assert main(["perf", "record", "--bench", "toy.loose",
                     "--history", str(tmp_path / "h.jsonl"),
                     "--samples", "3"]) == 0
        monkeypatch.setenv(harness.ENV_INJECT, "toy.loose:work:3.0")
        assert main(loose) == 0
        assert main([*loose, "--budget", "0.5"]) == 1


class TestTrend:
    def test_empty_history_is_usage_error(self, tmp_path):
        assert main(["perf", "trend",
                     "--history", str(tmp_path / "nope.jsonl")]) == 2

    def test_renders_series_after_records(self, registry, tmp_path,
                                          capsys):
        history = tmp_path / "h.jsonl"
        for _ in range(3):
            assert main(["perf", "record", "--bench", "toy.time",
                         "--history", str(history),
                         "--samples", "1"]) == 0
        capsys.readouterr()
        assert main(["perf", "trend", "--history", str(history)]) == 0
        out = capsys.readouterr().out
        assert "benchmark trajectories" in out
        assert "toy.time" in out
