"""Metrics registry: instruments, label sets, snapshot/merge semantics."""

import pytest

from repro.obs.metrics import MetricsRegistry


class TestInstruments:
    def test_counter_per_label_set(self):
        reg = MetricsRegistry()
        c = reg.counter("ops", "help text")
        c.inc(5, loop="a", source="buffer")
        c.inc(2, source="buffer", loop="a")  # label order is canonical
        c.inc(1, loop="a", source="memory")
        assert c.value(loop="a", source="buffer") == 7
        assert c.value(loop="a", source="memory") == 1
        assert c.value(loop="zzz") == 0

    def test_gauge_overwrites(self):
        reg = MetricsRegistry()
        g = reg.gauge("occupancy")
        g.set(10, buffer="b0")
        g.set(3, buffer="b0")
        assert g.value(buffer="b0") == 3

    def test_histogram_buckets_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 100.0):
            h.observe(v)
        assert h.count() == 3
        assert h.sum() == pytest.approx(105.5)
        (sample,) = h.samples()
        # bounds (1.0, 10.0, inf): cumulative counts 1, 2, 3
        assert sample["value"]["buckets"] == [1, 2, 3]

    def test_registration_idempotent_and_kind_checked(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")
        assert "x" in reg and len(reg) == 1


class TestHistogramQuantiles:
    def test_exact_small_sample_nearest_rank(self):
        h = MetricsRegistry().histogram("lat")
        for v in (5.0, 1.0, 3.0, 2.0, 4.0):
            h.observe(v)
        assert h.quantile(0.5) == 3.0
        assert h.quantile(0.0) == 1.0
        assert h.quantile(1.0) == 5.0
        # nearest-rank, not interpolated: p90 of 5 values is the 5th
        assert h.quantile(0.9) == 5.0

    def test_labels_are_independent(self):
        h = MetricsRegistry().histogram("lat")
        h.observe(1.0, stage="compile")
        h.observe(9.0, stage="run")
        assert h.quantile(0.5, stage="compile") == 1.0
        assert h.quantile(0.5, stage="run") == 9.0

    def test_empty_and_out_of_range(self):
        h = MetricsRegistry().histogram("lat")
        assert h.quantile(0.5) is None
        assert h.quantiles() is None
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_quantiles_batch(self):
        h = MetricsRegistry().histogram("lat")
        for v in range(1, 101):
            h.observe(float(v))
        qs = h.quantiles()
        assert qs[0.5] == 50.0
        assert qs[0.95] == 95.0
        assert qs[0.99] == 99.0

    def test_bucket_path_past_value_cap(self):
        from repro.obs.metrics import VALUE_CAP
        h = MetricsRegistry().histogram("lat", buckets=(1.0, 2.0, 4.0))
        for _ in range(VALUE_CAP + 88):
            h.observe(1.5)
        (sample,) = h.samples()
        assert "values" not in sample["value"]  # raw list dropped
        # all mass in (1, 2]: linear interpolation inside that bucket
        assert h.quantile(0.5) == pytest.approx(1.5)
        assert h.quantile(1.0) == pytest.approx(2.0)

    def test_bucket_path_inf_clamps_to_last_finite_bound(self):
        from repro.obs.metrics import VALUE_CAP
        h = MetricsRegistry().histogram("lat", buckets=(1.0,))
        for _ in range(VALUE_CAP + 1):
            h.observe(50.0)
        assert h.quantile(0.9) == 1.0

    def test_merge_keeps_exact_values_under_cap(self):
        a = MetricsRegistry()
        a.histogram("h").observe(1.0)
        b = MetricsRegistry()
        b.histogram("h").observe(3.0)
        b.merge_snapshot(a.snapshot())
        assert b.histogram("h").count() == 2
        assert b.histogram("h").quantile(1.0) == 3.0  # exact, not bucket

    def test_merge_drops_values_when_incoming_incomplete(self):
        incoming = {"h": {"kind": "histogram", "samples": [{
            "labels": {}, "value": {
                "count": 2, "sum": 4.0,
                "buckets": [0, 0, 0, 2, 2, 2, 2, 2, 2, 2],
                # no "values": the sender clipped its raw list
            }}]}}
        reg = MetricsRegistry()
        reg.histogram("h").observe(1.0)
        reg.merge_snapshot(incoming)
        h = reg.histogram("h")
        assert h.count() == 3
        (sample,) = h.samples()
        assert "values" not in sample["value"]
        # quantiles still answer, from the buckets
        assert h.quantile(0.5) is not None


class TestSnapshotMerge:
    def _snapshot(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(4, loop="a")
        reg.gauge("g").set(7)
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        return reg.snapshot()

    def test_roundtrip_json_able(self):
        import json
        snapshot = self._snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_merge_adds_counters_and_histograms(self):
        target = MetricsRegistry()
        target.merge_snapshot(self._snapshot())
        target.merge_snapshot(self._snapshot())
        assert target.counter("c").value(loop="a") == 8
        assert target.histogram("h").count() == 2
        assert target.gauge("g").value() == 7  # last write wins

    def test_merge_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            MetricsRegistry().merge_snapshot(
                {"weird": {"kind": "summary", "samples": []}})
