"""Metrics registry: instruments, label sets, snapshot/merge semantics."""

import pytest

from repro.obs.metrics import MetricsRegistry


class TestInstruments:
    def test_counter_per_label_set(self):
        reg = MetricsRegistry()
        c = reg.counter("ops", "help text")
        c.inc(5, loop="a", source="buffer")
        c.inc(2, source="buffer", loop="a")  # label order is canonical
        c.inc(1, loop="a", source="memory")
        assert c.value(loop="a", source="buffer") == 7
        assert c.value(loop="a", source="memory") == 1
        assert c.value(loop="zzz") == 0

    def test_gauge_overwrites(self):
        reg = MetricsRegistry()
        g = reg.gauge("occupancy")
        g.set(10, buffer="b0")
        g.set(3, buffer="b0")
        assert g.value(buffer="b0") == 3

    def test_histogram_buckets_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 100.0):
            h.observe(v)
        assert h.count() == 3
        assert h.sum() == pytest.approx(105.5)
        (sample,) = h.samples()
        # bounds (1.0, 10.0, inf): cumulative counts 1, 2, 3
        assert sample["value"]["buckets"] == [1, 2, 3]

    def test_registration_idempotent_and_kind_checked(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")
        assert "x" in reg and len(reg) == 1


class TestSnapshotMerge:
    def _snapshot(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(4, loop="a")
        reg.gauge("g").set(7)
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        return reg.snapshot()

    def test_roundtrip_json_able(self):
        import json
        snapshot = self._snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_merge_adds_counters_and_histograms(self):
        target = MetricsRegistry()
        target.merge_snapshot(self._snapshot())
        target.merge_snapshot(self._snapshot())
        assert target.counter("c").value(loop="a") == 8
        assert target.histogram("h").count() == 2
        assert target.gauge("g").value() == 7  # last write wins

    def test_merge_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            MetricsRegistry().merge_snapshot(
                {"weird": {"kind": "summary", "samples": []}})
