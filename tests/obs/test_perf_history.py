"""Benchmark history store: JSONL persistence and baseline resolution."""

from repro.obs.perf.history import History


def _record(bench="t.a", config_hash="c1", mode="quick", median=1.0,
            env="e1", **extra):
    return {
        "bench": bench, "config_hash": config_hash, "mode": mode,
        "median": median, "mad": 0.0, "samples": [median],
        "env_fingerprint": env, **extra,
    }


class TestAppendAndRead:
    def test_roundtrip_adds_recorded_at(self, tmp_path):
        history = History(tmp_path / "h.jsonl")
        written = history.append(_record())
        assert "recorded_at" in written
        (read,) = history.records()
        assert read == written

    def test_missing_file_reads_empty(self, tmp_path):
        assert History(tmp_path / "absent.jsonl").records() == []

    def test_filters(self, tmp_path):
        history = History(tmp_path / "h.jsonl")
        history.append(_record(bench="t.a", config_hash="c1"))
        history.append(_record(bench="t.a", config_hash="c2"))
        history.append(_record(bench="t.b", config_hash="c1", mode="full"))
        assert len(history.records(bench="t.a")) == 2
        assert len(history.records(bench="t.a", config_hash="c2")) == 1
        assert len(history.records(mode="full")) == 1

    def test_torn_lines_are_skipped(self, tmp_path):
        path = tmp_path / "h.jsonl"
        history = History(path)
        history.append(_record(median=1.0))
        with path.open("a") as fh:
            fh.write('{"bench": "t.a", "median"\n')  # torn write
            fh.write("[1, 2, 3]\n")  # parseable but not a record
        history.append(_record(median=2.0))
        medians = [r["median"] for r in history.records(bench="t.a")]
        assert medians == [1.0, 2.0]

    def test_benches_lists_distinct_series(self, tmp_path):
        history = History(tmp_path / "h.jsonl")
        history.append(_record(bench="t.a", config_hash="c1"))
        history.append(_record(bench="t.a", config_hash="c1"))
        history.append(_record(bench="t.b", config_hash="c2"))
        assert history.benches() == [
            ("t.a", "quick", "c1"), ("t.b", "quick", "c2")]


class TestBaseline:
    def test_empty_series_is_first_run(self, tmp_path):
        history = History(tmp_path / "h.jsonl")
        assert history.baseline("t.a", "c1", "e1") == (None, False)

    def test_prefers_latest_same_env(self, tmp_path):
        history = History(tmp_path / "h.jsonl")
        history.append(_record(median=1.0, env="e1"))
        history.append(_record(median=2.0, env="e2"))
        history.append(_record(median=3.0, env="e1"))
        record, env_match = history.baseline("t.a", "c1", "e1")
        assert env_match and record["median"] == 3.0

    def test_foreign_env_fallback_flags_mismatch(self, tmp_path):
        history = History(tmp_path / "h.jsonl")
        history.append(_record(median=1.0, env="e1"))
        history.append(_record(median=2.0, env="e2"))
        record, env_match = history.baseline("t.a", "c1", "e3")
        assert not env_match and record["median"] == 2.0
