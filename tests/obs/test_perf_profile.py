"""Phase-level profiling: stack folding, self time, collapsed stacks."""

from repro.obs.perf.profile import PhaseProfile


def _payload():
    # open order with depths:  a( b( c ) d )  — µs durations
    return {
        "spans": [
            {"name": "a", "dur": 100.0, "depth": 0},
            {"name": "b", "dur": 60.0, "depth": 1},
            {"name": "c", "dur": 25.0, "depth": 2},
            {"name": "d", "dur": 15.0, "depth": 1},
        ],
        "events": [
            {"name": "loop_record", "clock": "cycles"},
            {"name": "loop_hit", "clock": "cycles"},
            {"name": "loop_hit", "clock": "cycles"},
            {"name": "wall_event", "clock": "us"},
        ],
    }


class TestPayloadFolding:
    def test_self_time_subtracts_direct_children(self):
        profile = PhaseProfile()
        profile.add_payload(_payload())
        assert profile.phases["a"]["wall_us"] == 100.0
        assert profile.phases["a"]["self_us"] == 25.0  # 100 - (60 + 15)
        assert profile.phases["b"]["self_us"] == 35.0  # 60 - 25
        assert profile.phases["c"]["self_us"] == 25.0
        assert profile.phases["d"]["self_us"] == 15.0

    def test_root_prefixes_every_stack(self):
        profile = PhaseProfile()
        profile.add_payload(_payload(), root="cell0")
        assert ("cell0", "a", "b", "c") in profile.stacks

    def test_cycle_instants_counted_wall_events_ignored(self):
        profile = PhaseProfile()
        profile.add_payload(_payload())
        assert profile.sim_events == {"loop_record": 1, "loop_hit": 2}

    def test_collapsed_lines_carry_integer_self_weights(self):
        profile = PhaseProfile()
        profile.add_payload(_payload())
        lines = profile.collapsed_lines()
        assert "a 25" in lines
        assert "a;b 35" in lines
        assert "a;b;c 25" in lines
        assert "a;d 15" in lines
        # weights sum to total wall time: no parent double-counting
        total = sum(int(line.rsplit(" ", 1)[1]) for line in lines)
        assert total == 100

    def test_top_spans_sorted_by_wall(self):
        profile = PhaseProfile()
        profile.add_payload(_payload())
        top = profile.top_spans(2)
        assert [s.name for s in top] == ["a", "b"]
        assert top[0].path == ("a",)

    def test_render_mentions_each_section(self):
        profile = PhaseProfile()
        profile.add_payload(_payload())
        profile.add_sched_seconds({"list": 0.5, "modulo": 0.25})
        text = profile.render()
        assert "per-phase attribution" in text
        assert "scheduler phases" in text
        assert "simulator loop-buffer lifecycle" in text

    def test_empty_profile_renders_placeholder(self):
        assert "empty profile" in PhaseProfile().render()


class TestChromeTrace:
    def test_containment_rebuilds_nesting(self):
        doc = {"traceEvents": [
            {"ph": "M", "name": "process_name", "pid": 1,
             "args": {"name": "adpcm/aggr@64"}},
            {"ph": "X", "pid": 1, "tid": 1, "name": "compile",
             "ts": 0, "dur": 100.0},
            {"ph": "X", "pid": 1, "tid": 1, "name": "schedule",
             "ts": 10, "dur": 40.0},
            {"ph": "X", "pid": 1, "tid": 1, "name": "simulate",
             "ts": 60, "dur": 30.0},
        ]}
        profile = PhaseProfile.from_chrome_trace(doc)
        assert ("adpcm/aggr@64", "compile", "schedule") in profile.stacks
        assert ("adpcm/aggr@64", "compile", "simulate") in profile.stacks
        assert profile.phases["compile"]["self_us"] == 30.0  # 100 - 70

    def test_equal_start_longer_span_is_parent(self):
        doc = {"traceEvents": [
            {"ph": "X", "pid": 1, "tid": 1, "name": "outer",
             "ts": 0, "dur": 50.0},
            {"ph": "X", "pid": 1, "tid": 1, "name": "inner",
             "ts": 0, "dur": 20.0},
        ]}
        profile = PhaseProfile.from_chrome_trace(doc)
        assert ("outer", "inner") in profile.stacks
        assert profile.phases["outer"]["self_us"] == 30.0

    def test_tracks_do_not_nest_across_tids(self):
        doc = {"traceEvents": [
            {"ph": "X", "pid": 1, "tid": 1, "name": "a",
             "ts": 0, "dur": 100.0},
            {"ph": "X", "pid": 1, "tid": 2, "name": "b",
             "ts": 10, "dur": 10.0},
        ]}
        profile = PhaseProfile.from_chrome_trace(doc)
        assert ("a",) in profile.stacks and ("b",) in profile.stacks
        assert ("a", "b") not in profile.stacks
