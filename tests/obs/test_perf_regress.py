"""Noise-aware regression gate against synthetic benchmark series."""

import statistics

from repro.obs.perf.harness import BenchResult, config_hash, mad
from repro.obs.perf.regress import (
    ENV_MISMATCH,
    IMPROVEMENT,
    NO_BASELINE,
    OK,
    REGRESSION,
    compare_result,
    trend,
)


def _result(samples, phases=None, unit="s", direction="lower",
            name="t.a", env="e1"):
    return BenchResult(
        name=name, unit=unit, direction=direction, mode="quick",
        samples=list(samples), phases=phases or {},
        config={"toy": True}, config_hash=config_hash({"toy": True}),
        env={}, env_fingerprint=env, git_sha=None)


def _baseline(samples, phases=None, env="e1", **extra):
    return {
        "bench": "t.a", "median": statistics.median(samples),
        "mad": mad(samples), "samples": list(samples),
        "env_fingerprint": env,
        "phases": {name: {"samples": series,
                          "median": statistics.median(series)}
                   for name, series in (phases or {}).items()},
        **extra,
    }


class TestStepGate:
    def test_flat_with_noise_does_not_alarm(self):
        # jitter well inside mad_k * MAD: no alarm on either side
        baseline = _baseline([1.00, 1.04, 0.97, 1.02, 0.99])
        verdict = compare_result(_result([1.03, 0.98, 1.05]), baseline)
        assert verdict.status == OK
        assert not verdict.failed

    def test_step_regression_alarms_and_blames_phase(self):
        baseline = _baseline(
            [1.00, 1.01, 0.99],
            phases={"list": [0.70, 0.71, 0.69],
                    "modulo": [0.30, 0.30, 0.30]})
        new = _result(
            [2.02, 2.00, 2.01],
            phases={"list": [1.72, 1.70, 1.71],
                    "modulo": [0.30, 0.30, 0.30]})
        verdict = compare_result(new, baseline)
        assert verdict.status == REGRESSION and verdict.failed
        assert verdict.phase == "list"
        assert "list" in verdict.detail

    def test_missing_baseline_records_without_alarm(self):
        verdict = compare_result(_result([1.0]), None)
        assert verdict.status == NO_BASELINE
        assert not verdict.failed

    def test_improvement_is_flagged_not_failed(self):
        verdict = compare_result(_result([0.4, 0.4, 0.4]),
                                 _baseline([1.0, 1.0, 1.0]))
        assert verdict.status == IMPROVEMENT
        assert not verdict.failed

    def test_noisy_baseline_widens_the_allowance(self):
        # the same +20% step at the same explicit budget: a quiet
        # baseline alarms, a noisy one's mad_k * MAD swallows it
        quiet = compare_result(_result([1.2, 1.2, 1.2]),
                               _baseline([1.0, 1.0, 1.0]), budget=0.1)
        assert quiet.status == REGRESSION
        noisy = compare_result(
            _result([1.2, 1.2, 1.2]),
            _baseline([1.0, 0.7, 1.3, 0.8, 1.2]), budget=0.1)
        assert noisy.status == OK

    def test_seconds_get_the_wide_default_budget(self):
        # +40% on an absolute-seconds bench stays inside the 50%
        # gross-error budget (machine load moves raw seconds that much
        # run-to-run); the same move on a ratio bench alarms at 25%
        seconds = compare_result(_result([1.4, 1.4, 1.4]),
                                 _baseline([1.0, 1.0, 1.0]))
        assert seconds.status == OK
        ratio = compare_result(
            _result([1.4, 1.4, 1.4], unit="x", direction="lower"),
            _baseline([1.0, 1.0, 1.0]))
        assert ratio.status == REGRESSION

    def test_ratio_regresses_downward(self):
        baseline = _baseline([4.0, 4.0, 4.1])
        verdict = compare_result(
            _result([2.0, 2.0, 2.1], unit="x", direction="higher"),
            baseline)
        assert verdict.status == REGRESSION
        # and going *up* is an improvement, not a regression
        verdict = compare_result(
            _result([8.0, 8.0, 8.1], unit="x", direction="higher"),
            baseline)
        assert verdict.status == IMPROVEMENT

    def test_env_mismatch_demotes_seconds_but_not_ratios(self):
        baseline = _baseline([1.0], env="other-env")
        seconds = compare_result(_result([5.0]), baseline, env_match=False)
        assert seconds.status == ENV_MISMATCH and not seconds.failed
        ratio = compare_result(
            _result([1.0], unit="x", direction="higher"),
            _baseline([4.0], env="other-env"), env_match=False)
        assert ratio.status == REGRESSION


class TestTrend:
    def _series(self, medians, mad_value=0.002, unit="x"):
        return [{"bench": "t.a", "mode": "quick", "config_hash": "c1",
                 "unit": unit, "direction": "lower", "median": m,
                 "mad": mad_value, "samples": [m], "recorded_at": f"T{i}"}
                for i, m in enumerate(medians)]

    def test_slow_drift_alarms_on_cumulative_movement(self):
        # +2% per record: every step is inside the 25% budget, but the
        # cumulative 1.0 -> 1.4 walk is not
        medians = [1.0 + 0.02 * i for i in range(21)]
        for prev, cur in zip(medians, medians[1:]):
            step = compare_result(
                _result([cur], unit="x", direction="lower"),
                _baseline([prev], bench="t.a"))
            assert step.status == OK  # the step gate never fires
        verdict = trend(self._series(medians))
        assert verdict.status == REGRESSION and verdict.failed
        assert verdict.drift > 0.25

    def test_flat_series_is_ok(self):
        verdict = trend(self._series([1.0, 1.01, 0.99, 1.0, 1.02]))
        assert verdict.status == OK

    def test_single_record_needs_more_data(self):
        verdict = trend(self._series([1.0]))
        assert verdict.status == NO_BASELINE and not verdict.failed

    def test_windowing_resists_endpoint_outliers(self):
        # one bad final record must not fake a drift: the newest-window
        # median absorbs it
        verdict = trend(self._series([1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 2.0]))
        assert verdict.status == OK

    def test_improving_series_reports_improvement(self):
        verdict = trend(self._series([2.0, 1.8, 1.5, 1.2, 1.0, 0.9]))
        assert verdict.status == IMPROVEMENT and not verdict.failed
