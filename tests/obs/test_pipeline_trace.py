"""Pipeline/simulator instrumentation: span coverage, the disabled fast
path, nesting under checked mode and per-loop counter consistency."""

import pytest

from repro import obs
from repro.bench import benchmark
from repro.obs import NULL_TRACER, NullTracer, Tracer
from repro.pipeline import compile_aggressive, compile_traditional, run_compiled
from repro.sim.vliw import LoopFetchStats, SimCounters


class CountingNullTracer(NullTracer):
    """Disabled tracer that counts every API touch: the fast-path probe.

    ``_PassChecker.run`` and the schedulers must not even *call* ``span``
    when tracing is off — the only permitted touch is the ``enabled``
    attribute read.
    """

    __slots__ = ("span_calls", "instant_calls")

    def __init__(self) -> None:
        self.span_calls = 0
        self.instant_calls = 0

    def span(self, name, category="pass", **attrs):
        self.span_calls += 1
        return super().span(name, category, **attrs)

    def instant(self, name, category="event", ts=None, clock="wall", **attrs):
        self.instant_calls += 1


def _compile_and_run(tracer=None, checked=None, pipeline=compile_aggressive):
    bench = benchmark("adpcm_enc")
    compiled = pipeline(bench.build(), entry=bench.entry, args=bench.args,
                        buffer_capacity=256, checked=checked, tracer=tracer)
    return run_compiled(compiled, tracer=tracer)


class TestDisabledFastPath:
    def test_no_per_pass_tracer_calls_when_disabled(self):
        probe = CountingNullTracer()
        outcome = _compile_and_run(tracer=probe)
        assert outcome.result.value == benchmark("adpcm_enc").expected()
        # only the four pipeline-level group spans touch the disabled
        # tracer (compile root, modulo group, list group, simulate);
        # per-pass / per-block / per-function sites never call span()
        assert probe.span_calls == 4
        assert probe.instant_calls == 0
        traced = Tracer()
        _compile_and_run(tracer=traced)
        assert len(traced.spans) > probe.span_calls

    def test_obs_disabled_blocks_installed_tracer(self):
        tracer = Tracer()
        with obs.use(tracer):
            with obs.disabled():
                _compile_and_run()
        assert tracer.spans == []
        assert tracer.events == []

    def test_disabled_and_enabled_runs_agree(self):
        baseline = _compile_and_run(tracer=NULL_TRACER)
        traced = _compile_and_run(tracer=Tracer())
        assert traced.counters == baseline.counters


class TestSpanCoverage:
    def test_every_pass_spanned(self):
        tracer = Tracer()
        _compile_and_run(tracer=tracer)
        assert tracer.open_spans == 0
        names = [s.name for s in tracer.spans]
        for expected in ("compile_aggressive", "modulo_schedule",
                         "assign_buffer", "list_schedule", "simulate",
                         "simplify_cfg", "eliminate_dead_code"):
            assert expected in names, expected
        root = tracer.spans[0]
        assert root.name == "compile_aggressive" and root.depth == 0
        # pass spans carry IR-shape deltas
        peel = next(s for s in tracer.spans if s.name == "peel_short_loops")
        assert {"ops", "blocks", "hyperblocks", "d_ops"} <= set(peel.attrs)

    def test_traditional_pipeline_root_span(self):
        tracer = Tracer()
        _compile_and_run(tracer=tracer, pipeline=compile_traditional)
        assert tracer.spans[0].name == "compile_traditional"

    def test_modulo_spans_record_achieved_vs_min_ii(self):
        tracer = Tracer()
        _compile_and_run(tracer=tracer)
        loop_spans = [s for s in tracer.spans
                      if s.category == "sched" and s.name.startswith("modulo:")]
        assert loop_spans
        for span in loop_spans:
            assert span.attrs["ii"] >= span.attrs["min_ii"]
            assert span.attrs["mve_factor"] >= 1
            assert span.attrs["buffered_ops"] \
                == span.attrs["kernel_ops"] * span.attrs["mve_factor"]

    def test_nesting_under_checked_mode(self):
        tracer = Tracer()
        _compile_and_run(tracer=tracer, checked=True)
        assert tracer.open_spans == 0
        checks = [s for s in tracer.spans if s.category == "check"]
        assert checks, "checked mode should open check spans"
        # each check:<name> nests inside the pass span of the same name
        for check in checks:
            assert check.depth >= 1
            parents = [s for s in tracer.spans
                       if s.depth == check.depth - 1
                       and s.ts_us <= check.ts_us]
            assert parents, check.name

    def test_simulate_span_attrs(self):
        tracer = Tracer()
        outcome = _compile_and_run(tracer=tracer)
        sim = next(s for s in tracer.spans if s.name == "simulate")
        assert sim.attrs["ops_issued"] == outcome.counters.ops_issued
        assert sim.attrs["ops_from_buffer"] == outcome.counters.ops_from_buffer


class TestPerLoopCounters:
    def test_per_loop_sums_match_aggregate(self):
        outcome = _compile_and_run()
        counters = outcome.counters
        assert counters.per_loop, "expected at least one recorded loop"
        assert sum(s.ops_from_buffer for s in counters.per_loop.values()) \
            == counters.ops_from_buffer
        for stats in counters.per_loop.values():
            assert 0.0 <= stats.buffer_issue_fraction <= 1.0
            assert stats.records >= 1
            assert stats.buffered_passes <= stats.passes

    def test_outcome_per_loop_fractions(self):
        outcome = _compile_and_run()
        fractions = outcome.per_loop_buffer_fractions()
        assert set(fractions) == set(outcome.per_loop)
        assert all(0.0 <= f <= 1.0 for f in fractions.values())

    def test_lifecycle_events_and_metrics(self):
        tracer = Tracer()
        outcome = _compile_and_run(tracer=tracer)
        records = [e for e in tracer.events if e.name == "buffer_record"]
        assert records
        assert all(e.clock == "cycles" for e in records)
        fetch = tracer.metrics.counter("sim_fetch_ops")
        total_buffered = sum(
            fetch.value(loop=key, source="buffer")
            for key in outcome.counters.per_loop
        )
        assert total_buffered == outcome.counters.ops_from_buffer


class TestFractionGuards:
    def test_sim_counters_zero_ops(self):
        assert SimCounters().buffer_issue_fraction == 0.0

    def test_loop_stats_zero_fetches(self):
        assert LoopFetchStats().buffer_issue_fraction == 0.0

    def test_outcome_zero_ops(self):
        from repro.pipeline import SimulationOutcome

        outcome = SimulationOutcome(result=None, counters=SimCounters(),
                                    buffer=None, energy=None)
        assert outcome.buffer_issue_fraction == 0.0
        assert outcome.per_loop_buffer_fractions() == {}
