"""Unified bench harness: specs, repeated samples, ratios, injection."""

import json

import pytest

from repro.obs.perf import harness
from repro.obs.perf.harness import (
    BenchError,
    BenchSpec,
    RatioSpec,
    Sample,
    check_budget,
    config_hash,
    fingerprint_key,
    mad,
    parse_injections,
    register,
    run_bench,
    run_suite,
)


@pytest.fixture
def registry():
    """Snapshot the global spec registry and restore it afterwards."""
    saved = dict(harness._REGISTRY)
    yield harness._REGISTRY
    harness._REGISTRY.clear()
    harness._REGISTRY.update(saved)


def _spec(name, values, phases=None, digest=None, group=None, **kw):
    """A toy spec yielding ``values`` in sequence (cycling the last)."""
    state = {"i": 0}

    def fn(mode):
        i = min(state["i"], len(values) - 1)
        state["i"] += 1
        meta = {"digest": digest} if digest is not None else {}
        return Sample(value=values[i],
                      phases=dict(phases or {}), meta=meta)

    return register(BenchSpec(
        name=name, fn=fn, config_fn=lambda mode: {"toy": True},
        digest_group=group, **kw))


class TestStatistics:
    def test_mad_is_robust_center_spread(self):
        assert mad([]) == 0.0
        assert mad([5.0, 5.0, 5.0]) == 0.0
        assert mad([1.0, 2.0, 3.0, 100.0]) == 1.0

    def test_config_hash_stable_and_order_insensitive(self):
        a = config_hash({"x": 1, "y": [2, 3]})
        b = config_hash({"y": [2, 3], "x": 1})
        assert a == b and len(a) == 12
        assert config_hash({"x": 2}) != a

    def test_fingerprint_key_ignores_extra_fields(self):
        env = {"python": "3.11", "platform": "p", "cpu_count": 4}
        assert fingerprint_key(env) == \
            fingerprint_key(dict(env, extra="ignored"))


class TestRunBench:
    def test_samples_phases_and_record(self, registry):
        spec = _spec("t.a", [0.3, 0.1, 0.2], phases={"work": 0.05})
        result = run_bench(spec, mode="quick", samples=3, injections={})
        assert result.samples == [0.3, 0.1, 0.2]
        assert result.median == 0.2
        assert result.phases["work"] == [0.05, 0.05, 0.05]
        assert result.config["bench"] == "t.a"
        assert result.config["mode"] == "quick"
        record = result.as_record()
        assert json.loads(json.dumps(record)) == record
        assert record["schema"] == harness.SCHEMA
        assert record["median"] == 0.2

    def test_divergent_digest_across_repeats_aborts(self, registry):
        state = {"i": 0}

        def fn(mode):
            state["i"] += 1
            return Sample(value=0.1, meta={"digest": f"d{state['i']}"})

        spec = register(BenchSpec(
            name="t.flaky", fn=fn, config_fn=lambda mode: {}))
        with pytest.raises(BenchError, match="non-deterministic"):
            run_bench(spec, samples=2, injections={})

    def test_injection_scales_phase_and_value(self, registry):
        spec = _spec("t.inj", [1.0], phases={"list": 0.4, "modulo": 0.1})
        result = run_bench(spec, samples=1,
                           injections={("t.inj", "list"): 3.0})
        assert result.phases["list"] == [pytest.approx(1.2)]
        assert result.phases["modulo"] == [0.1]
        assert result.samples == [pytest.approx(1.8)]  # +0.8 from the phase
        assert result.meta["injected"] == ["listx3"]

    def test_parse_injections(self):
        assert parse_injections("a:b:2.5, c:d:3") == \
            {("a", "b"): 2.5, ("c", "d"): 3.0}
        assert parse_injections("") == {}
        with pytest.raises(BenchError, match="bad"):
            parse_injections("nonsense")


class TestSuite:
    def test_ratio_derived_sample_wise(self, registry):
        _spec("t.slow", [1.0, 2.0], digest="d")
        _spec("t.fast", [0.5, 0.5], digest="d")
        register(RatioSpec(name="t.speedup", numerator="t.slow",
                           denominator="t.fast"))
        results = run_suite(["t.speedup"], samples=2, injections={})
        assert set(results) == {"t.slow", "t.fast", "t.speedup"}
        ratio = results["t.speedup"]
        assert ratio.samples == [2.0, 4.0]
        assert ratio.unit == "x" and ratio.direction == "higher"

    def test_digest_group_divergence_aborts(self, registry):
        _spec("t.ref", [1.0], digest="AAA", group="t")
        _spec("t.opt", [0.5], digest="BBB", group="t")
        with pytest.raises(BenchError, match="diverged"):
            run_suite(["t.ref", "t.opt"], samples=1, injections={})

    def test_matching_digest_group_passes(self, registry):
        _spec("t.ref", [1.0], digest="AAA", group="t")
        _spec("t.opt", [0.5], digest="AAA", group="t")
        results = run_suite(["t.ref", "t.opt"], samples=1, injections={})
        assert results["t.ref"].meta["digest"] == "AAA"


class TestBudgets:
    def test_floor_for_higher_better(self, registry):
        spec = _spec("t.ratio", [1.5], unit="x", direction="higher",
                     budgets={"quick": 2.0})
        result = run_bench(spec, mode="quick", samples=1, injections={})
        assert "below budget floor" in check_budget(result)

    def test_ceiling_for_lower_better(self, registry):
        spec = _spec("t.overhead", [1.2], unit="x",
                     budgets={"quick": 1.10})
        result = run_bench(spec, mode="quick", samples=1, injections={})
        assert "above budget ceiling" in check_budget(result)

    def test_within_budget_is_none(self, registry):
        spec = _spec("t.ok", [1.05], unit="x", budgets={"quick": 1.10})
        result = run_bench(spec, mode="quick", samples=1, injections={})
        assert check_budget(result) is None

    def test_no_budget_for_mode_is_none(self, registry):
        spec = _spec("t.free", [9.9], budgets={"full": 1.0})
        result = run_bench(spec, mode="quick", samples=1, injections={})
        assert check_budget(result) is None


class TestBuiltins:
    def test_builtin_specs_registered(self):
        names = harness.bench_names()
        for name in ("sim.ref", "sim.fast", "sim.speedup", "sched.legacy",
                     "sched.opt", "sched.speedup", "obs.off", "obs.on",
                     "obs.overhead"):
            assert name in names

    def test_unknown_bench_raises(self):
        with pytest.raises(BenchError, match="unknown bench"):
            harness.get_spec("no.such.bench")
