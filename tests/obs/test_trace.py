"""Tracer core: span timing/nesting, instants, the null fast path and the
process-global installation protocol."""

import pytest

from repro import obs
from repro.obs import NULL_TRACER, NullTracer, Tracer
from repro.obs.trace import _NULL_SPAN


class FakeClock:
    """Deterministic perf_counter: advances only when told to."""

    def __init__(self) -> None:
        self.t = 100.0

    def __call__(self) -> float:
        return self.t

    def advance(self, seconds: float) -> None:
        self.t += seconds


class TestTracer:
    def test_span_times_and_nests(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("outer", category="pipeline") as outer:
            clock.advance(0.001)
            with tracer.span("inner") as inner:
                clock.advance(0.002)
            clock.advance(0.003)
        assert outer.ts_us == 0.0
        assert outer.dur_us == pytest.approx(6000.0)
        assert inner.ts_us == pytest.approx(1000.0)
        assert inner.dur_us == pytest.approx(2000.0)
        assert (outer.depth, inner.depth) == (0, 1)
        assert tracer.open_spans == 0
        assert [s.name for s in tracer.spans] == ["outer", "inner"]

    def test_annotate_targets_innermost(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                tracer.annotate(ii=4)
            tracer.annotate(loops=2)
        assert inner.attrs == {"ii": 4}
        assert outer.attrs == {"loops": 2}
        tracer.annotate(ignored=True)  # no open span: a no-op
        assert "ignored" not in outer.attrs

    def test_exception_closes_span_and_marks_error(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        assert tracer.open_spans == 0
        assert tracer.spans[0].attrs["error"] == "ValueError"
        assert tracer.spans[0].dur_us is not None

    def test_instant_clock_domains(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        clock.advance(0.005)
        tracer.instant("wall_event")
        tracer.instant("sim_event", category="sim", ts=1234, clock="cycles")
        wall, sim = tracer.events
        assert wall.clock == "wall"
        assert wall.ts == pytest.approx(5000.0)
        assert sim.clock == "cycles"
        assert sim.ts == 1234

    def test_payload_shape(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("p", category="pass", scope="main"):
            pass
        tracer.instant("e", loop="main/L1")
        tracer.metrics.counter("c").inc(3, k="v")
        payload = tracer.to_payload()
        (span,) = payload["spans"]
        assert span["name"] == "p" and span["cat"] == "pass"
        assert span["args"] == {"scope": "main"}
        (event,) = payload["events"]
        assert event["args"] == {"loop": "main/L1"}
        assert payload["metrics"]["c"]["samples"][0]["value"] == 3


class TestNullTracer:
    def test_span_is_shared_singleton(self):
        spans = {id(NULL_TRACER.span(f"s{i}", x=i)) for i in range(5)}
        assert spans == {id(_NULL_SPAN)}

    def test_all_operations_noop(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        with tracer.span("x") as span:
            span.annotate(ignored=1)
        tracer.instant("y", ts=1, clock="cycles")
        tracer.annotate(z=2)
        assert tracer.to_payload() == {"spans": [], "events": [],
                                       "metrics": {}}


class TestGlobalTracer:
    def test_defaults_to_null(self):
        assert obs.get_tracer() is NULL_TRACER
        assert obs.tracing_enabled() is False

    def test_use_installs_and_restores(self):
        tracer = Tracer()
        with obs.use(tracer):
            assert obs.get_tracer() is tracer
            assert obs.tracing_enabled() is True
        assert obs.get_tracer() is NULL_TRACER

    def test_use_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with obs.use(Tracer()):
                raise RuntimeError
        assert obs.get_tracer() is NULL_TRACER

    def test_disabled_overrides_installed_tracer(self):
        tracer = Tracer()
        with obs.use(tracer):
            with obs.disabled():
                assert obs.get_tracer() is NULL_TRACER
                with obs.disabled():  # nests
                    assert obs.get_tracer() is NULL_TRACER
                assert obs.get_tracer() is NULL_TRACER
            assert obs.get_tracer() is tracer


class TestTraceDirFromEnv:
    @pytest.mark.parametrize("value", ["", "0", "false", "no", " "])
    def test_falsey(self, value):
        assert obs.trace_dir_from_env(value) is None

    @pytest.mark.parametrize("value", ["1", "true", "yes", "on", "True"])
    def test_flag(self, value):
        assert obs.trace_dir_from_env(value) == obs.DEFAULT_TRACE_DIR

    def test_path(self):
        assert obs.trace_dir_from_env("/tmp/traces") == "/tmp/traces"

    def test_reads_environment(self, monkeypatch):
        monkeypatch.setenv(obs.ENV_TRACE, "somewhere")
        assert obs.trace_dir_from_env() == "somewhere"
        monkeypatch.delenv(obs.ENV_TRACE)
        assert obs.trace_dir_from_env() is None
