"""Exporters: Chrome trace assembly, schema validation, flat reports."""

from repro.obs import Tracer
from repro.obs.export import (
    TID_COMPILE,
    TID_RUN,
    TID_SIM,
    cell_label,
    flat_report,
    render_report,
    report_from_chrome_trace,
    to_chrome_trace,
    validate_chrome_trace,
)


def _cell(name="b", pipeline="aggressive", capacity=64, replayed=False):
    clock = iter(range(0, 10_000)).__next__
    compile_tracer = Tracer(clock=lambda: clock() * 1e-6)
    with compile_tracer.span("compile", category="pipeline"):
        with compile_tracer.span("peel_short_loops", scope="main"):
            pass
    run_tracer = Tracer()
    with run_tracer.span("simulate", category="sim"):
        run_tracer.instant("buffer_record", category="sim", ts=10,
                           clock="cycles", loop="main/L1")
    fetch = run_tracer.metrics.counter("sim_fetch_ops")
    fetch.inc(90, loop="main/L1", source="buffer")
    fetch.inc(10, loop="main/L1", source="memory")
    events = run_tracer.metrics.counter("sim_buffer_events")
    events.inc(1, loop="main/L1", event="record")
    events.inc(2, loop="main/L1", event="hit")
    return {
        "name": name, "pipeline": pipeline, "capacity": capacity,
        "compile": compile_tracer.to_payload(),
        "run": run_tracer.to_payload(),
        "replayed": replayed,
    }


class TestChromeTrace:
    def test_structure_and_thread_routing(self):
        doc = to_chrome_trace([_cell()])
        assert validate_chrome_trace(doc) == []
        events = doc["traceEvents"]
        compile_spans = [e for e in events
                        if e["ph"] == "X" and e["tid"] == TID_COMPILE]
        assert {e["name"] for e in compile_spans} \
            == {"compile", "peel_short_loops"}
        run_spans = [e for e in events
                     if e["ph"] == "X" and e["tid"] == TID_RUN]
        assert {e["name"] for e in run_spans} == {"simulate"}
        # cycle-domain instants route to the sim thread
        (instant,) = [e for e in events if e["ph"] == "i"]
        assert instant["tid"] == TID_SIM and instant["ts"] == 10

    def test_one_pid_per_cell(self):
        doc = to_chrome_trace([_cell("a"), _cell("b")])
        pids = {e["pid"] for e in doc["traceEvents"] if e["ph"] != "M"}
        assert pids == {1, 2}
        assert doc["otherData"]["cells"] == ["a/aggressive@64",
                                             "b/aggressive@64"]

    def test_cell_label_nobuf(self):
        assert cell_label({"name": "x", "pipeline": "p", "capacity": None}) \
            == "x/p@nobuf"


class TestValidate:
    def test_rejects_non_document(self):
        assert validate_chrome_trace(42)
        assert validate_chrome_trace({"events": []})

    def test_missing_fields_reported(self):
        errors = validate_chrome_trace([
            {"name": "no-ph"},
            {"ph": "X", "name": "no-ts-dur", "pid": 1, "tid": 1},
        ])
        assert any("missing 'ph'" in e for e in errors)
        assert any("'ts'" in e for e in errors)
        assert any("'dur'" in e for e in errors)

    def test_unbalanced_duration_events(self):
        errors = validate_chrome_trace([
            {"ph": "B", "name": "open", "ts": 0, "pid": 1, "tid": 1},
        ])
        assert any("unclosed" in e for e in errors)
        errors = validate_chrome_trace([
            {"ph": "E", "name": "stray", "ts": 0, "pid": 1, "tid": 1},
        ])
        assert any("without matching" in e for e in errors)


class TestFlatReport:
    def test_folds_passes_and_loops(self):
        report = flat_report([_cell(), _cell(replayed=True)])
        assert report["passes"]["peel_short_loops"]["count"] == 2
        loop = report["loops"]["main/L1"]
        assert loop["buffer"] == 180 and loop["memory"] == 20
        assert loop["record"] == 2 and loop["hit"] == 4
        assert [c["replayed"] for c in report["cells"]] == [False, True]
        # per-cell folds sum to the aggregate
        assert sum(c["loops"]["main/L1"]["buffer"]
                   for c in report["cells"]) == loop["buffer"]

    def test_report_from_chrome_trace(self):
        doc = to_chrome_trace([_cell()])
        report = report_from_chrome_trace(doc)
        assert report["passes"]["peel_short_loops"]["count"] == 1

    def test_render_report(self):
        text = render_report(flat_report([_cell()]))
        assert "peel_short_loops" in text
        assert "main/L1" in text
        assert "90.0%" in text  # 90/100 buffered

    def test_render_empty(self):
        assert "empty trace" in render_report(flat_report([]))
