"""Unit tests for compiler-side buffer assignment."""

from repro.analysis.profile import Profile
from repro.ir import Opcode
from repro.loopbuffer.assign import (
    LoopCandidate,
    _cheapest_overlap,
    _first_fit,
    assign_buffer,
    collect_candidates,
)
from repro.looptrans.cloop import convert_counted_loops
from repro.sim.interp import profile_module, run_module

from tests.helpers import build_counting_loop


def _profiled_counting(n=100):
    module = build_counting_loop(n)
    convert_counted_loops(module.function("main"))
    profile, _ = profile_module(module)
    return module, profile


class TestCandidates:
    def test_simple_counted_loop_found(self):
        module, profile = _profiled_counting()
        cands = collect_candidates(module, profile, 256)
        assert len(cands) == 1
        cand = cands[0]
        assert cand.counted
        assert cand.iterations == 100
        assert cand.entries == 1
        assert cand.benefit == (100 - 1) * cand.ops

    def test_footprint_override(self):
        module, profile = _profiled_counting()
        cands = collect_candidates(module, profile, 256,
                                   footprint={("main", "body"): 99})
        assert cands[0].ops == 99

    def test_too_large_excluded(self):
        module, profile = _profiled_counting()
        cands = collect_candidates(module, profile, 2,
                                   footprint={("main", "body"): 50})
        assert cands == []

    def test_multiblock_loop_not_candidate(self):
        from tests.helpers import build_nested_loop

        module = build_nested_loop()
        profile, _ = profile_module(module)
        cands = collect_candidates(module, profile, 256)
        headers = {c.header for c in cands}
        assert "outer" not in headers


class TestPlacement:
    def test_first_fit_basic(self):
        assert _first_fit([], 10, 64) == 0

    def test_first_fit_gap(self):
        from repro.loopbuffer.assign import Assignment

        placed = [(Assignment("f", "a", 0, 10, True), None),
                  (Assignment("f", "b", 30, 10, True), None)]
        assert _first_fit(placed, 10, 64) == 10
        assert _first_fit(placed, 25, 100) == 40
        assert _first_fit(placed, 30, 64) is None

    def test_cheapest_overlap_prefers_low_benefit(self):
        from repro.loopbuffer.assign import Assignment

        heavy = LoopCandidate("f", "h", 20, 10000, 1, True)
        light = LoopCandidate("f", "l", 20, 10, 1, True)
        placed = [(Assignment("f", "h", 0, 20, True), heavy),
                  (Assignment("f", "l", 20, 20, True), light)]
        offset = _cheapest_overlap(placed, 20, 40)
        assert offset == 20  # land on the light loop


class TestIRRewrite:
    def test_rec_cloop_installed(self):
        module, profile = _profiled_counting()
        result = assign_buffer(module, profile, 64)
        assert len(result.assigned) == 1
        func = module.function("main")
        recs = [op for op in func.ops() if op.opcode == Opcode.REC_CLOOP]
        assert len(recs) == 1
        rec = recs[0]
        assert rec.attrs["buf_addr"] == 0
        assert rec.attrs["num"] == result.assigned[0].length
        # the cloop_set it replaced is gone
        assert not any(op.opcode == Opcode.CLOOP_SET for op in func.ops())
        # semantics unchanged (rec_cloop still loads the loop counter)
        assert run_module(module).value == sum(range(100))

    def test_rec_wloop_for_uncounted_loop(self):
        module = build_counting_loop(50)  # keep the plain br loop-back
        profile, _ = profile_module(module)
        result = assign_buffer(module, profile, 64)
        assert len(result.assigned) == 1
        func = module.function("main")
        recs = [op for op in func.ops() if op.opcode == Opcode.REC_WLOOP]
        assert len(recs) == 1
        assert run_module(module).value == sum(range(50))

    def test_zero_benefit_loops_unassigned(self):
        module = build_counting_loop(50)
        result = assign_buffer(module, Profile(), 64)  # no profile weight
        assert result.assigned == []
        assert result.unassigned == ["main/body"]

    def test_lookup(self):
        module, profile = _profiled_counting()
        result = assign_buffer(module, profile, 64)
        assert result.lookup("main", "body") is not None
        assert result.lookup("main", "ghost") is None
