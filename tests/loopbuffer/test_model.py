"""Unit tests for the loop-buffer hardware model (Table 3 semantics)."""

import pytest

from repro.loopbuffer.model import LoopBuffer, LoopState


class TestRecording:
    def test_first_rec_records(self):
        buf = LoopBuffer(64)
        assert buf.rec("A", 0, 16, counted=True) is LoopState.RECORDING
        assert buf.state_of("A") is LoopState.RECORDING

    def test_finish_recording_makes_resident(self):
        buf = LoopBuffer(64)
        buf.rec("A", 0, 16, counted=True)
        buf.finish_recording("A")
        assert buf.state_of("A") is LoopState.RESIDENT

    def test_residency_table_skips_rerecord(self):
        buf = LoopBuffer(64)
        buf.rec("A", 0, 16, counted=True)
        buf.finish_recording("A")
        assert buf.rec("A", 0, 16, counted=True) is LoopState.RESIDENT
        assert buf.stats.records_skipped == 1
        assert buf.stats.records_started == 1

    def test_rerecord_after_eviction(self):
        buf = LoopBuffer(64)
        buf.rec("A", 0, 16, counted=True)
        buf.finish_recording("A")
        buf.rec("B", 8, 16, counted=True)   # overlaps A
        assert buf.state_of("A") is LoopState.ABSENT
        assert buf.stats.invalidations == 1
        assert buf.rec("A", 0, 16, counted=True) is LoopState.RECORDING

    def test_disjoint_loops_cohabit(self):
        buf = LoopBuffer(64)
        buf.rec("A", 0, 16, counted=True)
        buf.finish_recording("A")
        buf.rec("B", 16, 16, counted=False)
        buf.finish_recording("B")
        assert buf.state_of("A") is LoopState.RESIDENT
        assert buf.state_of("B") is LoopState.RESIDENT
        assert buf.occupancy() == 32

    def test_capacity_enforced(self):
        buf = LoopBuffer(32)
        with pytest.raises(ValueError):
            buf.rec("A", 0, 33, counted=True)
        with pytest.raises(ValueError):
            buf.rec("A", 20, 16, counted=True)

    def test_moved_loop_rerecords(self):
        # same loop recorded at a different offset must re-record
        buf = LoopBuffer(64)
        buf.rec("A", 0, 16, counted=True)
        buf.finish_recording("A")
        assert buf.rec("A", 16, 16, counted=True) is LoopState.RECORDING


class TestExec:
    def test_exec_resident(self):
        buf = LoopBuffer(64)
        buf.rec("A", 0, 16, counted=True)
        buf.finish_recording("A")
        assert buf.exec_loop("A") is LoopState.RESIDENT

    def test_exec_absent_raises(self):
        buf = LoopBuffer(64)
        with pytest.raises(LookupError):
            buf.exec_loop("ghost")

    def test_exec_still_recording_raises(self):
        buf = LoopBuffer(64)
        buf.rec("A", 0, 16, counted=True)
        with pytest.raises(LookupError):
            buf.exec_loop("A")


class TestInvalidation:
    def test_figure5_displacement_chain(self):
        # three loops that all want the same 16-op buffer: each rec of the
        # next evicts the previous (the Figure 5(b) 16-op buffer scenario)
        buf = LoopBuffer(16)
        for name in ("E", "F", "I"):
            buf.rec(name, 0, 14, counted=True)
            buf.finish_recording(name)
        assert buf.state_of("I") is LoopState.RESIDENT
        assert buf.state_of("E") is LoopState.ABSENT
        assert buf.state_of("F") is LoopState.ABSENT
        assert buf.stats.invalidations == 2

    def test_partial_overlap_evicts(self):
        buf = LoopBuffer(64)
        buf.rec("A", 0, 20, counted=True)
        buf.finish_recording("A")
        buf.rec("B", 19, 10, counted=True)
        assert buf.state_of("A") is LoopState.ABSENT
