"""Unit tests for CFG simplification."""

from repro.ir import Function, IRBuilder, Imm, ireg, verify_function
from repro.opt.simplify_cfg import (
    drop_redundant_jumps,
    merge_straightline,
    remove_unreachable,
    simplify_cfg,
    thread_jumps,
)
from repro.sim.interp import run_module

from tests.helpers import build_counting_loop, build_if_diamond


def test_remove_unreachable():
    module = build_if_diamond()
    func = module.function("main")
    dead = func.add_block("dead")
    b = IRBuilder(func, dead)
    b.ret()
    assert remove_unreachable(func) == 1
    assert not func.has_block("dead")
    verify_function(func)


def test_thread_jump_chain():
    func = Function("f")
    b = IRBuilder(func)
    entry = func.add_block("entry")
    hop = func.add_block("hop")
    land = func.add_block("land")
    b.at(entry)
    b.br("lt", ireg(0), Imm(0), "hop")
    b.jump("land")
    b.at(hop)
    b.jump("land")
    b.at(land)
    b.ret()
    assert thread_jumps(func) == 1
    branch = func.block("entry").ops[0]
    assert branch.target == "land"


def test_merge_straightline_preserves_semantics():
    module = build_if_diamond()
    func = module.function("main")
    # split "join" artificially by inserting a forwarding block
    simplify_cfg(func)
    verify_function(func)
    assert run_module(module, args=[5]).value == 6
    assert run_module(module, args=[50]).value == 49


def test_merge_straightline_merges_chain():
    func = Function("f")
    b = IRBuilder(func)
    a = func.add_block("a")
    c = func.add_block("c")
    b.at(a)
    b.add(ireg(0), Imm(1), dest=ireg(1))
    b.jump("c")
    b.at(c)
    b.add(ireg(1), Imm(2), dest=ireg(2))
    b.ret(ireg(2))
    assert merge_straightline(func) == 1
    assert len(func.blocks) == 1
    verify_function(func)


def test_merge_respects_fallthrough_of_merged_block():
    # a jumps to c; c falls through to d; merging c into a must keep d next
    func = Function("main")
    b = IRBuilder(func)
    a = func.add_block("a")
    x = func.add_block("x")
    c = func.add_block("c")
    d = func.add_block("d")
    b.at(a)
    b.jump("c")
    b.at(x)
    b.ret(Imm(7))
    b.at(c)
    b.add(ireg(0), Imm(1), dest=ireg(1))
    b.at(d)
    b.br("eq", ireg(1), Imm(0), "x")  # not taken; keeps x reachable
    b.ret(ireg(1))
    # c's only pred is a; merge must add an explicit jump to d
    count = merge_straightline(func)
    assert count >= 1
    verify_function(func)
    from repro.ir import Module

    module = Module()
    module.add_function(func)
    assert run_module(module).value == 1  # via a -> c-code -> d


def test_drop_redundant_jump():
    func = Function("f")
    b = IRBuilder(func)
    a = func.add_block("a")
    c = func.add_block("c")
    b.at(a)
    b.jump("c")
    b.at(c)
    b.ret()
    assert drop_redundant_jumps(func) == 1
    assert func.block("a").ops == []


def test_simplify_cfg_idempotent_on_loop():
    module = build_counting_loop(5)
    func = module.function("main")
    simplify_cfg(func)
    verify_function(func)
    assert run_module(module).value == 10
    # running again changes nothing
    assert simplify_cfg(func) == 0
