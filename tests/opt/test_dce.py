"""Unit tests for dead-code elimination and partial-dead-code sinking."""

from repro.ir import Imm, Module, Opcode, verify_function
from repro.opt.dce import eliminate_dead_code, sink_partially_dead
from repro.sim.interp import run_module

from tests.helpers import build_counting_loop, single_block_function


def _finish(func, b, result):
    b.ret(result)
    module = Module()
    module.add_function(func)
    return module


class TestDCE:
    def test_unused_computation_removed(self):
        func, b = single_block_function(nparams=1)
        x = func.params[0]
        b.mul(x, Imm(100))  # dead
        live = b.add(x, Imm(1))
        module = _finish(func, b, live)
        assert eliminate_dead_code(func) == 1
        assert not any(op.opcode == Opcode.MUL for op in func.entry.ops)
        assert run_module(module, args=[2]).value == 3

    def test_transitively_dead_chain_removed(self):
        func, b = single_block_function(nparams=1)
        x = func.params[0]
        t1 = b.add(x, Imm(1))
        t2 = b.mul(t1, Imm(3))
        b.sub(t2, Imm(4))  # dead; kills t2 then t1
        module = _finish(func, b, x)
        removed = eliminate_dead_code(func)
        assert removed == 3
        assert run_module(module, args=[7]).value == 7

    def test_store_never_removed(self):
        func, b = single_block_function(nparams=1)
        b.store(func.params[0], 0, Imm(9))
        _finish(func, b, Imm(0))
        assert eliminate_dead_code(func) == 0
        assert any(op.opcode == Opcode.ST for op in func.entry.ops)

    def test_loop_carried_value_kept(self):
        module = build_counting_loop(5)
        func = module.function("main")
        assert eliminate_dead_code(func) == 0
        assert run_module(module).value == 10

    def test_dead_guarded_op_removed(self):
        func, b = single_block_function(nparams=1)
        p = func.new_pred()
        b.pred_def("lt", func.params[0], Imm(0), [p], ["ut"])
        b.movi(3, guard=p)  # dest unread -> dead despite guard
        module = _finish(func, b, func.params[0])
        removed = eliminate_dead_code(func)
        # the mov dies, then the pred_def feeding only it dies too
        assert removed == 2
        assert run_module(module, args=[1]).value == 1

    def test_nops_removed(self):
        func, b = single_block_function()
        b.emit_op(Opcode.NOP)
        module = _finish(func, b, Imm(4))
        assert eliminate_dead_code(func) == 1
        assert run_module(module).value == 4


class TestPartialDeadCode:
    def test_def_guarded_when_all_uses_guarded(self):
        func, b = single_block_function(nparams=1)
        x = func.params[0]
        p = func.new_pred()
        b.pred_def("lt", x, Imm(0), [p], ["ut"])
        t = b.mul(x, Imm(3))          # only used under p
        y = b.movi(0)
        b.add(t, Imm(1), dest=y, guard=p)
        module = _finish(func, b, y)
        assert sink_partially_dead(func) == 1
        mul = next(op for op in func.entry.ops if op.opcode == Opcode.MUL)
        assert mul.guard == p
        verify_function(func)
        assert run_module(module, args=[-2]).value == -5
        assert run_module(module, args=[2]).value == 0

    def test_mixed_guards_not_sunk(self):
        func, b = single_block_function(nparams=1)
        x = func.params[0]
        p = func.new_pred()
        q = func.new_pred()
        b.pred_def("lt", x, Imm(0), [p], ["ut"])
        b.pred_def("gt", x, Imm(5), [q], ["ut"])
        t = b.mul(x, Imm(3))
        y = b.movi(0)
        b.add(t, Imm(1), dest=y, guard=p)
        b.add(t, Imm(2), dest=y, guard=q)
        _finish(func, b, y)
        assert sink_partially_dead(func) == 0

    def test_unguarded_use_not_sunk(self):
        func, b = single_block_function(nparams=1)
        x = func.params[0]
        p = func.new_pred()
        b.pred_def("lt", x, Imm(0), [p], ["ut"])
        t = b.mul(x, Imm(3))
        y = b.movi(0)
        b.add(t, Imm(1), dest=y, guard=p)
        z = b.add(t, Imm(5))  # unguarded use
        _finish(func, b, z)
        assert sink_partially_dead(func) == 0

    def test_escaping_value_not_sunk(self):
        # t is live out of the block -> must stay unconditional
        from repro.ir import Function, IRBuilder

        func = Function("main", [])
        module = Module()
        module.add_function(func)
        b = IRBuilder(func)
        entry = func.add_block("entry")
        nxt = func.add_block("next")
        b.at(entry)
        p = func.new_pred()
        b.pred_set(p, 1)
        t = b.movi(5)
        y = b.movi(0)
        b.add(t, Imm(1), dest=y, guard=p)
        b.at(nxt)
        out = b.add(t, y)
        b.ret(out)
        assert sink_partially_dead(func) == 0

    def test_store_never_sunk(self):
        func, b = single_block_function(nparams=1)
        p = func.new_pred()
        b.pred_def("lt", func.params[0], Imm(0), [p], ["ut"])
        b.store(func.params[0], 0, Imm(1))
        _finish(func, b, Imm(0))
        assert sink_partially_dead(func) == 0


class TestWebEnabledSinking:
    """Cases only the global predicate web can justify."""

    def _two_block(self):
        from repro.ir import Function, IRBuilder

        func = Function("main", [])
        module = Module()
        module.add_function(func)
        b = IRBuilder(func)
        func.add_block("entry")
        func.add_block("body")
        b.at(func.block("entry"))
        return func, module, b

    def test_guard_defined_in_predecessor_block(self):
        # the old syntactic check demanded p be assigned earlier in the
        # *same* block; the web proves definedness across the edge
        func, module, b = self._two_block()
        x = b.movi(7)
        p = func.new_pred()
        b.pred_def("lt", x, Imm(10), [p], ["ut"])
        b.at(func.block("body"))
        t = b.mul(x, Imm(3))
        y = b.movi(0)
        b.add(t, Imm(1), dest=y, guard=p)
        b.ret(y)
        assert sink_partially_dead(func) == 1
        mul = next(op for op in func.block("body").ops
                   if op.opcode == Opcode.MUL)
        assert mul.guard == p
        verify_function(func)
        assert run_module(module).value == 22

    def test_possibly_undefined_guard_not_sunk(self):
        # p is only or-accumulated under q: the q-false path leaves p
        # unwritten, so guarding the define by p would read garbage
        func, module, b = self._two_block()
        x = b.movi(7)
        p = func.new_pred()
        q = func.new_pred()
        b.pred_def("lt", x, Imm(10), [q], ["ut"])
        b.pred_def("gt", x, Imm(0), [p], ["ot"], guard=q)
        b.at(func.block("body"))
        t = b.mul(x, Imm(3))
        y = b.movi(0)
        b.add(t, Imm(1), dest=y, guard=p)
        b.ret(y)
        assert sink_partially_dead(func) == 0

    def test_mixed_guards_sunk_under_web_implication(self):
        # consumers under q and p with q ⊆ p (zero-rooted or-chain):
        # the define sinks under the covering guard p
        func, b = single_block_function(nparams=1)
        x = func.params[0]
        p = func.new_pred()
        q = func.new_pred()
        b.pred_def("lt", x, Imm(10), [p], ["ut"])
        b.pred_set(q, 0)
        b.pred_def("lt", x, Imm(5), [q], ["ot"], guard=p)
        t = b.mul(x, Imm(3))
        y = b.movi(0)
        b.add(t, Imm(1), dest=y, guard=p)
        b.add(t, Imm(2), dest=y, guard=q)
        module = _finish(func, b, y)
        assert sink_partially_dead(func) == 1
        mul = next(op for op in func.entry.ops if op.opcode == Opcode.MUL)
        assert mul.guard == p
        verify_function(func)
        assert run_module(module, args=[3]).value == 11
        assert run_module(module, args=[7]).value == 22
        assert run_module(module, args=[20]).value == 0
