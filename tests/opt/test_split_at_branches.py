"""Unit tests for block re-normalization (split_at_branches)."""

from repro.ir import Function, IRBuilder, Imm, Module, Opcode, ireg, verify_function
from repro.opt.simplify_cfg import merge_straightline, simplify_cfg, split_at_branches
from repro.sim.interp import run_module


def _module_with_midblock_branch():
    """A block with a side exit in the middle (as merging produces)."""
    module = Module()
    func = Function("main", [ireg(0)])
    module.add_function(func)
    b = IRBuilder(func)
    big = func.add_block("big")
    tail = func.add_block("tailpart")
    exit_blk = func.add_block("exitpart")
    b.at(big)
    t = b.add(ireg(0), Imm(1))
    b.br("gt", t, Imm(100), "exitpart")
    b.at(big)
    u = b.mul(t, Imm(2))
    b.jump("tailpart")
    b.at(tail)
    b.ret(u)
    b.at(exit_blk)
    b.ret(Imm(-1))
    # collapse the mid-block branch into 'big' manually
    func.block("big").ops  # [add, br, mul, jump]
    return module


class TestSplit:
    def test_splits_after_interior_branch(self):
        module = _module_with_midblock_branch()
        func = module.function("main")
        assert split_at_branches(func) == 1
        verify_function(func)
        # every branch now ends a block (modulo the BR+JUMP pair)
        for block in func.blocks:
            for i, op in enumerate(block.ops[:-1]):
                if op.is_branch:
                    assert (i == len(block.ops) - 2
                            and op.opcode == Opcode.BR
                            and block.ops[-1].opcode == Opcode.JUMP)

    def test_semantics_preserved(self):
        baseline = _module_with_midblock_branch()
        split = _module_with_midblock_branch()
        split_at_branches(split.function("main"))
        for x in (1, 99, 100, 5000):
            assert (run_module(split, args=[x]).value
                    == run_module(baseline, args=[x]).value)

    def test_br_jump_pair_not_split(self):
        module = Module()
        func = Function("main", [ireg(0)])
        module.add_function(func)
        b = IRBuilder(func)
        entry = func.add_block("entry")
        a = func.add_block("a")
        c = func.add_block("c")
        b.at(entry)
        b.br("lt", ireg(0), Imm(0), "a")
        b.jump("c")
        b.at(a)
        b.ret(Imm(1))
        b.at(c)
        b.ret(Imm(2))
        assert split_at_branches(func) == 0

    def test_idempotent(self):
        module = _module_with_midblock_branch()
        func = module.function("main")
        split_at_branches(func)
        assert split_at_branches(func) == 0

    def test_round_trip_with_merging(self):
        # merge then split then merge again: semantics stable throughout
        module = _module_with_midblock_branch()
        func = module.function("main")
        expected = run_module(_module_with_midblock_branch(), args=[7]).value
        simplify_cfg(func)
        split_at_branches(func)
        verify_function(func)
        merge_straightline(func)
        verify_function(func)
        assert run_module(module, args=[7]).value == expected
