"""Unit tests for expression reassociation."""

from repro.analysis.dependence import build_dependence_graph
from repro.ir import Imm, Module, Opcode, verify_function
from repro.opt.reassoc import reassociate_function
from repro.sim.interp import run_module

from tests.helpers import single_block_function


def _finish(func, b, result):
    b.ret(result)
    module = Module()
    module.add_function(func)
    return module


def _sum_chain(func, b, regs):
    acc = regs[0]
    for reg in regs[1:]:
        acc = b.add(acc, reg)
    return acc


def test_chain_of_four_rebalanced():
    func, b = single_block_function(nparams=4)
    total = _sum_chain(func, b, list(func.params))
    module = _finish(func, b, total)
    before = build_dependence_graph(func.entry.ops).critical_path_length()
    assert reassociate_function(func) == 1
    verify_function(func)
    after = build_dependence_graph(func.entry.ops).critical_path_length()
    assert after < before
    assert run_module(module, args=[1, 2, 3, 4]).value == 10


def test_chain_of_eight_height_logarithmic():
    func, b = single_block_function(nparams=8)
    total = _sum_chain(func, b, list(func.params))
    module = _finish(func, b, total)
    assert reassociate_function(func) == 1
    adds = [op for op in func.entry.ops if op.opcode == Opcode.ADD]
    assert len(adds) == 7  # same op count
    height = build_dependence_graph(func.entry.ops).critical_path_length()
    assert height <= 5  # log2(8)=3 adds + ret
    assert run_module(module, args=list(range(8))).value == 28


def test_short_chain_untouched():
    func, b = single_block_function(nparams=3)
    total = _sum_chain(func, b, list(func.params))
    _finish(func, b, total)
    assert reassociate_function(func) == 0


def test_multi_use_intermediate_blocks_chain():
    func, b = single_block_function(nparams=4)
    p0, p1, p2, p3 = func.params
    t1 = b.add(p0, p1)
    t2 = b.add(t1, p2)
    t3 = b.add(t2, p3)
    out = b.add(t1, t3)  # t1 used twice
    module = _finish(func, b, out)
    reassociate_function(func)
    verify_function(func)
    assert run_module(module, args=[1, 2, 3, 4]).value == 13


def test_guarded_ops_not_chained():
    func, b = single_block_function(nparams=4)
    p = func.new_pred()
    b.pred_set(p, 1)
    p0, p1, p2, p3 = func.params
    t1 = b.add(p0, p1)
    t2 = b.add(t1, p2, guard=p)
    t3 = b.add(t2, p3)
    _finish(func, b, t3)
    assert reassociate_function(func) == 0


def test_mul_chain_rebalanced():
    func, b = single_block_function(nparams=4)
    acc = func.params[0]
    for reg in func.params[1:]:
        acc = b.mul(acc, reg)
    module = _finish(func, b, acc)
    assert reassociate_function(func) == 1
    assert run_module(module, args=[2, 3, 5, 7]).value == 210


def test_wraparound_preserved():
    # reassociation must respect mod-2^32 arithmetic
    func, b = single_block_function()
    big = b.movi(2**31 - 1)
    x1 = b.add(big, Imm(100))
    x2 = b.add(x1, Imm(-100))
    x3 = b.add(x2, Imm(7))
    module = _finish(func, b, x3)
    reassociate_function(func)
    assert run_module(module).value == 2**31 - 1 + 7 - 2**32
