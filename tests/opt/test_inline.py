"""Unit tests for profile-guided inlining."""

from repro.ir import (
    Function,
    IRBuilder,
    Imm,
    Module,
    Opcode,
    ireg,
    verify_module,
)
from repro.opt.inline import inline_call, inline_module
from repro.sim.interp import profile_module, run_module


def _make_caller_callee(loop_iters=10):
    """main: s=0; for i<loop_iters: s += helper(i); return s
    helper(x): if (x < 5) return x*2; else return x+1"""
    module = Module()

    x = ireg(0)
    helper = Function("helper", [x])
    module.add_function(helper)
    hb = IRBuilder(helper)
    h_entry = helper.add_block("entry")
    h_else = helper.add_block("big")
    hb.at(h_entry)
    hb.br("ge", x, Imm(5), "big")
    t = hb.mul(x, Imm(2))
    hb.ret(t)
    hb.at(h_else)
    t2 = hb.add(x, Imm(1))
    hb.ret(t2)

    main = Function("main")
    module.add_function(main)
    b = IRBuilder(main)
    entry = main.add_block("entry")
    body = main.add_block("body")
    done = main.add_block("done")
    b.at(entry)
    s = b.movi(0)
    i = b.movi(0)
    b.at(body)
    r = b.call("helper", [i], dest=main.new_reg())
    b.add(s, r, dest=s)
    b.add(i, Imm(1), dest=i)
    b.br("lt", i, Imm(loop_iters), "body")
    b.at(done)
    b.ret(s)
    return module


def _expected(loop_iters=10):
    return sum(x * 2 if x < 5 else x + 1 for x in range(loop_iters))


class TestInlineCall:
    def test_semantics_preserved(self):
        module = _make_caller_callee()
        main = module.function("main")
        call_op = next(op for op in main.ops() if op.opcode == Opcode.CALL)
        inline_call(module, main, "body", call_op)
        verify_module(module)
        assert run_module(module).value == _expected()
        assert not any(op.opcode == Opcode.CALL for op in main.ops())

    def test_register_isolation(self):
        # callee and caller both use low-numbered registers; after inlining
        # the clone must not clobber caller registers
        module = _make_caller_callee()
        main = module.function("main")
        call_op = next(op for op in main.ops() if op.opcode == Opcode.CALL)
        before_regs = {r for op in main.ops() for r in op.writes()}
        inline_call(module, main, "body", call_op)
        # every op from the clone writes registers fresh to the caller
        for block in main.blocks:
            if block.label.startswith("inl_"):
                for op in block.ops:
                    for r in op.writes():
                        assert r not in before_regs or r == call_op.dests[0]

    def test_frame_merging(self):
        module = Module()
        callee = Function("callee", [ireg(0)])
        module.add_function(callee)
        callee.frame_words = 4
        callee.frame_base = callee.new_reg()
        cb = IRBuilder(callee, callee.add_block("entry"))
        cb.store(callee.frame_base, 0, ireg(0))
        v = cb.load(callee.frame_base, 0)
        out = cb.add(v, Imm(1))
        cb.ret(out)

        main = Function("main")
        module.add_function(main)
        b = IRBuilder(main, main.add_block("entry"))
        r = b.call("callee", [Imm(41)], dest=main.new_reg())
        b.ret(r)

        call_op = next(op for op in main.ops() if op.opcode == Opcode.CALL)
        inline_call(module, main, "entry", call_op)
        verify_module(module)
        assert main.frame_words == 4
        assert main.frame_base is not None
        assert run_module(module).value == 42


class TestInlineModule:
    def test_hot_loop_site_inlined(self):
        module = _make_caller_callee()
        profile, _ = profile_module(module)
        stats = inline_module(module, profile)
        assert stats.sites_inlined == 1
        verify_module(module)
        assert run_module(module).value == _expected()

    def test_budget_respected(self):
        module = _make_caller_callee()
        profile, _ = profile_module(module)
        stats = inline_module(module, profile, expansion_limit=0.01)
        assert stats.sites_inlined == 0

    def test_recursive_callee_skipped(self):
        module = Module()
        f = Function("f", [ireg(0)])
        module.add_function(f)
        b = IRBuilder(f)
        entry = f.add_block("entry")
        rec = f.add_block("rec")
        b.at(entry)
        b.br("gt", ireg(0), Imm(0), "rec")
        b.ret(Imm(0))
        b.at(rec)
        n1 = b.sub(ireg(0), Imm(1))
        r = b.call("f", [n1], dest=f.new_reg())
        b.ret(r)

        main = Function("main")
        module.add_function(main)
        mb = IRBuilder(main, main.add_block("entry"))
        out = mb.call("f", [Imm(3)], dest=main.new_reg())
        mb.ret(out)

        profile, _ = profile_module(module)
        stats = inline_module(module, profile)
        assert stats.sites_inlined == 0

    def test_cold_sites_skipped(self):
        module = _make_caller_callee()
        # never profiled -> zero weights -> nothing inlined
        from repro.analysis.profile import Profile

        stats = inline_module(module, Profile())
        assert stats.sites_inlined == 0
