"""Unit tests for local folding / copy propagation / CSE."""

from repro.ir import (
    Function,
    IRBuilder,
    Imm,
    Module,
    Opcode,
    verify_function,
)
from repro.opt.local import optimize_function
from repro.sim.interp import run_module

from tests.helpers import single_block_function


def _finish(func, b, result):
    b.ret(result)
    module = Module()
    module.add_function(func)
    return module


class TestConstantFolding:
    def test_binary_fold(self):
        func, b = single_block_function()
        x = b.movi(6)
        y = b.movi(7)
        z = b.mul(x, y)
        module = _finish(func, b, z)
        optimize_function(func)
        verify_function(func)
        ops = func.entry.ops
        movs = [op for op in ops if op.opcode == Opcode.MOV and op.dests[0] == z]
        assert movs and movs[0].srcs[0] == Imm(42)
        assert run_module(module).value == 42

    def test_fold_through_chain(self):
        func, b = single_block_function()
        a = b.movi(10)
        c = b.add(a, Imm(5))
        d = b.sub(c, Imm(3))
        module = _finish(func, b, d)
        optimize_function(func)
        assert run_module(module).value == 12
        assert all(op.opcode in (Opcode.MOV, Opcode.RET) for op in func.entry.ops)

    def test_division_by_zero_not_folded(self):
        func, b = single_block_function()
        z = b.emit(Opcode.DIV, [Imm(5), Imm(0)])
        _finish(func, b, z)
        optimize_function(func)
        assert any(op.opcode == Opcode.DIV for op in func.entry.ops)

    def test_cmp_folds(self):
        func, b = single_block_function()
        c = b.cmp("lt", Imm(3), Imm(5))
        module = _finish(func, b, c)
        optimize_function(func)
        assert run_module(module).value == 1


class TestAlgebraicIdentities:
    def test_add_zero(self):
        func, b = single_block_function(nparams=1)
        x = func.params[0]
        y = b.add(x, Imm(0))
        module = _finish(func, b, y)
        optimize_function(func)
        assert run_module(module, args=[9]).value == 9
        assert not any(op.opcode == Opcode.ADD for op in func.entry.ops)

    def test_mul_by_power_of_two_becomes_shift(self):
        func, b = single_block_function(nparams=1)
        x = func.params[0]
        y = b.mul(x, Imm(8))
        module = _finish(func, b, y)
        optimize_function(func)
        shls = [op for op in func.entry.ops if op.opcode == Opcode.SHL]
        assert shls and shls[0].srcs[1] == Imm(3)
        assert run_module(module, args=[5]).value == 40

    def test_mul_by_zero(self):
        func, b = single_block_function(nparams=1)
        y = b.mul(func.params[0], Imm(0))
        module = _finish(func, b, y)
        optimize_function(func)
        assert run_module(module, args=[123]).value == 0
        assert not any(op.opcode in (Opcode.MUL, Opcode.SHL) for op in func.entry.ops)


class TestCopyPropagation:
    def test_copy_chain_collapses(self):
        func, b = single_block_function(nparams=1)
        x = func.params[0]
        a = b.mov(x)
        c = b.mov(a)
        d = b.add(c, Imm(1))
        module = _finish(func, b, d)
        optimize_function(func)
        adds = [op for op in func.entry.ops if op.opcode == Opcode.ADD]
        assert adds[0].srcs[0] == x
        assert run_module(module, args=[4]).value == 5

    def test_guarded_write_blocks_propagation(self):
        func, b = single_block_function(nparams=1)
        x = func.params[0]
        p = func.new_pred()
        b.pred_def("lt", x, Imm(0), [p], ["ut"])
        a = b.movi(7)
        b.movi(9, dest=a, guard=p)  # 'a' is no longer known to be 7
        d = b.add(a, Imm(1))
        module = _finish(func, b, d)
        optimize_function(func)
        adds = [op for op in func.entry.ops if op.opcode == Opcode.ADD]
        assert adds and adds[0].srcs[0] == a  # not folded to Imm(8)
        assert run_module(module, args=[-5]).value == 10
        assert run_module(module, args=[5]).value == 8


class TestCSE:
    def test_duplicate_expression_reused(self):
        func, b = single_block_function(nparams=2)
        x, y = func.params
        a = b.add(x, y)
        c = b.add(x, y)
        d = b.emit(Opcode.XOR, [a, c])
        module = _finish(func, b, d)
        optimize_function(func)
        adds = [op for op in func.entry.ops if op.opcode == Opcode.ADD]
        assert len(adds) == 1
        assert run_module(module, args=[3, 4]).value == 0

    def test_load_cse_blocked_by_store(self):
        func, b = single_block_function(nparams=1)
        base = func.params[0]
        v1 = b.load(base, 0)
        b.store(base, 0, Imm(5))
        v2 = b.load(base, 0)
        d = b.add(v1, v2)
        _finish(func, b, d)
        optimize_function(func)
        loads = [op for op in func.entry.ops if op.opcode == Opcode.LD]
        assert len(loads) == 2

    def test_load_cse_without_store(self):
        func, b = single_block_function(nparams=1)
        base = func.params[0]
        v1 = b.load(base, 0)
        v2 = b.load(base, 0)
        d = b.add(v1, v2)
        _finish(func, b, d)
        optimize_function(func)
        loads = [op for op in func.entry.ops if op.opcode == Opcode.LD]
        assert len(loads) == 1


class TestBranchFolding:
    def test_never_taken_branch_removed(self):
        func = Function("main")
        module = Module()
        module.add_function(func)
        b = IRBuilder(func)
        entry = func.add_block("entry")
        other = func.add_block("other")
        b.at(entry)
        b.br("lt", Imm(5), Imm(3), "other")
        b.ret(Imm(1))
        b.at(other)
        b.ret(Imm(2))
        optimize_function(func)
        assert not any(op.opcode == Opcode.BR for op in func.entry.ops)
        assert run_module(module).value == 1

    def test_always_taken_branch_becomes_jump(self):
        func = Function("main")
        module = Module()
        module.add_function(func)
        b = IRBuilder(func)
        entry = func.add_block("entry")
        other = func.add_block("other")
        b.at(entry)
        b.br("lt", Imm(1), Imm(3), "other")
        b.ret(Imm(1))
        b.at(other)
        b.ret(Imm(2))
        optimize_function(func)
        assert func.entry.ops[-1].opcode == Opcode.JUMP
        assert run_module(module).value == 2
