"""Benchmark self-checks: every Table 1 program matches its Python
reference at every compilation level."""

import pytest

from repro.bench import all_benchmarks, benchmark, benchmark_names
from repro.pipeline import compile_aggressive, compile_traditional, run_compiled
from repro.sim.interp import run_module

ALL = benchmark_names()


class TestRegistry:
    def test_table1_coverage(self):
        # the paper's Table 1 set (g721 replaced by g724, per the paper)
        expected = {
            "adpcm_enc", "adpcm_dec", "g724_enc", "g724_dec",
            "jpeg_enc", "jpeg_dec", "mpeg2_enc", "mpeg2_dec",
            "mpg123", "pgp_enc", "pgp_dec",
        }
        assert set(ALL) == expected

    def test_benchmarks_have_descriptions(self):
        for b in all_benchmarks():
            assert b.description
            assert b.source


@pytest.mark.parametrize("name", ALL)
def test_interpreter_matches_reference(name):
    b = benchmark(name)
    assert run_module(b.build()).value == b.expected()


@pytest.mark.parametrize("name", ["adpcm_enc", "pgp_enc", "mpeg2_dec"])
def test_traditional_pipeline_preserves_semantics(name):
    b = benchmark(name)
    compiled = compile_traditional(b.build())
    assert run_compiled(compiled).result.value == b.expected()


@pytest.mark.parametrize("name", ["adpcm_dec", "g724_dec", "jpeg_dec", "mpg123"])
def test_aggressive_pipeline_preserves_semantics(name):
    b = benchmark(name)
    compiled = compile_aggressive(b.build())
    assert run_compiled(compiled).result.value == b.expected()
