"""Unit + integration tests for branch combining."""

from repro.ir import GlobalRef, Imm, Module, Opcode, verify_module
from repro.predication.branch_combine import combine_branches
from repro.predication.hyperblock import form_loop_hyperblocks
from repro.sim.interp import profile_module, run_module

from tests.predication.test_ifconvert import build_loop_with_diamond


def build_loop_with_two_exits(n=50, stop_a=-1, stop_b=-1):
    """A loop with two rarely-taken exit conditions (values from a table)."""
    from repro.ir import Function, IRBuilder

    module = Module()
    module.add_global("tab", 64, [(3 * k) % 251 for k in range(64)])
    func = Function("main")
    module.add_function(func)
    b = IRBuilder(func)

    entry = func.add_block("entry")
    head = func.add_block("head")
    mid = func.add_block("mid")
    cont = func.add_block("cont")
    exit_a = func.add_block("exit_a")
    exit_b = func.add_block("exit_b")
    done = func.add_block("done")

    b.at(entry)
    s = b.movi(0)
    i = b.movi(0)
    base = b.mov(GlobalRef("tab"))

    b.at(head)
    addr = b.add(base, i)
    v = b.load(addr, 0)
    b.br("eq", v, Imm(stop_a), "exit_a")

    b.at(mid)
    b.br("eq", v, Imm(stop_b), "exit_b")

    b.at(cont)
    b.add(s, v, dest=s)
    b.add(i, Imm(1), dest=i)
    b.br("lt", i, Imm(n), "head")
    b.jump("done")

    b.at(exit_a)
    b.ret(Imm(-100))
    b.at(exit_b)
    b.ret(Imm(-200))
    b.at(done)
    b.ret(s)
    return module


def _expected(n=50, stop_a=-1, stop_b=-1):
    tab = [(3 * k) % 251 for k in range(64)]
    s = 0
    for i in range(n):
        v = tab[i]
        if v == stop_a:
            return -100
        if v == stop_b:
            return -200
        s += v
    return s


class TestBranchCombining:
    def _converted(self, **kw):
        module = build_loop_with_two_exits(**kw)
        func = module.function("main")
        stats = form_loop_hyperblocks(func)
        assert stats.loops_converted == 1
        return module, func

    def test_combines_two_cold_exits(self):
        module, func = self._converted()
        profile, _ = profile_module(module)
        stats = combine_branches(func, profile)
        assert stats.hyperblocks == 1
        assert stats.branches_combined == 2
        verify_module(module)

    def test_semantics_exits_not_taken(self):
        module, func = self._converted()
        profile, _ = profile_module(module)
        combine_branches(func, profile)
        assert run_module(module).value == _expected()

    def test_semantics_exit_taken(self):
        # stop value 9 appears in the table: (3*3)%251
        module, func = self._converted(stop_a=9)
        combine_branches(func, profile=None)
        assert run_module(module).value == _expected(stop_a=9) == -100

    def test_second_exit_taken(self):
        module, func = self._converted(stop_b=12)
        combine_branches(func, profile=None)
        assert run_module(module).value == _expected(stop_b=12) == -200

    def test_decode_block_created(self):
        module, func = self._converted()
        combine_branches(func)
        decode = [blk for blk in func.blocks if "_decode" in blk.label]
        assert len(decode) == 1
        brs = [op for op in decode[0].ops if op.opcode == Opcode.BR]
        assert len(brs) == 2

    def test_summary_predicate_structure(self):
        module, func = self._converted()
        combine_branches(func)
        hyper = next(blk for blk in func.blocks if blk.hyperblock)
        # or-type contributions into one summary predicate
        ors = [op for op in hyper.ops
               if op.opcode == Opcode.PRED_DEF and op.attrs["ptypes"] == ["ot"]]
        assert len(ors) >= 2
        summary = ors[0].dests[0]
        assert all(op.dests[0] == summary for op in ors)
        # summary jump placed before the trailing loop-back branch
        jump_idx = next(i for i, op in enumerate(hyper.ops)
                        if op.opcode == Opcode.JUMP and op.guard == summary)
        assert any(op.is_branch for op in hyper.ops[jump_idx + 1:])

    def test_hot_exits_left_alone(self):
        module, func = self._converted()
        profile, _ = profile_module(module)
        stats = combine_branches(func, profile, taken_threshold=-1.0)
        # with an impossible threshold every exit is 'too hot'
        assert stats.branches_combined == 0

    def test_single_exit_not_combined(self):
        module = build_loop_with_diamond()
        func = module.function("main")
        form_loop_hyperblocks(func)
        stats = combine_branches(func)
        assert stats.branches_combined == 0

    def test_branch_resource_reduced(self):
        module, func = self._converted()
        hyper = next(blk for blk in func.blocks if blk.hyperblock)
        before = sum(1 for op in hyper.ops if op.opcode == Opcode.BR)
        combine_branches(func)
        after = sum(1 for op in hyper.ops if op.opcode == Opcode.BR)
        assert after == before - 2
