"""Unit tests for predicate live ranges and coloring."""

import pytest

from repro.ir import BasicBlock, Imm, Opcode, Operation, ireg, preg
from repro.predication.coloring import (
    PredicateSpillRequired,
    apply_coloring,
    color_predicates,
    max_live_predicates,
    predicate_live_ranges,
)


def _pdef(dest, cmp="lt", guard=None, src=0):
    return Operation(Opcode.PRED_DEF, [dest], [ireg(src), Imm(4)],
                     guard=guard, attrs={"cmp": cmp, "ptypes": ["ut"]})


def _use(guard, dest=9):
    return Operation(Opcode.ADD, [ireg(dest)], [ireg(0), Imm(1)], guard=guard)


class TestLiveRanges:
    def test_simple_range(self):
        block = BasicBlock("b", [_pdef(preg(0)), _use(preg(0)), _use(preg(0))])
        ranges = predicate_live_ranges(block)
        assert len(ranges) == 1
        rng = ranges[0]
        assert rng.start == 0
        assert rng.end == 2
        assert rng.consumers == [1, 2]
        assert rng.duration == 2

    def test_disjoint_ranges(self):
        block = BasicBlock("b", [
            _pdef(preg(0)), _use(preg(0)),
            _pdef(preg(1)), _use(preg(1)),
        ])
        ranges = predicate_live_ranges(block)
        assert not ranges[0].overlaps(ranges[1])

    def test_upward_exposed_is_whole_block(self):
        # predicate read before being defined: live across the back edge
        block = BasicBlock("b", [_use(preg(0)), _pdef(preg(0))])
        rng = predicate_live_ranges(block)[0]
        assert rng.start == 0
        assert rng.end == len(block.ops)


class TestMaxLive:
    def test_non_overlapping_max_one(self):
        block = BasicBlock("b", [
            _pdef(preg(0)), _use(preg(0)),
            _pdef(preg(1)), _use(preg(1)),
        ])
        assert max_live_predicates(block) == 1

    def test_overlapping_counted(self):
        block = BasicBlock("b", [
            _pdef(preg(0)),
            _pdef(preg(1)),
            _use(preg(0)),
            _use(preg(1)),
        ])
        assert max_live_predicates(block) == 2

    def test_empty_block(self):
        assert max_live_predicates(BasicBlock("b", [])) == 0


class TestColoring:
    def test_disjoint_share_color(self):
        block = BasicBlock("b", [
            _pdef(preg(0)), _use(preg(0)),
            _pdef(preg(1)), _use(preg(1)),
        ])
        colors = color_predicates(block)
        assert colors[preg(0)] == colors[preg(1)] == 0

    def test_overlapping_distinct_colors(self):
        block = BasicBlock("b", [
            _pdef(preg(0)), _pdef(preg(1)),
            _use(preg(0)), _use(preg(1)),
        ])
        colors = color_predicates(block)
        assert colors[preg(0)] != colors[preg(1)]

    def test_spill_raises(self):
        ops = [_pdef(preg(i)) for i in range(9)]
        ops += [_use(preg(i)) for i in range(9)]
        block = BasicBlock("b", ops)
        with pytest.raises(PredicateSpillRequired):
            color_predicates(block, physical=8)
        # nine physical predicates suffice
        colors = color_predicates(block, physical=9)
        assert len(set(colors.values())) == 9

    def test_apply_coloring_rewrites(self):
        block = BasicBlock("b", [
            _pdef(preg(5)), _use(preg(5)),
            _pdef(preg(7)), _use(preg(7)),
        ])
        colors = color_predicates(block)
        apply_coloring(block, colors)
        used = {op.guard for op in block.ops if op.guard is not None}
        assert used == {preg(0)}

    def test_coloring_valid_on_ifconverted_loop(self):
        from repro.predication.hyperblock import form_loop_hyperblocks
        from tests.predication.test_ifconvert import build_loop_with_diamond

        module = build_loop_with_diamond()
        func = module.function("main")
        form_loop_hyperblocks(func)
        hyper = next(blk for blk in func.blocks if blk.hyperblock)
        colors = color_predicates(hyper, physical=8)
        ranges = {r.reg: r for r in predicate_live_ranges(hyper)}
        for a in colors:
            for b in colors:
                if a != b and colors[a] == colors[b]:
                    assert not ranges[a].overlaps(ranges[b])
