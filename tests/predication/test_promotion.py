"""Unit tests for predicate promotion."""

from repro.ir import Imm, Module, Opcode, verify_function
from repro.predication.promotion import promote_function, sensitivity_stats
from repro.sim.interp import run_module

from tests.helpers import single_block_function


def _finish(func, b, result):
    b.ret(result)
    module = Module()
    module.add_function(func)
    return module


def _mark_hyper(func):
    func.entry.hyperblock = True


class TestPromotion:
    def test_local_temp_promoted(self):
        # (p) t = x*3 ; (p) y = t+1 : the mul can be promoted (t is only
        # consumed under p)
        func, b = single_block_function(nparams=1)
        x = func.params[0]
        p = func.new_pred()
        b.pred_def("lt", x, Imm(0), [p], ["ut"])
        t = b.mul(x, Imm(3), guard=p)
        y = b.movi(0)
        b.add(t, Imm(1), dest=y, guard=p)
        module = _finish(func, b, y)
        _mark_hyper(func)
        stats = promote_function(func)
        assert stats.promoted == 1
        mul = next(op for op in func.entry.ops if op.opcode == Opcode.MUL)
        assert mul.guard is None
        verify_function(func)
        assert run_module(module, args=[-2]).value == -5
        assert run_module(module, args=[2]).value == 0

    def test_chain_promotes_iteratively(self):
        func, b = single_block_function(nparams=1)
        x = func.params[0]
        p = func.new_pred()
        b.pred_def("lt", x, Imm(0), [p], ["ut"])
        t1 = b.mul(x, Imm(3), guard=p)
        t2 = b.add(t1, Imm(7), guard=p)
        y = b.movi(0)
        b.add(t2, Imm(1), dest=y, guard=p)
        module = _finish(func, b, y)
        _mark_hyper(func)
        stats = promote_function(func)
        assert stats.promoted == 2
        assert run_module(module, args=[-1]).value == 5  # (-1*3+7)+1

    def test_store_never_promoted(self):
        func, b = single_block_function(nparams=1)
        x = func.params[0]
        p = func.new_pred()
        b.pred_def("lt", x, Imm(0), [p], ["ut"])
        b.store(x, 0, Imm(1), guard=p)
        _finish(func, b, Imm(0))
        _mark_hyper(func)
        assert promote_function(func).promoted == 0

    def test_value_read_unguarded_not_promoted(self):
        # y starts 0 and is conditionally overwritten; promoting the
        # overwrite would corrupt the p-false result
        func, b = single_block_function(nparams=1)
        x = func.params[0]
        p = func.new_pred()
        b.pred_def("lt", x, Imm(0), [p], ["ut"])
        y = b.movi(0)
        b.mul(x, Imm(3), dest=y, guard=p)
        out = b.add(y, Imm(1))  # unguarded read
        module = _finish(func, b, out)
        _mark_hyper(func)
        assert promote_function(func).promoted == 0
        assert run_module(module, args=[5]).value == 1

    def test_live_out_not_promoted(self):
        from repro.ir import Function, IRBuilder

        func = Function("main", [])
        module = Module()
        module.add_function(func)
        b = IRBuilder(func)
        entry = func.add_block("entry")
        entry.hyperblock = True
        nxt = func.add_block("next")
        b.at(entry)
        p = func.new_pred()
        y = b.movi(0)
        b.pred_set(p, 0)
        b.movi(9, dest=y, guard=p)
        b.at(nxt)
        b.ret(y)
        assert promote_function(func).promoted == 0
        assert run_module(module).value == 0

    def test_speculative_load_marked(self):
        func, b = single_block_function(nparams=1)
        x = func.params[0]
        p = func.new_pred()
        b.pred_def("gt", x, Imm(0), [p], ["ut"])
        v = b.load(x, 0, guard=p)
        y = b.movi(0)
        b.add(v, Imm(1), dest=y, guard=p)
        _finish(func, b, y)
        _mark_hyper(func)
        stats = promote_function(func)
        assert stats.promoted == 1
        assert stats.speculative_forms == 1
        ld = next(op for op in func.entry.ops if op.opcode == Opcode.LD)
        assert ld.attrs.get("speculative") is True

    def test_subset_guard_consumers_allow_promotion(self):
        # consumers guarded by q where q ⊆ p: promoting the p-guarded def is safe
        func, b = single_block_function(nparams=1)
        x = func.params[0]
        p = func.new_pred()
        q = func.new_pred()
        b.pred_def("lt", x, Imm(0), [p], ["ut"])
        b.pred_def("gt", x, Imm(-10), [q], ["ut"], guard=p)
        t = b.mul(x, Imm(3), guard=p)
        y = b.movi(0)
        b.add(t, Imm(1), dest=y, guard=q)
        module = _finish(func, b, y)
        _mark_hyper(func)
        assert promote_function(func).promoted == 1
        assert run_module(module, args=[-5]).value == -14

    def test_sensitivity_stats(self):
        func, b = single_block_function(nparams=1)
        x = func.params[0]
        p = func.new_pred()
        b.pred_def("lt", x, Imm(0), [p], ["ut"])
        b.store(x, 0, Imm(1), guard=p)
        b.add(x, Imm(1))
        _finish(func, b, Imm(0))
        _mark_hyper(func)
        guarded, total = sensitivity_stats(func)
        assert guarded == 1
        assert total == 4  # pred_def, store, add, ret


class TestWebEnabledPromotion:
    """Implications only the global predicate web can prove."""

    def test_zero_rooted_or_chain_promotes(self):
        # q = 0; (p) q |= x<5: block-local relations cannot see that the
        # or-accumulation starts from zero, so q ⊆ p needs the web
        func, b = single_block_function(nparams=1)
        x = func.params[0]
        p = func.new_pred()
        q = func.new_pred()
        b.pred_def("lt", x, Imm(10), [p], ["ut"])
        b.pred_set(q, 0)
        b.pred_def("lt", x, Imm(5), [q], ["ot"], guard=p)
        t = b.mul(x, Imm(2), guard=p)
        y = b.movi(0)
        b.add(t, Imm(1), dest=y, guard=q)
        b.movi(0, dest=t)  # kill: t must not escape polluted
        module = _finish(func, b, y)
        _mark_hyper(func)
        stats = promote_function(func)
        assert stats.promoted == 1
        mul = next(op for op in func.entry.ops if op.opcode == Opcode.MUL)
        assert mul.guard is None
        verify_function(func)
        assert run_module(module, args=[3]).value == 7
        assert run_module(module, args=[7]).value == 0
        assert run_module(module, args=[20]).value == 0

    def test_unrooted_or_chain_not_promoted(self):
        # without the zero root, q may carry a stale 1 on p-false paths:
        # neither the block relations nor the web may claim q ⊆ p
        func, b = single_block_function(nparams=1)
        x = func.params[0]
        p = func.new_pred()
        q = func.new_pred()
        b.pred_def("lt", x, Imm(10), [p], ["ut"])
        b.pred_def("lt", x, Imm(5), [q], ["ot"], guard=p)
        t = b.mul(x, Imm(2), guard=p)
        y = b.movi(0)
        b.add(t, Imm(1), dest=y, guard=q)
        b.movi(0, dest=t)
        _finish(func, b, y)
        _mark_hyper(func)
        assert promote_function(func).promoted == 0
