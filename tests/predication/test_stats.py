"""Unit tests for predication-characteristics statistics (Figure 3)."""

import pytest

from repro.predication.hyperblock import form_loop_hyperblocks
from repro.predication.stats import collect_module_stats
from repro.sim.interp import profile_module

from tests.predication.test_ifconvert import build_loop_with_diamond


def _converted_module():
    module = build_loop_with_diamond()
    func = module.function("main")
    form_loop_hyperblocks(func)
    return module


class TestDefineStats:
    def test_defines_collected(self):
        module = _converted_module()
        stats = collect_module_stats(module)
        assert stats.defines, "converted loop must yield define stats"
        for d in stats.defines:
            assert d.consumers >= 0
            assert d.duration >= 0

    def test_dynamic_weights(self):
        module = _converted_module()
        profile, _ = profile_module(module)
        stats = collect_module_stats(module, profile)
        weighted = [d for d in stats.defines if d.weight > 0]
        assert weighted, "profiled defines must carry dynamic weight"
        # defines in the loop execute once per iteration (10 iterations)
        assert max(d.weight for d in weighted) == 10

    def test_consumers_cdf_monotone_and_complete(self):
        module = _converted_module()
        profile, _ = profile_module(module)
        stats = collect_module_stats(module, profile)
        cdf = stats.consumers_cdf(dynamic=True)
        values = [cdf[k] for k in sorted(cdf)]
        assert all(b >= a for a, b in zip(values, values[1:]))
        assert values[-1] == pytest.approx(1.0)

    def test_duration_cdf(self):
        module = _converted_module()
        stats = collect_module_stats(module)
        cdf = stats.duration_cdf()
        assert cdf
        assert max(cdf.values()) == pytest.approx(1.0)


class TestLoopOverlapStats:
    def test_loop_recorded_with_iterations(self):
        module = _converted_module()
        profile, _ = profile_module(module)
        stats = collect_module_stats(module, profile)
        assert len(stats.loops) == 1
        loop = stats.loops[0]
        assert loop.iterations == 10
        assert loop.max_live >= 1

    def test_predicates_covering(self):
        module = _converted_module()
        profile, _ = profile_module(module)
        stats = collect_module_stats(module, profile)
        needed = stats.predicates_covering(0.99)
        assert 1 <= needed <= 8

    def test_empty_module(self):
        from repro.ir import Module

        stats = collect_module_stats(Module())
        assert stats.defines == []
        assert stats.consumers_cdf() == {}
        assert stats.predicates_covering() == 0
