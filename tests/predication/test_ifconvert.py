"""Unit + integration tests for if-conversion / hyperblock formation."""

import pytest

from repro.analysis.cfgview import CFGView
from repro.analysis.loops import find_loops, is_simple_loop
from repro.ir import (
    Function,
    IRBuilder,
    Imm,
    Module,
    Opcode,
    ireg,
    verify_module,
)
from repro.predication.hyperblock import (
    form_hammock_hyperblocks,
    form_loop_hyperblocks,
)
from repro.predication.ifconvert import (
    IfConversionError,
    check_region_convertible,
    if_convert_region,
)
from repro.sim.interp import run_module


def build_loop_with_diamond(n=10):
    """main(): s=0; for i in 0..n-1: if (i & 1) s += 3*i; else s -= i; return s"""
    module = Module()
    func = Function("main")
    module.add_function(func)
    b = IRBuilder(func)
    entry = func.add_block("entry")
    head = func.add_block("head")
    odd = func.add_block("odd")
    even = func.add_block("even")
    latch = func.add_block("latch")
    done = func.add_block("done")

    b.at(entry)
    s = b.movi(0)
    i = b.movi(0)

    b.at(head)
    bit = b.emit(Opcode.AND, [i, Imm(1)])
    b.br("eq", bit, Imm(0), "even")

    b.at(odd)
    t = b.mul(i, Imm(3))
    b.add(s, t, dest=s)
    b.jump("latch")

    b.at(even)
    b.sub(s, i, dest=s)

    b.at(latch)
    b.add(i, Imm(1), dest=i)
    b.br("lt", i, Imm(n), "head")

    b.at(done)
    b.ret(s)
    return module


def expected_diamond(n=10):
    s = 0
    for i in range(n):
        if i & 1:
            s += 3 * i
        else:
            s -= i
    return s


def build_loop_with_side_exit(n=20, stop=7):
    """s=0; for i<n: if a[i]==stop break; s+=i  -- with a[i]=i"""
    module = Module()
    module.add_global("a", 32, list(range(32)))
    func = Function("main")
    module.add_function(func)
    b = IRBuilder(func)
    from repro.ir import GlobalRef

    entry = func.add_block("entry")
    head = func.add_block("head")
    cont = func.add_block("cont")
    done = func.add_block("done")

    b.at(entry)
    s = b.movi(0)
    i = b.movi(0)
    base = b.mov(GlobalRef("a"))

    b.at(head)
    addr = b.add(base, i)
    v = b.load(addr, 0)
    b.br("eq", v, Imm(stop), "done")

    b.at(cont)
    b.add(s, i, dest=s)
    b.add(i, Imm(1), dest=i)
    b.br("lt", i, Imm(n), "head")

    b.at(done)
    b.ret(s)
    return module


class TestLoopIfConversion:
    def test_diamond_loop_becomes_simple(self):
        module = build_loop_with_diamond()
        func = module.function("main")
        stats = form_loop_hyperblocks(func)
        assert stats.loops_converted == 1
        verify_module(module)
        loops = find_loops(func)
        assert len(loops) == 1
        assert is_simple_loop(func, loops[0])
        assert func.block(loops[0].header).hyperblock

    def test_diamond_loop_semantics(self):
        for n in (1, 2, 9, 10):
            module = build_loop_with_diamond(n)
            expected = run_module(module).value
            assert expected == expected_diamond(n)
            form_loop_hyperblocks(module.function("main"))
            assert run_module(module).value == expected

    def test_side_exit_loop_semantics(self):
        module = build_loop_with_side_exit()
        expected = run_module(module).value
        assert expected == sum(range(7))
        func = module.function("main")
        stats = form_loop_hyperblocks(func)
        assert stats.loops_converted == 1
        verify_module(module)
        assert run_module(module).value == expected
        loop = find_loops(func)[0]
        assert is_simple_loop(func, loop)

    def test_side_exit_not_taken(self):
        module = build_loop_with_side_exit(n=5, stop=99)
        expected = run_module(module).value
        form_loop_hyperblocks(module.function("main"))
        assert run_module(module).value == expected == sum(range(5))

    def test_nested_loop_rejected_until_inner_handled(self):
        from tests.helpers import build_nested_loop

        module = build_nested_loop()
        func = module.function("main")
        stats = form_loop_hyperblocks(func)
        # the inner loop is already simple (single block); the outer loop
        # contains it and must be rejected
        assert stats.loops_converted == 0
        assert any("inner loop" in r for r in stats.rejected.values())

    def test_call_in_body_rejected(self):
        module = build_loop_with_diamond()
        func = module.function("main")
        helper = Function("helper")
        module.add_function(helper)
        hb = IRBuilder(helper, helper.add_block("entry"))
        hb.ret(Imm(0))
        # plant a call inside the loop
        odd = func.block("odd")
        b = IRBuilder(func, odd)
        odd.insert(0, b.emit_op(Opcode.CALL, [], [], callee="helper"))
        odd.ops.pop()  # emit_op appended; we want it at 0 only
        stats = form_loop_hyperblocks(func)
        assert stats.loops_converted == 0
        assert "call" in list(stats.rejected.values())[0]

    def test_region_size_cap(self):
        module = build_loop_with_diamond()
        func = module.function("main")
        stats = form_loop_hyperblocks(func, max_region_ops=3)
        assert stats.loops_converted == 0
        assert "too large" in list(stats.rejected.values())[0]


class TestRegionChecks:
    def test_side_entry_rejected(self):
        module = build_loop_with_diamond()
        func = module.function("main")
        # entry block jumps straight into 'odd', bypassing the header
        b = IRBuilder(func, func.block("entry"))
        b.br("eq", ireg(0), Imm(0), "odd")
        cfg = CFGView(func)
        body = {"head", "odd", "even", "latch"}
        reason = check_region_convertible(func, "head", body, cfg)
        assert reason is not None and "side entry" in reason

    def test_preguarded_op_rejected(self):
        module = build_loop_with_diamond()
        func = module.function("main")
        p = func.new_pred()
        func.block("odd").ops[0].guard = p
        cfg = CFGView(func)
        loop = find_loops(func, cfg)[0]
        reason = check_region_convertible(func, loop.header, loop.body, cfg)
        assert reason is not None and "guarded" in reason

    def test_convert_raises_on_bad_region(self):
        module = build_loop_with_diamond()
        func = module.function("main")
        cfg = CFGView(func)
        with pytest.raises(IfConversionError):
            if_convert_region(func, "head", {"head", "entry"}, cfg)


class TestPredicateStructure:
    def test_join_uses_or_type(self):
        # A diamond whose join block has two in-edges -> or-type predicate
        module = build_loop_with_diamond()
        func = module.function("main")
        form_loop_hyperblocks(func)
        hyper = next(blk for blk in func.blocks if blk.hyperblock)
        defines = [op for op in hyper.ops if op.opcode == Opcode.PRED_DEF]
        assert defines, "if-conversion must create predicate defines"
        types = {pt for op in defines for pt in op.attrs["ptypes"]}
        assert types & {"ut", "uf"}
        # 'latch' has two in-edges (odd, even) -> needs or-type contributions
        assert types & {"ot", "of"}
        inits = [op for op in hyper.ops if op.opcode == Opcode.PRED_SET]
        assert inits, "or-type predicates must be cleared at block top"

    def test_guard_counts(self):
        module = build_loop_with_diamond()
        func = module.function("main")
        stats = form_loop_hyperblocks(func)
        info = stats.converted[0]
        assert info.blocks_merged == 4
        assert info.guarded_ops > 0
        assert info.predicates_used >= 2


class TestHammockConversion:
    def test_plain_diamond_converted(self):
        from tests.helpers import build_if_diamond

        module = build_if_diamond()
        func = module.function("main")
        stats = form_hammock_hyperblocks(func)
        assert stats.loops_converted == 1
        verify_module(module)
        assert run_module(module, args=[5]).value == 6
        assert run_module(module, args=[15]).value == 14

    def test_loops_untouched_by_hammock_pass(self):
        module = build_loop_with_diamond()
        func = module.function("main")
        before = len(func.blocks)
        stats = form_hammock_hyperblocks(func)
        assert stats.loops_converted == 0
        assert len(func.blocks) == before
