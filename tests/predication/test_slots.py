"""Unit tests for slot-based predication allocation."""

from repro.ir import BasicBlock, Imm, Opcode, Operation, ireg, preg
from repro.predication.slots import allocate_slot_predication
from repro.sched.list_sched import schedule_block


def _pdef(dests, ptypes, src=0, guard=None):
    return Operation(Opcode.PRED_DEF, dests, [ireg(src), Imm(4)],
                     guard=guard, attrs={"cmp": "lt", "ptypes": ptypes})


def _guarded_add(dst, guard):
    return Operation(Opcode.ADD, [ireg(dst)], [ireg(0), Imm(1)], guard=guard)


class TestAllocation:
    def test_basic_routing(self):
        ops = [
            _pdef([preg(0), preg(1)], ["ut", "uf"]),
            _guarded_add(10, preg(0)),
            _guarded_add(11, preg(1)),
        ]
        block = BasicBlock("b", ops)
        sched = schedule_block(block)
        alloc = allocate_slot_predication(block, sched)
        assert alloc.ok
        assert alloc.sensitive_ops == 2
        # consumers marked sensitive, define annotated with routes
        assert ops[1].attrs.get("psens") is True
        route = ops[0].attrs["slot_route"]
        assert repr(preg(0)) in route and repr(preg(1)) in route

    def test_consumer_slots_recorded(self):
        ops = [
            _pdef([preg(0)], ["ut"]),
            _guarded_add(10, preg(0)),
            _guarded_add(11, preg(0)),
        ]
        block = BasicBlock("b", ops)
        sched = schedule_block(block)
        alloc = allocate_slot_predication(block, sched)
        slots = alloc.routes[preg(0)].consumer_slots
        for op in ops[1:]:
            assert sched.slot_of(op) in slots

    def test_replication_counted_for_wide_webs(self):
        # one predicate guarding many ops spread over >2 slots
        ops = [_pdef([preg(0)], ["ut"])]
        ops += [_guarded_add(10 + i, preg(0)) for i in range(8)]
        block = BasicBlock("b", ops)
        sched = schedule_block(block)
        alloc = allocate_slot_predication(block, sched)
        used_slots = alloc.routes[preg(0)].consumer_slots
        if len(used_slots) > 2:
            assert alloc.replications_needed >= 1

    def test_disjoint_intervals_share_slot(self):
        ops = [
            _pdef([preg(0)], ["ut"]),
            _guarded_add(10, preg(0)),
            _pdef([preg(1)], ["ut"], src=10),
            _guarded_add(11, preg(1)),
        ]
        block = BasicBlock("b", ops)
        sched = schedule_block(block)
        alloc = allocate_slot_predication(block, sched)
        # the dependence chain serializes the two webs: no conflicts even
        # if both consumers land in the same slot
        assert alloc.ok

    def test_or_type_simultaneous_writers_allowed(self):
        # two or-type contributions may write the same slot concurrently
        init = Operation(Opcode.PRED_SET, [preg(0)], [Imm(0)])
        d1 = _pdef([preg(0)], ["ot"], src=1)
        d2 = _pdef([preg(0)], ["ot"], src=2)
        use = _guarded_add(10, preg(0))
        block = BasicBlock("b", [init, d1, d2, use])
        sched = schedule_block(block)
        alloc = allocate_slot_predication(block, sched)
        races = [r for r in alloc.write_races]
        # races only legal if the simultaneous writers are or-type on the
        # same predicate; pred_set is serialized by dependences anyway
        same_cycle = sched.cycle_of(d1) == sched.cycle_of(d2)
        if same_cycle:
            assert not races

    def test_sensitivity_fraction(self):
        ops = [
            _pdef([preg(0)], ["ut"]),
            _guarded_add(10, preg(0)),
            Operation(Opcode.ADD, [ireg(11)], [ireg(1), Imm(2)]),
        ]
        block = BasicBlock("b", ops)
        sched = schedule_block(block)
        alloc = allocate_slot_predication(block, sched)
        assert alloc.sensitive_ops == 1
        assert alloc.total_ops == 3

    def test_modulo_schedule_interface(self):
        from repro.sched.modulo import modulo_schedule

        ops = [
            _pdef([preg(0)], ["ut"]),
            _guarded_add(10, preg(0)),
            Operation(Opcode.BR_CLOOP, [], [],
                      attrs={"target": "b", "lc": "l0"}),
        ]
        block = BasicBlock("b", ops)
        sched = modulo_schedule(block)
        alloc = allocate_slot_predication(block, sched)
        assert alloc.sensitive_ops == 1
        assert preg(0) in alloc.routes
