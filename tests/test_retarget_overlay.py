"""Capacity-differential harness: overlay vs. legacy ``with_buffer``.

The zero-copy overlay retarget (:mod:`repro.loopbuffer.overlay`) must be
observationally indistinguishable from the historical whole-module
deep-copy it replaced.  This suite proves it three ways:

* **artifact-identical** — for every benchmark × pipeline pair, the
  assignment table, every ``rec`` site, the canonical schedules and the
  lint verdicts agree at small/headline/huge capacities (and across the
  whole Figure 7 grid under ``-m slow``);
* **run-identical** — pickled :class:`~repro.runner.summary.RunSummary`
  bytes and per-loop buffer counters agree on real simulations, for the
  benchmarks and for every fuzz-corpus reproducer;
* **order-independent** — a hypothesis property sweeps random capacity
  subsets in random order through one shared base and checks each
  retarget against a fresh single-capacity reference, with the base
  module's pickle bytes unchanged throughout.

Plus the overlay-specific contracts: ``capacity=None`` is a pure view,
re-targeting an already-buffered artifact raises
:class:`~repro.loopbuffer.overlay.RetargetError`, and the fast engine's
shared decode store actually shares block decodes across a sweep.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings

from repro.analysis.lint import lint_compiled
from repro.bench import all_benchmarks, benchmark_names
from repro.loopbuffer.overlay import (
    ENV_RETARGET,
    RETARGET_MODES,
    RetargetError,
    retarget_choice,
)
from repro.obs.perf.benches import _canonical_retarget
from repro.pipeline import (
    compile_aggressive,
    compile_traditional,
    run_compiled,
    with_buffer,
)
from repro.runner.parallel import run_cell

from tests.conftest import nightly_examples
from tests.strategies import capacity_sweeps

PIPELINES = ("traditional", "aggressive")
PAIRS = [(name, pipeline)
         for name in benchmark_names() for pipeline in PIPELINES]
#: the tier-1 capacity subgrid: nothing fits / headline / everything fits
TIER1_CAPACITIES = (16, 256, 2048)
#: the full Figure 7 sweep (kept in sync with experiments.common)
FIG7_SIZES = (16, 32, 64, 128, 256, 512, 1024, 2048)

_COMPILERS = {"traditional": compile_traditional,
              "aggressive": compile_aggressive}

#: compiled unbuffered bases, one per (benchmark, pipeline) — built on
#: demand and shared by every test in this module
_BASES: dict[tuple[str, str], object] = {}


def base_for(name: str, pipeline: str):
    key = (name, pipeline)
    if key not in _BASES:
        bench = {b.name: b for b in all_benchmarks()}[name]
        _BASES[key] = _COMPILERS[pipeline](
            bench.build(), entry=bench.entry, args=bench.args,
            buffer_capacity=None)
    return _BASES[key]


def _lint_verdicts(compiled) -> tuple[str, ...]:
    return tuple(sorted(d.format() for d in lint_compiled(compiled)))


def _loop_table(compiled) -> tuple:
    """Per-loop fetch counters plus buffer-model stats, canonicalized."""
    outcome = run_compiled(compiled, engine="fast")
    buffer_stats = (outcome.buffer.stats.as_tuple()
                    if outcome.buffer is not None else None)
    return (outcome.counters.loop_table(), buffer_stats)


# ---------------------------------------------------------------------------
# artifact-identical: every benchmark × pipeline pair


@pytest.mark.parametrize("name,pipeline", PAIRS,
                         ids=[f"{n}-{p}" for n, p in PAIRS])
def test_artifacts_byte_identical(name, pipeline):
    base = base_for(name, pipeline)
    base_bytes = pickle.dumps(base.module)
    for capacity in TIER1_CAPACITIES:
        legacy = with_buffer(base, capacity, retarget="legacy")
        overlay = with_buffer(base, capacity, retarget="overlay")
        assert _canonical_retarget(overlay) == _canonical_retarget(legacy), \
            f"{name}/{pipeline}@{capacity}: retarget artifacts diverge"
        assert overlay.buffer_capacity == legacy.buffer_capacity == capacity
    # lint verdicts agree at the headline capacity
    assert (_lint_verdicts(with_buffer(base, 256, retarget="overlay"))
            == _lint_verdicts(with_buffer(base, 256, retarget="legacy")))
    # the shared base was never mutated by any of the retargets
    assert pickle.dumps(base.module) == base_bytes


# ---------------------------------------------------------------------------
# run-identical: summaries and per-loop counters on real simulations


SIM_SUBSET = (("adpcm_enc", "traditional"), ("adpcm_enc", "aggressive"),
              ("g724_dec", "aggressive"), ("mpeg2_dec", "traditional"))


@pytest.mark.parametrize("name,pipeline", SIM_SUBSET,
                         ids=[f"{n}-{p}" for n, p in SIM_SUBSET])
def test_run_summaries_byte_identical(name, pipeline):
    base = base_for(name, pipeline)
    for capacity in (16, 256):
        legacy, overlay = (
            run_cell(name, pipeline, capacity, base=base, retarget=mode)
            for mode in ("legacy", "overlay"))
        assert pickle.dumps(overlay) == pickle.dumps(legacy), \
            f"{name}/{pipeline}@{capacity}: run summaries diverge"


def test_per_loop_counters_identical():
    base = base_for("adpcm_enc", "traditional")
    for capacity in TIER1_CAPACITIES:
        legacy = _loop_table(with_buffer(base, capacity, retarget="legacy"))
        overlay = _loop_table(with_buffer(base, capacity, retarget="overlay"))
        assert overlay == legacy


@pytest.mark.slow
@pytest.mark.parametrize("name,pipeline", PAIRS,
                         ids=[f"{n}-{p}" for n, p in PAIRS])
def test_full_grid_differential(name, pipeline):
    """The complete Figure 7 sweep, byte-identical per cell (nightly)."""
    base = base_for(name, pipeline)
    for capacity in FIG7_SIZES:
        legacy = run_cell(name, pipeline, capacity, base=base,
                          retarget="legacy")
        overlay = run_cell(name, pipeline, capacity, base=base,
                           retarget="overlay")
        assert pickle.dumps(overlay) == pickle.dumps(legacy), \
            f"{name}/{pipeline}@{capacity}: run summaries diverge"
        lt_legacy = _loop_table(with_buffer(base, capacity,
                                            retarget="legacy"))
        lt_overlay = _loop_table(with_buffer(base, capacity,
                                             retarget="overlay"))
        assert lt_overlay == lt_legacy


# ---------------------------------------------------------------------------
# fuzz corpus: every checked-in reproducer, both pipelines


def _corpus_sources():
    from repro.fuzz.corpus import default_corpus

    return [(entry.id, entry.source) for entry in default_corpus().entries()]


@pytest.mark.parametrize("entry_id,source",
                         _corpus_sources() or [("empty", None)],
                         ids=lambda v: v if isinstance(v, str) else "src")
def test_corpus_differential(entry_id, source):
    if source is None:
        pytest.skip("no corpus entries")
    from repro.frontend import compile_source
    from repro.sim.interp import SimError

    for pipeline, compiler in _COMPILERS.items():
        try:
            base = compiler(compile_source(source), buffer_capacity=None)
        except SimError:
            continue  # reproducer traps at compile-time profiling
        for capacity in (16, 64):
            legacy = with_buffer(base, capacity, retarget="legacy")
            overlay = with_buffer(base, capacity, retarget="overlay")
            assert (_canonical_retarget(overlay)
                    == _canonical_retarget(legacy)), \
                f"{entry_id}/{pipeline}@{capacity}: artifacts diverge"
            try:
                expected = run_compiled(legacy).result.value
            except SimError:
                with pytest.raises(SimError):
                    run_compiled(overlay)
                continue
            outcome = run_compiled(overlay)
            assert outcome.result.value == expected


# ---------------------------------------------------------------------------
# order independence (hypothesis)


_PROPERTY_STATE: dict[str, object] = {}


def _property_base():
    if not _PROPERTY_STATE:
        from tests.helpers import build_nested_loop

        base = compile_traditional(build_nested_loop(12, 12),
                                   buffer_capacity=None)
        _PROPERTY_STATE["base"] = base
        _PROPERTY_STATE["bytes"] = pickle.dumps(base.module)
        _PROPERTY_STATE["reference"] = {}
    return _PROPERTY_STATE


@given(caps=capacity_sweeps())
@settings(max_examples=nightly_examples(25))
def test_overlay_sweep_order_independent(caps):
    state = _property_base()
    base = state["base"]
    reference: dict = state["reference"]
    for capacity in caps:
        if capacity not in reference:
            reference[capacity] = _canonical_retarget(
                with_buffer(base, capacity, retarget="legacy"))
        overlay = with_buffer(base, capacity, retarget="overlay")
        assert _canonical_retarget(overlay) == reference[capacity]
    # no retarget order may ever write through to the shared base
    assert pickle.dumps(base.module) == state["bytes"]


# ---------------------------------------------------------------------------
# overlay-specific contracts


def test_capacity_none_returns_view():
    base = base_for("adpcm_enc", "traditional")
    view = with_buffer(base, None, retarget="overlay")
    assert view.module is base.module
    assert view.assignment is None
    assert view.overlay is not None
    assert view.overlay.materialized == ()
    # capacity=0 is falsy: also a pure view
    assert with_buffer(base, 0, retarget="overlay").module is base.module


def test_overlay_materializes_only_recd_preheaders():
    base = base_for("mpeg2_dec", "traditional")
    compiled = with_buffer(base, 256, retarget="overlay")
    assert compiled.overlay is not None
    materialized = set(compiled.overlay.materialized)
    assert materialized, "expected at least one rec'd preheader at 256"
    for fname, func in compiled.module.functions.items():
        base_func = base.module.function(fname)
        for block, base_block in zip(func.blocks, base_func.blocks):
            if (fname, block.label) in materialized:
                assert block is not base_block
            else:
                assert block is base_block


def test_retarget_already_buffered_raises():
    base = base_for("adpcm_enc", "traditional")
    buffered = with_buffer(base, 64)
    with pytest.raises(RetargetError):
        with_buffer(buffered, 128)
    bench = {b.name: b for b in all_benchmarks()}["adpcm_enc"]
    direct = compile_traditional(bench.build(), entry=bench.entry,
                                 args=bench.args, buffer_capacity=64)
    with pytest.raises(RetargetError):
        with_buffer(direct, 128)


def test_retarget_choice_resolution(monkeypatch):
    monkeypatch.delenv(ENV_RETARGET, raising=False)
    assert retarget_choice() == "overlay"
    assert retarget_choice("legacy") == "legacy"
    monkeypatch.setenv(ENV_RETARGET, "legacy")
    assert retarget_choice() == "legacy"
    assert retarget_choice("overlay") == "overlay"
    with pytest.raises(ValueError):
        retarget_choice("deepcopy")
    monkeypatch.setenv(ENV_RETARGET, "bogus")
    with pytest.raises(ValueError):
        retarget_choice()


def test_legacy_env_selects_deepcopy_path(monkeypatch):
    monkeypatch.setenv(ENV_RETARGET, "legacy")
    base = base_for("adpcm_enc", "traditional")
    compiled = with_buffer(base, 256)
    assert compiled.overlay is None
    assert compiled.module is not base.module


def test_shared_decode_across_capacity_sweep():
    from repro.sim.engine import SHARED_DECODE_STATS, reset_shared_decode

    base = base_for("adpcm_enc", "traditional")
    reset_shared_decode()
    SHARED_DECODE_STATS.reset()
    values = set()
    for capacity in (16, 64, 256):
        compiled = with_buffer(base, capacity, retarget="overlay")
        values.add(run_compiled(compiled, engine="fast").result.value)
    assert len(values) == 1, "capacity must never change the checksum"
    stats = SHARED_DECODE_STATS.snapshot()
    assert stats["block_hits"] > 0, \
        "overlay sweep never reused a shared block decode"


# ---------------------------------------------------------------------------
# observability wiring


def test_sweep_benches_registered():
    from repro.obs.perf import harness
    from repro.obs.perf.benches import DEFAULT_SUITE, ensure_registered

    ensure_registered()
    assert "sweep.speedup" in DEFAULT_SUITE
    for name in ("sweep.legacy", "sweep.overlay", "sweep.speedup"):
        assert name in harness._REGISTRY
    assert set(RETARGET_MODES) == {"overlay", "legacy"}
