"""The paper's slot-based predication scheme, end to end on one kernel.

Builds a loop with control flow, if-converts it, list-schedules it onto
the 8-wide VLIW, allocates slot standing-predicates (Section 4.2), and
verifies that executing the scheduled code under the Figure 4 hardware
harness produces the same architectural state as classic register
predication.

Run: ``python examples/slot_predication.py``
"""

from repro.frontend import compile_source
from repro.opt.simplify_cfg import simplify_cfg
from repro.predication.hyperblock import form_loop_hyperblocks
from repro.predication.slots import allocate_slot_predication
from repro.sched.list_sched import schedule_block
from repro.sim.slotpred import (
    run_register_model,
    run_slot_model,
    states_equivalent,
)

SOURCE = """
int data[16] = {3, -1, 4, -1, 5, -9, 2, 6, -5, 3, 5, -8, 9, -7, 9, 3};
int out[16];

int main() {
    int s = 0;
    for (int i = 0; i < 16; i++) {
        int v = data[i];
        if (v < 0) v = -v;
        out[i] = v;
        s += v;
    }
    return s;
}
"""


def main() -> None:
    module = compile_source(SOURCE, name="slotdemo")
    func = module.function("main")
    simplify_cfg(func)
    stats = form_loop_hyperblocks(func)
    print(f"if-converted {stats.loops_converted} loop(s)")
    hyper = next(blk for blk in func.blocks if blk.hyperblock)

    # strip control ops: the harness models one straight-line kernel body
    body = [op for op in hyper.ops if not op.is_branch]
    from repro.ir import BasicBlock

    kernel = BasicBlock("kernel", body)
    schedule = schedule_block(kernel)
    print(f"\nscheduled kernel: {schedule.length} cycles, "
          f"{schedule.op_count} ops")
    print(schedule.dump())

    alloc = allocate_slot_predication(kernel, schedule)
    print(f"\nslot predication: {alloc.sensitive_ops}/{alloc.total_ops} ops "
          f"predicate-sensitive, conflicts={len(alloc.conflicts)}, "
          f"write races={len(alloc.write_races)}, "
          f"extra defines needed={alloc.extra_defines}")
    for reg, route in alloc.routes.items():
        print(f"  {reg}: consumers in slots {sorted(route.consumer_slots)}")

    if alloc.ok:
        demo_kernel, demo_schedule = kernel, schedule
        print("\nallocation is conflict-free; verifying on the kernel itself")
    else:
        # the list scheduler placed complementary predicates' consumers in
        # one slot — exactly the co-scheduling hazard Section 4.2 says the
        # compiler must avoid.  Demonstrate the harness on a kernel whose
        # consumers land in distinct slots.
        print("\nallocation has slot conflicts (the Section 4.2 hazard the "
              "compiler must schedule around); demonstrating the harness "
              "on a conflict-free kernel instead:")
        demo_kernel, demo_schedule = _conflict_free_kernel()
        alloc2 = allocate_slot_predication(demo_kernel, demo_schedule)
        assert alloc2.ok

    regs = {}
    for op in demo_kernel.ops:
        for src in op.reads():
            regs.setdefault(src, 7 if not src.is_predicate else 0)
    mem = {100 + i: (i * 13) % 17 - 8 for i in range(16)}
    reference = run_register_model(demo_kernel, regs, mem)
    slots = run_slot_model(demo_kernel, demo_schedule, regs, mem)
    print("slot harness matches register predication:",
          states_equivalent(reference, slots))


def _conflict_free_kernel():
    """A hand-scheduled predicated kernel whose webs map cleanly to slots."""
    from repro.ir import BasicBlock, Imm, Opcode, Operation, ireg, preg
    from repro.sched.bundle import Schedule

    pd = Operation(Opcode.PRED_DEF, [preg(0), preg(1)], [ireg(0), Imm(0)],
                   attrs={"cmp": "lt", "ptypes": ["ut", "uf"]})
    neg = Operation(Opcode.NEG, [ireg(1)], [ireg(0)], guard=preg(0))
    keep = Operation(Opcode.MOV, [ireg(1)], [ireg(0)], guard=preg(1))
    add = Operation(Opcode.ADD, [ireg(2)], [ireg(1), Imm(100)])
    kernel = BasicBlock("demo", [pd, neg, keep, add])
    schedule = Schedule()
    schedule.place(pd, 0, 0)
    schedule.place(neg, 1, 2)   # p0's consumer in slot 2
    schedule.place(keep, 1, 3)  # p1's consumer in slot 3
    schedule.place(add, 2, 0)
    return kernel, schedule


if __name__ == "__main__":
    main()
