"""Regenerate every table and figure of the paper's evaluation.

Run: ``python examples/reproduce_paper.py [--quick] [--workers N]
[--no-cache] [--cache-dir DIR]``

``--quick`` restricts Figure 7 to four buffer sizes and Figure 3 to four
benchmarks; the full run sweeps 16..2048 over the whole Table 1 suite.
Cells execute through :mod:`repro.runner`: compile/simulate artifacts are
cached on disk (so a re-run is nearly instant) and the Figure 7/8 grids
fan out over a process pool when ``--workers`` (or ``REPRO_WORKERS``)
allows.
"""

import argparse
import os

from repro.bench import benchmark_names
from repro.experiments import common, fig3, fig5, fig7, fig8
from repro.runner.cache import default_cache


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool width for the grid sweeps "
                             "(default: REPRO_WORKERS or the core count)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the on-disk artifact cache")
    parser.add_argument("--cache-dir", default=None,
                        help="artifact cache directory (default: "
                             "REPRO_CACHE_DIR or .repro_cache)")
    parser.add_argument("--checked", action="store_true",
                        help="run the semantic sanitizer after every "
                             "compiler pass (also: REPRO_CHECKED=1)")
    args = parser.parse_args()
    if args.checked:
        os.environ["REPRO_CHECKED"] = "1"

    common.reset(default_cache(args.cache_dir, enabled=not args.no_cache))
    names = benchmark_names()
    sizes = (16, 64, 256, 1024) if args.quick else (16, 32, 64, 128, 256,
                                                    512, 1024, 2048)
    fig3_names = names[:4] if args.quick else names

    print("=" * 72)
    print("Table 2 / Table 3: verified exhaustively by the unit-test suite")
    print("  (tests/ir/test_preddef.py, tests/loopbuffer/test_model.py)")

    print("\n" + "=" * 72)
    print(fig3.report(fig3.run(fig3_names)))

    print("\n" + "=" * 72)
    print(fig5.report(fig5.run((16, 32, 64, 256))))

    print("\n" + "=" * 72)
    print(fig7.report(fig7.run(names, sizes, workers=args.workers)))

    print("\n" + "=" * 72)
    print(fig8.report(fig8.run(names, workers=args.workers)))

    metrics = common.runner_metrics()
    metrics.finish()
    print("\n" + "=" * 72)
    print(f"runner: {len(metrics.cells)} cells, cache "
          f"{metrics.cache.hits} hits / {metrics.cache.misses} misses "
          f"({metrics.run_cache_hits} whole-cell hits)")


if __name__ == "__main__":
    main()
