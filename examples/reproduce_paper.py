"""Regenerate every table and figure of the paper's evaluation.

Run: ``python examples/reproduce_paper.py [--quick]``

``--quick`` restricts Figure 7 to four buffer sizes and Figure 3 to four
benchmarks; the full run sweeps 16..2048 over the whole Table 1 suite and
takes several minutes of pure-Python simulation.
"""

import sys

from repro.bench import benchmark_names
from repro.experiments import fig3, fig5, fig7, fig8


def main() -> None:
    quick = "--quick" in sys.argv
    names = benchmark_names()
    sizes = (16, 64, 256, 1024) if quick else (16, 32, 64, 128, 256, 512,
                                               1024, 2048)
    fig3_names = names[:4] if quick else names

    print("=" * 72)
    print("Table 2 / Table 3: verified exhaustively by the unit-test suite")
    print("  (tests/ir/test_preddef.py, tests/loopbuffer/test_model.py)")

    print("\n" + "=" * 72)
    print(fig3.report(fig3.run(fig3_names)))

    print("\n" + "=" * 72)
    print(fig5.report(fig5.run((16, 32, 64, 256))))

    print("\n" + "=" * 72)
    print(fig7.report(fig7.run(names, sizes)))

    print("\n" + "=" * 72)
    print(fig8.report(fig8.run(names)))


if __name__ == "__main__":
    main()
