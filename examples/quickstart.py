"""Quickstart: compile an MKC program both ways and compare buffering.

Run: ``python examples/quickstart.py``
"""

from repro.frontend import compile_source
from repro.pipeline import compile_aggressive, compile_traditional, run_compiled

# A media-style kernel: a loop whose body contains control flow.  Without
# if-conversion the loop cannot enter the loop buffer; with it, nearly all
# fetch comes from the buffer.
SOURCE = """
int samples[256];

int main() {
    int energy = 0;
    for (int i = 0; i < 256; i++)
        samples[i] = ((i * 37) % 128) - 64;
    for (int i = 0; i < 256; i++) {
        int v = samples[i];
        if (v < 0) v = -v;               // abs via control flow
        if (v > 48) energy += v * 2;     // loud samples count double
        else energy += v;
    }
    return energy;
}
"""


def main() -> None:
    module = compile_source(SOURCE, name="quickstart")

    for label, compile_fn in (("traditional", compile_traditional),
                              ("aggressive", compile_aggressive)):
        compiled = compile_fn(module, buffer_capacity=256)
        outcome = run_compiled(compiled)
        counters = outcome.counters
        print(f"{label:12s}  result={outcome.result.value}  "
              f"cycles={counters.cycles:6d}  "
              f"buffer issue={counters.buffer_issue_fraction:6.1%}  "
              f"fetch energy={outcome.energy.total:10.0f}")

    print("\nThe aggressive pipeline if-converts the loop body (abs and the "
          "threshold test become predicated ops), making the loop a simple "
          "loop the 256-op buffer can hold.")


if __name__ == "__main__":
    main()
