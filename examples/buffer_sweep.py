"""Buffer-size sweep for one benchmark (a single Figure 7 row), with an
ASCII plot of buffer-issue fraction vs buffer size.

Run: ``python examples/buffer_sweep.py [benchmark-name]``
"""

import sys

from repro.bench import benchmark_names
from repro.experiments.common import FIG7_SIZES, run_at_capacity


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "g724_dec"
    if name not in benchmark_names():
        raise SystemExit(f"unknown benchmark {name!r}; "
                         f"choose from {benchmark_names()}")
    print(f"benchmark: {name}\n")
    print(f"{'size':>6s}  {'traditional':>12s}  {'aggressive':>11s}")
    series = {}
    for capacity in FIG7_SIZES:
        trad = run_at_capacity(name, "traditional", capacity)
        aggr = run_at_capacity(name, "aggressive", capacity)
        series[capacity] = (trad.buffer_fraction, aggr.buffer_fraction)
        print(f"{capacity:6d}  {trad.buffer_fraction:12.1%}  "
              f"{aggr.buffer_fraction:11.1%}")

    print("\naggressive pipeline, buffer issue vs size:")
    for capacity in FIG7_SIZES:
        bar = "#" * int(series[capacity][1] * 50)
        print(f"{capacity:6d} |{bar:<50s}| {series[capacity][1]:.1%}")


if __name__ == "__main__":
    main()
