"""Ablations of the design choices DESIGN.md calls out.

1. peeling on/off, 2. collapsing on/off, 3. buffer-assignment
overhead-aware tie-break, 4. predicate promotion's effect on the
sensitive-op fraction, 5. predicate-unit count.
"""

from repro.bench import benchmark
from repro.pipeline import compile_aggressive, run_compiled


def _run(name: str, **kw):
    bench = benchmark(name)
    compiled = compile_aggressive(bench.build(), buffer_capacity=256, **kw)
    outcome = run_compiled(compiled)
    assert outcome.result.value == bench.expected()
    return compiled, outcome


def test_bench_ablation_collapse(benchmark):
    def work():
        _, with_collapse = _run("mpeg2_dec", collapse=True)
        _, without = _run("mpeg2_dec", collapse=False)
        return with_collapse, without

    with_collapse, without = benchmark.pedantic(work, rounds=1, iterations=1)
    print(f"\ncollapse ablation (mpeg2_dec): buffer issue "
          f"{without.buffer_issue_fraction:.1%} -> "
          f"{with_collapse.buffer_issue_fraction:.1%}")
    # collapsing pulls outer-loop code into the buffer: issue must not drop
    assert (with_collapse.buffer_issue_fraction
            >= without.buffer_issue_fraction - 0.02)


def test_bench_ablation_peel(benchmark):
    def work():
        _, with_peel = _run("jpeg_dec", peel=True)
        _, without = _run("jpeg_dec", peel=False)
        return with_peel, without

    with_peel, without = benchmark.pedantic(work, rounds=1, iterations=1)
    print(f"\npeel ablation (jpeg_dec): buffer issue "
          f"{without.buffer_issue_fraction:.1%} -> "
          f"{with_peel.buffer_issue_fraction:.1%}")
    assert with_peel.buffer_issue_fraction > 0.5
    assert without.buffer_issue_fraction > 0.5


def test_bench_ablation_promotion(benchmark):
    from repro.predication.promotion import sensitivity_stats

    def work():
        with_promo, _ = _run("adpcm_enc", promote=True)
        without, _ = _run("adpcm_enc", promote=False)
        return with_promo, without

    with_promo, without = benchmark.pedantic(work, rounds=1, iterations=1)

    def fraction(compiled):
        guarded = total = 0
        for func in compiled.module.functions.values():
            g, t = sensitivity_stats(func)
            guarded += g
            total += t
        return guarded / total if total else 0.0

    promoted, unpromoted = fraction(with_promo), fraction(without)
    print(f"\npromotion ablation (adpcm_enc): sensitive-op fraction "
          f"{unpromoted:.1%} -> {promoted:.1%} (paper: promotion reduces "
          f"sensitivity to 21.5% dynamic)")
    assert promoted <= unpromoted


def test_bench_ablation_buffer_overhead_tiebreak(benchmark):
    """Figure 5(d)'s residency choice: overhead-aware vs pure-benefit."""
    from repro.pipeline import compile_aggressive, run_compiled, with_buffer

    def work():
        bench = __import__("repro.bench", fromlist=["benchmark"]).benchmark("g724_dec")
        base = compile_aggressive(bench.build(), buffer_capacity=None)
        results = {}
        for aware in (True, False):
            compiled = with_buffer(base, 64, overhead_aware=aware)
            outcome = run_compiled(compiled)
            assert outcome.result.value == bench.expected()
            results[aware] = outcome.buffer_issue_fraction
        return results

    results = benchmark.pedantic(work, rounds=1, iterations=1)
    print(f"\nbuffer tie-break ablation (g724_dec @64): "
          f"overhead-aware {results[True]:.1%}, greedy {results[False]:.1%}")
    assert results[True] >= results[False] - 0.05


def test_bench_ablation_predicate_units(benchmark):
    """Halving the predicate-generating units lengthens schedules of
    predicated kernels (Section 7.3's clustering concern)."""
    from repro.ir import Unit
    from repro.sched.machine import MachineDescription
    from repro.sched.list_sched import schedule_block
    from repro.predication.hyperblock import form_loop_hyperblocks
    from tests.predication.test_ifconvert import build_loop_with_diamond

    narrow = MachineDescription(slot_units=(
        frozenset({Unit.IALU, Unit.PRED}),
        frozenset({Unit.IALU}),
        frozenset({Unit.IALU, Unit.IMUL, Unit.FPU}),
        frozenset({Unit.IALU, Unit.IMUL, Unit.FPU}),
        frozenset({Unit.IALU, Unit.MEM}),
        frozenset({Unit.IALU, Unit.MEM}),
        frozenset({Unit.IALU, Unit.MEM}),
        frozenset({Unit.IALU, Unit.BRANCH}),
    ))

    def work():
        module = build_loop_with_diamond(100)
        func = module.function("main")
        form_loop_hyperblocks(func)
        hyper = next(blk for blk in func.blocks if blk.hyperblock)
        wide = schedule_block(hyper).length
        tight = schedule_block(hyper, machine=narrow).length
        return wide, tight

    wide, tight = benchmark.pedantic(work, rounds=1, iterations=1)
    print(f"\npredicate-unit ablation: schedule length {wide} (4 pred units)"
          f" vs {tight} (1 pred unit)")
    assert tight >= wide
