"""Table 2 — predicate-define semantics (exhaustive check + timing)."""

from repro.ir import PTYPES
from repro.ir.preddef import pred_update

# the paper's Table 2, transcribed
EXPECTED = {
    ("ut", 0, 0): 0, ("ut", 0, 1): 0, ("ut", 1, 0): 0, ("ut", 1, 1): 1,
    ("uf", 0, 0): 0, ("uf", 0, 1): 0, ("uf", 1, 0): 1, ("uf", 1, 1): 0,
    ("ot", 0, 0): None, ("ot", 0, 1): None, ("ot", 1, 0): None, ("ot", 1, 1): 1,
    ("of", 0, 0): None, ("of", 0, 1): None, ("of", 1, 0): 1, ("of", 1, 1): None,
    ("at", 0, 0): None, ("at", 0, 1): None, ("at", 1, 0): 0, ("at", 1, 1): None,
    ("af", 0, 0): None, ("af", 0, 1): None, ("af", 1, 0): None, ("af", 1, 1): 0,
    ("ct", 0, 0): None, ("ct", 0, 1): None, ("ct", 1, 0): 0, ("ct", 1, 1): 1,
    ("cf", 0, 0): None, ("cf", 0, 1): None, ("cf", 1, 0): 1, ("cf", 1, 1): 0,
}


def _evaluate_all():
    return {
        (ptype, guard, cond): pred_update(ptype, guard, cond)
        for ptype in PTYPES
        for guard in (0, 1)
        for cond in (0, 1)
    }


def test_bench_table2(benchmark):
    table = benchmark(_evaluate_all)
    assert table == EXPECTED
    print("\nTable 2 reproduced exactly:",
          f"{len(table)} (type, guard, cond) entries match the paper")
