"""Figure 3 — predication characteristics of the benchmark suite."""

from repro.experiments import fig3

from benchmarks.conftest import QUICK_NAMES


def test_bench_fig3(benchmark):
    result = benchmark.pedantic(
        fig3.run, args=(QUICK_NAMES,), rounds=1, iterations=1
    )
    print("\n" + fig3.report(result))

    # Figure 3(a) shape: consumer counts concentrate at the low end
    # (paper: 97% of predicates guard <= 3 ops; our promotion pass is more
    # conservative than IMPACT's, leaving heavier webs, so we assert the
    # weaker structural claim that most weight sits below ~8 consumers)
    cdf = result.consumers_dynamic
    few = max((v for k, v in cdf.items() if k <= 8), default=0.0)
    assert few >= 0.5

    # Figure 3(c) shape: a small number of predicates covers ~all dynamic
    # loop iterations (paper: 4 cover 99%; our collapsed/combined loops
    # keep a few more predicates live, so we bound loosely)
    assert 1 <= result.predicates_for_99pct <= 12

    # Section 4.3: after promotion only a minority of dynamic loop ops
    # remain predicate-sensitive (paper: 21.5%)
    assert result.sensitive_fraction_loops < 0.5

    # cumulative distributions are monotone and complete
    for dist in (result.consumers_dynamic, result.duration_dynamic,
                 result.overlap_dynamic):
        values = [dist[k] for k in sorted(dist)]
        assert all(b >= a for a, b in zip(values, values[1:]))
        assert abs(values[-1] - 1.0) < 1e-9
