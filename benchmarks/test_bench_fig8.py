"""Figure 8 — performance, code size, fetch count, and fetch power."""

from repro.bench import benchmark_names
from repro.experiments import fig8


def test_bench_fig8(benchmark):
    result = benchmark.pedantic(
        fig8.run, args=(benchmark_names(),), rounds=1, iterations=1
    )
    print("\n" + fig8.report(result))
    rows = {r.name: r for r in result.rows}

    # control-flow-dominated benchmarks speed up (the paper's headline
    # effect); adpcm is the canonical win
    assert rows["adpcm_enc"].speedup > 1.3
    assert rows["adpcm_dec"].speedup > 1.3
    assert rows["g724_dec"].speedup > 1.1

    # ILP transforms trade code size for speed: transformed code is not
    # smaller on the benchmarks that actually transformed
    assert rows["adpcm_enc"].code_size_ratio >= 1.0

    # Figure 8(b): buffering the transformed code saves much more fetch
    # power than buffering the baseline for the vast majority of the suite
    # (pgp is our outlier: heavy code expansion with low buffer capture)
    better = sum(
        1 for row in result.rows
        if row.power_transformed_buffered <= row.power_baseline_buffered + 0.02
    )
    assert better >= len(result.rows) - 2

    base_red, trans_red = result.average_power_reduction()
    assert trans_red > base_red
    assert trans_red > 0.5  # paper: 72.3%; we measure ~78%
