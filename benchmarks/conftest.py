"""Shared configuration for the figure-regeneration benchmark harness.

Each ``test_bench_*`` module regenerates one of the paper's tables or
figures (see DESIGN.md's per-experiment index), asserts the paper's
qualitative *shape*, prints the regenerated rows, and times a
representative unit of work under pytest-benchmark.

Run with::

    pytest benchmarks/ --benchmark-only -s

The harness executes through :mod:`repro.runner`, so compile/simulate
artifacts persist in the on-disk cache between invocations — a warm
re-run only re-times the (cheap) cache path.  Set ``REPRO_NO_CACHE=1``
to force every figure to recompute, or ``REPRO_CACHE_DIR`` to relocate
the cache away from the default ``.repro_cache``.
"""

import os
import sys
from pathlib import Path

import pytest

# allow `from benchmarks...` style helpers and keep tests/ helpers importable
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

#: reduced buffer-size sweep to keep the harness wall-clock reasonable;
#: examples/reproduce_paper.py runs the full Figure 7 sweep.
QUICK_SIZES = (16, 64, 256, 1024)

#: benchmark subset used where full-suite sweeps would be slow; chosen to
#: cover the paper's extremes (adpcm ~99%, mpeg2_enc worst, g724_dec the
#: Figure 5/6 case study).
QUICK_NAMES = ["adpcm_enc", "g724_dec", "mpeg2_enc", "pgp_enc"]


@pytest.fixture(scope="session", autouse=True)
def _runner_cache_report():
    """Report the runner's cache traffic once the harness finishes."""
    yield
    from repro.experiments.common import runner_metrics

    metrics = runner_metrics()
    if metrics.cells and os.environ.get("PYTEST_XDIST_WORKER") is None:
        metrics.finish()
        print(f"\n[repro.runner] {len(metrics.cells)} cells, cache "
              f"{metrics.cache.hits} hits / {metrics.cache.misses} misses "
              f"({metrics.run_cache_hits} whole-cell hits)")
