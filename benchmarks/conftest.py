"""Shared configuration for the figure-regeneration benchmark harness.

Each ``test_bench_*`` module regenerates one of the paper's tables or
figures (see DESIGN.md's per-experiment index), asserts the paper's
qualitative *shape*, prints the regenerated rows, and times a
representative unit of work under pytest-benchmark.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import sys
from pathlib import Path

# allow `from benchmarks...` style helpers and keep tests/ helpers importable
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

#: reduced buffer-size sweep to keep the harness wall-clock reasonable;
#: examples/reproduce_paper.py runs the full Figure 7 sweep.
QUICK_SIZES = (16, 64, 256, 1024)

#: benchmark subset used where full-suite sweeps would be slow; chosen to
#: cover the paper's extremes (adpcm ~99%, mpeg2_enc worst, g724_dec the
#: Figure 5/6 case study).
QUICK_NAMES = ["adpcm_enc", "g724_dec", "mpeg2_enc", "pgp_enc"]
