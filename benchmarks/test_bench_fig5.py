"""Figure 5 — g724_dec Post_Filter() loop buffer traces at 16/32/64 ops."""

from repro.experiments import fig5


def test_bench_fig5(benchmark):
    rows = benchmark.pedantic(
        fig5.run, args=((16, 32, 64, 256),), rounds=1, iterations=1
    )
    print("\n" + fig5.report(rows))
    by_size = {row.capacity: row for row in rows}

    # the paper's shape: a 16-op buffer captures almost nothing of the
    # post filter (1.23%), 32 barely helps (6.32%), 64 captures ~all
    # (98.22%); we assert the ordering and the 64-op jump
    assert by_size[16].postfilter_fraction < by_size[64].postfilter_fraction
    assert by_size[32].postfilter_fraction < by_size[64].postfilter_fraction
    assert by_size[64].postfilter_fraction > 0.5
    assert by_size[16].postfilter_fraction < 0.5

    # monotone non-decreasing whole-benchmark issue with buffer size
    fracs = [by_size[s].whole_fraction for s in (16, 32, 64, 256)]
    assert all(b >= a - 1e-9 for a, b in zip(fracs, fracs[1:]))
