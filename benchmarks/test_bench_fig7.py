"""Figure 7 — % instruction issue from the loop buffer vs buffer size."""

from repro.bench import benchmark_names
from repro.experiments import fig7

from benchmarks.conftest import QUICK_SIZES


def test_bench_fig7(benchmark):
    result = benchmark.pedantic(
        fig7.run, args=(benchmark_names(), QUICK_SIZES), rounds=1, iterations=1
    )
    print("\n" + fig7.report(result))

    # headline shape at 256 ops: transformation raises average buffer
    # issue substantially (paper: 38.7% -> 89.0% excl. mpeg2enc/jpegenc)
    exclude = ("mpeg2_enc", "jpeg_enc")
    trad = result.average_at("traditional", 256, exclude)
    aggr = result.average_at("aggressive", 256, exclude)
    assert aggr > trad
    assert aggr > 0.7

    # adpcm resolves to a single predicated loop: >99% from the buffer
    assert result.fraction_at("aggressive", "adpcm_enc", 256) > 0.99
    assert result.fraction_at("aggressive", "adpcm_dec", 256) > 0.99

    # monotone in buffer size for every series
    for pipeline in ("traditional", "aggressive"):
        for name, series in result.series[pipeline].items():
            assert all(b >= a - 1e-9 for a, b in zip(series, series[1:])), name

    # transformation never hurts bufferability at the headline size
    for name in benchmark_names():
        assert (result.fraction_at("aggressive", name, 256)
                >= result.fraction_at("traditional", name, 256) - 0.02), name
