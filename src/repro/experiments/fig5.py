"""Figure 5 — g724dec Post_Filter() buffer behaviour across buffer sizes.

The paper's case study: with a 16-op buffer almost nothing of
Post_Filter() issues from the buffer (1.23%), a 32-op buffer barely helps
(6.32%) because the loops displace each other, and a 64-op buffer captures
~98% — the shape we check, not the exact percentages (our Post_Filter body
differs from ETSI's).  Reported per size: whole-benchmark and
post-filter-only buffer issue fractions and the per-loop residency counts
(the "buffered iterations" columns of Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pipeline import run_compiled, with_buffer

from .common import compiled_base, experiment_args, format_table

SIZES = (16, 32, 64, 128, 256)


@dataclass
class Fig5Row:
    capacity: int
    whole_fraction: float
    postfilter_fraction: float
    loop_passes: dict[str, tuple[int, int]] = field(default_factory=dict)
    # label -> (buffered passes, total passes)


def _is_postfilter_block(func: str, label: str) -> bool:
    return "post_filter" in func or "post_filter" in label


def run(sizes: tuple[int, ...] = SIZES) -> list[Fig5Row]:
    base = compiled_base("g724_dec", "aggressive")
    rows = []
    for capacity in sizes:
        compiled = with_buffer(base, capacity)
        outcome = run_compiled(compiled)
        counters = outcome.counters
        pf_buf = pf_total = 0
        loop_passes: dict[str, tuple[int, int]] = {}
        for (func, label), stats in counters.per_block.items():
            if _is_postfilter_block(func, label):
                pf_buf += stats.ops_from_buffer
                pf_total += stats.ops_from_buffer + stats.ops_from_memory
            if stats.buffered_passes or stats.passes > 50:
                loop_passes[f"{func}/{label}"] = (
                    stats.buffered_passes, stats.passes
                )
        rows.append(Fig5Row(
            capacity=capacity,
            whole_fraction=counters.buffer_issue_fraction,
            postfilter_fraction=(pf_buf / pf_total) if pf_total else 0.0,
            loop_passes=loop_passes,
        ))
    return rows


def report(rows: list[Fig5Row]) -> str:
    table = [
        [row.capacity, row.whole_fraction, row.postfilter_fraction]
        for row in rows
    ]
    parts = [format_table(
        ["buffer (ops)", "benchmark buffer issue", "post-filter buffer issue"],
        table,
        "Figure 5: g724_dec buffer issue vs buffer size "
        "(paper at 16/32/64: 1.23% / 6.32% / 98.22% for Post_Filter)",
    )]
    last = rows[-1]
    loop_rows = [
        [label, f"{buf}/{total}"]
        for label, (buf, total) in sorted(last.loop_passes.items())
    ]
    parts.append(format_table(
        ["loop", "buffered/total passes"], loop_rows,
        f"per-loop residency at {last.capacity} ops "
        "(the Figure 5 'buffered iterations' columns)",
    ))
    return "\n\n".join(parts)


def main() -> None:  # pragma: no cover
    experiment_args(__doc__)
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
