"""Figure 8 — net effects of the buffering transformations.

(a) per benchmark, transformed-vs-traditional ratios: execution cycles
(speedup; paper average 1.81x), static code size (ILP transforms trade
size for speed), bundles issued, total operations fetched.

(b) estimated instruction-fetch power, normalized to *unbuffered*
traditionally-optimized execution: the paper reports -34.6% for merely
buffering the baseline and -72.3% for buffering the transformed code,
using the Cacti-calibrated 41.8x memory/buffer per-access energy ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench import benchmark_names
from repro.sim.power import FetchEnergy, unbuffered_baseline

from .common import (
    HEADLINE_CAPACITY,
    experiment_args,
    format_table,
    prewarm,
    run_at_capacity,
)


@dataclass
class Fig8Row:
    name: str
    speedup: float
    code_size_ratio: float
    bundle_ratio: float
    fetch_ratio: float
    power_baseline_buffered: float   # normalized fetch energy
    power_transformed_buffered: float


@dataclass
class Fig8Result:
    rows: list[Fig8Row] = field(default_factory=list)

    def average_speedup(self, exclude: tuple[str, ...] = ()) -> float:
        rows = [r for r in self.rows if r.name not in exclude]
        if not rows:
            return 0.0
        product = 1.0
        for r in rows:
            product *= r.speedup
        return product ** (1.0 / len(rows))

    def average_power_reduction(self) -> tuple[float, float]:
        """(baseline-buffered, transformed-buffered) mean reductions."""
        base = sum(r.power_baseline_buffered for r in self.rows) / len(self.rows)
        trans = sum(r.power_transformed_buffered for r in self.rows) / len(self.rows)
        return 1.0 - base, 1.0 - trans


def run(names: list[str] | None = None,
        capacity: int = HEADLINE_CAPACITY,
        workers: int | None = None,
        retarget: str | None = None) -> Fig8Result:
    names = names or benchmark_names()
    # the three cells per benchmark fan out through the runner first
    prewarm(names, ("traditional", "aggressive"), (capacity,),
            workers=workers, retarget=retarget)
    prewarm(names, ("traditional",), (None,), workers=workers,
            retarget=retarget)
    result = Fig8Result()
    for name in names:
        trad = run_at_capacity(name, "traditional", capacity,
                               retarget=retarget)
        aggr = run_at_capacity(name, "aggressive", capacity,
                               retarget=retarget)
        trad_unbuffered = run_at_capacity(name, "traditional", None,
                                          retarget=retarget)

        baseline_energy = unbuffered_baseline(trad_unbuffered.ops_issued)
        trad_energy = FetchEnergy(trad.ops_from_memory, trad.ops_from_buffer,
                                  capacity)
        aggr_energy = FetchEnergy(aggr.ops_from_memory, aggr.ops_from_buffer,
                                  capacity)
        result.rows.append(Fig8Row(
            name=name,
            speedup=trad.cycles / aggr.cycles if aggr.cycles else 0.0,
            code_size_ratio=(aggr.static_ops / trad.static_ops
                             if trad.static_ops else 0.0),
            bundle_ratio=(aggr.bundles / trad.bundles
                          if trad.bundles else 0.0),
            fetch_ratio=(aggr.ops_issued / trad.ops_issued
                         if trad.ops_issued else 0.0),
            power_baseline_buffered=trad_energy.normalized_to(baseline_energy),
            power_transformed_buffered=aggr_energy.normalized_to(baseline_energy),
        ))
    return result


def report(result: Fig8Result) -> str:
    rows_a = [
        [r.name, r.speedup, r.code_size_ratio, r.bundle_ratio, r.fetch_ratio]
        for r in result.rows
    ]
    parts = [format_table(
        ["benchmark", "speedup", "code size x", "bundles x", "total fetch x"],
        rows_a,
        "Figure 8(a): transformed vs traditional "
        "(paper: avg speedup 1.81, code size grows, fetch grows)",
    )]
    rows_b = [
        [r.name, r.power_baseline_buffered, r.power_transformed_buffered]
        for r in result.rows
    ]
    parts.append(format_table(
        ["benchmark", "baseline buffered", "transformed buffered"],
        rows_b,
        "Figure 8(b): fetch power normalized to unbuffered traditional "
        "(paper averages: 0.654 and 0.277)",
    ))
    base_red, trans_red = result.average_power_reduction()
    parts.append(
        f"mean fetch-power reduction: baseline buffered {base_red:.1%} "
        f"(paper 34.6%), transformed buffered {trans_red:.1%} (paper 72.3%)"
    )
    parts.append(
        f"geometric-mean speedup: {result.average_speedup():.2f}x "
        f"(paper arithmetic avg: 1.81x)"
    )
    return "\n\n".join(parts)


def main() -> None:  # pragma: no cover
    experiment_args(__doc__)
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
