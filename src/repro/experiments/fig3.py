"""Figure 3 — media application predication characteristics.

Three cumulative distributions over the aggressive-compiled benchmark
suite: (a) consumers per predicate define, (b) predicate live-range
duration, (c) simultaneously-live predicates per predicated loop (dynamic,
iteration-weighted), plus the Section 4.3 predicate-sensitivity fractions
(paper: 21.5% of dynamic ops in predicated loops are sensitive; 4
predicates cover 99% of dynamic loop iterations).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench import benchmark_names
from repro.ir.opcodes import Opcode
from repro.predication.stats import PredicationStats, collect_module_stats

from .common import compiled_base, experiment_args, format_table


@dataclass
class Fig3Result:
    stats: PredicationStats
    consumers_static: dict[int, float] = field(default_factory=dict)
    consumers_dynamic: dict[int, float] = field(default_factory=dict)
    duration_static: dict[int, float] = field(default_factory=dict)
    duration_dynamic: dict[int, float] = field(default_factory=dict)
    overlap_dynamic: dict[int, float] = field(default_factory=dict)
    predicates_for_99pct: int = 0
    sensitive_fraction_loops: float = 0.0
    predicated_loops: int = 0
    modulo_candidate_loops: int = 0


def run(names: list[str] | None = None) -> Fig3Result:
    names = names or benchmark_names()
    merged = PredicationStats()
    sensitive_ops = 0
    total_ops = 0
    candidates = 0
    for name in names:
        compiled = compiled_base(name, "aggressive")
        stats = collect_module_stats(compiled.module, compiled.profile)
        merged.defines.extend(stats.defines)
        merged.loops.extend(stats.loops)
        candidates += len(compiled.modulo)
        for func in compiled.module.functions.values():
            for block in func.blocks:
                term = block.terminator
                if term is None or term.target != block.label:
                    continue
                for op in block.ops:
                    if op.opcode == Opcode.NOP:
                        continue
                    weight = compiled.profile.op_count(func.name, op.uid)
                    total_ops += weight
                    if op.guard is not None:
                        sensitive_ops += weight

    result = Fig3Result(stats=merged)
    result.consumers_static = merged.consumers_cdf(dynamic=False)
    result.consumers_dynamic = merged.consumers_cdf(dynamic=True)
    result.duration_static = merged.duration_cdf(dynamic=False)
    result.duration_dynamic = merged.duration_cdf(dynamic=True)
    result.overlap_dynamic = merged.overlap_cdf(dynamic=True)
    result.predicates_for_99pct = merged.predicates_covering(0.99)
    result.sensitive_fraction_loops = (
        sensitive_ops / total_ops if total_ops else 0.0
    )
    result.predicated_loops = len([lp for lp in merged.loops if lp.max_live])
    result.modulo_candidate_loops = candidates
    return result


def report(result: Fig3Result) -> str:
    parts = []
    rows = [[k, v] for k, v in sorted(result.consumers_dynamic.items())]
    parts.append(format_table(
        ["consumers", "cum. fraction (dyn)"], rows,
        "Figure 3(a): consumers per predicate define"))
    rows = [[k, v] for k, v in sorted(result.duration_dynamic.items())][:12]
    parts.append(format_table(
        ["duration (ops)", "cum. fraction (dyn)"], rows,
        "Figure 3(b): predicate live-range duration"))
    rows = [[k, v] for k, v in sorted(result.overlap_dynamic.items())]
    parts.append(format_table(
        ["simultaneously live", "cum. fraction (dyn iters)"], rows,
        "Figure 3(c): live-range overlap by loop"))
    parts.append(
        f"predicates covering 99% of dynamic loop iterations: "
        f"{result.predicates_for_99pct} (paper: 4)"
    )
    parts.append(
        f"dynamic op fraction sensitive to predicates in loops: "
        f"{result.sensitive_fraction_loops:.1%} (paper: 21.5% in predicated "
        f"loops / 9.9% in bufferable loops)"
    )
    parts.append(
        f"predicated loops: {result.predicated_loops}; "
        f"modulo-scheduled loop candidates: {result.modulo_candidate_loops} "
        f"(paper: 122 of 564)"
    )
    return "\n\n".join(parts)


def main() -> None:  # pragma: no cover - CLI convenience
    experiment_args(__doc__)
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
