"""Figure 7 — percentage of instruction issue from the loop buffer.

(a) traditional optimization only, (b) with the hyperblock/loop
transformations, per benchmark, across buffer sizes.  The paper's headline
at 256 ops: 38.7% (traditional) vs 89.0% (transformed, excluding
mpeg2enc/jpegenc), a 137.5% relative increase; adpcm reaches ~99%,
mpeg2enc and jpegenc lag (deep low-trip-count nests / varying inner
counts), mpg123 needs very large buffers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench import benchmark_names

from .common import (
    FIG7_SIZES,
    HEADLINE_CAPACITY,
    experiment_args,
    format_table,
    prewarm,
    run_at_capacity,
)


@dataclass
class Fig7Result:
    sizes: tuple[int, ...]
    #: pipeline -> benchmark -> [fraction per size]
    series: dict[str, dict[str, list[float]]] = field(default_factory=dict)

    def fraction_at(self, pipeline: str, name: str, capacity: int) -> float:
        return self.series[pipeline][name][self.sizes.index(capacity)]

    def average_at(self, pipeline: str, capacity: int,
                   exclude: tuple[str, ...] = ()) -> float:
        values = [
            row[self.sizes.index(capacity)]
            for name, row in self.series[pipeline].items()
            if name not in exclude
        ]
        return sum(values) / len(values) if values else 0.0


def run(
    names: list[str] | None = None,
    sizes: tuple[int, ...] = FIG7_SIZES,
    pipelines: tuple[str, ...] = ("traditional", "aggressive"),
    workers: int | None = None,
    retarget: str | None = None,
) -> Fig7Result:
    names = names or benchmark_names()
    # fan the whole grid out through the disk-cached runner up front;
    # the per-cell lookups below then hit the in-process memo
    prewarm(names, pipelines, sizes, workers=workers, retarget=retarget)
    result = Fig7Result(sizes=tuple(sizes))
    for pipeline in pipelines:
        result.series[pipeline] = {}
        for name in names:
            fractions = [
                run_at_capacity(name, pipeline, capacity,
                                retarget=retarget).buffer_fraction
                for capacity in sizes
            ]
            result.series[pipeline][name] = fractions
    return result


def report(result: Fig7Result) -> str:
    parts = []
    for pipeline, title in (
        ("traditional", "Figure 7(a): traditional code optimization only"),
        ("aggressive", "Figure 7(b): with hyperblock transformations"),
    ):
        if pipeline not in result.series:
            continue
        headers = ["benchmark"] + [str(s) for s in result.sizes]
        rows = [
            [name] + [f"{v:.1%}" for v in fractions]
            for name, fractions in sorted(result.series[pipeline].items())
        ]
        parts.append(format_table(headers, rows, title))
    if {"traditional", "aggressive"} <= set(result.series) \
            and HEADLINE_CAPACITY in result.sizes:
        exclude = ("mpeg2_enc", "jpeg_enc")  # the paper's headline exclusions
        trad = result.average_at("traditional", HEADLINE_CAPACITY, exclude)
        aggr = result.average_at("aggressive", HEADLINE_CAPACITY, exclude)
        rel = (aggr - trad) / trad * 100 if trad else float("inf")
        parts.append(
            f"average buffer issue at {HEADLINE_CAPACITY} ops (excl. "
            f"mpeg2_enc/jpeg_enc): traditional {trad:.1%} vs transformed "
            f"{aggr:.1%} (+{rel:.0f}% relative; paper: 38.7% -> 89.0%, "
            f"+137.5%)"
        )
    return "\n\n".join(parts)


def main() -> None:  # pragma: no cover
    experiment_args(__doc__)
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
