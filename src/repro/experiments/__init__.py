"""Regeneration of every table and figure in the paper's evaluation.

- Table 2 (predicate-define semantics) is verified exhaustively by
  ``tests/ir/test_preddef.py``.
- Table 3 (buffer-op semantics) by ``tests/loopbuffer/test_model.py``.
- :mod:`repro.experiments.fig3` — predication characteristics.
- :mod:`repro.experiments.fig5` — g724_dec Post_Filter buffer traces.
- :mod:`repro.experiments.fig7` — buffer issue vs buffer size, both
  pipelines (headline 38.7% -> 89.0% at 256 ops).
- :mod:`repro.experiments.fig8` — speedup / code size / fetch / power.

Each module has ``run()`` returning structured results and ``report()``
rendering the paper-style rows; ``python -m repro.experiments.figN``
prints them.
"""

from . import common, fig3, fig5, fig7, fig8  # noqa: F401
