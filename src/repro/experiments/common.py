"""Shared infrastructure for the table/figure regeneration harness.

This module is now a thin facade over :mod:`repro.runner`: compiled bases
and run summaries come out of the runner's content-addressed on-disk
cache (shared across processes and invocations) fronted by a per-process
memo, and grid-shaped experiments can prewarm many cells at once through
the process-pool executor via :func:`prewarm`.  The historical entry
points — ``compiled_base(name, pipeline)`` and
``run_at_capacity(name, pipeline, capacity)`` — keep their signatures and
semantics, so callers and tests are unaffected.
"""

from __future__ import annotations

import argparse
import os

from repro.loopbuffer.overlay import (
    ENV_RETARGET,
    RETARGET_MODES,
    retarget_choice,
)
from repro.pipeline import Compiled
from repro.runner import metrics as _metrics_mod
from repro.runner.cache import ArtifactCache, default_cache
from repro.runner.parallel import compile_base, expand_grid, run_cell, run_grid
from repro.runner.summary import RunSummary, format_table

__all__ = [
    "FIG7_SIZES",
    "HEADLINE_CAPACITY",
    "RunSummary",
    "compiled_base",
    "experiment_args",
    "format_table",
    "prewarm",
    "reset",
    "run_at_capacity",
    "runner_metrics",
]

#: buffer sizes swept in Figure 7 (operations)
FIG7_SIZES = (16, 32, 64, 128, 256, 512, 1024, 2048)

#: the headline configuration (Sections 1 and 7)
HEADLINE_CAPACITY = 256

#: process-wide runner state shared by every experiment module
_CACHE: ArtifactCache | None = None
_METRICS = _metrics_mod.MetricsRecorder()
_BASE_MEMO: dict[tuple[str, str], Compiled] = {}
#: keyed by (name, pipeline, capacity, retarget-mode) so flipping
#: REPRO_RETARGET mid-process never serves the other mode's memo entry
_RUN_MEMO: dict[tuple[str, str, int | None, str], RunSummary] = {}


def experiment_args(description: str | None = None,
                    argv: list[str] | None = None) -> argparse.Namespace:
    """Shared CLI for the figure-script ``main``s.

    ``--checked`` exports ``REPRO_CHECKED=1`` so every compile under the
    facade (and in pool workers) runs the per-pass semantic sanitizer;
    see :mod:`repro.analysis.lint`.  Note checked compiles use distinct
    cache keys, so the first such run recompiles everything.
    ``--retarget`` exports ``REPRO_RETARGET`` the same way, selecting the
    ``with_buffer`` implementation for the whole sweep (overlay default,
    ``legacy`` for the deep-copy differential reference).
    """
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument("--checked", action="store_true",
                        help="run the semantic sanitizer after every "
                             "compiler pass (also: REPRO_CHECKED=1)")
    parser.add_argument("--retarget", choices=RETARGET_MODES, default=None,
                        help="with_buffer implementation (also: "
                             f"{ENV_RETARGET}=overlay|legacy)")
    args = parser.parse_args(argv)
    if args.checked:
        os.environ["REPRO_CHECKED"] = "1"
    if args.retarget:
        os.environ[ENV_RETARGET] = args.retarget
    return args


def _cache() -> ArtifactCache:
    global _CACHE
    if _CACHE is None:
        _CACHE = default_cache()
    return _CACHE


def runner_metrics() -> _metrics_mod.MetricsRecorder:
    """Accumulated cache/wall-time accounting for this process's runs."""
    return _METRICS


def reset(cache: ArtifactCache | None = None) -> None:
    """Drop the in-process memos (and optionally swap the disk cache)."""
    global _CACHE, _METRICS
    _BASE_MEMO.clear()
    _RUN_MEMO.clear()
    _METRICS = _metrics_mod.MetricsRecorder()
    _CACHE = cache


def compiled_base(name: str, pipeline: str) -> Compiled:
    """Compile a benchmark once per pipeline, without buffer assignment
    (``with_buffer`` retargets it per capacity)."""
    key = (name, pipeline)
    if key not in _BASE_MEMO:
        _BASE_MEMO[key] = compile_base(name, pipeline, cache=_cache())
    return _BASE_MEMO[key]


def run_at_capacity(name: str, pipeline: str, capacity: int | None,
                    retarget: str | None = None) -> RunSummary:
    """Compile (cached), retarget at ``capacity``, simulate, summarize."""
    mode = retarget_choice(retarget)
    key = (name, pipeline, capacity, mode)
    if key not in _RUN_MEMO:
        _RUN_MEMO[key] = run_cell(
            name, pipeline, capacity,
            cache=_cache(),
            base=_BASE_MEMO.get((name, pipeline)),
            metrics=_METRICS,
            retarget=mode,
        )
    return _RUN_MEMO[key]


def prewarm(
    names,
    pipelines=("traditional", "aggressive"),
    capacities=(HEADLINE_CAPACITY,),
    workers: int | None = None,
    retarget: str | None = None,
) -> list[RunSummary]:
    """Fan a (benchmark × pipeline × capacity) grid out over the runner.

    Results land in the same memo ``run_at_capacity`` reads, so an
    experiment that prewarms its grid first gets every subsequent lookup
    for free — from the pool when cold, from disk when warm.  Cells
    already memoized are skipped.
    """
    mode = retarget_choice(retarget)
    cells = [
        cell for cell in expand_grid(names, pipelines, capacities)
        if (cell.name, cell.pipeline, cell.capacity, mode) not in _RUN_MEMO
    ]
    if not cells:
        return []
    summaries = run_grid(cells, workers=workers, cache=_cache(),
                         metrics=_METRICS, retarget=mode)
    for cell, summary in zip(cells, summaries):
        _RUN_MEMO[(cell.name, cell.pipeline, cell.capacity, mode)] = summary
    return summaries
