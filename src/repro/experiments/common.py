"""Shared infrastructure for the table/figure regeneration harness."""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.bench import benchmark
from repro.pipeline import (
    Compiled,
    SimulationOutcome,
    compile_aggressive,
    compile_traditional,
    run_compiled,
    with_buffer,
)

#: buffer sizes swept in Figure 7 (operations)
FIG7_SIZES = (16, 32, 64, 128, 256, 512, 1024, 2048)

#: the headline configuration (Sections 1 and 7)
HEADLINE_CAPACITY = 256


@lru_cache(maxsize=None)
def compiled_base(name: str, pipeline: str) -> Compiled:
    """Compile a benchmark once per pipeline, without buffer assignment
    (``with_buffer`` retargets it per capacity)."""
    bench = benchmark(name)
    module = bench.build()
    if pipeline == "aggressive":
        return compile_aggressive(module, buffer_capacity=None)
    if pipeline == "traditional":
        return compile_traditional(module, buffer_capacity=None)
    raise ValueError(f"unknown pipeline {pipeline!r}")


@lru_cache(maxsize=None)
def run_at_capacity(name: str, pipeline: str, capacity: int | None) -> "RunSummary":
    """Compile (cached), retarget at ``capacity``, simulate, summarize."""
    base = compiled_base(name, pipeline)
    compiled = with_buffer(base, capacity)
    outcome = run_compiled(compiled)
    expected = benchmark(name).expected()
    if outcome.result.value != expected:
        raise AssertionError(
            f"{name}/{pipeline}@{capacity}: checksum "
            f"{outcome.result.value} != expected {expected}"
        )
    return RunSummary(
        name=name,
        pipeline=pipeline,
        capacity=capacity,
        cycles=outcome.counters.cycles,
        bundles=outcome.counters.bundles,
        ops_issued=outcome.counters.ops_issued,
        ops_from_buffer=outcome.counters.ops_from_buffer,
        ops_from_memory=outcome.counters.ops_from_memory,
        static_ops=compiled.static_ops,
        branch_bubbles=outcome.counters.branch_bubbles,
    )


@dataclass(frozen=True)
class RunSummary:
    name: str
    pipeline: str
    capacity: int | None
    cycles: int
    bundles: int
    ops_issued: int
    ops_from_buffer: int
    ops_from_memory: int
    static_ops: int
    branch_bubbles: int

    @property
    def buffer_fraction(self) -> float:
        if self.ops_issued == 0:
            return 0.0
        return self.ops_from_buffer / self.ops_issued


def format_table(headers: list[str], rows: list[list], title: str = "") -> str:
    widths = [len(h) for h in headers]
    rendered = [[_fmt(cell) for cell in row] for row in rows]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
