"""Flat word-addressed memory with a global/stack loader.

The modeled machine is a von Neumann design with a single unified memory
(Section 2 of the paper).  Addresses are in 32-bit words.  The loader
places module globals from :data:`GLOBAL_BASE` upward; call frames are
carved from :data:`STACK_BASE` upward (the functional interpreter and the
VLIW simulator share frame conventions so architectural state can be
compared operation for operation).
"""

from __future__ import annotations

from repro.ir.module import Module

GLOBAL_BASE = 0x1000
STACK_BASE = 0x100000


class MemoryError_(Exception):
    """A simulated memory access fault."""


class Memory:
    """Sparse word-addressed memory."""

    def __init__(self) -> None:
        self._words: dict[int, int] = {}
        self.loads = 0
        self.stores = 0

    def read(self, addr: int) -> int:
        if addr < 0:
            raise MemoryError_(f"negative address {addr:#x}")
        self.loads += 1
        return self._words.get(addr, 0)

    def write(self, addr: int, value: int) -> None:
        if addr < 0:
            raise MemoryError_(f"negative address {addr:#x}")
        self.stores += 1
        self._words[addr] = value

    def peek(self, addr: int) -> int:
        """Read without perturbing access counters (for test inspection)."""
        return self._words.get(addr, 0)

    def poke(self, addr: int, value: int) -> None:
        """Write without perturbing access counters (for test setup)."""
        self._words[addr] = value

    def read_block(self, addr: int, count: int) -> list[int]:
        return [self.peek(addr + i) for i in range(count)]

    def write_block(self, addr: int, values: list[int]) -> None:
        for i, value in enumerate(values):
            self.poke(addr + i, value)


class Loader:
    """Lays out a module's globals and manages stack frames."""

    def __init__(self, module: Module, memory: Memory | None = None) -> None:
        self.module = module
        self.memory = memory if memory is not None else Memory()
        self.global_addrs: dict[str, int] = {}
        addr = GLOBAL_BASE
        for data in module.globals.values():
            self.global_addrs[data.name] = addr
            self.memory.write_block(addr, data.words())
            addr += data.size
        self._stack_top = STACK_BASE

    def global_addr(self, name: str) -> int:
        return self.global_addrs[name]

    def push_frame(self, words: int) -> int:
        """Allocate a stack frame; returns its base address."""
        base = self._stack_top
        self._stack_top += words
        return base

    def pop_frame(self, words: int) -> None:
        self._stack_top -= words
        if self._stack_top < STACK_BASE:
            raise MemoryError_("stack underflow")
