"""Cycle-level VLIW simulation with loop-buffer fetch accounting.

Execution is architecturally exact (same operation semantics as the
functional interpreter — transformed programs are verified to produce
identical memory/return results), while time and fetch are charged from
the static schedules, exactly the quantities the paper's evaluation uses:

* **cycles** — one per issued bundle, plus taken-branch bubbles
  (``machine.branch_penalty``) whenever fetch is redirected without the
  loop buffer's help.  Modulo-scheduled loops charge their fill
  (schedule length) on the first iteration of an entry and II per
  iteration thereafter.
* **operations fetched** — per pass over a block, its (compressed-format,
  NOP-free) operations, attributed to the loop buffer or global memory
  according to the buffer state machine: a ``rec_*`` loop's first
  iteration records while fetching from memory; subsequent iterations
  (and re-entries whose image is still intact per the residency table)
  issue from the buffer.
* **branch bubbles** — buffered counted loops (``rec_cloop`` +
  ``br_cloop``) loop back and fall out for free; buffered while-loops
  loop back for free but pay one bubble at exit; everything else pays on
  every taken transfer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.opcodes import Opcode
from repro.loopbuffer.model import LoopBuffer, LoopState
from repro.sched.machine import DEFAULT_MACHINE, MachineDescription
from repro.sim.interp import Interpreter


@dataclass
class BlockFetchStats:
    passes: int = 0
    buffered_passes: int = 0
    ops_from_buffer: int = 0
    ops_from_memory: int = 0


@dataclass
class LoopFetchStats:
    """Loop-buffer lifecycle counters for one recorded loop.

    Keyed like :class:`repro.loopbuffer.model.LoopBuffer` residency
    entries (``"func/header"``); an entry exists only once the loop's
    ``rec_*`` operation has executed at least once.
    """

    records: int = 0          # recording passes started
    residency_hits: int = 0   # rec skipped: image still intact
    evictions: int = 0        # overwritten by another loop's recording
    passes: int = 0           # dynamic passes over the loop body
    buffered_passes: int = 0  # passes issued from the buffer
    ops_from_buffer: int = 0
    ops_from_memory: int = 0

    @property
    def buffer_issue_fraction(self) -> float:
        fetched = self.ops_from_buffer + self.ops_from_memory
        if fetched == 0:
            return 0.0
        return self.ops_from_buffer / fetched

    def as_tuple(self) -> tuple[int, int, int, int, int, int, int]:
        """Canonical value form, for differential comparison and hashing."""
        return (self.records, self.residency_hits, self.evictions,
                self.passes, self.buffered_passes,
                self.ops_from_buffer, self.ops_from_memory)


@dataclass
class SimCounters:
    cycles: int = 0
    bundles: int = 0
    ops_issued: int = 0
    ops_from_buffer: int = 0
    ops_from_memory: int = 0
    branch_bubbles: int = 0
    per_block: dict[tuple[str, str], BlockFetchStats] = field(default_factory=dict)
    per_loop: dict[str, LoopFetchStats] = field(default_factory=dict)

    @property
    def buffer_issue_fraction(self) -> float:
        if self.ops_issued == 0:
            return 0.0
        return self.ops_from_buffer / self.ops_issued

    def block_stats(self, func: str, label: str) -> BlockFetchStats:
        return self.per_block.setdefault((func, label), BlockFetchStats())

    def loop_stats(self, key: str) -> LoopFetchStats:
        return self.per_loop.setdefault(key, LoopFetchStats())

    def loop_table(self) -> tuple[tuple[str, tuple[int, ...]], ...]:
        """Sorted ``(loop key, counters)`` rows — a canonical per-loop
        snapshot two simulations can be compared (or hashed) by."""
        return tuple((key, self.per_loop[key].as_tuple())
                     for key in sorted(self.per_loop))


class VLIWSimulator(Interpreter):
    """Executes a module charging cycles/fetch against its schedules.

    ``schedules`` maps function name -> {block label -> Schedule};
    ``modulo`` maps (function, label) -> ModuloSchedule for loop bodies
    that were software-pipelined.
    """

    def __init__(
        self,
        module: Module,
        schedules: dict[str, dict[str, object]],
        modulo: dict[tuple[str, str], object] | None = None,
        machine: MachineDescription = DEFAULT_MACHINE,
        buffer: LoopBuffer | None = None,
        max_steps: int = 200_000_000,
        tracer=None,
    ) -> None:
        super().__init__(module, profile=None, max_steps=max_steps)
        if tracer is None:
            from repro.obs import get_tracer
            tracer = get_tracer()
        self.schedules = schedules
        self.modulo = dict(modulo or {})
        self.machine = machine
        self.buffer = buffer
        self.counters = SimCounters()
        self.tracer = tracer
        self._last_key: tuple[str, str] | None = None
        if buffer is not None and buffer.listener is None:
            buffer.listener = self._on_buffer_event

    # -- execution with accounting ---------------------------------------------

    def _run_block(self, frame, block):
        func: Function = frame.func
        key = (func.name, block.label)
        iterating = self._last_key == key

        transfer = None
        transfer_index = None
        executed = 0
        for index, op in enumerate(block.ops):
            self.steps += 1
            if self.steps > self.max_steps:
                from repro.sim.interp import StepLimitExceeded

                raise StepLimitExceeded(f"exceeded {self.max_steps} steps")
            if op.opcode != Opcode.NOP:
                executed += 1
            if op.opcode in (Opcode.REC_CLOOP, Opcode.REC_WLOOP):
                self._do_rec(frame, key, op)
                continue
            guard_ok = True
            if op.guard is not None:
                guard_ok = bool(frame.regs.get(op.guard, 0))
            if op.opcode == Opcode.PRED_DEF:
                self._exec_pred_def(frame, op, guard_ok)
                continue
            if not guard_ok:
                continue
            if op.opcode == Opcode.CALL:
                self.counters.branch_bubbles += self.machine.branch_penalty
                self.counters.cycles += self.machine.branch_penalty
            step = self._exec_op(frame, op)
            if step is not None:
                transfer = step
                transfer_index = index
                break

        full_pass = transfer_index is None or transfer_index == len(block.ops) - 1
        self._account_pass(func, block, key, iterating, transfer,
                           transfer_index, executed, full_pass)
        self._last_key = key if (transfer is not None
                                 and transfer[0] == "jump"
                                 and transfer[1] == block.label) else None
        return transfer

    # -- helpers -----------------------------------------------------------------

    def _do_rec(self, frame, key, op) -> None:
        if self.buffer is not None:
            loop_label = op.attrs["loop"]
            buffer_key = f"{key[0]}/{loop_label}"
            state = self.buffer.rec(
                key=buffer_key,
                offset=op.attrs["buf_addr"],
                length=op.attrs["num"],
                counted=op.opcode == Opcode.REC_CLOOP,
            )
            lstats = self.counters.loop_stats(buffer_key)
            if state is LoopState.RESIDENT:
                lstats.residency_hits += 1
                event = "buffer_hit"
            else:
                lstats.records += 1
                event = "buffer_record"
            if self.tracer.enabled:
                self.tracer.instant(event, category="sim",
                                    ts=self.counters.cycles, clock="cycles",
                                    loop=buffer_key)
        if op.opcode == Opcode.REC_CLOOP and op.srcs:
            frame.lc[op.attrs["lc"]] = int(self._val(frame, op.srcs[0]))

    def _on_buffer_event(self, event: str, key: str, **info) -> None:
        if event == "evict":
            self.counters.loop_stats(key).evictions += 1
            if self.tracer.enabled:
                self.tracer.instant("buffer_evict", category="sim",
                                    ts=self.counters.cycles, clock="cycles",
                                    loop=key, by=info.get("by"))

    def _account_pass(self, func, block, key, iterating, transfer,
                      transfer_index, executed, full_pass) -> None:
        counters = self.counters
        stats = counters.block_stats(*key)
        stats.passes += 1

        # --- cycles / bundles ----------------------------------------------------
        mod = self.modulo.get(key)
        sched = self.schedules.get(func.name, {}).get(block.label)
        if mod is not None and iterating:
            cycles = mod.ii
        elif mod is not None:
            cycles = mod.schedule_length
        elif sched is not None:
            if transfer_index is not None and transfer_index < len(block.ops) - 1:
                op = block.ops[transfer_index]
                place = sched.placement.get(op.uid)
                cycles = (place.cycle + 1) if place is not None else sched.length
            else:
                cycles = sched.length
        else:
            cycles = max(1, executed)  # unscheduled fallback: 1 op / cycle
        counters.cycles += cycles
        counters.bundles += cycles

        # --- fetch source ------------------------------------------------------------
        buffer_key = f"{key[0]}/{key[1]}"
        state = (self.buffer.state_of(buffer_key)
                 if self.buffer is not None else LoopState.ABSENT)
        counters.ops_issued += executed
        lstats = counters.per_loop.get(buffer_key)
        if lstats is not None:
            lstats.passes += 1
        if state is LoopState.RESIDENT:
            counters.ops_from_buffer += executed
            stats.ops_from_buffer += executed
            stats.buffered_passes += 1
            if lstats is not None:
                lstats.ops_from_buffer += executed
                lstats.buffered_passes += 1
        else:
            counters.ops_from_memory += executed
            stats.ops_from_memory += executed
            if lstats is not None:
                lstats.ops_from_memory += executed
            if state is LoopState.RECORDING and full_pass:
                self.buffer.finish_recording(buffer_key)

        # --- branch bubbles --------------------------------------------------------------
        bubble = self._bubble_for(block, key, transfer, transfer_index, state)
        counters.branch_bubbles += bubble
        counters.cycles += bubble

    def _bubble_for(self, block, key, transfer, transfer_index, state) -> int:
        penalty = self.machine.branch_penalty
        buffered = state is not LoopState.ABSENT
        is_counted = (block.terminator is not None
                      and block.terminator.opcode == Opcode.BR_CLOOP)

        if transfer is None:
            # fell through the block end; a buffered while-loop exits by
            # mispredicting its loop-back, a counted one falls out for free
            if buffered and not is_counted and self._is_loop_block(block):
                return penalty
            return 0
        kind, payload = transfer
        if kind == "ret":
            return penalty
        taken_op = block.ops[transfer_index]
        if payload == block.label:
            # loop-back branch: free from the buffer, a bubble otherwise
            return 0 if buffered else penalty
        if (buffered and is_counted and taken_op.opcode == Opcode.BR_CLOOP):
            return 0
        return penalty

    @staticmethod
    def _is_loop_block(block) -> bool:
        term = block.terminator
        return term is not None and term.target == block.label


def simulate(
    module: Module,
    schedules: dict[str, dict[str, object]],
    modulo: dict[tuple[str, str], object] | None = None,
    machine: MachineDescription = DEFAULT_MACHINE,
    buffer_capacity: int | None = 256,
    entry: str = "main",
    args: list[int] | None = None,
    max_steps: int = 200_000_000,
    tracer=None,
    engine: str | None = None,
):
    """Run a scheduled module; returns (RunResult, SimCounters, LoopBuffer).

    ``engine`` picks the reference simulator (``"ref"``) or the predecoded
    fast path (``"fast"``, :mod:`repro.sim.engine`); both produce
    bit-identical counters.  Default per ``REPRO_ENGINE``, else fast.
    """
    from repro.sim.engine import make_vliw_simulator

    buffer = LoopBuffer(buffer_capacity) if buffer_capacity else None
    sim = make_vliw_simulator(module, schedules, modulo, machine, buffer,
                              max_steps=max_steps, tracer=tracer,
                              engine=engine)
    result = sim.run(entry, args)
    tracer = sim.tracer
    if tracer.enabled:
        fetch = tracer.metrics.counter(
            "sim_fetch_ops", "operations fetched, by loop and source")
        lifecycle = tracer.metrics.counter(
            "sim_buffer_events", "loop-buffer lifecycle events")
        for key, lstats in sorted(sim.counters.per_loop.items()):
            fetch.inc(lstats.ops_from_buffer, loop=key, source="buffer")
            fetch.inc(lstats.ops_from_memory, loop=key, source="memory")
            lifecycle.inc(lstats.records, loop=key, event="record")
            lifecycle.inc(lstats.residency_hits, loop=key, event="hit")
            lifecycle.inc(lstats.evictions, loop=key, event="evict")
    return result, sim.counters, buffer
