"""Fast-path execution engine: predecoded blocks + a loop-body trace cache.

The reference :class:`~repro.sim.interp.Interpreter` re-dispatches every
operation on every pass — an isinstance chain per operand, a dict of
``VReg`` registers, a long opcode if-chain.  The paper's own observation
(steady-state loop bodies dominate fetch) applies to the host simulator
too: it spends nearly all its time re-interpreting the same few blocks.

This module mirrors the loop-buffer idea at the host level:

* Each IR block is *decoded once* into a flat list of argument-resolved
  **op thunks** — closures binding the opcode handler, operand accessors
  (register slot index or folded constant) and the guard check at decode
  time.  Executing a pass is then one call per op.
* Registers live in a flat per-frame ``list`` indexed by a per-function
  slot assignment (:class:`FunctionProgram`), replacing the ``VReg``-keyed
  dict of the reference frame.
* Decoded :class:`BlockProgram` objects live in a :class:`TraceCache`
  keyed by ``(function, block label)``, with explicit invalidation hooks
  (:meth:`TraceCache.invalidate`) plus a cheap per-pass staleness check
  (``len(block.ops)``) that catches op insertion/removal between passes.
* On the VLIW, the pure part of a decode (compute/branch thunks whose
  operands are registers or immediates, plus the per-block metadata) is
  additionally published to a process-wide **shared decode store** keyed
  weakly by block object, so a capacity-sweep's overlay artifacts —
  which share every untouched ``BasicBlock`` with their base (see
  :mod:`repro.loopbuffer.overlay`) — decode each shared block once
  across all capacities.  Entries are validated by op identity and by
  schedule/modulo/machine object identity, and ops that bind simulator
  state (``ld``/``st``/``call``/``rec``, or global-ref operands) are
  always re-decoded per simulator.
* Profile counts (block passes, op fetches, edge traversals, taken
  branches) are accumulated in flat per-block arrays and folded into the
  :class:`~repro.analysis.profile.Profile` once at the end of the run —
  every count is identical to the reference interpreter's.

Architectural behaviour is bit-identical to the reference engine: same
values, same traps (including the exact op at which ``StepLimitExceeded``
fires), same ``SimCounters``/``LoopFetchStats`` and obs instants for the
VLIW.  Two documented exceptions: after a *trap*, the partially-recorded
profile and ``steps`` of the trapping pass are unspecified (the reference
records op-by-op, the fast engine per pass — every consumer discards the
profile of a trapping run), and in-run IR mutation must not introduce new
virtual registers (use :meth:`TraceCache.invalidate` and a fresh run for
structural edits).

Engine selection: ``REPRO_ENGINE=ref|fast`` (default ``fast``), or the
explicit ``engine=`` argument threaded through ``run_module`` /
``profile_module`` / ``simulate`` / the pipelines and the runner.
"""

from __future__ import annotations

import os
import weakref

from repro.ir.opcodes import Opcode
from repro.ir.preddef import pred_update
from repro.ir.registers import FImm, GlobalRef, Imm, VReg
from repro.loopbuffer.model import LoopState
from repro.sim.interp import (
    Interpreter,
    RunResult,
    SimError,
    StepLimitExceeded,
)
from repro.sim.values import cdiv, crem, saturate, to_unsigned, wrap32
from repro.sim.vliw import VLIWSimulator

__all__ = [
    "DEFAULT_ENGINE",
    "ENGINES",
    "ENV_ENGINE",
    "FastInterpreter",
    "FastVLIWSimulator",
    "SHARED_DECODE_STATS",
    "TraceCache",
    "engine_choice",
    "make_interpreter",
    "make_vliw_simulator",
    "reset_shared_decode",
]

ENV_ENGINE = "REPRO_ENGINE"
ENGINES = ("ref", "fast")
DEFAULT_ENGINE = "fast"


def engine_choice(engine: str | None = None) -> str:
    """Resolve the effective engine: argument, else ``REPRO_ENGINE``, else
    :data:`DEFAULT_ENGINE`."""
    if engine is None:
        engine = os.environ.get(ENV_ENGINE, "").strip().lower() or DEFAULT_ENGINE
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r} (choose from {', '.join(ENGINES)})"
        )
    return engine


def make_interpreter(module, profile=None, max_steps: int = 200_000_000,
                     engine: str | None = None) -> Interpreter:
    if engine_choice(engine) == "fast":
        return FastInterpreter(module, profile=profile, max_steps=max_steps)
    return Interpreter(module, profile=profile, max_steps=max_steps)


def make_vliw_simulator(module, schedules, modulo=None, machine=None,
                        buffer=None, max_steps: int = 200_000_000,
                        tracer=None, engine: str | None = None):
    from repro.sched.machine import DEFAULT_MACHINE

    machine = machine if machine is not None else DEFAULT_MACHINE
    cls = (FastVLIWSimulator if engine_choice(engine) == "fast"
           else VLIWSimulator)
    return cls(module, schedules, modulo, machine, buffer,
               max_steps=max_steps, tracer=tracer)


# --------------------------------------------------------------------------
# operand resolution and opcode handler tables


class _Unresolvable(Exception):
    """An operand the decoder cannot resolve; the op gets a thunk that
    reproduces the reference engine's execution-time error."""

    def __init__(self, operand):
        self.operand = operand


def _mov(a):
    return wrap32(a) if isinstance(a, int) else a


def _div(a, b):
    if b == 0:
        raise SimError("division by zero")
    return wrap32(cdiv(a, b))


def _rem(a, b):
    if b == 0:
        raise SimError("remainder by zero")
    return wrap32(crem(a, b))


def _fdiv(a, b):
    if float(b) == 0.0:
        raise SimError("float division by zero")
    return float(a) / float(b)


_UNARY = {
    Opcode.MOV: _mov,
    Opcode.NEG: lambda a: wrap32(-a),
    Opcode.NOT: lambda a: wrap32(~a),
    Opcode.ABS: lambda a: wrap32(abs(a)),
    Opcode.ITOF: float,
    Opcode.FTOI: lambda a: wrap32(int(a)),
    Opcode.FMOV: float,
}

_BINARY = {
    Opcode.ADD: lambda a, b: wrap32(a + b),
    Opcode.SUB: lambda a, b: wrap32(a - b),
    Opcode.AND: lambda a, b: wrap32(a & b),
    Opcode.OR: lambda a, b: wrap32(a | b),
    Opcode.XOR: lambda a, b: wrap32(a ^ b),
    Opcode.SHL: lambda a, b: wrap32(a << (b & 31)),
    Opcode.SHR: lambda a, b: wrap32((a & 0xFFFFFFFF) >> (b & 31)),
    Opcode.SAR: lambda a, b: wrap32(a >> (b & 31)),
    Opcode.MIN: min,
    Opcode.MAX: max,
    Opcode.SADD: lambda a, b: saturate(a + b, 16),
    Opcode.SSUB: lambda a, b: saturate(a - b, 16),
    Opcode.SAT: saturate,
    Opcode.MUL: lambda a, b: wrap32(a * b),
    Opcode.MULH: lambda a, b: wrap32((a * b) >> 32),
    Opcode.DIV: _div,
    Opcode.REM: _rem,
    Opcode.FADD: lambda a, b: float(a) + float(b),
    Opcode.FSUB: lambda a, b: float(a) - float(b),
    Opcode.FMUL: lambda a, b: float(a) * float(b),
    Opcode.FDIV: _fdiv,
}

_TERNARY = {
    Opcode.CLIP: lambda a, b, c: max(b, min(c, a)),
    Opcode.SELECT: lambda a, b, c: b if a else c,
}

#: predecoded comparison tests (same semantics as ``values.compare``; the
#: test string is validated at ``Operation`` construction time)
_CMP = {
    "eq": lambda a, b: int(a == b),
    "ne": lambda a, b: int(a != b),
    "lt": lambda a, b: int(a < b),
    "le": lambda a, b: int(a <= b),
    "gt": lambda a, b: int(a > b),
    "ge": lambda a, b: int(a >= b),
    "ltu": lambda a, b: int(to_unsigned(a) < to_unsigned(b)),
    "geu": lambda a, b: int(to_unsigned(a) >= to_unsigned(b)),
}


def _nop_step(frame):
    return None


# --------------------------------------------------------------------------
# shared VLIW decode store (cross-simulator, cross-capacity)


#: ops whose thunks close over simulator state (memory, call stack, the
#: loop buffer) and therefore can never be shared across simulators
_SIM_BOUND_OPS = frozenset({
    Opcode.LD, Opcode.ST, Opcode.CALL, Opcode.REC_CLOOP, Opcode.REC_WLOOP,
})


def _shareable_op(op) -> bool:
    """True when the op's thunk is pure w.r.t. the simulator instance.

    Global-ref operands are excluded too: their addresses are folded at
    decode time through the simulator's loader.
    """
    if op.opcode in _SIM_BOUND_OPS:
        return False
    for src in op.srcs:
        if not isinstance(src, (VReg, Imm, FImm)):
            return False
    return True


class SharedDecodeStats:
    """Process-wide counters for the shared VLIW decode store."""

    __slots__ = ("block_hits", "block_misses", "thunks_shared",
                 "thunks_rebuilt")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.block_hits = 0
        self.block_misses = 0
        self.thunks_shared = 0
        self.thunks_rebuilt = 0

    def snapshot(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


SHARED_DECODE_STATS = SharedDecodeStats()


class _SharedBlock:
    """The simulator-independent product of one VLIW block decode.

    ``thunks`` holds the pure op thunks (``None`` where the op binds
    simulator state and must be re-decoded per simulator).  An entry is
    only reusable when the block's op list is id-identical and the
    schedule/modulo-schedule/machine objects the metadata was derived
    from are the very objects the requesting simulator holds.
    """

    __slots__ = (
        "ops_ids", "sched", "mod", "machine", "thunks", "next_label", "n",
        "uid_at", "is_cond", "executed_at", "key", "buffer_key",
        "mod_ii", "mod_len", "cycles_at", "sched_len",
        "is_counted", "is_loop_block", "is_brcloop", "penalty",
    )


class _SharedFunction:
    """Per-function shared decode state, keyed by the *origin* function.

    Overlay clones (:func:`repro.loopbuffer.overlay._clone_function`)
    point at their base via ``_decode_origin`` and are guaranteed to
    have identical register populations, so base and all clones share
    one slot layout (``slots`` is grow-only and adopted by every
    :class:`FunctionProgram` built over the family).  ``seen`` tracks
    which block op-lists have been folded into the layout; ``progs``
    holds the reusable block decodes, weakly keyed by block object so
    retired overlay blocks drop their entries.
    """

    __slots__ = ("slots", "seen", "progs")

    def __init__(self) -> None:
        self.slots: dict[VReg, int] = {}
        self.seen: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
        self.progs: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


_SHARED_VLIW: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def reset_shared_decode() -> None:
    """Drop every shared decode entry (test isolation hook)."""
    _SHARED_VLIW.clear()
    SHARED_DECODE_STATS.reset()


def _shared_function(func) -> _SharedFunction:
    origin = getattr(func, "_decode_origin", func)
    shared = _SHARED_VLIW.get(origin)
    if shared is None:
        shared = _SharedFunction()
        _SHARED_VLIW[origin] = shared
    return shared


# --------------------------------------------------------------------------
# decoded programs


class _FastFrame:
    __slots__ = ("func", "fprog", "regs", "lc")

    def __init__(self, func, fprog, regs, lc):
        self.func = func
        self.fprog = fprog
        self.regs = regs
        self.lc = lc


class BlockProgram:
    """One decoded block: thunks plus precomputed accounting metadata."""

    __slots__ = (
        "label", "block", "n", "thunks", "next_label",
        # deferred profiling (functional engine)
        "passes", "prefix_counts", "taken_counts", "edge_counts",
        "uid_at", "is_cond",
        # precomputed VLIW pass accounting
        "key", "buffer_key", "executed_at", "mod_ii", "mod_len",
        "cycles_at", "sched_len", "is_counted", "is_loop_block",
        "is_brcloop", "penalty", "stats", "lstats",
    )


class FunctionProgram:
    """Per-function register slot assignment and decoded block store."""

    __slots__ = ("cache", "func", "name", "entry_label", "param_slots",
                 "frame_base_slot", "nslots", "calls", "progs", "_slots",
                 "_shared")

    def __init__(self, cache: "TraceCache", func) -> None:
        self.cache = cache
        self.func = func
        self.name = func.name
        self.progs: dict[str, BlockProgram] = {}
        self.calls = 0
        if cache.vliw:
            # adopt the family-wide slot layout; only blocks whose op
            # lists haven't been folded in yet are scanned (for a base
            # that was already decoded once, this is a no-op; for an
            # overlay clone, only its materialized preheaders — whose
            # rec rewrite introduces no new registers — are walked)
            shared = _shared_function(func)
            self._shared = shared
            self._slots = shared.slots
        else:
            # the functional engine decodes mid-pipeline IR that passes
            # mutate between profile runs; it never shares decode state
            self._shared = None
            self._slots = {}
        slot = self.slot
        for param in func.params:
            slot(param)
        if func.frame_base is not None:
            slot(func.frame_base)
        seen = self._shared.seen if self._shared is not None else None
        for block in func.blocks:
            if seen is not None:
                ids = tuple(map(id, block.ops))
                if seen.get(block) == ids:
                    continue
            for op in block.ops:
                if op.guard is not None:
                    slot(op.guard)
                for dest in op.dests:
                    slot(dest)
                for src in op.srcs:
                    if isinstance(src, VReg):
                        slot(src)
            if seen is not None:
                seen[block] = ids
        self.nslots = len(self._slots)
        self.param_slots = tuple(self._slots[p] for p in func.params)
        self.frame_base_slot = (self._slots[func.frame_base]
                                if func.frame_base is not None else None)
        self.entry_label = func.entry.label

    def slot(self, reg: VReg) -> int:
        slots = self._slots
        index = slots.get(reg)
        if index is None:
            index = slots[reg] = len(slots)
        return index

    def block_program(self, label: str) -> BlockProgram:
        prog = self.progs.get(label)
        if prog is None:
            # Function.block raises KeyError on an unknown label, exactly
            # like the reference engine's jump dispatch
            prog = self.cache.decode_block(self, self.func.block(label))
            self.progs[label] = prog
        return prog

    def redecode(self, label: str) -> BlockProgram:
        """Staleness hook: re-decode one block whose op list changed."""
        self.progs.pop(label, None)
        return self.block_program(label)


class TraceCache:
    """Host-level decode-once cache keyed by ``(function, block label)``.

    Owned by one simulator instance; ``decoded_blocks``/``decoded_ops``
    count decode work (a steady-state loop decodes exactly once however
    many iterations run).  :meth:`invalidate` drops decoded programs so
    mutated IR is re-decoded; independently, the frame loop re-decodes any
    block whose ``len(block.ops)`` changed since decode.
    """

    def __init__(self, sim: Interpreter, vliw: bool) -> None:
        self.sim = sim
        self.vliw = vliw
        self.functions: dict[str, FunctionProgram] = {}
        self.decoded_blocks = 0
        self.decoded_ops = 0

    def function_program(self, func) -> FunctionProgram:
        fprog = self.functions.get(func.name)
        if fprog is None or fprog.func is not func:
            fprog = FunctionProgram(self, func)
            self.functions[func.name] = fprog
        return fprog

    def invalidate(self, func: str | None = None,
                   label: str | None = None) -> None:
        """Drop decoded programs: everything, one function, or one block.

        Shared decode entries for the affected blocks are purged too, so
        an invalidate-then-rerun over mutated IR re-decodes from the
        current op lists exactly as it did before the shared store
        existed (in-place attribute edits included, which the op-identity
        validation alone would not catch).
        """
        if func is None:
            for fprog in self.functions.values():
                self._purge_shared(fprog)
            self.functions.clear()
            return
        fprog = self.functions.get(func)
        if fprog is None:
            return
        self._purge_shared(fprog, label)
        if label is None:
            del self.functions[func]
        else:
            fprog.progs.pop(label, None)

    @staticmethod
    def _purge_shared(fprog: FunctionProgram,
                      label: str | None = None) -> None:
        shared = fprog._shared
        if shared is None:
            return
        if label is None:
            shared.progs.clear()
            shared.seen.clear()
            return
        if fprog.func.has_block(label):
            block = fprog.func.block(label)
            shared.progs.pop(block, None)
            shared.seen.pop(block, None)

    # -- profile finalization ------------------------------------------------

    def finalize_profile(self, profile) -> None:
        """Fold the deferred per-block tallies into ``profile`` (and reset
        them, so finalizing twice never double-counts).

        Op counts are reconstructed from ``prefix_counts`` — the number of
        passes whose last *attempted* op was index ``i`` — by suffix
        summation: an op at index ``i`` was attempted once per pass that
        reached at least ``i``.
        """
        for fprog in self.functions.values():
            fname = fprog.name
            if fprog.calls:
                profile.calls[fname] += fprog.calls
                fprog.calls = 0
            for prog in fprog.progs.values():
                if prog.passes:
                    profile.blocks[(fname, prog.label)] += prog.passes
                    prog.passes = 0
                prefix = prog.prefix_counts
                uid_at = prog.uid_at
                ops = profile.ops
                running = 0
                for i in range(prog.n - 1, -1, -1):
                    count = prefix[i]
                    if count:
                        running += count
                        prefix[i] = 0
                    if running:
                        uid = uid_at[i]
                        if uid is not None:
                            ops[(fname, uid)] += running
                            profile.total_ops += running
                taken = prog.taken_counts
                for i, count in enumerate(taken):
                    if count:
                        profile.taken[(fname, uid_at[i])] += count
                        taken[i] = 0
                edges = prog.edge_counts
                if edges:
                    for dst, count in edges.items():
                        profile.edges[(fname, prog.label, dst)] += count
                    edges.clear()

    # -- block decoding ------------------------------------------------------

    def decode_block(self, fprog: FunctionProgram, block) -> BlockProgram:
        shared = fprog._shared
        if shared is not None:
            sb = shared.progs.get(block)
            if sb is not None:
                sim = self.sim
                sched = sim.schedules.get(fprog.name, {}).get(block.label)
                mod = sim.modulo.get((fprog.name, block.label))
                if (sb.ops_ids == tuple(map(id, block.ops))
                        and sb.sched is sched and sb.mod is mod
                        and sb.machine is sim.machine):
                    return self._stamp_shared(fprog, block, sb)
            prog = self._decode_block_full(fprog, block)
            shared.progs[block] = self._publish_shared(prog, block)
            SHARED_DECODE_STATS.block_misses += 1
            return prog
        return self._decode_block_full(fprog, block)

    def _stamp_shared(self, fprog: FunctionProgram, block,
                      sb: _SharedBlock) -> BlockProgram:
        """Build this simulator's BlockProgram from a shared decode: pure
        thunks and immutable metadata are reused; sim-bound thunks and the
        per-run accounting state are always fresh."""
        prog = BlockProgram()
        prog.label = block.label
        prog.block = block
        prog.n = sb.n
        label = block.label
        decode_op = self._decode_op
        rebuilt = 0
        thunks = []
        for thunk, op in zip(sb.thunks, block.ops):
            if thunk is None:
                thunk = decode_op(fprog, op, label)
                rebuilt += 1
            thunks.append(thunk)
        prog.thunks = thunks
        prog.next_label = sb.next_label
        prog.passes = 0
        prog.prefix_counts = [0] * sb.n
        prog.taken_counts = [0] * sb.n
        prog.edge_counts = {}
        prog.uid_at = sb.uid_at
        prog.is_cond = sb.is_cond
        prog.executed_at = sb.executed_at
        prog.key = sb.key
        prog.buffer_key = sb.buffer_key
        prog.mod_ii = sb.mod_ii
        prog.mod_len = sb.mod_len
        prog.cycles_at = sb.cycles_at
        prog.sched_len = sb.sched_len
        prog.is_counted = sb.is_counted
        prog.is_loop_block = sb.is_loop_block
        prog.is_brcloop = sb.is_brcloop
        prog.penalty = sb.penalty
        prog.stats = None
        prog.lstats = None
        self.decoded_blocks += 1
        self.decoded_ops += sb.n
        stats = SHARED_DECODE_STATS
        stats.block_hits += 1
        stats.thunks_shared += sb.n - rebuilt
        stats.thunks_rebuilt += rebuilt
        return prog

    def _publish_shared(self, prog: BlockProgram, block) -> _SharedBlock:
        sim = self.sim
        ops = block.ops
        sb = _SharedBlock()
        sb.ops_ids = tuple(map(id, ops))
        sb.sched = sim.schedules.get(prog.key[0], {}).get(block.label)
        sb.mod = sim.modulo.get(prog.key)
        sb.machine = sim.machine
        sb.thunks = tuple(
            thunk if _shareable_op(op) else None
            for thunk, op in zip(prog.thunks, ops)
        )
        sb.next_label = prog.next_label
        sb.n = prog.n
        sb.uid_at = prog.uid_at
        sb.is_cond = prog.is_cond
        sb.executed_at = prog.executed_at
        sb.key = prog.key
        sb.buffer_key = prog.buffer_key
        sb.mod_ii = prog.mod_ii
        sb.mod_len = prog.mod_len
        sb.cycles_at = prog.cycles_at
        sb.sched_len = prog.sched_len
        sb.is_counted = prog.is_counted
        sb.is_loop_block = prog.is_loop_block
        sb.is_brcloop = prog.is_brcloop
        sb.penalty = prog.penalty
        return sb

    def _decode_block_full(self, fprog: FunctionProgram,
                           block) -> BlockProgram:
        sim = self.sim
        ops = block.ops
        prog = BlockProgram()
        prog.label = block.label
        prog.block = block
        prog.n = len(ops)
        prog.thunks = [self._decode_op(fprog, op, block.label) for op in ops]
        blocks = fprog.func.blocks
        index = blocks.index(block)
        prog.next_label = (blocks[index + 1].label
                           if index + 1 < len(blocks) else None)
        prog.passes = 0
        prog.prefix_counts = [0] * prog.n
        prog.taken_counts = [0] * prog.n
        prog.edge_counts = {}
        prog.uid_at = [None if op.opcode is Opcode.NOP else op.uid
                       for op in ops]
        prog.is_cond = [op.is_conditional_branch for op in ops]
        running = 0
        executed_at = []
        for op in ops:
            if op.opcode is not Opcode.NOP:
                running += 1
            executed_at.append(running)
        prog.executed_at = executed_at
        if self.vliw:
            key = (fprog.name, block.label)
            prog.key = key
            prog.buffer_key = f"{key[0]}/{key[1]}"
            mod = sim.modulo.get(key)
            prog.mod_ii = mod.ii if mod is not None else None
            prog.mod_len = mod.schedule_length if mod is not None else None
            sched = sim.schedules.get(fprog.name, {}).get(block.label)
            if sched is not None:
                length = sched.length
                prog.sched_len = length
                placement = sched.placement
                cycles_at = []
                for i, op in enumerate(ops):
                    if i < prog.n - 1:
                        place = placement.get(op.uid)
                        cycles_at.append(place.cycle + 1
                                         if place is not None else length)
                    else:
                        cycles_at.append(length)
                prog.cycles_at = cycles_at
            else:
                prog.sched_len = None
                prog.cycles_at = None
            term = block.terminator
            prog.is_counted = (term is not None
                               and term.opcode is Opcode.BR_CLOOP)
            prog.is_loop_block = (term is not None
                                  and term.target == block.label)
            prog.is_brcloop = [op.opcode is Opcode.BR_CLOOP for op in ops]
            prog.penalty = sim.machine.branch_penalty
            # per-block/per-loop stats bind lazily at first pass, matching
            # the reference engine's dict-entry creation order
            prog.stats = None
            prog.lstats = None
        self.decoded_blocks += 1
        self.decoded_ops += prog.n
        return prog

    # -- operand helpers -----------------------------------------------------

    def _operand(self, fprog: FunctionProgram, src) -> tuple[bool, object]:
        """``(is_const, payload)`` — payload is a folded constant value or
        a register slot index."""
        if isinstance(src, VReg):
            return False, fprog.slot(src)
        if isinstance(src, (Imm, FImm)):
            return True, src.value
        if isinstance(src, GlobalRef):
            try:
                return True, self.sim.loader.global_addr(src.name)
            except Exception:
                raise _Unresolvable(src) from None
        raise _Unresolvable(src)

    def _getter(self, fprog: FunctionProgram, src):
        const, payload = self._operand(fprog, src)
        if const:
            return lambda regs, _k=payload: _k
        return lambda regs, _s=payload: regs[_s]

    def _unresolvable_step(self, operand):
        loader = self.sim.loader

        def step(frame, _src=operand):
            if isinstance(_src, GlobalRef):
                loader.global_addr(_src.name)  # raises the reference error
            raise SimError(f"cannot evaluate operand {_src!r}")

        return step

    # -- op decoding ---------------------------------------------------------

    def _decode_op(self, fprog: FunctionProgram, op, label: str):
        code = op.opcode
        try:
            step = self._build_step(fprog, op, label)
        except _Unresolvable as exc:
            step = self._unresolvable_step(exc.operand)
        if code is Opcode.PRED_DEF:
            return step  # evaluates under both guard polarities
        if self.vliw and code in (Opcode.REC_CLOOP, Opcode.REC_WLOOP):
            return step  # the VLIW issues rec directives before the guard
        if op.guard is not None:
            gslot = fprog.slot(op.guard)

            def guarded(frame, _gs=gslot, _step=step):
                if frame.regs[_gs]:
                    return _step(frame)
                return None

            return guarded
        return step

    def _build_step(self, fprog: FunctionProgram, op, label: str):  # noqa: C901
        code = op.opcode
        sim = self.sim
        slot = fprog.slot

        if code is Opcode.NOP:
            return _nop_step

        fn = _BINARY.get(code)
        if fn is not None:
            dest = slot(op.dests[0])
            ac, av = self._operand(fprog, op.srcs[0])
            bc, bv = self._operand(fprog, op.srcs[1])
            return _binary_step(fn, dest, ac, av, bc, bv)
        if code in (Opcode.CMP, Opcode.FCMP):
            dest = slot(op.dests[0])
            ac, av = self._operand(fprog, op.srcs[0])
            bc, bv = self._operand(fprog, op.srcs[1])
            return _binary_step(_CMP[op.attrs["cmp"]], dest, ac, av, bc, bv)
        fn = _UNARY.get(code)
        if fn is not None:
            dest = slot(op.dests[0])
            ac, av = self._operand(fprog, op.srcs[0])
            if ac:
                def step(frame, _fn=fn, _d=dest, _k=av):
                    frame.regs[_d] = _fn(_k)
            else:
                def step(frame, _fn=fn, _d=dest, _s=av):
                    regs = frame.regs
                    regs[_d] = _fn(regs[_s])
            return step
        fn = _TERNARY.get(code)
        if fn is not None:
            dest = slot(op.dests[0])
            g0 = self._getter(fprog, op.srcs[0])
            g1 = self._getter(fprog, op.srcs[1])
            g2 = self._getter(fprog, op.srcs[2])

            def step(frame, _fn=fn, _d=dest, _g0=g0, _g1=g1, _g2=g2):
                regs = frame.regs
                regs[_d] = _fn(_g0(regs), _g1(regs), _g2(regs))

            return step

        # control
        if code is Opcode.JUMP:
            transfer = ("jump", op.target)
            return lambda frame, _t=transfer: _t
        if code in (Opcode.BR, Opcode.BR_WLOOP):
            transfer = ("jump", op.target)
            cmpfn = _CMP[op.attrs["cmp"]]
            g0 = self._getter(fprog, op.srcs[0])
            g1 = self._getter(fprog, op.srcs[1])

            def step(frame, _t=transfer, _c=cmpfn, _g0=g0, _g1=g1):
                regs = frame.regs
                if _c(_g0(regs), _g1(regs)):
                    return _t
                return None

            return step
        if code is Opcode.CLOOP_SET:
            lc_id = op.attrs["lc"]
            g0 = self._getter(fprog, op.srcs[0])

            def step(frame, _lc=lc_id, _g0=g0):
                frame.lc[_lc] = int(_g0(frame.regs))
                return None

            return step
        if code is Opcode.BR_CLOOP:
            transfer = ("jump", op.target)
            lc_id = op.attrs["lc"]

            def step(frame, _t=transfer, _lc=lc_id):
                lc = frame.lc
                count = lc.get(_lc, 0) - 1
                lc[_lc] = count
                if count > 0:
                    return _t
                return None

            return step
        if code in (Opcode.REC_CLOOP, Opcode.REC_WLOOP):
            if self.vliw:
                return self._rec_step(fprog, op, label)
            return self._lc_reload_step(fprog, op)
        if code in (Opcode.EXEC_CLOOP, Opcode.EXEC_WLOOP):
            return self._lc_reload_step(fprog, op)
        if code is Opcode.RET:
            if not op.srcs:
                transfer = ("ret", None)
                return lambda frame, _t=transfer: _t
            g0 = self._getter(fprog, op.srcs[0])
            return lambda frame, _g0=g0: ("ret", _g0(frame.regs))
        if code is Opcode.CALL:
            return self._call_step(fprog, op)

        # memory
        if code is Opcode.LD:
            dest = slot(op.dests[0])
            read = sim.memory.read
            g0 = self._getter(fprog, op.srcs[0])
            g1 = self._getter(fprog, op.srcs[1])

            def step(frame, _d=dest, _rd=read, _g0=g0, _g1=g1):
                regs = frame.regs
                regs[_d] = _rd(int(_g0(regs)) + int(_g1(regs)))
                return None

            return step
        if code is Opcode.ST:
            write = sim.memory.write
            st_value = sim._st_value
            g0 = self._getter(fprog, op.srcs[0])
            g1 = self._getter(fprog, op.srcs[1])
            g2 = self._getter(fprog, op.srcs[2])

            def step(frame, _wr=write, _st=st_value, _g0=g0, _g1=g1, _g2=g2):
                regs = frame.regs
                _wr(int(_g0(regs)) + int(_g1(regs)), _st(_g2(regs)))
                return None

            return step

        # predicates
        if code is Opcode.PRED_SET:
            dest = slot(op.dests[0])
            g0 = self._getter(fprog, op.srcs[0])

            def step(frame, _d=dest, _g0=g0):
                regs = frame.regs
                regs[_d] = 1 if _g0(regs) else 0
                return None

            return step
        if code is Opcode.PRED_DEF:
            cmpfn = _CMP[op.attrs["cmp"]]
            g0 = self._getter(fprog, op.srcs[0])
            g1 = self._getter(fprog, op.srcs[1])
            gslot = slot(op.guard) if op.guard is not None else None
            # fold Table 2 at decode: one write list per (guard, cond), so
            # execution is a table index plus stores — no per-dest dispatch
            table = tuple(
                tuple(
                    (slot(dest), update)
                    for dest, ptype in zip(op.dests, op.attrs["ptypes"])
                    if (update := pred_update(ptype, gc >> 1, gc & 1))
                    is not None
                )
                for gc in range(4)
            )
            if gslot is None:
                true_writes = table[3]
                false_writes = table[2]

                def step(frame, _c=cmpfn, _g0=g0, _g1=g1,
                         _t=true_writes, _f=false_writes):
                    regs = frame.regs
                    for dslot, value in (_t if _c(_g0(regs), _g1(regs))
                                         else _f):
                        regs[dslot] = value
                    return None

                return step

            def step(frame, _c=cmpfn, _g0=g0, _g1=g1, _gs=gslot, _t=table):
                regs = frame.regs
                gc = 2 if regs[_gs] else 0
                if _c(_g0(regs), _g1(regs)):
                    gc |= 1
                for dslot, value in _t[gc]:
                    regs[dslot] = value
                return None

            return step

        def unknown(frame, _op=op):
            raise SimError(f"interpreter cannot execute {_op!r}")

        return unknown

    def _lc_reload_step(self, fprog: FunctionProgram, op):
        """rec/exec directives on the functional engine (and exec on the
        VLIW): functionally they (re)load the loop counter."""
        if not op.srcs or "lc" not in op.attrs:
            return _nop_step
        lc_id = op.attrs["lc"]
        g0 = self._getter(fprog, op.srcs[0])

        def step(frame, _lc=lc_id, _g0=g0):
            frame.lc[_lc] = int(_g0(frame.regs))
            return None

        return step

    def _rec_step(self, fprog: FunctionProgram, op, label: str):
        """VLIW rec directive: drive the loop buffer's state machine.

        Dispatched dynamically through the simulator's ``_do_rec`` method
        (never inlined at decode time) so class-level instrumentation —
        notably the fuzzer's injected faults, which monkeypatch
        ``VLIWSimulator._do_rec`` — applies to the fast engine too.  Rec
        directives fire once per loop entry, so the dispatch is free.
        """
        sim = self.sim
        key = (fprog.name, label)

        def step(frame, _sim=sim, _k=key, _op=op):
            _sim._do_rec(frame, _k, _op)
            return None

        return step

    def _call_step(self, fprog: FunctionProgram, op):
        sim = self.sim
        callee_name = op.attrs["callee"]
        getters = tuple(self._getter(fprog, src) for src in op.srcs)
        dest = fprog.slot(op.dests[0]) if op.dests else None
        if self.vliw:
            penalty = sim.machine.branch_penalty

            def step(frame):
                counters = sim.counters
                counters.branch_bubbles += penalty
                counters.cycles += penalty
                regs = frame.regs
                result = sim._call(sim.module.function(callee_name),
                                   [g(regs) for g in getters])
                if dest is not None:
                    regs[dest] = result if result is not None else 0
                return None

            return step

        def step(frame):
            regs = frame.regs
            result = sim._call(sim.module.function(callee_name),
                               [g(regs) for g in getters])
            if dest is not None:
                regs[dest] = result if result is not None else 0
            return None

        return step


def _binary_step(fn, dest, ac, av, bc, bv):
    """Specialized two-source compute thunk (const operands folded)."""
    if ac and bc:
        def step(frame, _fn=fn, _d=dest, _a=av, _b=bv):
            frame.regs[_d] = _fn(_a, _b)
    elif ac:
        def step(frame, _fn=fn, _d=dest, _a=av, _b=bv):
            regs = frame.regs
            regs[_d] = _fn(_a, regs[_b])
    elif bc:
        def step(frame, _fn=fn, _d=dest, _a=av, _b=bv):
            regs = frame.regs
            regs[_d] = _fn(regs[_a], _b)
    else:
        def step(frame, _fn=fn, _d=dest, _a=av, _b=bv):
            regs = frame.regs
            regs[_d] = _fn(regs[_a], regs[_b])
    return step


# --------------------------------------------------------------------------
# fast engines


class _FastCallMixin:
    """Shared frame setup for the fast engines (slot-list register file)."""

    cache: TraceCache

    def _val(self, frame, src):
        # reference-engine helper, usable on fast frames too: methods
        # inherited from the reference classes (``_do_rec``, including any
        # monkeypatched instrumentation wrapping them) call it with
        # whatever frame the engine runs
        if isinstance(frame, _FastFrame):
            if isinstance(src, VReg):
                index = frame.fprog._slots.get(src)
                return frame.regs[index] if index is not None else 0
            if isinstance(src, (Imm, FImm)):
                return src.value
            if isinstance(src, GlobalRef):
                return self.loader.global_addr(src.name)
            raise SimError(f"cannot evaluate operand {src!r}")
        return super()._val(frame, src)

    def _call(self, func, args):
        if len(args) != len(func.params):
            raise SimError(
                f"{func.name}: expected {len(func.params)} args, "
                f"got {len(args)}"
            )
        fprog = self.cache.function_program(func)
        regs = [0] * fprog.nslots
        for index, arg in zip(fprog.param_slots, args):
            regs[index] = arg
        frame = _FastFrame(func, fprog, regs, {})
        if func.frame_words:
            base = self.loader.push_frame(func.frame_words)
            if fprog.frame_base_slot is not None:
                regs[fprog.frame_base_slot] = base
        if self.profile is not None:
            fprog.calls += 1
        try:
            return self._run_frame(frame)
        finally:
            if func.frame_words:
                self.loader.pop_frame(func.frame_words)


class FastInterpreter(_FastCallMixin, Interpreter):
    """Predecoded functional interpreter; bit-identical to the reference
    (values, traps, profile counts), selectable via ``REPRO_ENGINE=fast``."""

    engine = "fast"

    def __init__(self, module, profile=None,
                 max_steps: int = 200_000_000) -> None:
        super().__init__(module, profile=profile, max_steps=max_steps)
        self.cache = TraceCache(self, vliw=False)

    def run(self, entry: str, args: list[int] | None = None) -> RunResult:
        func = self.module.function(entry)
        try:
            value = self._call(func, list(args or []))
        finally:
            if self.profile is not None:
                self.cache.finalize_profile(self.profile)
        return RunResult(value, self.steps, self.memory, self.loader,
                         self.profile)

    def _run_frame(self, frame: _FastFrame):
        fprog = frame.fprog
        prog = fprog.block_program(fprog.entry_label)
        profiling = self.profile is not None
        max_steps = self.max_steps
        while True:
            if len(prog.block.ops) != prog.n:
                prog = fprog.redecode(prog.label)
            if profiling:
                prog.passes += 1
            transfer = None
            i = 0
            if self.steps + prog.n > max_steps:
                for step in prog.thunks:
                    self.steps += 1
                    if self.steps > max_steps:
                        raise StepLimitExceeded(
                            f"exceeded {max_steps} steps")
                    i += 1
                    transfer = step(frame)
                    if transfer is not None:
                        break
            else:
                for step in prog.thunks:
                    i += 1
                    transfer = step(frame)
                    if transfer is not None:
                        break
                self.steps += i
            if profiling and i:
                prog.prefix_counts[i - 1] += 1
            if transfer is None:
                nxt = prog.next_label
                if nxt is None:
                    raise SimError(
                        f"{frame.func.name}: fell off the end at "
                        f"{prog.label}"
                    )
                if profiling:
                    edges = prog.edge_counts
                    edges[nxt] = edges.get(nxt, 0) + 1
                prog = fprog.block_program(nxt)
                continue
            if transfer[0] == "ret":
                return transfer[1]
            label = transfer[1]
            if profiling:
                if prog.is_cond[i - 1]:
                    prog.taken_counts[i - 1] += 1
                edges = prog.edge_counts
                edges[label] = edges.get(label, 0) + 1
            prog = fprog.block_program(label)


class FastVLIWSimulator(_FastCallMixin, VLIWSimulator):
    """Predecoded cycle-level VLIW; ``SimCounters``/``LoopFetchStats`` and
    obs instants are bit-identical to the reference simulator."""

    engine = "fast"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.cache = TraceCache(self, vliw=True)

    def _run_frame(self, frame: _FastFrame):  # noqa: C901
        fprog = frame.fprog
        prog = fprog.block_program(fprog.entry_label)
        counters = self.counters
        max_steps = self.max_steps
        while True:
            if len(prog.block.ops) != prog.n:
                prog = fprog.redecode(prog.label)
            key = prog.key
            iterating = self._last_key == key
            transfer = None
            i = 0
            if self.steps + prog.n > max_steps:
                for step in prog.thunks:
                    self.steps += 1
                    if self.steps > max_steps:
                        raise StepLimitExceeded(
                            f"exceeded {max_steps} steps")
                    i += 1
                    transfer = step(frame)
                    if transfer is not None:
                        break
            else:
                for step in prog.thunks:
                    i += 1
                    transfer = step(frame)
                    if transfer is not None:
                        break
                self.steps += i

            # --- pass accounting (mirrors VLIWSimulator._account_pass) ---
            executed = prog.executed_at[i - 1] if i else 0
            stats = prog.stats
            if stats is None:
                stats = prog.stats = counters.block_stats(*key)
            stats.passes += 1
            if prog.mod_ii is not None:
                cycles = prog.mod_ii if iterating else prog.mod_len
            elif prog.cycles_at is not None:
                cycles = (prog.cycles_at[i - 1] if transfer is not None
                          else prog.sched_len)
            else:
                cycles = executed if executed else 1
            counters.cycles += cycles
            counters.bundles += cycles

            buffer = self.buffer
            state = (buffer.state_of(prog.buffer_key)
                     if buffer is not None else LoopState.ABSENT)
            counters.ops_issued += executed
            lstats = prog.lstats
            if lstats is None:
                lstats = counters.per_loop.get(prog.buffer_key)
                if lstats is not None:
                    prog.lstats = lstats
            if lstats is not None:
                lstats.passes += 1
            full_pass = transfer is None or i == prog.n
            if state is LoopState.RESIDENT:
                counters.ops_from_buffer += executed
                stats.ops_from_buffer += executed
                stats.buffered_passes += 1
                if lstats is not None:
                    lstats.ops_from_buffer += executed
                    lstats.buffered_passes += 1
            else:
                counters.ops_from_memory += executed
                stats.ops_from_memory += executed
                if lstats is not None:
                    lstats.ops_from_memory += executed
                if state is LoopState.RECORDING and full_pass:
                    buffer.finish_recording(prog.buffer_key)

            buffered = state is not LoopState.ABSENT
            penalty = prog.penalty
            if transfer is None:
                bubble = (penalty if (buffered and not prog.is_counted
                                      and prog.is_loop_block) else 0)
            elif transfer[0] == "ret":
                bubble = penalty
            elif transfer[1] == prog.label:
                bubble = 0 if buffered else penalty
            elif buffered and prog.is_counted and prog.is_brcloop[i - 1]:
                bubble = 0
            else:
                bubble = penalty
            counters.branch_bubbles += bubble
            counters.cycles += bubble

            self._last_key = (key if (transfer is not None
                                      and transfer[0] == "jump"
                                      and transfer[1] == prog.label)
                              else None)

            # --- transfer ---
            if transfer is None:
                nxt = prog.next_label
                if nxt is None:
                    raise SimError(
                        f"{frame.func.name}: fell off the end at "
                        f"{prog.label}"
                    )
                prog = fprog.block_program(nxt)
                continue
            if transfer[0] == "ret":
                return transfer[1]
            prog = fprog.block_program(transfer[1])
