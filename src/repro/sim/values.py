"""32-bit machine-value arithmetic shared by the simulators."""

from __future__ import annotations

WORD_BITS = 32
WORD_MASK = (1 << WORD_BITS) - 1
INT_MIN = -(1 << (WORD_BITS - 1))
INT_MAX = (1 << (WORD_BITS - 1)) - 1


def wrap32(value: int) -> int:
    """Wrap a Python int to a signed 32-bit machine value.

    The overwhelmingly common case — an int already in range — returns the
    *same object* (CPython's small-int cache plus identity reuse for big
    ones), skipping the three arithmetic ops and the fresh allocation of
    the general formula.  The type check is exact on purpose: ``bool`` and
    ``float`` take the formula path so booleans still box to plain ints
    and floats still raise ``TypeError``, as before.
    """
    if value.__class__ is int and INT_MIN <= value <= INT_MAX:
        return value
    return ((value - INT_MIN) & WORD_MASK) + INT_MIN


def to_unsigned(value: int) -> int:
    return value & WORD_MASK


def saturate(value: int, bits: int) -> int:
    """Clamp ``value`` to the signed ``bits``-bit range."""
    lo = -(1 << (bits - 1))
    hi = (1 << (bits - 1)) - 1
    if value < lo:
        return lo
    if value > hi:
        return hi
    return value


def compare(test: str, a: int, b: int) -> int:
    """Evaluate a comparison test; returns 0 or 1."""
    if test == "eq":
        return int(a == b)
    if test == "ne":
        return int(a != b)
    if test == "lt":
        return int(a < b)
    if test == "le":
        return int(a <= b)
    if test == "gt":
        return int(a > b)
    if test == "ge":
        return int(a >= b)
    if test == "ltu":
        return int(to_unsigned(a) < to_unsigned(b))
    if test == "geu":
        return int(to_unsigned(a) >= to_unsigned(b))
    raise ValueError(f"unknown comparison test {test!r}")


def cdiv(a: int, b: int) -> int:
    """C-style division: truncation toward zero."""
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def crem(a: int, b: int) -> int:
    """C-style remainder: sign follows the dividend."""
    return a - cdiv(a, b) * b
