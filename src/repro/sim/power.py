"""Instruction-fetch energy model (Section 7.2, Figure 8(b)).

The paper calibrates with Cacti 2.0 at 0.13um: "fetching an operation from
a single-port, 256-operation buffer (assuming 32-bit operations) consumes
41.8 times less power than a fetch from a 512KB, 2 read/write port,
non-cache memory", and notes that memory power commonly scales about
linearly with size.  We therefore model per-operation fetch energy as:

* global memory: fixed ``MEMORY_ENERGY`` = 41.8 units;
* loop buffer of capacity C ops: ``C / 256`` units (linear size scaling
  through the calibration point: 1.0 unit at the paper's 256-op buffer).

Reported quantities are ratios of sums of these, so the unit is arbitrary.
"""

from __future__ import annotations

from dataclasses import dataclass

#: energy units per op fetched from the 512 KB global memory
MEMORY_ENERGY = 41.8
#: calibration buffer size (ops)
CALIBRATION_CAPACITY = 256


def buffer_energy_per_op(capacity: int) -> float:
    """Per-op fetch energy of a ``capacity``-op loop buffer."""
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    return capacity / CALIBRATION_CAPACITY


@dataclass
class FetchEnergy:
    """Fetch-energy rollup for one simulated run."""

    ops_from_memory: int
    ops_from_buffer: int
    buffer_capacity: int

    @property
    def memory_energy(self) -> float:
        return self.ops_from_memory * MEMORY_ENERGY

    @property
    def buffer_energy(self) -> float:
        return self.ops_from_buffer * buffer_energy_per_op(self.buffer_capacity)

    @property
    def total(self) -> float:
        return self.memory_energy + self.buffer_energy

    def normalized_to(self, baseline: "FetchEnergy") -> float:
        """This run's fetch energy relative to ``baseline``'s."""
        if baseline.total == 0:
            return 0.0
        return self.total / baseline.total


def unbuffered_baseline(total_ops: int) -> FetchEnergy:
    """The Figure 8(b) normalization point: every op from global memory."""
    return FetchEnergy(ops_from_memory=total_ops, ops_from_buffer=0,
                       buffer_capacity=CALIBRATION_CAPACITY)
