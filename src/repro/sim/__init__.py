"""Simulators: functional interpreter, cycle-level VLIW model, power model."""
