"""Functional (architecture-independent) IR interpreter.

Serves two roles from the paper's methodology:

1. **Profiling** — executes a training input and fills a
   :class:`~repro.analysis.profile.Profile` with block, edge and branch
   frequencies that drive hyperblock formation, inlining, the loop
   transformations and loop-buffer assignment.
2. **Correctness oracle** — the transforms are semantics-preserving, so the
   architectural results (memory contents, return value) of transformed code
   must equal those of the original; integration tests compare interpreter
   runs before and after each pipeline stage.

The interpreter executes operations in block order with full predicate
semantics (Table 2), so predicated and branching code are both handled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.profile import Profile
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.opcodes import Opcode
from repro.ir.operation import Operation
from repro.ir.preddef import pred_update
from repro.ir.registers import FImm, GlobalRef, Imm, VReg
from repro.sim.memory import Loader, Memory
from repro.sim.values import cdiv, compare, crem, saturate, wrap32


class SimError(Exception):
    """A runtime fault in simulated code (bad address, div-by-zero, ...)."""


class StepLimitExceeded(SimError):
    """The step budget ran out (probable infinite loop in test code)."""


@dataclass
class RunResult:
    """Outcome of one interpreted execution."""

    value: int | float | None
    steps: int
    memory: Memory
    loader: Loader
    profile: Profile | None = None


@dataclass
class _Frame:
    func: Function
    regs: dict[VReg, int | float] = field(default_factory=dict)
    lc: dict[str, int] = field(default_factory=dict)


class Interpreter:
    """Executes a module starting from a named entry function."""

    def __init__(
        self,
        module: Module,
        profile: Profile | None = None,
        max_steps: int = 200_000_000,
    ) -> None:
        self.module = module
        self.profile = profile
        self.max_steps = max_steps
        self.loader = Loader(module)
        self.memory = self.loader.memory
        self.steps = 0

    # -- public API -------------------------------------------------------------

    def run(self, entry: str, args: list[int] | None = None) -> RunResult:
        func = self.module.function(entry)
        value = self._call(func, list(args or []))
        return RunResult(value, self.steps, self.memory, self.loader, self.profile)

    # -- execution ---------------------------------------------------------------

    def _call(self, func: Function, args: list[int | float]) -> int | float | None:
        if len(args) != len(func.params):
            raise SimError(
                f"{func.name}: expected {len(func.params)} args, got {len(args)}"
            )
        frame = _Frame(func)
        for param, arg in zip(func.params, args):
            frame.regs[param] = arg
        if func.frame_words:
            base = self.loader.push_frame(func.frame_words)
            if func.frame_base is not None:
                frame.regs[func.frame_base] = base
        if self.profile is not None:
            self.profile.enter_function(func.name)
        try:
            return self._run_frame(frame)
        finally:
            if func.frame_words:
                self.loader.pop_frame(func.frame_words)

    def _run_frame(self, frame: _Frame) -> int | float | None:
        func = frame.func
        block = func.entry
        while True:
            if self.profile is not None:
                self.profile.enter_block(func.name, block.label)
            transfer = self._run_block(frame, block)
            if transfer is None:
                # fallthrough to the next block in layout order
                idx = func.blocks.index(block)
                if idx + 1 >= len(func.blocks):
                    raise SimError(
                        f"{func.name}: fell off the end at {block.label}"
                    )
                nxt = func.blocks[idx + 1]
                self._edge(func.name, block.label, nxt.label)
                block = nxt
                continue
            kind, payload = transfer
            if kind == "ret":
                return payload
            assert kind == "jump"
            self._edge(func.name, block.label, payload)
            block = func.block(payload)

    def _edge(self, func: str, src: str, dst: str) -> None:
        if self.profile is not None:
            self.profile.traverse_edge(func, src, dst)

    def _run_block(self, frame: _Frame, block) -> tuple[str, object] | None:
        """Execute a block; returns a transfer ('jump', label) / ('ret', value)
        or ``None`` for fallthrough."""
        func = frame.func
        for op in block.ops:
            self.steps += 1
            if self.steps > self.max_steps:
                raise StepLimitExceeded(f"exceeded {self.max_steps} steps")
            if self.profile is not None and op.opcode != Opcode.NOP:
                self.profile.record_op(func.name, op.uid)
            guard_ok = True
            if op.guard is not None:
                guard_ok = bool(frame.regs.get(op.guard, 0))
            if op.opcode == Opcode.PRED_DEF:
                self._exec_pred_def(frame, op, guard_ok)
                continue
            if not guard_ok:
                continue
            transfer = self._exec_op(frame, op)
            if transfer is not None:
                if transfer[0] == "jump" and self.profile is not None:
                    if op.is_conditional_branch:
                        self.profile.record_taken(func.name, op.uid)
                return transfer
        return None

    # -- operand evaluation ----------------------------------------------------------

    def _val(self, frame: _Frame, src) -> int | float:
        if isinstance(src, VReg):
            return frame.regs.get(src, 0)
        if isinstance(src, Imm):
            return src.value
        if isinstance(src, FImm):
            return src.value
        if isinstance(src, GlobalRef):
            return self.loader.global_addr(src.name)
        raise SimError(f"cannot evaluate operand {src!r}")

    # -- op execution -------------------------------------------------------------------

    def _exec_pred_def(self, frame: _Frame, op: Operation, guard_ok: bool) -> None:
        a = self._val(frame, op.srcs[0])
        b = self._val(frame, op.srcs[1])
        cond = compare(op.attrs["cmp"], a, b)
        for dest, ptype in zip(op.dests, op.attrs["ptypes"]):
            update = pred_update(ptype, 1 if guard_ok else 0, cond)
            if update is not None:
                frame.regs[dest] = update

    def _exec_op(self, frame: _Frame, op: Operation):  # noqa: C901
        code = op.opcode
        regs = frame.regs
        val = lambda i: self._val(frame, op.srcs[i])  # noqa: E731

        if code == Opcode.NOP:
            return None

        # control
        if code == Opcode.JUMP:
            return ("jump", op.target)
        if code in (Opcode.BR, Opcode.BR_WLOOP):
            if compare(op.attrs["cmp"], val(0), val(1)):
                return ("jump", op.target)
            return None
        if code == Opcode.CLOOP_SET:
            frame.lc[op.attrs["lc"]] = int(val(0))
            return None
        if code == Opcode.BR_CLOOP:
            lc_id = op.attrs["lc"]
            count = frame.lc.get(lc_id, 0) - 1
            frame.lc[lc_id] = count
            if count > 0:
                return ("jump", op.target)
            return None
        if code in (Opcode.REC_CLOOP, Opcode.EXEC_CLOOP):
            # fetch directives; functionally they (re)load the loop counter
            if op.srcs:
                frame.lc[op.attrs["lc"]] = int(val(0))
            return None
        if code in (Opcode.REC_WLOOP, Opcode.EXEC_WLOOP):
            return None
        if code == Opcode.RET:
            return ("ret", val(0) if op.srcs else None)
        if code == Opcode.CALL:
            callee = self.module.function(op.attrs["callee"])
            args = [self._val(frame, src) for src in op.srcs]
            result = self._call(callee, args)
            if op.dests:
                regs[op.dests[0]] = result if result is not None else 0
            return None

        # memory
        if code == Opcode.LD:
            addr = int(val(0)) + int(val(1))
            regs[op.dests[0]] = self.memory.read(addr)
            return None
        if code == Opcode.ST:
            addr = int(val(0)) + int(val(1))
            self.memory.write(addr, self._st_value(val(2)))
            return None

        # predicates
        if code == Opcode.PRED_SET:
            regs[op.dests[0]] = 1 if val(0) else 0
            return None

        # everything else computes a single register result
        regs[op.dests[0]] = evaluate_op(op, val)
        return None

    @staticmethod
    def _st_value(value: int | float) -> int:
        # branch-free for the common int case: wrap32 raises TypeError on
        # floats (no __and__ with an int), which maps to the store trap
        try:
            return wrap32(value)
        except TypeError:
            raise SimError(
                "cannot store a float into word memory directly") from None


def run_module(
    module: Module,
    entry: str = "main",
    args: list[int] | None = None,
    profile: Profile | None = None,
    max_steps: int = 200_000_000,
    engine: str | None = None,
) -> RunResult:
    """Convenience wrapper: interpret ``module`` from ``entry``.

    ``engine`` selects the execution engine (``"ref"`` — this module's
    reference interpreter — or ``"fast"``, the predecoded engine in
    :mod:`repro.sim.engine`); default per ``REPRO_ENGINE``, else fast.
    """
    from repro.sim.engine import make_interpreter

    interp = make_interpreter(module, profile=profile, max_steps=max_steps,
                              engine=engine)
    return interp.run(entry, args)


def profile_module(
    module: Module,
    entry: str = "main",
    args: list[int] | None = None,
    max_steps: int = 200_000_000,
    engine: str | None = None,
) -> tuple[Profile, RunResult]:
    """Run once with profiling enabled; returns the profile and the result."""
    profile = Profile()
    result = run_module(module, entry, args, profile=profile,
                        max_steps=max_steps, engine=engine)
    return profile, result


def evaluate_op(op: Operation, val) -> int | float:  # noqa: C901
    """Pure evaluation of a single-destination compute operation.

    ``val(i)`` supplies the value of source ``i``.  Shared by the
    functional interpreter and the slot-predication harness.
    """
    code = op.opcode
    if code == Opcode.MOV:
        v = val(0)
        return wrap32(v) if isinstance(v, int) else v
    if code == Opcode.ADD:
        return wrap32(val(0) + val(1))
    if code == Opcode.SUB:
        return wrap32(val(0) - val(1))
    if code == Opcode.AND:
        return wrap32(val(0) & val(1))
    if code == Opcode.OR:
        return wrap32(val(0) | val(1))
    if code == Opcode.XOR:
        return wrap32(val(0) ^ val(1))
    if code == Opcode.SHL:
        return wrap32(val(0) << (val(1) & 31))
    if code == Opcode.SHR:
        return wrap32((val(0) & 0xFFFFFFFF) >> (val(1) & 31))
    if code == Opcode.SAR:
        return wrap32(val(0) >> (val(1) & 31))
    if code == Opcode.NEG:
        return wrap32(-val(0))
    if code == Opcode.NOT:
        return wrap32(~val(0))
    if code == Opcode.MIN:
        return min(val(0), val(1))
    if code == Opcode.MAX:
        return max(val(0), val(1))
    if code == Opcode.ABS:
        return wrap32(abs(val(0)))
    if code == Opcode.SADD:
        return saturate(val(0) + val(1), 16)
    if code == Opcode.SSUB:
        return saturate(val(0) - val(1), 16)
    if code == Opcode.SAT:
        return saturate(val(0), val(1))
    if code == Opcode.CLIP:
        return max(val(1), min(val(2), val(0)))
    if code == Opcode.SELECT:
        return val(1) if val(0) else val(2)
    if code == Opcode.CMP:
        return compare(op.attrs["cmp"], val(0), val(1))
    if code == Opcode.MUL:
        return wrap32(val(0) * val(1))
    if code == Opcode.MULH:
        return wrap32((val(0) * val(1)) >> 32)
    if code == Opcode.DIV:
        if val(1) == 0:
            raise SimError("division by zero")
        return wrap32(cdiv(val(0), val(1)))
    if code == Opcode.REM:
        if val(1) == 0:
            raise SimError("remainder by zero")
        return wrap32(crem(val(0), val(1)))
    if code == Opcode.FADD:
        return float(val(0)) + float(val(1))
    if code == Opcode.FSUB:
        return float(val(0)) - float(val(1))
    if code == Opcode.FMUL:
        return float(val(0)) * float(val(1))
    if code == Opcode.FDIV:
        if float(val(1)) == 0.0:
            raise SimError("float division by zero")
        return float(val(0)) / float(val(1))
    if code == Opcode.FCMP:
        return compare(op.attrs["cmp"], val(0), val(1))
    if code == Opcode.ITOF:
        return float(val(0))
    if code == Opcode.FTOI:
        return wrap32(int(val(0)))
    if code == Opcode.FMOV:
        return float(val(0))
    raise SimError(f"interpreter cannot execute {op!r}")
