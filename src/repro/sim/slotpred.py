"""Bundle-level model of the slot-based predication harness (Figure 4).

Executes one scheduled straight-line block cycle by cycle under the
paper's hardware scheme:

* each issue slot holds a **standing predicate** in its guard latch;
* an operation whose ``psens`` bit is set is nullified when its own
  slot's standing predicate is 0;
* a predicate define, when Table 2 calls for an update, drives the value
  and write lines of the 16-bit predicate bus toward the slots recorded
  in its ``slot_route``; the update is latched at end of cycle and
  visible to operations issuing in *subsequent* cycles (the 1-cycle
  generator-to-squash path of Section 7.3);
* two simultaneous writers to one slot are legal only when they drive
  the same value — otherwise the harness raises, which is the condition
  the compiler must prevent.

Used to validate architectural equivalence: for any scheduled block,
executing under this model must produce the same register/memory state as
sequential execution under the register-predicate model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.block import BasicBlock
from repro.ir.opcodes import Opcode
from repro.ir.preddef import pred_update
from repro.ir.registers import FImm, GlobalRef, Imm, VReg
from repro.sim.interp import SimError, evaluate_op
from repro.sim.values import compare, wrap32


class SlotWriteRace(SimError):
    """Two predicate defines drove one slot with different values."""


@dataclass
class HarnessState:
    regs: dict[VReg, int] = field(default_factory=dict)
    memory: dict[int, int] = field(default_factory=dict)
    standing: dict[int, int] = field(default_factory=dict)  # slot -> 0/1
    #: synthetic base addresses for module globals (assigned on first use)
    global_addrs: dict[str, int] = field(default_factory=dict)


def _value(state: HarnessState, operand):
    if isinstance(operand, VReg):
        return state.regs.get(operand, 0)
    if isinstance(operand, (Imm, FImm)):
        return operand.value
    if isinstance(operand, GlobalRef):
        if operand.name not in state.global_addrs:
            state.global_addrs[operand.name] = 0x1000 + 256 * len(state.global_addrs)
        return state.global_addrs[operand.name]
    raise SimError(f"slot harness cannot evaluate {operand!r}")


def run_slot_model(
    block: BasicBlock,
    schedule,
    initial_regs: dict[VReg, int] | None = None,
    initial_memory: dict[int, int] | None = None,
) -> HarnessState:
    """Execute a scheduled block under the slot-predication harness."""
    state = HarnessState(
        regs=dict(initial_regs or {}),
        memory=dict(initial_memory or {}),
        standing={slot: 0 for slot in range(8)},
    )
    by_cycle: dict[int, list] = {}
    for op in block.ops:
        if op.opcode == Opcode.NOP or op.uid not in schedule.placement:
            continue
        place = schedule.placement[op.uid]
        by_cycle.setdefault(place.cycle, []).append((place.slot, op))

    for cycle in sorted(by_cycle):
        reg_writes: dict[VReg, int] = {}
        mem_writes: dict[int, int] = {}
        bus: dict[int, int] = {}  # slot -> driven value

        # sample phase: all reads see start-of-cycle state
        for slot, op in sorted(by_cycle[cycle]):
            psens = bool(op.attrs.get("psens")) or op.guard is not None
            guard_ok = (state.standing.get(slot, 0) == 1) if psens else True

            if op.opcode in (Opcode.PRED_DEF, Opcode.PRED_SET):
                _drive_bus(state, op, slot, guard_ok, bus)
                continue
            if not guard_ok:
                continue
            _execute(state, op, reg_writes, mem_writes)

        # write phase
        for reg, value in reg_writes.items():
            state.regs[reg] = value
        for addr, value in mem_writes.items():
            state.memory[addr] = value
        for slot, value in bus.items():
            state.standing[slot] = value
    return state


def _drive_bus(state, op, slot, guard_ok, bus) -> None:
    guard = 1 if guard_ok else 0
    if op.opcode == Opcode.PRED_SET:
        updates = {repr(op.dests[0]): (1 if _value(state, op.srcs[0]) else 0)}
        route = op.attrs.get("slot_route", {})
        for name, value in updates.items():
            for target in route.get(name, []):
                _drive(bus, target, value)
        return
    cond = compare(op.attrs["cmp"],
                   _value(state, op.srcs[0]), _value(state, op.srcs[1]))
    route = op.attrs.get("slot_route", {})
    for dest, ptype in zip(op.dests, op.attrs["ptypes"]):
        update = pred_update(ptype, guard, cond)
        if update is None:
            continue
        for target in route.get(repr(dest), []):
            _drive(bus, target, update)


def _drive(bus: dict[int, int], slot: int, value: int) -> None:
    if slot in bus and bus[slot] != value:
        raise SlotWriteRace(f"slot {slot} driven with both 0 and 1")
    bus[slot] = value


def _execute(state, op, reg_writes, mem_writes) -> None:
    if op.opcode == Opcode.LD:
        addr = int(_value(state, op.srcs[0])) + int(_value(state, op.srcs[1]))
        reg_writes[op.dests[0]] = state.memory.get(addr, 0)
        return
    if op.opcode == Opcode.ST:
        addr = int(_value(state, op.srcs[0])) + int(_value(state, op.srcs[1]))
        mem_writes[addr] = wrap32(_value(state, op.srcs[2]))
        return
    if op.is_branch:
        raise SimError("slot harness handles straight-line code only")
    reg_writes[op.dests[0]] = evaluate_op(op, lambda i: _value(state, op.srcs[i]))


def run_register_model(
    block: BasicBlock,
    initial_regs: dict[VReg, int] | None = None,
    initial_memory: dict[int, int] | None = None,
) -> HarnessState:
    """Sequential execution under classic register-predicate semantics —
    the reference the slot harness must match."""
    state = HarnessState(
        regs=dict(initial_regs or {}),
        memory=dict(initial_memory or {}),
    )
    for op in block.ops:
        if op.opcode == Opcode.NOP:
            continue
        guard_ok = True
        if op.guard is not None:
            guard_ok = bool(state.regs.get(op.guard, 0))
        if op.opcode == Opcode.PRED_DEF:
            cond = compare(op.attrs["cmp"],
                           _value(state, op.srcs[0]), _value(state, op.srcs[1]))
            for dest, ptype in zip(op.dests, op.attrs["ptypes"]):
                update = pred_update(ptype, 1 if guard_ok else 0, cond)
                if update is not None:
                    state.regs[dest] = update
            continue
        if op.opcode == Opcode.PRED_SET:
            if guard_ok:
                state.regs[op.dests[0]] = 1 if _value(state, op.srcs[0]) else 0
            continue
        if not guard_ok:
            continue
        if op.opcode == Opcode.LD:
            addr = int(_value(state, op.srcs[0])) + int(_value(state, op.srcs[1]))
            state.regs[op.dests[0]] = state.memory.get(addr, 0)
            continue
        if op.opcode == Opcode.ST:
            addr = int(_value(state, op.srcs[0])) + int(_value(state, op.srcs[1]))
            state.memory[addr] = wrap32(_value(state, op.srcs[2]))
            continue
        if op.is_branch:
            raise SimError("register model handles straight-line code only")
        state.regs[op.dests[0]] = evaluate_op(
            op, lambda i, _op=op: _value(state, _op.srcs[i])
        )
    return state


def states_equivalent(a: HarnessState, b: HarnessState) -> bool:
    """Same architectural outcome: all non-predicate registers + memory."""
    regs_a = {r: v for r, v in a.regs.items() if not r.is_predicate}
    regs_b = {r: v for r, v in b.regs.items() if not r.is_predicate}
    keys = set(regs_a) | set(regs_b)
    if any(regs_a.get(k, 0) != regs_b.get(k, 0) for k in keys):
        return False
    addrs = set(a.memory) | set(b.memory)
    return all(a.memory.get(k, 0) == b.memory.get(k, 0) for k in addrs)
