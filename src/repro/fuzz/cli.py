"""``python -m repro.fuzz`` — drive the differential fuzzer from the shell.

Examples::

    # fuzz 300 seeded programs over the default config grid
    python -m repro.fuzz run --seeds 300 --workers 4

    # demonstrate that an injected miscompilation is caught + minimized
    python -m repro.fuzz run --seeds 50 --inject-fault ifconvert-guard-drop

    # replay the checked-in regression corpus
    python -m repro.fuzz replay

    # minimize one divergent seed by hand and print the reproducer
    python -m repro.fuzz minimize --seed 1234 --inject-fault dce-drop-store

    # inspect what a seed generates
    python -m repro.fuzz gen --seed 7

``run`` exits non-zero on any divergence; every divergence is minimized
(unless ``--no-minimize``) and written into the corpus directory so it
becomes a permanent regression test, and into ``--artifacts`` (if given)
for CI upload.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.fuzz.corpus import Corpus, CorpusEntry, default_corpus
from repro.fuzz.faults import FAULTS
from repro.fuzz.gen import generate
from repro.fuzz.oracle import (
    DEFAULT_MAX_STEPS,
    check_many,
    check_program,
    default_configs,
    oracle_configs,
    retarget_configs,
    service_configs,
)
from repro.fuzz.reduce import DEFAULT_BUDGET, divergence_predicate, minimize
from repro.runner.cache import default_cache


def _csv(value: str) -> list[str]:
    return [item.strip() for item in value.split(",") if item.strip()]


def _capacities(value: str) -> list[int | None]:
    out: list[int | None] = []
    for item in _csv(value):
        out.append(None if item.lower() in ("none", "off") else int(item))
    return out


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Differential fuzzing: random MKC programs through "
                    "the interpreter and every pipeline configuration.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_grid(p):
        p.add_argument("--pipelines", type=_csv,
                       default=["traditional", "aggressive"],
                       metavar="PIPE[,PIPE...]")
        p.add_argument("--capacities", type=_capacities,
                       default=[None, 16, 64], metavar="N[,N...]",
                       help="buffer capacities; 'none' disables the buffer "
                            "(default none,16,64)")
        p.add_argument("--no-checked", action="store_true",
                       help="skip checked-mode sanitizer sweeps (faster, "
                            "misses lint-only divergences)")
        p.add_argument("--workers", type=int, default=None,
                       help="process-pool width (default: REPRO_WORKERS or "
                            "core count; 0/1 = serial)")
        p.add_argument("--max-steps", type=int, default=DEFAULT_MAX_STEPS)
        p.add_argument("--inject-fault", choices=sorted(FAULTS),
                       default=None, metavar="NAME",
                       help="deliberately miscompile to validate the "
                            f"fuzzer ({', '.join(sorted(FAULTS))})")
        p.add_argument("--sched-oracle", action="store_true",
                       help="add configs that swap exact-oracle modulo "
                            "schedules into the backend and check them "
                            "for semantic agreement")
        p.add_argument("--retarget", action="store_true",
                       help="add configs that retarget a capacity-"
                            "independent base through with_buffer under "
                            "both the overlay and legacy implementations")
        p.add_argument("--service", action="store_true",
                       help="add configs whose compiled half is routed "
                            "through an in-process repro.serve service, "
                            "checking the full request path against the "
                            "interpreter")

    run = sub.add_parser("run", help="fuzz N seeded random programs")
    add_grid(run)
    run.add_argument("--seeds", type=int, default=100, metavar="N",
                     help="number of programs to generate (default 100)")
    run.add_argument("--start", type=int, default=0, metavar="S",
                     help="first seed (default 0)")
    run.add_argument("--corpus", default=None, metavar="DIR",
                     help="corpus dir for minimized reproducers (default: "
                          "REPRO_FUZZ_CORPUS or tests/fuzz_corpus)")
    run.add_argument("--artifacts", default=None, metavar="DIR",
                     help="also write reproducers + a summary here "
                          "(for CI upload)")
    run.add_argument("--cache-dir", default=None, metavar="DIR",
                     help="reuse the runner artifact cache for verdicts "
                          "(off by default: fuzzing wants fresh checks)")
    run.add_argument("--no-minimize", action="store_true")
    run.add_argument("--budget", type=int, default=DEFAULT_BUDGET,
                     help="max predicate evaluations per minimization")
    run.add_argument("--json", dest="json_path", default=None, metavar="FILE")
    run.add_argument("--quiet", action="store_true")

    replay = sub.add_parser("replay",
                            help="re-check every corpus reproducer")
    add_grid(replay)
    replay.add_argument("--corpus", default=None, metavar="DIR")
    replay.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="serve unchanged entries from the artifact "
                             "cache")
    replay.add_argument("--quiet", action="store_true")

    mini = sub.add_parser("minimize", help="minimize one divergent program")
    add_grid(mini)
    mini.add_argument("--seed", type=int, default=None)
    mini.add_argument("--budget", type=int, default=DEFAULT_BUDGET)
    mini.add_argument("--save", action="store_true",
                      help="write the reproducer into the corpus")
    mini.add_argument("--corpus", default=None, metavar="DIR")

    gen = sub.add_parser("gen", help="print the program for one seed")
    gen.add_argument("--seed", type=int, required=True)
    return parser


def _configs_from(args) -> tuple:
    configs = default_configs(args.pipelines, args.capacities,
                              checked=not args.no_checked)
    if getattr(args, "sched_oracle", False):
        configs += oracle_configs(args.pipelines)
    if getattr(args, "retarget", False):
        configs += retarget_configs(args.pipelines)
    if getattr(args, "service", False):
        configs += service_configs(args.pipelines)
    return configs


def _minimize_report(report, program, configs, args):
    failing = [v.config for v in report.divergences]
    predicate = divergence_predicate(failing, args.max_steps,
                                     args.inject_fault)
    return minimize(program, predicate, budget=args.budget)


def _cmd_run(args) -> int:
    configs = _configs_from(args)
    corpus = default_corpus(args.corpus)
    cache = default_cache(args.cache_dir) if args.cache_dir else None
    programs = [generate(seed)
                for seed in range(args.start, args.start + args.seeds)]

    t0 = time.perf_counter()
    reports = check_many(programs, configs, workers=args.workers,
                         cache=cache, max_steps=args.max_steps,
                         fault=args.inject_fault)
    wall = time.perf_counter() - t0

    failures = [(program, report)
                for program, report in zip(programs, reports)
                if not report.ok]
    saved: list[CorpusEntry] = []
    for program, report in failures:
        minimized = None
        if not args.no_minimize:
            minimized = _minimize_report(report, program, configs, args)
        entry = CorpusEntry.from_report(report, minimized,
                                        fault=args.inject_fault)
        saved.append(entry)
        corpus.add(entry)
        if not args.quiet:
            first = report.divergences[0]
            print(f"DIVERGENCE seed={report.seed}: {first.describe()}")
            print(f"  reproducer ({entry.line_count} lines) -> "
                  f"{corpus.root / (entry.id + '.json')}")

    if args.artifacts:
        art = Path(args.artifacts)
        art.mkdir(parents=True, exist_ok=True)
        for entry in saved:
            (art / f"{entry.id}.json").write_text(
                json.dumps(entry.as_dict(), indent=2, sort_keys=True) + "\n")
            (art / f"{entry.id}.mkc").write_text(entry.source)
        (art / "summary.json").write_text(json.dumps({
            "seeds": args.seeds, "start": args.start,
            "configs": [c.label for c in configs],
            "fault": args.inject_fault,
            "divergences": len(failures),
            "reproducers": [e.id for e in saved],
            "wall_time_s": round(wall, 3),
        }, indent=2) + "\n")

    if not args.quiet:
        grid = len(configs)
        print(f"fuzz: {args.seeds} programs x {grid} configs in "
              f"{wall:.1f}s -> {len(failures)} divergence(s)")
    if args.json_path:
        payload = json.dumps({
            "seeds": args.seeds, "divergences": len(failures),
            "configs": [c.label for c in configs],
            "wall_time_s": round(wall, 3),
        })
        if args.json_path == "-":
            print(payload)
        else:
            Path(args.json_path).write_text(payload + "\n")
    return 1 if failures else 0


def _cmd_replay(args) -> int:
    corpus = default_corpus(args.corpus)
    entries = corpus.entries()
    if not entries:
        if not args.quiet:
            print(f"corpus {corpus.root}: no entries")
        return 0
    cache = default_cache(args.cache_dir) if args.cache_dir else None
    results = corpus.replay(workers=args.workers, cache=cache,
                            max_steps=args.max_steps)
    bad = [(entry, report) for entry, report in results if not report.ok]
    for entry, report in bad:
        print(f"REGRESSION {entry.id} (seed={entry.seed}): "
              f"{report.divergences[0].describe()}")
    if not args.quiet:
        print(f"replay: {len(results)} reproducer(s), "
              f"{len(bad)} regression(s)")
    return 1 if bad else 0


def _cmd_minimize(args) -> int:
    if args.seed is None:
        print("minimize: --seed is required", file=sys.stderr)
        return 2
    configs = _configs_from(args)
    program = generate(args.seed)
    report = check_program(program, configs, args.max_steps,
                           args.inject_fault)
    if report.ok:
        print(f"seed {args.seed}: no divergence on "
              f"{', '.join(c.label for c in configs)}")
        return 0
    minimized = _minimize_report(report, program, configs, args)
    print(f"# seed {args.seed}: {report.divergences[0].describe()}")
    print(f"# minimized {program.line_count} -> {minimized.line_count} lines")
    print(minimized.source, end="")
    if args.save:
        entry = CorpusEntry.from_report(report, minimized,
                                        fault=args.inject_fault)
        path = default_corpus(args.corpus).add(entry)
        print(f"# saved -> {path}")
    return 1


def _cmd_gen(args) -> int:
    print(generate(args.seed).source, end="")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    command = {
        "run": _cmd_run,
        "replay": _cmd_replay,
        "minimize": _cmd_minimize,
        "gen": _cmd_gen,
    }[args.command]
    return command(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
