"""Deliberate-bug injection: named miscompilation seams for validating
the fuzzer.

A differential fuzzer that has never caught a bug is unfalsifiable; these
context managers monkeypatch a known-good internal with a subtly wrong
variant so tests (and ``python -m repro.fuzz run --inject-fault NAME``)
can demonstrate that the oracle flags the divergence and the minimizer
shrinks it to a small reproducer.

Faults only ever touch the *compiled* side (a compiler pass or the VLIW
simulator); the reference interpreter is never patched, so a fault can
only widen the differential, never hide it.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.ir.opcodes import Opcode

__all__ = ["FAULTS", "inject_fault"]


@contextmanager
def _patched(obj, name, replacement):
    original = getattr(obj, name)
    setattr(obj, name, replacement)
    try:
        yield
    finally:
        setattr(obj, name, original)


@contextmanager
def _ifconvert_guard_drop():
    """If-conversion "forgets" the guard of one predicated operation.

    The classic predication bug: an op from one arm of a converted diamond
    executes unconditionally, clobbering the other arm's value whenever
    its guard would have been false.
    """
    from repro.predication import hyperblock

    real = hyperblock.if_convert_region

    def wrapped(func, header, body, cfg):
        info = real(func, header, body, cfg)
        for op in func.block(header).ops:
            if (op.guard is not None and op.dests
                    and op.opcode != Opcode.PRED_DEF):
                op.guard = None
                break
        return info

    with _patched(hyperblock, "if_convert_region", wrapped):
        yield


@contextmanager
def _cloop_reload_off_by_one():
    """A buffered counted loop reloads its trip count one short.

    Models a ``rec_cloop`` fetch-directive bug in the VLIW simulator: the
    loop-counter reload drops an iteration, so any buffered counted loop
    computes over one fewer pass than the interpreter.
    """
    from repro.sim import vliw

    real = vliw.VLIWSimulator._do_rec

    def wrapped(self, frame, key, op):
        real(self, frame, key, op)
        if op.opcode == Opcode.REC_CLOOP and op.srcs:
            lc = op.attrs["lc"]
            frame.lc[lc] = frame.lc[lc] - 1

    with _patched(vliw.VLIWSimulator, "_do_rec", wrapped):
        yield


@contextmanager
def _dce_drop_store():
    """Dead-code elimination deletes the function's last store.

    An over-aggressive-DCE bug: a live memory write disappears, so any
    program whose checksum observes that location diverges.
    """
    from repro import pipeline

    real = pipeline.eliminate_dead_code

    def wrapped(func, *args, **kwargs):
        result = real(func, *args, **kwargs)
        for block in reversed(func.blocks):
            for index in range(len(block.ops) - 1, -1, -1):
                if block.ops[index].opcode == Opcode.ST:
                    del block.ops[index]
                    return result
        return result

    with _patched(pipeline, "eliminate_dead_code", wrapped):
        yield


FAULTS = {
    "ifconvert-guard-drop": _ifconvert_guard_drop,
    "cloop-reload-off-by-one": _cloop_reload_off_by_one,
    "dce-drop-store": _dce_drop_store,
}


@contextmanager
def inject_fault(name: str | None):
    """Context manager applying the named fault; no-op for ``None``."""
    if name is None:
        yield
        return
    try:
        fault = FAULTS[name]
    except KeyError:
        raise ValueError(
            f"unknown fault {name!r} (choose from {', '.join(sorted(FAULTS))})"
        ) from None
    with fault():
        yield
