"""Delta-debugging minimizer: shrink a divergent program at statement
granularity.

Reduction edits operate on the :class:`~repro.fuzz.gen.FuzzProgram`
statement tree (never on raw text), so every candidate renders to
syntactically valid MKC:

* delete any statement;
* splice an ``if`` into its then- or else-arm (dropping the branch);
* replace a ``for`` loop with its body behind ``int var = 0;``;
* drop terms from the final return expression;
* drop the helper function or the global array outright.

A candidate is kept when the *predicate* still holds — by default "the
differential oracle still reports a divergence on the configurations
that originally failed".  Candidates that break the program (use of a
deleted variable, ``break`` hoisted out of its loop, ...) fail frontend
compilation, make the predicate false and are simply skipped, which is
what keeps text-free statement-tree reduction sound.  The loop greedily
restarts after every successful edit until a fixpoint (or the evaluation
budget) is reached — classic ddmin specialised to single-statement
granularity.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.fuzz.gen import Break, Decl, For, FuzzProgram, If
from repro.fuzz.oracle import Config, check_program

__all__ = ["divergence_predicate", "minimize"]

#: default cap on predicate evaluations per minimization
DEFAULT_BUDGET = 600


def divergence_predicate(
    configs: Sequence[Config],
    max_steps: int | None = None,
    fault: str | None = None,
) -> Callable[[FuzzProgram], bool]:
    """Predicate: the program still diverges on any of ``configs``.

    Programs the frontend rejects are never "interesting" — that is the
    guard that stops reduction from wandering into invalid source.
    """
    from repro.fuzz.oracle import DEFAULT_MAX_STEPS

    steps = max_steps if max_steps is not None else DEFAULT_MAX_STEPS
    configs = tuple(configs)

    def predicate(program: FuzzProgram) -> bool:
        report = check_program(program, configs, steps, fault)
        if report.reference[0] == "frontend-error":
            return False
        return bool(report.divergences)

    return predicate


# --------------------------------------------------------------------------
# edit enumeration


def _walk(root: list, chain=()):
    """Yield every statement list in the tree as ``(chain, list)``;
    ``chain`` is a path of ``(index, attr)`` hops from ``root``."""
    yield chain, root
    for index, stmt in enumerate(root):
        if isinstance(stmt, If):
            yield from _walk(stmt.then, chain + ((index, "then"),))
            if stmt.orelse:
                yield from _walk(stmt.orelse, chain + ((index, "orelse"),))
        elif isinstance(stmt, For):
            yield from _walk(stmt.body, chain + ((index, "body"),))


def _resolve(program: FuzzProgram, root: str, chain) -> list:
    lst = program.body if root == "body" else program.helper.body
    for index, attr in chain:
        lst = getattr(lst[index], attr)
    return lst


def _stmt_size(stmt) -> int:
    if isinstance(stmt, If):
        return 1 + sum(map(_stmt_size, stmt.then)) + \
            sum(map(_stmt_size, stmt.orelse))
    if isinstance(stmt, For):
        return 1 + sum(map(_stmt_size, stmt.body))
    return 1


def _edits(program: FuzzProgram):
    """Enumerate candidate edits, largest deletions first."""
    deletes = []
    splices = []
    roots = [("body", program.body)]
    if program.helper is not None:
        roots.append(("helper", program.helper.body))
    for root_name, root_list in roots:
        for chain, lst in _walk(root_list):
            for index, stmt in enumerate(lst):
                deletes.append((_stmt_size(stmt),
                                ("delete", root_name, chain, index)))
                if isinstance(stmt, If):
                    splices.append(("splice-then", root_name, chain, index))
                    if stmt.orelse:
                        splices.append(("splice-else", root_name, chain,
                                        index))
                elif isinstance(stmt, For):
                    splices.append(("unloop", root_name, chain, index))
    deletes.sort(key=lambda pair: -pair[0])
    yield from (edit for _, edit in deletes)
    yield from splices
    if program.helper is not None:
        yield ("drop-helper", None, None, None)
    if program.array is not None:
        yield ("drop-array", None, None, None)
    terms = [t.strip() for t in program.ret.split(" + ")]
    if len(terms) > 1:
        for index in range(len(terms)):
            yield ("drop-ret-term", None, None, index)


def _apply(program: FuzzProgram, edit) -> FuzzProgram | None:
    kind, root, chain, index = edit
    candidate = program.clone()
    if kind == "drop-helper":
        candidate.helper = None
        return candidate
    if kind == "drop-array":
        candidate.array = None
        return candidate
    if kind == "drop-ret-term":
        terms = [t.strip() for t in candidate.ret.split(" + ")]
        del terms[index]
        candidate.ret = " + ".join(terms) if terms else "0"
        return candidate
    lst = _resolve(candidate, root, chain)
    stmt = lst[index]
    if kind == "delete":
        del lst[index]
        return candidate
    if kind == "splice-then":
        lst[index:index + 1] = stmt.then
        return candidate
    if kind == "splice-else":
        lst[index:index + 1] = stmt.orelse
        return candidate
    if kind == "unloop":
        lst[index:index + 1] = [Decl(stmt.var, "0")] + stmt.body
        return candidate
    raise ValueError(f"unknown edit {kind!r}")  # pragma: no cover


def _has_stray_break(program: FuzzProgram) -> bool:
    """Cheap structural pre-check so obviously-invalid candidates skip the
    (expensive) predicate: a ``break`` outside any loop."""

    def scan(body, in_loop: bool) -> bool:
        for stmt in body:
            if isinstance(stmt, Break) and not in_loop:
                return True
            if isinstance(stmt, If):
                if scan(stmt.then, in_loop) or scan(stmt.orelse, in_loop):
                    return True
            elif isinstance(stmt, For):
                if scan(stmt.body, True):
                    return True
        return False

    if scan(program.body, False):
        return True
    return program.helper is not None and scan(program.helper.body, False)


def minimize(
    program: FuzzProgram | str,
    predicate: Callable[[FuzzProgram], bool],
    budget: int = DEFAULT_BUDGET,
) -> FuzzProgram:
    """Greedy statement-granularity reduction to a local minimum.

    ``predicate(candidate)`` decides whether a candidate is still
    interesting; the input ``program`` itself must satisfy it.  At most
    ``budget`` predicate evaluations are spent; the smallest interesting
    program found so far is returned.
    """
    if isinstance(program, str):
        raise TypeError(
            "minimize() needs a FuzzProgram statement tree; parse-free "
            "source reduction is not supported — regenerate from the seed")
    current = program.clone()
    spent = 0
    changed = True
    while changed and spent < budget:
        changed = False
        for edit in _edits(current):
            candidate = _apply(current, edit)
            if candidate is None or _has_stray_break(candidate):
                continue
            spent += 1
            if predicate(candidate):
                current = candidate
                changed = True
                break
            if spent >= budget:
                break
    return current
