"""Differential oracle: interpreter vs every pipeline configuration.

For each program the *reference outcome* is one pure-Python
interpretation of the unoptimized IR (:func:`repro.sim.interp.run_module`).
Each :class:`Config` then compiles the program through
:func:`repro.pipeline.compile_traditional` or ``compile_aggressive`` and
simulates it on the cycle-level VLIW (:func:`repro.pipeline.run_compiled`);
any difference in return value or trap class — or a checked-mode lint
failure, or a crash in the compiler itself — is a divergence.

:func:`check_many` fans a batch of programs over a process pool (same
worker-count resolution as :mod:`repro.runner.parallel`) and can reuse the
:mod:`repro.runner.cache` artifact cache, so a re-run over an unchanged
corpus is nearly free.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.frontend import compile_source
from repro.pipeline import (
    CheckedModeError,
    compile_aggressive,
    compile_traditional,
    run_compiled,
    with_buffer,
)
from repro.runner.cache import ArtifactCache, cache_key
from repro.runner.parallel import resolve_workers
from repro.sim.interp import SimError, run_module

#: step budget per interpretation/simulation — generated programs are tiny,
#: so anything approaching this is a runaway loop, reported as a trap
DEFAULT_MAX_STEPS = 2_000_000

DEFAULT_CAPACITIES: tuple[int | None, ...] = (None, 16, 64)

_COMPILERS = {
    "traditional": compile_traditional,
    "aggressive": compile_aggressive,
}


@dataclass(frozen=True, order=True)
class Config:
    """One pipeline × capacity × checked-mode point of the oracle grid.

    ``engine`` selects the simulator implementation the compiled half
    runs on (``"fast"`` predecoded, ``"ref"`` reference); the reference
    half of every comparison is always interpreted with the ``"ref"``
    engine, so a ``Config(engine="fast")`` differentially checks the fast
    path against the reference interpreter on top of the usual
    compiled-vs-interpreted check.
    """

    pipeline: str
    capacity: int | None = None
    checked: bool = False
    engine: str = "fast"
    sched_oracle: bool = False
    #: "direct" bakes the capacity into the pipeline call (historical
    #: behaviour); "overlay"/"legacy" compile a capacity-independent base
    #: and retarget it through ``with_buffer`` under that implementation
    retarget: str = "direct"
    #: route this config's compiled half through an in-process
    #: :class:`repro.serve.Service` instead of calling the pipeline
    #: directly, so the service's compile/retarget/simulate path is
    #: differentially checked against the interpreter
    service: bool = False

    @property
    def label(self) -> str:
        cap = "none" if self.capacity is None else str(self.capacity)
        suffix = "+checked" if self.checked else ""
        if self.engine != "fast":
            suffix += f"+{self.engine}"
        if self.sched_oracle:
            suffix += "+oracle"
        if self.retarget != "direct":
            suffix += f"+{self.retarget}"
        if self.service:
            suffix += "+serve"
        return f"{self.pipeline}@{cap}{suffix}"

    def as_dict(self) -> dict:
        data = {"pipeline": self.pipeline, "capacity": self.capacity,
                "checked": self.checked, "engine": self.engine}
        if self.sched_oracle:
            # only serialized when set: non-oracle configs keep the cache
            # keys (and corpus JSON shape) they had before the flag existed
            data["sched_oracle"] = True
        if self.retarget != "direct":
            # same compatibility rule as sched_oracle
            data["retarget"] = self.retarget
        if self.service:
            # same compatibility rule again
            data["service"] = True
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Config":
        return cls(data["pipeline"], data.get("capacity"),
                   bool(data.get("checked")),
                   data.get("engine", "fast"),
                   bool(data.get("sched_oracle")),
                   data.get("retarget", "direct"),
                   bool(data.get("service")))


def default_configs(
    pipelines: Iterable[str] = ("traditional", "aggressive"),
    capacities: Iterable[int | None] = DEFAULT_CAPACITIES,
    checked: bool = True,
) -> tuple[Config, ...]:
    """The full pipeline × capacity grid, checked mode on by default."""
    return tuple(Config(pipeline, capacity, checked)
                 for pipeline in pipelines for capacity in capacities)


def oracle_configs(
    pipelines: Iterable[str] = ("traditional", "aggressive"),
    capacities: Iterable[int | None] = (None, 64),
) -> tuple[Config, ...]:
    """Configs that swap exact-oracle modulo schedules into the backend.

    Each one compiles normally, replaces every heuristic modulo schedule
    the exact scheduler (:mod:`repro.sched.oracle`) can solve, lints the
    swapped schedules, and simulates — so two independently derived
    schedules are differentially checked for semantic agreement.
    """
    return tuple(Config(pipeline, capacity, sched_oracle=True)
                 for pipeline in pipelines for capacity in capacities)


def retarget_configs(
    pipelines: Iterable[str] = ("traditional", "aggressive"),
    capacities: Iterable[int | None] = (16, 64),
) -> tuple[Config, ...]:
    """Configs that retarget a capacity-independent base per capacity.

    Each pipeline × capacity point appears twice — once under the
    zero-copy overlay implementation of ``with_buffer`` and once under
    the deep-copy legacy one — so the two retarget paths are
    differentially checked against each other *and* the interpreter.
    """
    return tuple(Config(pipeline, capacity, retarget=mode)
                 for pipeline in pipelines for capacity in capacities
                 for mode in ("overlay", "legacy"))


def service_configs(
    pipelines: Iterable[str] = ("traditional", "aggressive"),
    capacities: Iterable[int | None] = (None, 64),
) -> tuple[Config, ...]:
    """Configs whose compiled half is served by ``repro.serve``.

    The service compiles a capacity-independent base and retargets it
    through ``with_buffer`` (the overlay path), exactly like the batch
    runner — so these configs differentially check the *whole service
    request path* (coalescing, affinity, caching included) against the
    reference interpreter.
    """
    return tuple(Config(pipeline, capacity, retarget="overlay",
                        service=True)
                 for pipeline in pipelines for capacity in capacities)


#: (status, payload) pairs — payload is the return value for ``"value"``,
#: the exception class name for ``"trap"``, a message otherwise
Outcome = tuple[str, object]


@dataclass(frozen=True)
class Verdict:
    """How one configuration's outcome relates to the reference."""

    config: Config
    kind: str          # "ok" | "value-mismatch" | "trap-mismatch" |
    #                    "checked-failure" | "compile-crash" | "sim-crash"
    reference: Outcome
    observed: Outcome

    @property
    def ok(self) -> bool:
        return self.kind == "ok"

    def describe(self) -> str:
        return (f"{self.config.label}: {self.kind} "
                f"(reference={self.reference!r}, observed={self.observed!r})")


@dataclass
class ProgramReport:
    """All verdicts for one program."""

    source: str
    reference: Outcome
    verdicts: list[Verdict] = field(default_factory=list)
    seed: int | None = None

    @property
    def ok(self) -> bool:
        return all(v.ok for v in self.verdicts)

    @property
    def divergences(self) -> list[Verdict]:
        return [v for v in self.verdicts if not v.ok]


def reference_outcome(source: str,
                      max_steps: int = DEFAULT_MAX_STEPS) -> Outcome:
    """Interpret the unoptimized IR; ``("value", v)`` or ``("trap", cls)``.

    A frontend rejection comes back as ``("frontend-error", message)`` so
    the minimizer can tell "invalid program" apart from "divergence".
    """
    try:
        module = compile_source(source)
    except Exception as exc:
        return ("frontend-error", f"{type(exc).__name__}: {exc}")
    try:
        # always the reference engine: this side anchors the comparison
        return ("value", run_module(module, max_steps=max_steps,
                                    engine="ref").value)
    except SimError as exc:
        return ("trap", type(exc).__name__)


def compiled_outcome(source: str, config: Config,
                     max_steps: int = DEFAULT_MAX_STEPS) -> Outcome:
    """Compile under ``config`` and simulate on the VLIW.

    Compile-time interpreter traps (profiling executes the program) are
    reported as ``("trap", cls)`` so a program that traps identically in
    reference and compiled form is *not* a divergence.
    """
    if config.service:
        return _service_outcome(source, config, max_steps)
    try:
        module = compile_source(source)
    except Exception as exc:
        return ("frontend-error", f"{type(exc).__name__}: {exc}")
    try:
        if config.retarget != "direct":
            # compile a capacity-independent base, then retarget it the
            # way the experiment harness does (overlay or legacy path)
            compiled = _COMPILERS[config.pipeline](
                module, buffer_capacity=None,
                max_steps=max_steps, checked=config.checked,
                engine=config.engine)
            compiled = with_buffer(compiled, config.capacity,
                                   checked=config.checked,
                                   retarget=config.retarget)
        else:
            compiled = _COMPILERS[config.pipeline](
                module, buffer_capacity=config.capacity,
                max_steps=max_steps, checked=config.checked,
                engine=config.engine)
    except CheckedModeError as exc:
        return ("checked-failure",
                f"{exc.pass_name}: {exc.diagnostics[0].format()}"
                if exc.diagnostics else exc.pass_name)
    except SimError as exc:
        return ("trap", type(exc).__name__)
    except Exception as exc:
        return ("compile-crash", f"{type(exc).__name__}: {exc}")
    if config.sched_oracle:
        compiled, error = _oracle_swap(compiled)
        if error is not None:
            return error
    try:
        outcome = run_compiled(compiled, max_steps=max_steps,
                               engine=config.engine)
    except SimError as exc:
        return ("trap", type(exc).__name__)
    except CheckedModeError as exc:
        return ("checked-failure", str(exc))
    except Exception as exc:
        return ("sim-crash", f"{type(exc).__name__}: {exc}")
    return ("value", outcome.result.value)


#: lazily-created in-process service shared by every ``service=True``
#: config in this process; no disk cache (check_many already caches
#: whole reports), warmth comes from the workers' base memos
_SERVICE = None


def _service() -> "object":
    global _SERVICE
    if _SERVICE is None:
        from repro.serve.service import Service, ServiceConfig

        _SERVICE = Service(ServiceConfig(workers=2, cache_dir=None))
    return _SERVICE


def _service_outcome(source: str, config: Config,
                     max_steps: int) -> Outcome:
    """The compiled half of the differential, via the service."""
    from repro.serve.protocol import Request

    try:
        # mirror the direct path's frontend-error contract exactly (the
        # service would report a rejection as a generic compile error)
        compile_source(source)
    except Exception as exc:
        return ("frontend-error", f"{type(exc).__name__}: {exc}")
    response = _service().request(Request(
        kind="run", source=source, pipeline=config.pipeline,
        capacity=config.capacity, checked=config.checked,
        engine=config.engine,
        retarget=None if config.retarget == "direct" else config.retarget,
        max_steps=max_steps))
    if response.status == "ok":
        return ("value", (response.payload or {}).get("value"))
    if response.status == "trap":
        return ("trap", response.error)
    if response.status == "checked-failure":
        return ("checked-failure", response.error)
    error = response.error or response.status
    if error.startswith("compile:"):
        return ("compile-crash", error[len("compile:"):].strip())
    if error.startswith("simulate:"):
        return ("sim-crash", error[len("simulate:"):].strip())
    return ("sim-crash", error)


#: DFS node budget for oracle-swap configs: fuzz loops are tiny, so this
#: is generous — hitting it just leaves the heuristic schedule in place
ORACLE_SWAP_BUDGET = 20_000


def _oracle_swap(compiled):
    """Swap exact-oracle modulo schedules into ``compiled``.

    Returns ``(new_compiled, None)``, or ``(None, outcome)`` when the
    swap itself crashed or produced a schedule the sanitizer rejects —
    either one is a scheduler bug, surfaced as a divergence.
    """
    from repro.analysis.lint import LintTarget, errors_only, run_rules
    from repro.sched.oracle import swap_oracle_schedules

    try:
        swapped, _ = swap_oracle_schedules(
            compiled, node_budget=ORACLE_SWAP_BUDGET)
    except Exception as exc:
        return None, ("compile-crash",
                      f"oracle-swap: {type(exc).__name__}: {exc}")
    errors = errors_only(run_rules(
        LintTarget(module=swapped.module, machine=swapped.machine,
                   modulo=swapped.modulo),
        phases=("sched",)))
    if errors:
        return None, ("checked-failure",
                      f"oracle-swap: {errors[0].format()}")
    return swapped, None


def _judge(config: Config, reference: Outcome, observed: Outcome) -> Verdict:
    status, _ = observed
    if observed == reference:
        return Verdict(config, "ok", reference, observed)
    if status == "checked-failure":
        return Verdict(config, "checked-failure", reference, observed)
    if status in ("compile-crash", "sim-crash", "frontend-error"):
        return Verdict(config, "compile-crash" if status != "sim-crash"
                       else "sim-crash", reference, observed)
    if status == "trap" or reference[0] == "trap":
        return Verdict(config, "trap-mismatch", reference, observed)
    return Verdict(config, "value-mismatch", reference, observed)


def check_program(
    source,
    configs: Sequence[Config] | None = None,
    max_steps: int = DEFAULT_MAX_STEPS,
    fault: str | None = None,
) -> ProgramReport:
    """Differentially check one program (source text or FuzzProgram)."""
    from repro.fuzz.faults import inject_fault

    seed = getattr(source, "seed", None)
    source = getattr(source, "source", source)
    configs = tuple(configs) if configs is not None else default_configs()
    reference = reference_outcome(source, max_steps)
    report = ProgramReport(source, reference, seed=seed)
    with inject_fault(fault):
        for config in configs:
            observed = compiled_outcome(source, config, max_steps)
            report.verdicts.append(_judge(config, reference, observed))
    return report


# --------------------------------------------------------------------------
# batch fan-out over a process pool


def _fuzz_key(source: str, configs: Sequence[Config], max_steps: int,
              fault: str | None) -> str:
    return cache_key(source, "fuzz", {
        "configs": [c.as_dict() for c in configs],
        "max_steps": max_steps,
        "fault": fault,
    })


def _worker_check(source: str, configs: tuple[Config, ...], max_steps: int,
                  fault: str | None) -> bytes:
    return pickle.dumps(check_program(source, configs, max_steps, fault))


def check_many(
    programs: Sequence,
    configs: Sequence[Config] | None = None,
    workers: int | None = None,
    cache: ArtifactCache | None = None,
    max_steps: int = DEFAULT_MAX_STEPS,
    fault: str | None = None,
    progress=None,
) -> list[ProgramReport]:
    """Check a batch of programs, in input order, over a process pool.

    ``programs`` holds source strings or :class:`~repro.fuzz.gen.FuzzProgram`
    objects.  ``workers <= 1`` (or a single program) runs serially.  With a
    ``cache``, verdict reports are stored under kind ``"fuzz"`` keyed by
    source + configs, so replaying an unchanged corpus hits disk only.
    ``progress`` is an optional ``callable(index, report)``.
    """
    configs = tuple(configs) if configs is not None else default_configs()
    seeds = [getattr(p, "seed", None) for p in programs]
    sources = [getattr(p, "source", p) for p in programs]
    results: list[ProgramReport | None] = [None] * len(sources)

    pending: list[int] = []
    for index, source in enumerate(sources):
        if cache is not None:
            hit = cache.load(_fuzz_key(source, configs, max_steps, fault),
                             "fuzz")
            if isinstance(hit, ProgramReport):
                hit.seed = seeds[index]
                results[index] = hit
                if progress is not None:
                    progress(index, hit)
                continue
        pending.append(index)

    workers = resolve_workers(workers)

    def _finish(index: int, report: ProgramReport) -> None:
        report.seed = seeds[index]
        results[index] = report
        if cache is not None:
            cache.store(_fuzz_key(sources[index], configs, max_steps, fault),
                        "fuzz", report)
        if progress is not None:
            progress(index, report)

    if workers <= 1 or len(pending) <= 1:
        for index in pending:
            _finish(index, check_program(sources[index], configs, max_steps,
                                         fault))
        return results  # type: ignore[return-value]

    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = {
            index: pool.submit(_worker_check, sources[index], configs,
                               max_steps, fault)
            for index in pending
        }
        for index, future in futures.items():
            try:
                report = pickle.loads(future.result())
            except Exception:
                # worker death / pickle hiccup: redo serially in the parent
                report = check_program(sources[index], configs, max_steps,
                                       fault)
            _finish(index, report)
    return results  # type: ignore[return-value]
