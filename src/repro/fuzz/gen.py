"""Seeded, grammar-directed random MKC program generator.

Programs are built as a small statement tree (not raw text) so the
delta-debugging minimizer (:mod:`repro.fuzz.reduce`) can operate at
statement granularity and re-render valid source after every edit.

The grammar is aimed squarely at the transformations under test:

* straight-line arithmetic chains (local opt, reassociation, DCE);
* if/else diamonds, sometimes inside loops (if-conversion, promotion);
* counted loops and 2-deep counted nests (counted-loop conversion,
  modulo scheduling, loop collapsing);
* short inner loops with tiny constant trip counts (peel-eligible);
* infrequent side exits — ``if (rare) break;`` (branch combining);
* a small word array with masked indices (loads/stores, globals);
* an occasional straight-line helper function (inlining).

Every generated program terminates (loop bounds are constants, loop
variables are never reassigned), never divides by zero (divisors are
non-zero constants) and never indexes out of bounds (indices are masked
with ``& (size-1)``), so the reference interpretation is total and any
trap in a compiled configuration is a divergence by construction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

__all__ = [
    "Assign",
    "Break",
    "Decl",
    "For",
    "FuzzProgram",
    "If",
    "Store",
    "generate",
    "render",
]

#: operators usable in generated expressions (divisors/shift counts are
#: constrained separately)
_BINOPS = ("+", "-", "*", "&", "|", "^")
_CMPOPS = ("<", "<=", ">", ">=", "==", "!=")
_AUGOPS = ("=", "+=", "-=", "*=", "&=", "|=", "^=")

#: occasional boundary constants to shake out wrap/sign bugs
_BOUNDARY = (0, 1, -1, 255, -256, 32767, -32768, 65535, 1 << 30, -(1 << 30))

#: size of the global scratch array (power of two: indices are masked)
ARRAY_SIZE = 16


# --------------------------------------------------------------------------
# statement tree


@dataclass
class Decl:
    """``int name = expr;``"""

    name: str
    expr: str


@dataclass
class Assign:
    """``name op expr;`` with ``op`` in ``=, +=, -=, ...``"""

    name: str
    op: str
    expr: str


@dataclass
class Store:
    """``arr[(index) & mask] = expr;``"""

    array: str
    index: str
    expr: str


@dataclass
class If:
    cond: str
    then: list = field(default_factory=list)
    orelse: list = field(default_factory=list)


@dataclass
class For:
    """``for (int var = 0; var < bound; var++) body`` — always counted."""

    var: str
    bound: int
    body: list = field(default_factory=list)


@dataclass
class Break:
    pass


@dataclass
class Helper:
    """A straight-line ``int`` helper function."""

    name: str
    params: list[str]
    body: list = field(default_factory=list)
    ret: str = "0"


@dataclass
class FuzzProgram:
    """A generated program: optional helper + main body + return expr."""

    seed: int | None = None
    array: tuple[str, int, tuple[int, ...]] | None = None
    helper: Helper | None = None
    body: list = field(default_factory=list)
    ret: str = "0"

    @property
    def source(self) -> str:
        return render(self)

    @property
    def line_count(self) -> int:
        return len(self.source.splitlines())

    def stmt_count(self) -> int:
        count = _count_stmts(self.body)
        if self.helper is not None:
            count += _count_stmts(self.helper.body)
        return count

    def clone(self) -> "FuzzProgram":
        helper = None
        if self.helper is not None:
            helper = replace(self.helper, body=_clone_body(self.helper.body),
                             params=list(self.helper.params))
        return FuzzProgram(self.seed, self.array, helper,
                           _clone_body(self.body), self.ret)


def _clone_body(body: list) -> list:
    out = []
    for stmt in body:
        if isinstance(stmt, If):
            out.append(If(stmt.cond, _clone_body(stmt.then),
                          _clone_body(stmt.orelse)))
        elif isinstance(stmt, For):
            out.append(For(stmt.var, stmt.bound, _clone_body(stmt.body)))
        elif isinstance(stmt, (Decl, Assign, Store)):
            out.append(replace(stmt))
        else:
            out.append(Break())
    return out


def _count_stmts(body: list) -> int:
    count = 0
    for stmt in body:
        count += 1
        if isinstance(stmt, If):
            count += _count_stmts(stmt.then) + _count_stmts(stmt.orelse)
        elif isinstance(stmt, For):
            count += _count_stmts(stmt.body)
    return count


# --------------------------------------------------------------------------
# rendering


def _render_stmt(stmt, indent: int, lines: list[str]) -> None:
    pad = "    " * indent
    if isinstance(stmt, Decl):
        lines.append(f"{pad}int {stmt.name} = {stmt.expr};")
    elif isinstance(stmt, Assign):
        op = "=" if stmt.op == "=" else stmt.op
        lines.append(f"{pad}{stmt.name} {op} {stmt.expr};")
    elif isinstance(stmt, Store):
        lines.append(f"{pad}{stmt.array}[{stmt.index}] = {stmt.expr};")
    elif isinstance(stmt, Break):
        lines.append(f"{pad}break;")
    elif isinstance(stmt, If):
        lines.append(f"{pad}if ({stmt.cond}) {{")
        for inner in stmt.then:
            _render_stmt(inner, indent + 1, lines)
        if stmt.orelse:
            lines.append(f"{pad}}} else {{")
            for inner in stmt.orelse:
                _render_stmt(inner, indent + 1, lines)
        lines.append(f"{pad}}}")
    elif isinstance(stmt, For):
        lines.append(f"{pad}for (int {stmt.var} = 0; {stmt.var} < "
                     f"{stmt.bound}; {stmt.var}++) {{")
        for inner in stmt.body:
            _render_stmt(inner, indent + 1, lines)
        lines.append(f"{pad}}}")
    else:  # pragma: no cover - the tree only holds the types above
        raise TypeError(f"unknown statement {stmt!r}")


def render(program: FuzzProgram) -> str:
    """Render the statement tree back to MKC source text."""
    lines: list[str] = []
    if program.array is not None:
        name, size, init = program.array
        init_txt = ", ".join(str(v) for v in init)
        lines.append(f"int {name}[{size}] = {{{init_txt}}};")
    if program.helper is not None:
        helper = program.helper
        params = ", ".join(f"int {p}" for p in helper.params)
        lines.append(f"int {helper.name}({params}) {{")
        for stmt in helper.body:
            _render_stmt(stmt, 1, lines)
        lines.append(f"    return {helper.ret};")
        lines.append("}")
    lines.append("int main() {")
    for stmt in program.body:
        _render_stmt(stmt, 1, lines)
    lines.append(f"    return {program.ret};")
    lines.append("}")
    return "\n".join(lines) + "\n"


# --------------------------------------------------------------------------
# generation


class _Gen:
    """One generation pass over a :class:`random.Random` stream."""

    def __init__(self, rng: random.Random):
        self.rng = rng
        self.scalars: list[str] = []     # mutable int variables in scope
        self.loop_vars: list[str] = []   # read-only loop counters in scope
        self.next_loop = 0
        self.array_name: str | None = None
        self.helper: Helper | None = None

    # -- expressions -------------------------------------------------------

    def const(self) -> str:
        if self.rng.random() < 0.15:
            return str(self.rng.choice(_BOUNDARY))
        return str(self.rng.randint(-64, 64))

    def atom(self) -> str:
        readable = self.scalars + self.loop_vars
        roll = self.rng.random()
        if readable and roll < 0.55:
            return self.rng.choice(readable)
        if self.array_name is not None and roll < 0.65:
            return (f"{self.array_name}[({self.index_expr()}) & "
                    f"{ARRAY_SIZE - 1}]")
        return self.const()

    def index_expr(self) -> str:
        readable = self.scalars + self.loop_vars
        if readable and self.rng.random() < 0.8:
            base = self.rng.choice(readable)
            if self.rng.random() < 0.5:
                return f"{base} + {self.rng.randint(0, ARRAY_SIZE - 1)}"
            return base
        return str(self.rng.randint(0, ARRAY_SIZE - 1))

    def expr(self, depth: int = 0) -> str:
        if depth >= 2 or self.rng.random() < 0.3:
            return self.atom()
        roll = self.rng.random()
        a = self.expr(depth + 1)
        b = self.expr(depth + 1)
        if roll < 0.70:
            op = self.rng.choice(_BINOPS)
            return f"({a} {op} {b})"
        if roll < 0.80:
            # shift by a constant amount
            op = self.rng.choice(("<<", ">>"))
            return f"({a} {op} {self.rng.randint(0, 31)})"
        if roll < 0.92:
            # divide/mod by a non-zero constant: never traps
            op = self.rng.choice(("/", "%"))
            divisor = self.rng.choice((2, 3, 5, 7, 13, -3, -7, 256))
            return f"({a} {op} {divisor})"
        if self.rng.random() < 0.5:
            # parenthesise: "-" before a negative literal would lex as "--"
            return f"(-({a}))"
        return f"(~{a})"

    def cond(self) -> str:
        a = self.expr(1)
        b = self.atom()
        base = f"{a} {self.rng.choice(_CMPOPS)} {b}"
        if self.rng.random() < 0.2:
            c = f"{self.atom()} {self.rng.choice(_CMPOPS)} {self.atom()}"
            return f"{base} {self.rng.choice(('&&', '||'))} {c}"
        return base

    def rare_cond(self) -> str:
        """A condition that is true on few iterations — side-exit fodder."""
        var = self.rng.choice(self.loop_vars + self.scalars)
        return (f"({var} & {self.rng.choice((7, 15, 31))}) == "
                f"{self.rng.randint(5, 31)}")

    # -- statements --------------------------------------------------------

    def simple_stmt(self):
        roll = self.rng.random()
        if self.array_name is not None and roll < 0.2:
            return Store(self.array_name,
                         f"({self.index_expr()}) & {ARRAY_SIZE - 1}",
                         self.expr())
        if self.helper is not None and roll < 0.35:
            args = ", ".join(self.atom() for _ in self.helper.params)
            return Assign(self.rng.choice(self.scalars),
                          self.rng.choice(_AUGOPS),
                          f"{self.helper.name}({args})")
        return Assign(self.rng.choice(self.scalars),
                      self.rng.choice(_AUGOPS), self.expr())

    def if_stmt(self, depth: int, in_loop: bool):
        then = self.block(self.rng.randint(1, 2), depth + 1, in_loop)
        orelse = []
        if self.rng.random() < 0.6:
            orelse = self.block(self.rng.randint(1, 2), depth + 1, in_loop)
        return If(self.cond(), then, orelse)

    def for_stmt(self, depth: int):
        var = f"i{self.next_loop}"
        self.next_loop += 1
        # short trip counts at depth 1 keep inner loops peel-eligible
        bound = (self.rng.randint(1, 4) if depth >= 1
                 else self.rng.randint(2, 12))
        self.loop_vars.append(var)
        size = self.rng.randint(1, 3)
        body = self.block(size, depth + 1, in_loop=True)
        # infrequent side exit: eligible for branch combining
        if self.rng.random() < 0.15:
            pos = self.rng.randint(0, len(body))
            body.insert(pos, If(self.rare_cond(), [Break()]))
        self.loop_vars.pop()
        return For(var, bound, body)

    def block(self, size: int, depth: int, in_loop: bool) -> list:
        stmts = []
        for _ in range(size):
            roll = self.rng.random()
            if depth < 2 and roll < 0.22:
                stmts.append(self.for_stmt(depth))
            elif depth < 4 and roll < 0.45:
                stmts.append(self.if_stmt(depth, in_loop))
            else:
                stmts.append(self.simple_stmt())
        return stmts

    # -- top level ---------------------------------------------------------

    def make_helper(self) -> Helper:
        params = [f"a{i}" for i in range(self.rng.randint(1, 2))]
        outer_scalars, outer_loops = self.scalars, self.loop_vars
        self.scalars, self.loop_vars = list(params), []
        body = []
        for i in range(self.rng.randint(1, 3)):
            name = f"h{i}"
            body.append(Decl(name, self.expr()))
            self.scalars.append(name)
        ret = self.expr()
        self.scalars, self.loop_vars = outer_scalars, outer_loops
        return Helper("helper", params, body, ret)

    def program(self, seed: int | None) -> FuzzProgram:
        program = FuzzProgram(seed=seed)
        if self.rng.random() < 0.5:
            init = tuple(self.rng.randint(-100, 100)
                         for _ in range(ARRAY_SIZE))
            program.array = ("g", ARRAY_SIZE, init)
            self.array_name = "g"
        if self.rng.random() < 0.3:
            self.helper = self.make_helper()
            program.helper = self.helper
        for i in range(self.rng.randint(2, 5)):
            name = f"v{i}"
            program.body.append(Decl(name, self.const()))
            self.scalars.append(name)
        program.body.extend(self.block(self.rng.randint(3, 7), 0,
                                       in_loop=False))
        terms = list(self.scalars)
        if self.array_name is not None:
            terms.append(f"{self.array_name}[{self.rng.randint(0, 7)}]")
        program.ret = " + ".join(terms)
        return program


def generate(seed: int) -> FuzzProgram:
    """Deterministically generate one program from ``seed``."""
    return _Gen(random.Random(seed)).program(seed)


def generate_source(seed: int) -> str:
    """Convenience: the rendered source for ``seed``."""
    return generate(seed).source
