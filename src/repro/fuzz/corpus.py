"""Persistent on-disk corpus of minimized divergence reproducers.

Every divergence the fuzzer ever finds (and minimizes) is saved as one
JSON file — source text plus the metadata needed to re-check it — and
replayed forever after as a regression test: ``python -m repro.fuzz
replay`` (and ``tests/fuzz/test_corpus_replay.py``) re-runs each entry
through the differential oracle and fails on any divergence.  The
checked-in corpus therefore only contains programs that *used to*
diverge and must never diverge again.

Entries are content-addressed (id = SHA-256 prefix of the source), so
re-finding a known reproducer is idempotent.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.fuzz.gen import FuzzProgram
from repro.fuzz.oracle import Config, ProgramReport

__all__ = ["Corpus", "CorpusEntry", "DEFAULT_CORPUS_DIR", "default_corpus"]

#: default corpus location — checked into the repository so corpus replay
#: runs as part of the ordinary test suite
DEFAULT_CORPUS_DIR = "tests/fuzz_corpus"

ENV_CORPUS_DIR = "REPRO_FUZZ_CORPUS"


def entry_id(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()[:12]


@dataclass
class CorpusEntry:
    """One minimized reproducer plus the context it was found in."""

    source: str
    kind: str                       # divergence kind when first found
    configs: list[dict] = field(default_factory=list)
    seed: int | None = None
    fault: str | None = None        # injected fault (None = real bug)
    detail: str = ""
    note: str = ""

    @property
    def id(self) -> str:
        return entry_id(self.source)

    @property
    def line_count(self) -> int:
        return len(self.source.splitlines())

    def config_objects(self) -> list[Config]:
        return [Config.from_dict(c) for c in self.configs]

    def as_dict(self) -> dict:
        return {
            "id": self.id,
            "kind": self.kind,
            "seed": self.seed,
            "fault": self.fault,
            "configs": self.configs,
            "detail": self.detail,
            "note": self.note,
            "source": self.source,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CorpusEntry":
        return cls(
            source=data["source"],
            kind=data.get("kind", "unknown"),
            configs=list(data.get("configs", [])),
            seed=data.get("seed"),
            fault=data.get("fault"),
            detail=data.get("detail", ""),
            note=data.get("note", ""),
        )

    @classmethod
    def from_report(cls, report: ProgramReport,
                    minimized: FuzzProgram | None = None,
                    fault: str | None = None,
                    note: str = "") -> "CorpusEntry":
        """Build an entry from a divergent oracle report."""
        divergences = report.divergences
        if not divergences:
            raise ValueError("report has no divergences to record")
        first = divergences[0]
        source = minimized.source if minimized is not None else report.source
        return cls(
            source=source,
            kind=first.kind,
            configs=[v.config.as_dict() for v in divergences],
            seed=report.seed,
            fault=fault,
            detail=first.describe(),
            note=note,
        )


class Corpus:
    """A directory of :class:`CorpusEntry` JSON files."""

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)

    def paths(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*.json"))

    def entries(self) -> list[CorpusEntry]:
        return [self.load(path) for path in self.paths()]

    @staticmethod
    def load(path: Path) -> CorpusEntry:
        return CorpusEntry.from_dict(json.loads(path.read_text()))

    def add(self, entry: CorpusEntry) -> Path:
        """Write (or overwrite — entries are content-addressed) one entry."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.root / f"{entry.id}.json"
        path.write_text(json.dumps(entry.as_dict(), indent=2,
                                   sort_keys=True) + "\n")
        return path

    def __len__(self) -> int:
        return len(self.paths())

    def replay(
        self,
        configs: Sequence[Config] | None = None,
        workers: int | None = None,
        cache=None,
        max_steps: int | None = None,
    ) -> list[tuple[CorpusEntry, ProgramReport]]:
        """Re-check every entry; returns ``(entry, report)`` pairs.

        ``configs=None`` replays each entry on the configurations it
        originally diverged on *plus* the default grid, so a reproducer
        keeps protecting the exact configuration that broke while also
        covering the rest.  Entries recorded under an injected fault are
        replayed *without* the fault (the bug was synthetic; the program
        is still a good regression input).
        """
        from repro.fuzz.oracle import DEFAULT_MAX_STEPS, check_many, \
            default_configs

        entries = self.entries()
        steps = max_steps if max_steps is not None else DEFAULT_MAX_STEPS
        results: list[tuple[CorpusEntry, ProgramReport]] = []
        base = tuple(default_configs())
        # group entries by effective config tuple so one check_many call
        # covers each group through the process pool
        grouped: dict[tuple[Config, ...], list[CorpusEntry]] = {}
        for entry in entries:
            if configs is not None:
                effective = tuple(configs)
            else:
                extra = tuple(c for c in entry.config_objects()
                              if c not in base)
                effective = base + extra
            grouped.setdefault(effective, []).append(entry)
        for effective, group in grouped.items():
            reports = check_many([e.source for e in group], effective,
                                 workers=workers, cache=cache,
                                 max_steps=steps)
            results.extend(zip(group, reports))
        results.sort(key=lambda pair: pair[0].id)
        return results


def default_corpus(root: str | os.PathLike | None = None) -> Corpus:
    """Corpus at ``root``, else ``$REPRO_FUZZ_CORPUS``, else the repo dir."""
    if root is None:
        root = os.environ.get(ENV_CORPUS_DIR) or DEFAULT_CORPUS_DIR
    return Corpus(root)
