"""Differential fuzzing of the compilation pipelines.

The reproduction's load-bearing invariant is semantic: every pipeline
configuration (traditional, aggressive, checked, any buffer capacity)
must compute exactly what the pure-Python interpreter computes.  This
package systematically hunts violations:

:mod:`repro.fuzz.gen`
    seeded, grammar-directed random MKC program generator (straight-line
    arithmetic, if/else diamonds, counted loops, 2-deep nests, short
    peel-eligible inner loops, infrequent side exits);
:mod:`repro.fuzz.oracle`
    differential runner: each program goes through
    :func:`repro.sim.interp.run_module` and through every pipeline ×
    capacity configuration, flagging divergences in return value, trap
    or checked-mode lint outcome, with process-pool fan-out;
:mod:`repro.fuzz.reduce`
    delta-debugging minimizer shrinking a divergent program to a minimal
    reproducer at statement granularity;
:mod:`repro.fuzz.corpus`
    persistent on-disk corpus of minimized reproducers, replayed as
    regression tests;
:mod:`repro.fuzz.faults`
    named deliberate-bug injectors used to validate that the fuzzer
    actually catches miscompilations;
:mod:`repro.fuzz.cli`
    ``python -m repro.fuzz run|replay|minimize|gen``.
"""

from .corpus import Corpus, CorpusEntry
from .gen import FuzzProgram, generate
from .oracle import (
    Config,
    ProgramReport,
    Verdict,
    check_many,
    check_program,
    default_configs,
    reference_outcome,
)
from .reduce import minimize

__all__ = [
    "Config",
    "Corpus",
    "CorpusEntry",
    "FuzzProgram",
    "ProgramReport",
    "Verdict",
    "check_many",
    "check_program",
    "default_configs",
    "generate",
    "minimize",
    "reference_outcome",
]
