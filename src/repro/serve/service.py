"""The compile/simulate service: coalescing, deadlines, asyncio front end.

Request lifecycle (``submit`` returns a ``concurrent.futures.Future``
resolving to a :class:`~repro.serve.protocol.Response`):

1. **Front-door cache probe.**  A ``run`` request whose summary is
   already in the sharded content-addressed cache answers immediately —
   no queue, no worker.  Named-benchmark keys are *the runner's own*
   (:func:`repro.runner.parallel.run_key`), so a grid the batch runner
   executed yesterday serves warm today and vice versa.
2. **Coalescing.**  Concurrent requests with equal semantic identity
   (:meth:`Request.coalesce_key`) collapse into one
   :class:`~repro.serve.pool.Computation`; every waiter gets its own
   response (with ``meta.coalesced`` set) off the shared result.
3. **Affinity dispatch.**  The computation routes to the worker that
   owns its ``(benchmark, pipeline)`` group on the consistent-hash
   ring.  A full worker queue sheds the request with an ``overloaded``
   response instead of queueing unboundedly; an expired deadline
   answers ``timeout`` without computing.
4. **Batched execution.**  The worker takes every queued computation of
   the group in one batch, obtains the compiled base once (its warm
   memo → the cache → a cold compile) and retargets/simulates each
   capacity against that single base — one overlay sweep for the lot.

Every request lands in the obs metrics histograms
(``serve_request_latency_s`` labeled by kind and temperature) and opens
tracer spans, so a traced service emits the same Chrome-trace/Perfetto
artifacts as the runner.

The asyncio front end (:func:`serve_forever`, ``python -m repro.serve
serve``) speaks the JSON-lines protocol over a unix or TCP socket; each
connection is sequential, concurrency comes from connections.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from dataclasses import dataclass
from pathlib import Path

from repro.obs import Counter, Histogram, MetricsRegistry, get_tracer
from repro.pipeline import CheckedModeError, run_compiled, with_buffer
from repro.runner.cache import DEFAULT_CACHE_DIR, cache_key
from repro.runner.parallel import (
    _COMPILERS,
    _compile_base_timed,
    run_key,
)
from repro.runner.summary import RunSummary
from repro.serve.pool import (
    DEFAULT_BATCH_LIMIT,
    DEFAULT_QUEUE_DEPTH,
    Computation,
    QueueFull,
    WorkerPool,
)
from repro.serve.protocol import (
    Request,
    Response,
    summary_to_dict,
)
from repro.serve.shards import DEFAULT_SHARDS, ShardedArtifactCache
from repro.sim.engine import engine_choice
from repro.sim.interp import SimError

from repro.loopbuffer.overlay import retarget_choice


@dataclass
class ServiceConfig:
    """Knobs for one service instance."""

    workers: int = 2
    queue_depth: int = DEFAULT_QUEUE_DEPTH
    batch_limit: int = DEFAULT_BATCH_LIMIT
    shards: int = DEFAULT_SHARDS
    cache_dir: str | None = DEFAULT_CACHE_DIR
    #: total cache size bound (bytes) enforced by the per-shard LRU gc
    max_cache_bytes: int | None = None
    #: default per-request deadline when the request doesn't carry one
    deadline_s: float | None = None
    #: compiled bases kept warm per worker (LRU beyond that)
    base_memo_size: int = 32


@dataclass
class ServiceStats:
    """Service-level counters (cache traffic lives on the cache)."""

    requests: int = 0
    ok: int = 0
    traps: int = 0
    errors: int = 0
    overloaded: int = 0
    timeouts: int = 0
    #: requests that attached to an in-flight identical computation
    coalesced: int = 0
    #: computations actually executed (coalescing makes this < requests)
    computations: int = 0
    #: computations executed in a batch with >= 2 members
    batched: int = 0
    run_cache_hits: int = 0
    base_memo_hits: int = 0
    base_cache_hits: int = 0
    base_compiles: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


class Service:
    """A running compile/simulate service (see module docstring)."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.cache: ShardedArtifactCache | None = None
        if self.config.cache_dir:
            self.cache = ShardedArtifactCache(
                Path(self.config.cache_dir), shards=self.config.shards,
                max_bytes=self.config.max_cache_bytes)
        self.stats = ServiceStats()
        self.metrics = MetricsRegistry()
        self.latency: Histogram = self.metrics.histogram(
            "serve_request_latency_s",
            "service request wall latency (seconds)")
        self.requests_total: Counter = self.metrics.counter(
            "serve_requests_total", "requests by kind and status")
        self._lock = threading.Lock()
        self._pending: dict[tuple, Computation] = {}
        self._memos: list[OrderedDict] = [
            OrderedDict() for _ in range(self.config.workers)]
        self.pool = WorkerPool(
            self.config.workers, self._execute_batch,
            queue_depth=self.config.queue_depth,
            batch_limit=self.config.batch_limit)
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self.pool.close()

    def __enter__(self) -> "Service":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- submission --------------------------------------------------------

    def submit(self, request: Request) -> "Future[Response]":
        t0 = time.perf_counter()
        out: Future = Future()
        self.stats.requests += 1
        try:
            request.validate()
        except Exception as exc:
            self._finish(out, request, t0, Response(
                status="error", error=f"bad request: {exc}"))
            return out

        if request.kind == "ping":
            self._finish(out, request, t0,
                         Response(status="ok", payload={"pong": True}))
            return out
        if request.kind == "stats":
            self._finish(out, request, t0,
                         Response(status="ok", payload=self.snapshot()))
            return out

        # 1. front-door cache probe: a warm request never queues
        hit = self._probe(request)
        if hit is not None:
            hit.meta.update(temperature="warm", served="run-cache")
            self._finish(out, request, t0, hit)
            return out

        # 2. coalesce with an identical in-flight computation
        key = request.coalesce_key()
        deadline = request.deadline_s
        if deadline is None:
            deadline = self.config.deadline_s
        with self._lock:
            comp = self._pending.get(key)
            coalesced = comp is not None
            if comp is None:
                comp = Computation(
                    key=key, group=request.group, request=request,
                    deadline_at=(time.perf_counter() + deadline
                                 if deadline is not None else None))
                # register before dispatch so a concurrent identical
                # request can never miss the pending entry
                self._pending[key] = comp
            else:
                comp.waiters += 1
                self.stats.coalesced += 1
        if not coalesced:
            # 3. affinity dispatch with backpressure
            try:
                self.pool.submit(comp)
            except QueueFull as exc:
                with self._lock:
                    self._pending.pop(key, None)
                # resolve through the computation so any request that
                # coalesced in the meantime also hears "overloaded"
                if not comp.future.done():
                    comp.future.set_result(Response(
                        status="overloaded", error=str(exc),
                        meta={"queue_depths": self.pool.queue_depths()}))

        def _deliver(fut) -> None:
            exc = fut.exception()
            if exc is not None:
                response = Response(status="error",
                                    error=f"{type(exc).__name__}: {exc}")
            else:
                template = fut.result()
                response = Response(
                    status=template.status, payload=template.payload,
                    error=template.error, meta=dict(template.meta))
            response.meta["coalesced"] = coalesced
            self._finish(out, request, t0, response)

        comp.future.add_done_callback(_deliver)
        return out

    def request(self, request: Request, timeout: float | None = None
                ) -> Response:
        """Synchronous convenience over :meth:`submit`."""
        return self.submit(request).result(timeout=timeout)

    def _finish(self, out, request: Request, t0: float,
                response: Response) -> None:
        latency = time.perf_counter() - t0
        response.id = request.id
        response.meta.setdefault("temperature", "cold")
        response.meta["latency_s"] = round(latency, 6)
        temperature = response.meta["temperature"]
        self.latency.observe(latency, kind=request.kind,
                             temperature=temperature)
        self.requests_total.inc(kind=request.kind, status=response.status)
        bucket = {"ok": "ok", "trap": "traps", "checked-failure": "errors",
                  "overloaded": "overloaded", "timeout": "timeouts",
                  "error": "errors"}[response.status]
        if response.status == "ok":
            self.stats.ok += 1
        else:
            setattr(self.stats, bucket, getattr(self.stats, bucket) + 1)
        if response.meta.get("served") == "run-cache":
            self.stats.run_cache_hits += 1
        if not out.done():
            out.set_result(response)

    # -- cache keys --------------------------------------------------------

    def _run_key(self, request: Request) -> tuple[str, str]:
        """(key, kind) for a run result in the content-addressed cache."""
        if request.benchmark is not None:
            return run_key(request.benchmark, request.pipeline,
                           request.capacity, request.checked,
                           request.engine, request.retarget), "run"
        flags = {
            "capacity": request.capacity,
            "checked": request.checked,
            "engine": engine_choice(request.engine),
            "retarget": retarget_choice(request.retarget),
            "max_steps": request.max_steps,
            "serve": "run",
        }
        return cache_key(request.source or "", request.pipeline,
                         flags), "serve"

    def _probe(self, request: Request) -> Response | None:
        if self.cache is None or request.kind != "run":
            return None
        key, kind = self._run_key(request)
        cached = self.cache.load(key, kind)
        if kind == "run" and isinstance(cached, RunSummary):
            from repro.bench import benchmark

            return Response(status="ok", payload={
                "summary": summary_to_dict(cached),
                "value": benchmark(request.benchmark).expected(),
            })
        if kind == "serve" and isinstance(cached, dict) \
                and "status" in cached:
            return Response(status=cached["status"],
                            payload=cached.get("payload"),
                            error=cached.get("error"))
        return None

    # -- execution (worker threads) ----------------------------------------

    def _execute_batch(self, worker: int, batch: list[Computation]) -> None:
        tracer = get_tracer()
        live: list[Computation] = []
        try:
            for comp in batch:
                if comp.expired:
                    self.stats.computations += 1
                    self._resolve(comp, Response(
                        status="timeout",
                        error="deadline expired before execution",
                        meta={"worker": worker}))
                else:
                    live.append(comp)
            if not live:
                return
            group = live[0].group
            with tracer.span("serve_batch", category="serve",
                             worker=worker, group=repr(group),
                             size=len(live)):
                base, base_how, failure = self._base_for(
                    worker, live[0].request)
                for comp in live:
                    self.stats.computations += 1
                    if len(live) > 1:
                        self.stats.batched += 1
                    if failure is not None:
                        response = Response(status=failure[0],
                                            error=failure[1])
                        if comp.request.kind == "run":
                            # a trap during profiling is as deterministic
                            # as one at run time — cache the verdict
                            key, kind = self._run_key(comp.request)
                            self._store_verdict(key, kind, response)
                    elif comp.request.kind == "compile":
                        response = Response(status="ok", payload={
                            "warm": base_how != "compiled"})
                    else:
                        response = self._run_one(comp.request, base)
                    response.meta.update(
                        worker=worker, served="computed", base=base_how,
                        batched=len(live) > 1, batch_size=len(live))
                    self._resolve(comp, response)
        except BaseException as exc:
            for comp in batch:
                if not comp.future.done():
                    with self._lock:
                        self._pending.pop(comp.key, None)
                    comp.future.set_exception(exc)

    def _resolve(self, comp: Computation, response: Response) -> None:
        with self._lock:
            self._pending.pop(comp.key, None)
        if not comp.future.done():
            comp.future.set_result(response)

    def _base_for(self, worker: int, request: Request):
        """``(base, how, failure)`` — the compiled base for a group.

        ``failure`` is ``(status, error)`` when compilation itself
        trapped/crashed (inline sources can do that); the batch then
        answers every member with it.
        """
        memo = self._memos[worker]
        group = request.group
        if group in memo:
            memo.move_to_end(group)
            self.stats.base_memo_hits += 1
            return memo[group], "memo", None
        try:
            base, hit = self._compile_base(request)
        except CheckedModeError as exc:
            return None, "compiled", ("checked-failure", str(exc))
        except SimError as exc:
            # profiling executes the program; a trap here mirrors a trap
            # at run time and is a *result* for the caller
            return None, "compiled", ("trap", type(exc).__name__)
        except Exception as exc:
            return None, "compiled", (
                "error", f"compile: {type(exc).__name__}: {exc}")
        if hit:
            self.stats.base_cache_hits += 1
        else:
            self.stats.base_compiles += 1
        memo[group] = base
        while len(memo) > self.config.base_memo_size:
            memo.popitem(last=False)
        return base, "cache" if hit else "compiled", None

    def _compile_base(self, request: Request):
        """Compiled capacity-independent base; ``(compiled, cache_hit)``."""
        engine = engine_choice(request.engine)
        if request.benchmark is not None:
            compiled, _seconds, hit, _trace = _compile_base_timed(
                request.benchmark, request.pipeline, self.cache,
                request.checked, engine=engine)
            return compiled, hit
        from repro.frontend import compile_source

        flags = dict(_base_flags_inline(request), engine=engine)
        key = cache_key(request.source or "", request.pipeline, flags)
        if self.cache is not None:
            cached = self.cache.load(key, "base")
            if cached is not None:
                return cached, True
        module = compile_source(request.source or "")
        kwargs = {"buffer_capacity": None, "checked": request.checked,
                  "engine": engine}
        if request.max_steps is not None:
            kwargs["max_steps"] = request.max_steps
        compiled = _COMPILERS[request.pipeline](module, **kwargs)
        if self.cache is not None:
            self.cache.store(key, "base", compiled)
        return compiled, False

    def _run_one(self, request: Request, base) -> Response:
        """Retarget + simulate one request against a shared base."""
        key, kind = self._run_key(request)
        try:
            retargeted = with_buffer(base, request.capacity,
                                     checked=request.checked,
                                     retarget=request.retarget)
            kwargs = {"engine": engine_choice(request.engine)}
            if request.max_steps is not None:
                kwargs["max_steps"] = request.max_steps
            outcome = run_compiled(retargeted, **kwargs)
        except CheckedModeError as exc:
            return self._store_verdict(key, kind, Response(
                status="checked-failure", error=str(exc)))
        except SimError as exc:
            return self._store_verdict(key, kind, Response(
                status="trap", error=type(exc).__name__))
        except Exception as exc:
            return Response(status="error",
                            error=f"simulate: {type(exc).__name__}: {exc}")
        summary = RunSummary(
            name=request.benchmark or request.program_id,
            pipeline=request.pipeline,
            capacity=request.capacity,
            cycles=outcome.counters.cycles,
            bundles=outcome.counters.bundles,
            ops_issued=outcome.counters.ops_issued,
            ops_from_buffer=outcome.counters.ops_from_buffer,
            ops_from_memory=outcome.counters.ops_from_memory,
            static_ops=retargeted.static_ops,
            branch_bubbles=outcome.counters.branch_bubbles,
        )
        if request.benchmark is not None:
            from repro.bench import benchmark

            expected = benchmark(request.benchmark).expected()
            if outcome.result.value != expected:
                return Response(status="error", error=(
                    f"checksum-mismatch: {outcome.result.value} != "
                    f"expected {expected}"))
        payload = {"summary": summary_to_dict(summary),
                   "value": outcome.result.value}
        response = Response(status="ok", payload=payload)
        if self.cache is not None:
            if kind == "run":
                # the runner's own key/kind: the batch runner and the
                # service stay byte-compatible and warm each other
                self.cache.store(key, "run", summary)
            else:
                self._store_verdict(key, kind, response)
        return response

    def _store_verdict(self, key: str, kind: str,
                       response: Response) -> Response:
        """Cache a trap/checked verdict (inline sources only): those are
        deterministic results, as cacheable as a summary."""
        if self.cache is not None and kind == "serve":
            self.cache.store(key, kind, {
                "status": response.status,
                "payload": response.payload,
                "error": response.error,
            })
        return response

    # -- introspection -----------------------------------------------------

    def snapshot(self) -> dict:
        """The ``stats`` response payload."""
        data = {
            "stats": self.stats.as_dict(),
            "workers": [s.as_dict() for s in self.pool.stats],
            "queue_depths": self.pool.queue_depths(),
            "pending": len(self._pending),
            "hit_rate": self.hit_rate(),
        }
        if self.cache is not None:
            data["cache"] = self.cache.stats.as_dict()
            data["cache_shards"] = self.cache.shard_report()
        return data

    def hit_rate(self) -> float:
        """Fraction of requests served straight from the run cache."""
        if not self.stats.requests:
            return 0.0
        return self.stats.run_cache_hits / self.stats.requests


def _base_flags_inline(request: Request) -> dict:
    """Mirror of the runner's ``_base_flags`` for inline sources."""
    from repro.sched.machine import DEFAULT_MACHINE

    from repro.runner.parallel import _machine_fingerprint

    return {
        "entry": "main",
        "args": [],
        "machine": _machine_fingerprint(DEFAULT_MACHINE),
        "buffer_capacity": None,
        "checked": request.checked,
        "max_steps": request.max_steps,
        "serve": "base",
    }


# ---------------------------------------------------------------------------
# asyncio front end


async def _handle_connection(service: Service, reader, writer) -> None:
    from repro.serve.protocol import ProtocolError, decode_request, encode

    try:
        while True:
            line = await reader.readline()
            if not line:
                return
            if not line.strip():
                continue
            try:
                request = decode_request(line)
            except ProtocolError as exc:
                writer.write(encode(Response(status="error",
                                             error=f"protocol: {exc}")))
                await writer.drain()
                continue
            response = await asyncio.wrap_future(service.submit(request))
            writer.write(encode(response))
            await writer.drain()
    except (ConnectionResetError, BrokenPipeError):
        pass
    finally:
        try:
            writer.close()
        except Exception:
            pass


async def serve_forever(service: Service, unix_path: str | None = None,
                        host: str | None = None, port: int | None = None,
                        ready=None) -> None:
    """Run the JSON-lines server until cancelled.

    Exactly one of ``unix_path`` or ``host``/``port`` selects the
    transport; ``ready`` (an optional callable) fires with the bound
    server once listening — tests and the CLI use it to signal
    readiness.
    """

    async def handler(reader, writer):
        await _handle_connection(service, reader, writer)

    if unix_path is not None:
        Path(unix_path).parent.mkdir(parents=True, exist_ok=True)
        server = await asyncio.start_unix_server(handler, path=unix_path)
    elif host is not None and port is not None:
        server = await asyncio.start_server(handler, host=host, port=port)
    else:
        raise ValueError("need unix_path or host+port")
    async with server:
        if ready is not None:
            ready(server)
        await server.serve_forever()
