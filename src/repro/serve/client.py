"""Clients for the compile/simulate service.

:class:`Client` talks to an in-process :class:`~repro.serve.service.
Service` directly — no sockets, no serialization — which is what the
tests, the fuzz oracle's service route and the ``serve.*`` benchmarks
use.  :class:`SocketClient` speaks the JSON-lines protocol over a unix
or TCP socket to a ``python -m repro.serve serve`` process; one
connection handles one request at a time, so concurrent callers open
concurrent connections (see :func:`drive`).

Both expose the same convenience surface (``run``/``compile``/
``ping``/``stats`` returning :class:`~repro.serve.protocol.Response`)
plus ``summary(...)`` which unwraps an ``ok`` run response into a
:class:`~repro.runner.summary.RunSummary` or raises
:class:`ServiceError` naming the failure status.
"""

from __future__ import annotations

import socket
from concurrent.futures import ThreadPoolExecutor

from repro.runner.summary import RunSummary
from repro.serve.protocol import (
    Request,
    Response,
    decode_response,
    encode,
)


class ServiceError(RuntimeError):
    """A request came back with a non-``ok`` status."""

    def __init__(self, response: Response) -> None:
        super().__init__(
            f"{response.status}: {response.error or '(no detail)'}")
        self.response = response


class _ConvenienceMixin:
    """Shared request builders over a ``request(Request) -> Response``."""

    def run(self, benchmark: str | None = None, *,
            source: str | None = None, pipeline: str = "aggressive",
            capacity: int | None = None, checked: bool = False,
            engine: str | None = None, retarget: str | None = None,
            max_steps: int | None = None,
            deadline_s: float | None = None) -> Response:
        return self.request(Request(
            kind="run", benchmark=benchmark, source=source,
            pipeline=pipeline, capacity=capacity, checked=checked,
            engine=engine, retarget=retarget, max_steps=max_steps,
            deadline_s=deadline_s))

    def compile(self, benchmark: str | None = None, *,
                source: str | None = None, pipeline: str = "aggressive",
                checked: bool = False, engine: str | None = None,
                max_steps: int | None = None) -> Response:
        return self.request(Request(
            kind="compile", benchmark=benchmark, source=source,
            pipeline=pipeline, checked=checked, engine=engine,
            max_steps=max_steps))

    def ping(self) -> Response:
        return self.request(Request(kind="ping"))

    def stats(self) -> dict:
        response = self.request(Request(kind="stats"))
        if not response.ok:
            raise ServiceError(response)
        return response.payload or {}

    def summary(self, benchmark: str | None = None, **kwargs) -> RunSummary:
        """``run(...)`` unwrapped to its :class:`RunSummary`, or raise."""
        response = self.run(benchmark, **kwargs)
        if not response.ok:
            raise ServiceError(response)
        return response.summary()


class Client(_ConvenienceMixin):
    """In-process client: requests go straight to ``service.submit``."""

    def __init__(self, service) -> None:
        self.service = service

    def request(self, request: Request,
                timeout: float | None = None) -> Response:
        return self.service.submit(request).result(timeout=timeout)

    def submit(self, request: Request):
        """The raw future, for callers managing their own concurrency."""
        return self.service.submit(request)


class SocketClient(_ConvenienceMixin):
    """JSON-lines client over a unix or TCP socket (one connection)."""

    def __init__(self, unix_path: str | None = None,
                 host: str | None = None, port: int | None = None,
                 timeout: float | None = 60.0) -> None:
        if unix_path is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(unix_path)
        elif host is not None and port is not None:
            self._sock = socket.create_connection((host, port),
                                                  timeout=timeout)
        else:
            raise ValueError("need unix_path or host+port")
        self._file = self._sock.makefile("rwb")

    def request(self, request: Request) -> Response:
        self._file.write(encode(request))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("service closed the connection")
        return decode_response(line)

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "SocketClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def drive(make_client, requests: list[Request],
          concurrency: int = 8) -> list[Response]:
    """Issue ``requests`` with ``concurrency`` parallel clients.

    ``make_client`` is called once per worker thread (a thunk returning
    a :class:`Client` or :class:`SocketClient`); responses come back in
    request order.  This is the load generator behind the ``serve.*``
    benchmarks and the CI smoke workload.
    """
    import threading

    local = threading.local()

    def issue(request: Request) -> Response:
        client = getattr(local, "client", None)
        if client is None:
            client = local.client = make_client()
        return client.request(request)

    with ThreadPoolExecutor(max_workers=concurrency) as pool:
        return list(pool.map(issue, requests))
