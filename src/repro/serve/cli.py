"""``python -m repro.serve`` — run a service or drive a workload at one.

Examples::

    # serve on a unix socket with a 256 MiB cache bound
    python -m repro.serve serve --unix /tmp/repro.sock \
        --workers 4 --max-cache-bytes 256m

    # drive a mixed workload at it and assert it behaved (CI smoke)
    python -m repro.serve workload --unix /tmp/repro.sock \
        --requests 64 --concurrency 8 \
        --require-success --require-hit-rate 0.25 --json -
"""

from __future__ import annotations

import argparse
import json
import signal
import sys

from repro.serve.protocol import Request

DEFAULT_BENCHMARKS = ("adpcm_enc", "adpcm_dec", "mpeg2_dec")
DEFAULT_CAPACITIES = (None, 16, 64, 256)


def _size(text: str) -> int:
    """``64m``/``2g``-style byte sizes (mirrors the runner cache CLI)."""
    text = text.strip().lower()
    scale = {"k": 1024, "m": 1024**2, "g": 1024**3}.get(text[-1:], 1)
    return int(float(text[:-1] if scale != 1 else text) * scale)


def percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile of ``samples`` (``q`` in [0, 100])."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1,
                      int(round(q / 100.0 * (len(ordered) - 1)))))
    return ordered[rank]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="compile/simulate service front end")
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the JSON-lines service")
    _transport(serve)
    serve.add_argument("--workers", type=int, default=2)
    serve.add_argument("--shards", type=int, default=None,
                       help="cache shard count (default 16)")
    serve.add_argument("--cache-dir", default=None,
                       help="artifact cache directory (default: the "
                            "runner's)")
    serve.add_argument("--no-cache", action="store_true",
                       help="serve without a content-addressed cache")
    serve.add_argument("--max-cache-bytes", type=_size, default=None,
                       metavar="SIZE",
                       help="LRU-bound the cache (suffixes k/m/g)")
    serve.add_argument("--queue-depth", type=int, default=None,
                       help="per-worker queue bound before shedding")
    serve.add_argument("--batch-limit", type=int, default=None,
                       help="max computations taken per worker batch")
    serve.add_argument("--deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="default per-request deadline")

    load = sub.add_parser("workload",
                          help="drive a mixed workload at a service")
    _transport(load)
    load.add_argument("--requests", type=int, default=64)
    load.add_argument("--concurrency", type=int, default=8)
    load.add_argument("--benchmarks", default=",".join(DEFAULT_BENCHMARKS),
                      help="comma-separated benchmark names")
    load.add_argument("--pipelines", default="aggressive,traditional")
    load.add_argument("--json", default=None, metavar="FILE",
                      help="write the workload report as JSON "
                           "('-' for stdout)")
    load.add_argument("--require-success", action="store_true",
                      help="exit nonzero unless every request is ok")
    load.add_argument("--require-hit-rate", type=float, default=None,
                      metavar="FRAC",
                      help="exit nonzero unless the service's "
                           "run-cache hit rate reaches FRAC")
    return parser


def _transport(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--unix", default=None, metavar="PATH",
                        help="unix socket path")
    parser.add_argument("--host", default=None)
    parser.add_argument("--port", type=int, default=None)


def _check_transport(args, parser) -> None:
    if (args.unix is None) == (args.host is None or args.port is None):
        parser.error("pick exactly one transport: --unix PATH, or "
                     "--host and --port")


def serve_main(args) -> int:
    import asyncio

    from repro.serve.service import Service, ServiceConfig, serve_forever

    config = ServiceConfig(workers=args.workers)
    if args.no_cache:
        config.cache_dir = None
    elif args.cache_dir is not None:
        config.cache_dir = args.cache_dir
    if args.shards is not None:
        config.shards = args.shards
    if args.max_cache_bytes is not None:
        config.max_cache_bytes = args.max_cache_bytes
    if args.queue_depth is not None:
        config.queue_depth = args.queue_depth
    if args.batch_limit is not None:
        config.batch_limit = args.batch_limit
    if args.deadline is not None:
        config.deadline_s = args.deadline

    service = Service(config)
    where = args.unix or f"{args.host}:{args.port}"
    print(f"serving on {where} "
          f"(workers={config.workers}, shards={config.shards}, "
          f"cache={config.cache_dir or 'off'})", file=sys.stderr)

    async def main() -> None:
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except NotImplementedError:
                pass
        server_task = asyncio.ensure_future(serve_forever(
            service, unix_path=args.unix, host=args.host, port=args.port))
        stopped = asyncio.ensure_future(stop.wait())
        done, _pending = await asyncio.wait(
            {server_task, stopped},
            return_when=asyncio.FIRST_COMPLETED)
        server_task.cancel()
        for task in done:
            if task is server_task and not task.cancelled():
                task.result()

    try:
        asyncio.run(main())
    finally:
        service.close()
    return 0


def _workload_requests(args) -> list[Request]:
    """A deterministic mixed workload: benchmarks x pipelines x
    capacities, round-robin, repeated until ``--requests`` is filled so
    repeats exercise the warm path."""
    benchmarks = [b.strip() for b in args.benchmarks.split(",") if b.strip()]
    pipelines = [p.strip() for p in args.pipelines.split(",") if p.strip()]
    combos = [(b, p, c) for b in benchmarks for p in pipelines
              for c in DEFAULT_CAPACITIES]
    requests = []
    for i in range(args.requests):
        bench, pipeline, capacity = combos[i % len(combos)]
        requests.append(Request(kind="run", benchmark=bench,
                                pipeline=pipeline, capacity=capacity,
                                id=f"w{i}"))
    return requests


def workload_main(args) -> int:
    from repro.serve.client import SocketClient, drive

    def make_client():
        return SocketClient(unix_path=args.unix, host=args.host,
                            port=args.port)

    requests = _workload_requests(args)
    responses = drive(make_client, requests,
                      concurrency=args.concurrency)

    statuses: dict[str, int] = {}
    latencies = []
    for response in responses:
        statuses[response.status] = statuses.get(response.status, 0) + 1
        latencies.append(response.meta.get("latency_s", 0.0))
    with make_client() as client:
        stats = client.stats()
    report = {
        "requests": len(responses),
        "statuses": statuses,
        "latency_s": {
            "p50": percentile(latencies, 50),
            "p95": percentile(latencies, 95),
            "p99": percentile(latencies, 99),
        },
        "hit_rate": stats.get("hit_rate", 0.0),
        "service": stats.get("stats", {}),
    }
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.json == "-":
        print(text)
    elif args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.json}", file=sys.stderr)
    else:
        print(text)

    failed = []
    if args.require_success and statuses != {"ok": len(responses)}:
        failed.append(f"not all ok: {statuses}")
    if (args.require_hit_rate is not None
            and report["hit_rate"] < args.require_hit_rate):
        failed.append(f"hit rate {report['hit_rate']:.3f} < "
                      f"{args.require_hit_rate}")
    for reason in failed:
        print(f"workload check failed: {reason}", file=sys.stderr)
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    _check_transport(args, parser)
    if args.command == "serve":
        return serve_main(args)
    return workload_main(args)


if __name__ == "__main__":
    raise SystemExit(main())
