"""Warm worker pool: consistent-hash affinity, batching, backpressure.

Every request needs a compiled base for its ``(benchmark, pipeline)``
group before it can retarget and simulate.  Bases are expensive to build
and cheap to keep, so the pool routes each group to *one* worker via a
consistent-hash ring — that worker's base memo (and, through it, the
fast engine's shared decode store) stays hot for the group, and a
capacity sweep never recompiles.  The ring means a resize moves only
``~1/N`` of the groups, so a scaled-up service keeps most of its warmth.

Each worker owns a bounded deque.  ``submit`` raising
:class:`QueueFull` *is* the backpressure signal — the service turns it
into an ``overloaded`` response instead of letting latency grow without
bound.  When a worker wakes it takes the oldest computation plus every
other queued computation of the same group (up to ``batch_limit``) in
one batch: the service executes the batch against a single shared base,
so concurrent capacity requests for one benchmark become one overlay
sweep.
"""

from __future__ import annotations

import hashlib
import threading
import time
from bisect import bisect_right
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field

#: virtual nodes per worker on the hash ring; enough that group load
#: spreads evenly even at small worker counts
DEFAULT_REPLICAS = 64

DEFAULT_QUEUE_DEPTH = 64
DEFAULT_BATCH_LIMIT = 32


class QueueFull(RuntimeError):
    """The owning worker's queue is at depth — shed this request."""


def _hash(value: str) -> int:
    return int.from_bytes(
        hashlib.sha256(value.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """Consistent hashing of group keys onto worker indices."""

    def __init__(self, workers: int, replicas: int = DEFAULT_REPLICAS) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        self.workers = workers
        points = []
        for worker in range(workers):
            for replica in range(replicas):
                points.append((_hash(f"worker-{worker}:{replica}"), worker))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [w for _, w in points]

    def worker_for(self, group) -> int:
        point = _hash(repr(group))
        index = bisect_right(self._points, point) % len(self._points)
        return self._owners[index]


@dataclass
class Computation:
    """One unit of real work (1..n coalesced requests resolve from it).

    ``future`` resolves to whatever the service's executor returns; the
    per-request response wrappers hang off it via callbacks.  ``waiters``
    counts the requests riding on this computation — when it is greater
    than one, coalescing saved ``waiters - 1`` computations.
    """

    key: tuple
    group: tuple
    request: object
    future: Future = field(default_factory=Future)
    enqueued_at: float = field(default_factory=time.perf_counter)
    deadline_at: float | None = None
    waiters: int = 1

    @property
    def expired(self) -> bool:
        return (self.deadline_at is not None
                and time.perf_counter() > self.deadline_at)


@dataclass
class WorkerStats:
    computations: int = 0
    batches: int = 0
    max_queue_depth: int = 0

    def as_dict(self) -> dict:
        return {"computations": self.computations, "batches": self.batches,
                "max_queue_depth": self.max_queue_depth}


class WorkerPool:
    """N worker threads, each owning a bounded affinity queue."""

    def __init__(self, workers: int, execute_batch,
                 queue_depth: int = DEFAULT_QUEUE_DEPTH,
                 batch_limit: int = DEFAULT_BATCH_LIMIT,
                 replicas: int = DEFAULT_REPLICAS,
                 name: str = "serve") -> None:
        self.ring = HashRing(workers, replicas)
        self.queue_depth = queue_depth
        self.batch_limit = max(1, batch_limit)
        self._execute_batch = execute_batch
        self._queues: list[deque[Computation]] = [deque()
                                                  for _ in range(workers)]
        self._conds = [threading.Condition() for _ in range(workers)]
        self.stats = [WorkerStats() for _ in range(workers)]
        self._stopping = False
        self._threads = [
            threading.Thread(target=self._run, args=(i,),
                             name=f"{name}-worker-{i}", daemon=True)
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    @property
    def workers(self) -> int:
        return len(self._threads)

    def worker_for(self, group) -> int:
        return self.ring.worker_for(group)

    def submit(self, comp: Computation) -> int:
        """Enqueue on the owning worker; returns the worker index.

        Raises :class:`QueueFull` when that worker is at depth — the
        caller sheds load instead of queueing unboundedly.
        """
        worker = self.ring.worker_for(comp.group)
        cond = self._conds[worker]
        with cond:
            if self._stopping:
                raise QueueFull("pool is shutting down")
            queue = self._queues[worker]
            if len(queue) >= self.queue_depth:
                raise QueueFull(
                    f"worker {worker} queue at depth {self.queue_depth}")
            queue.append(comp)
            stats = self.stats[worker]
            stats.max_queue_depth = max(stats.max_queue_depth, len(queue))
            cond.notify()
        return worker

    def _take_batch(self, worker: int) -> list[Computation] | None:
        """Block for work; return the next same-group batch (or ``None``
        at shutdown)."""
        cond = self._conds[worker]
        queue = self._queues[worker]
        with cond:
            while not queue:
                if self._stopping:
                    return None
                cond.wait()
            head = queue.popleft()
            batch = [head]
            if len(batch) < self.batch_limit:
                rest = []
                for comp in queue:
                    if (comp.group == head.group
                            and len(batch) < self.batch_limit):
                        batch.append(comp)
                    else:
                        rest.append(comp)
                queue.clear()
                queue.extend(rest)
            return batch

    def _run(self, worker: int) -> None:
        while True:
            batch = self._take_batch(worker)
            if batch is None:
                return
            stats = self.stats[worker]
            stats.batches += 1
            stats.computations += len(batch)
            try:
                self._execute_batch(worker, batch)
            except BaseException as exc:  # never kill the worker thread
                for comp in batch:
                    if not comp.future.done():
                        comp.future.set_exception(exc)

    def close(self, timeout: float = 5.0) -> None:
        """Stop accepting work, drain nothing: pending computations get
        a :class:`QueueFull` so no caller blocks forever."""
        for cond, queue in zip(self._conds, self._queues):
            with cond:
                self._stopping = True
                while queue:
                    comp = queue.popleft()
                    if not comp.future.done():
                        comp.future.set_exception(
                            QueueFull("pool closed before execution"))
                cond.notify_all()
        for thread in self._threads:
            thread.join(timeout=timeout)

    def queue_depths(self) -> list[int]:
        return [len(q) for q in self._queues]
