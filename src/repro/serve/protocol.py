"""Request/response schema and the JSON-lines wire form.

One request per line, one response per line, both UTF-8 JSON objects
with a ``v`` protocol-version field.  The same dataclasses travel
in-process (the test/benchmark :class:`~repro.serve.client.Client`
hands them straight to the service) and over a socket, so everything on
them must stay JSON-able.

Request kinds:

``run``
    compile (or reuse) the capacity-independent base for ``(benchmark,
    pipeline)``, retarget it at ``capacity`` and simulate; the response
    payload is the :class:`~repro.runner.summary.RunSummary` fields plus
    the simulated return value.  Either ``benchmark`` (a Table 1 name)
    or ``source`` (inline MKC text — the fuzz oracle's route) names the
    program.
``compile``
    just ensure the base exists (compile on miss, store in the cache);
    the response reports whether it was already warm.
``stats`` / ``ping``
    service introspection and liveness, used by clients and CI.

Responses carry ``status``: ``ok``, ``trap`` (the program trapped — a
*result*, not a failure), ``checked-failure`` (checked-mode sanitizer
violation), ``overloaded`` (backpressure: the owning worker's queue was
full), ``timeout`` (the request's deadline expired before execution) or
``error`` (anything else, with ``error`` naming it).  ``meta`` says how
the request was served: which worker, whether it hit the run cache or
the worker's warm base memo, whether it was coalesced into or batched
with other in-flight requests, and the wall latency.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field

from repro.runner.summary import RunSummary

#: bump on incompatible wire changes; both sides check it
PROTOCOL_VERSION = 1

REQUEST_KINDS = ("run", "compile", "stats", "ping")

#: statuses a request can come back with
STATUSES = ("ok", "trap", "checked-failure", "overloaded", "timeout",
            "error")


class ProtocolError(ValueError):
    """A malformed request/response line or an unsupported version."""


@dataclass
class Request:
    """One service request (see module docstring for the kinds)."""

    kind: str = "run"
    benchmark: str | None = None
    #: inline MKC source, mutually exclusive with ``benchmark``
    source: str | None = None
    pipeline: str = "aggressive"
    capacity: int | None = None
    checked: bool = False
    engine: str | None = None
    retarget: str | None = None
    #: simulation/profiling step budget (None = the pipeline default);
    #: the fuzz oracle pins this so runaway loops trap identically on
    #: both sides of its differential
    max_steps: int | None = None
    #: seconds the caller is willing to wait before the service may
    #: answer ``timeout`` instead of computing (None = no deadline)
    deadline_s: float | None = None
    #: caller-chosen correlation id, echoed verbatim on the response
    id: str | None = None

    def validate(self) -> None:
        if self.kind not in REQUEST_KINDS:
            raise ProtocolError(f"unknown request kind {self.kind!r}")
        if self.kind in ("run", "compile"):
            if (self.benchmark is None) == (self.source is None):
                raise ProtocolError(
                    f"{self.kind} request needs exactly one of "
                    "benchmark/source")

    # -- routing/identity keys --------------------------------------------

    @property
    def program_id(self) -> str:
        """Stable identity of the program: the benchmark name, or a
        content hash of inline source."""
        if self.benchmark is not None:
            return self.benchmark
        digest = hashlib.sha256(
            (self.source or "").encode("utf-8")).hexdigest()
        return f"src:{digest[:16]}"

    @property
    def group(self) -> tuple:
        """The affinity key: everything that determines the compiled
        base this request needs.  Consistent-hash routing sends one
        group to one worker so its base memo and decode store stay
        hot."""
        return (self.program_id, self.pipeline, self.checked,
                self.engine or "", self.max_steps or 0)

    def coalesce_key(self) -> tuple:
        """Full semantic identity: two requests with equal keys must
        produce equal payloads, so concurrent ones share one
        computation."""
        return (self.kind,) + self.group + (
            self.capacity, self.retarget or "")

    # -- wire form ---------------------------------------------------------

    def as_dict(self) -> dict:
        data = {k: v for k, v in asdict(self).items() if v is not None}
        data.setdefault("kind", self.kind)
        data["v"] = PROTOCOL_VERSION
        return data


@dataclass
class Response:
    """One service response; ``payload`` shape depends on the request."""

    status: str = "ok"
    id: str | None = None
    payload: dict | None = None
    error: str | None = None
    #: how the request was served: worker, temperature, coalesced/batched
    #: flags, wall latency seconds
    meta: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def summary(self) -> RunSummary:
        """The run summary carried by an ``ok`` run response."""
        if not self.ok or not self.payload or "summary" not in self.payload:
            raise ProtocolError(f"response has no summary: {self}")
        return summary_from_dict(self.payload["summary"])

    def as_dict(self) -> dict:
        data: dict = {"v": PROTOCOL_VERSION, "status": self.status}
        if self.id is not None:
            data["id"] = self.id
        if self.payload is not None:
            data["payload"] = self.payload
        if self.error is not None:
            data["error"] = self.error
        if self.meta:
            data["meta"] = self.meta
        return data


def summary_to_dict(summary: RunSummary) -> dict:
    return asdict(summary)


def summary_from_dict(data: dict) -> RunSummary:
    return RunSummary(**data)


# ---------------------------------------------------------------------------
# JSON-lines encoding


def encode(obj: Request | Response) -> bytes:
    """One wire line (newline-terminated UTF-8 JSON) for a message."""
    return (json.dumps(obj.as_dict(), sort_keys=True,
                       separators=(",", ":")) + "\n").encode("utf-8")


def _decode_line(line: bytes | str) -> dict:
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        data = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"bad JSON line: {exc}") from None
    if not isinstance(data, dict):
        raise ProtocolError("wire message must be a JSON object")
    version = data.pop("v", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version {version!r} != {PROTOCOL_VERSION}")
    return data


def decode_request(line: bytes | str) -> Request:
    data = _decode_line(line)
    known = {f for f in Request.__dataclass_fields__}
    unknown = set(data) - known
    if unknown:
        raise ProtocolError(f"unknown request fields {sorted(unknown)}")
    request = Request(**data)
    request.validate()
    return request


def decode_response(line: bytes | str) -> Response:
    data = _decode_line(line)
    known = {f for f in Response.__dataclass_fields__}
    unknown = set(data) - known
    if unknown:
        raise ProtocolError(f"unknown response fields {sorted(unknown)}")
    data.setdefault("meta", {})
    return Response(**data)
