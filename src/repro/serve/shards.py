"""Sharded, size-bounded front end over the artifact-cache layout.

:class:`~repro.runner.cache.ArtifactCache` is a single-directory pickle
store; safe for concurrent writers (atomic same-directory renames) but
with one stats ledger and no size bound.  A service fielding thousands
of concurrent requests wants neither a single hot lock nor an unbounded
directory, so :class:`ShardedArtifactCache` partitions the *key space* —
shard = ``int(key[:2], 16) % shards`` — giving each shard its own lock,
its own hit/miss ledger and its own slice of a total LRU byte budget.

Crucially the on-disk layout is exactly the plain cache's
(``root/<key[:2]>/<key>.<kind>.pkl``): the batch runner and the service
can point at the same directory and warm each other, and every
maintenance helper in :mod:`repro.runner.cache` (``iter_entries``,
``gc_lru`` — also behind ``python -m repro.runner cache``) works on it
unchanged.  Each shard owns whole two-hex-digit prefix directories, so
per-shard gc never scans another shard's files.
"""

from __future__ import annotations

import threading
from pathlib import Path

from repro.runner.cache import ArtifactCache, CacheStats, gc_lru

#: default shard count; 16 divides the 256 prefix dirs evenly
DEFAULT_SHARDS = 16

#: check a shard's size bound every N stores (a scan per store would
#: turn every write O(entries))
GC_EVERY_STORES = 32

_PREFIXES = [f"{i:02x}" for i in range(256)]


def shard_index(key: str, shards: int) -> int:
    """Which shard owns ``key`` (keys are lowercase-hex SHA-256)."""
    return int(key[:2], 16) % shards


class _Shard:
    """One lock + ledger + byte-budget domain of the key space."""

    def __init__(self, root: Path, enabled: bool, index: int,
                 shards: int) -> None:
        self.lock = threading.Lock()
        # an ArtifactCache per shard, all on the same root: the envelope
        # format/atomic-write logic lives in one place, the stats ledger
        # becomes per-shard
        self.cache = ArtifactCache(root, enabled=enabled)
        self.prefixes = tuple(p for p in _PREFIXES
                              if int(p, 16) % shards == index)
        self.stores_since_gc = 0
        self.gc_evictions = 0
        self.gc_runs = 0


class ShardedArtifactCache:
    """N-way sharded cache, drop-in for ``ArtifactCache``'s load/store.

    ``max_bytes`` bounds the whole cache; each shard enforces
    ``max_bytes / shards`` over its own prefix directories with an LRU
    sweep (mtime-ordered — ``load`` touches entries on every hit) every
    :data:`GC_EVERY_STORES` stores.  ``None`` disables the bound.
    """

    def __init__(self, root: str | Path, shards: int = DEFAULT_SHARDS,
                 max_bytes: int | None = None, enabled: bool = True) -> None:
        if not 1 <= shards <= 256:
            raise ValueError(f"shards must be in [1, 256], got {shards}")
        self.root = Path(root)
        self.shards = shards
        self.max_bytes = max_bytes
        self.enabled = enabled
        self._shards = [_Shard(self.root, enabled, i, shards)
                        for i in range(shards)]

    def _shard(self, key: str) -> _Shard:
        return self._shards[shard_index(key, self.shards)]

    # -- the ArtifactCache surface ----------------------------------------

    def load(self, key: str, kind: str):
        shard = self._shard(key)
        with shard.lock:
            return shard.cache.load(key, kind)

    def store(self, key: str, kind: str, value):
        shard = self._shard(key)
        with shard.lock:
            path = shard.cache.store(key, kind, value)
            if path is not None and self.max_bytes is not None:
                shard.stores_since_gc += 1
                if shard.stores_since_gc >= GC_EVERY_STORES:
                    self._gc_shard(shard)
        return path

    def evict(self, key: str, kind: str) -> None:
        shard = self._shard(key)
        with shard.lock:
            shard.cache.evict(key, kind)

    # -- size bounding -----------------------------------------------------

    def _gc_shard(self, shard: _Shard) -> None:
        """LRU-sweep one shard down to its budget slice (lock held)."""
        shard.stores_since_gc = 0
        shard.gc_runs += 1
        budget = max(1, self.max_bytes // self.shards)
        evicted, _kept = gc_lru(self.root, budget, prefixes=shard.prefixes)
        shard.gc_evictions += len(evicted)
        shard.cache.stats.evictions += len(evicted)

    def gc(self) -> int:
        """Force the LRU sweep on every shard now; returns evictions."""
        if self.max_bytes is None:
            return 0
        before = sum(s.gc_evictions for s in self._shards)
        for shard in self._shards:
            with shard.lock:
                self._gc_shard(shard)
        return sum(s.gc_evictions for s in self._shards) - before

    # -- accounting --------------------------------------------------------

    @property
    def stats(self) -> CacheStats:
        """Aggregated hit/miss/store/eviction counts across shards."""
        total = CacheStats()
        for shard in self._shards:
            stats = shard.cache.stats
            total.hits += stats.hits
            total.misses += stats.misses
            total.stores += stats.stores
            total.evictions += stats.evictions
        return total

    def reset_stats(self) -> None:
        for shard in self._shards:
            shard.cache.stats = CacheStats()

    def shard_report(self) -> list[dict]:
        """Per-shard ledger, for the service's ``stats`` response."""
        report = []
        for index, shard in enumerate(self._shards):
            stats = shard.cache.stats
            report.append({
                "shard": index,
                "prefixes": len(shard.prefixes),
                **stats.as_dict(),
                "gc_runs": shard.gc_runs,
                "gc_evictions": shard.gc_evictions,
            })
        return report
