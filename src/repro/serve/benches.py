"""``serve.*`` saturation/load benchmarks for the service front end.

Registered into the same harness as ``sim.*``/``sched.*``/``sweep.*``
(:mod:`repro.obs.perf`), so ``perf record``, the CI perf-gate and the
nightly history all treat the service like any other protected fast
path.  Four specs plus a ratio:

* ``serve.cold`` — per-request p50 wall seconds for the serve grid
  driven concurrently at a *fresh* service (empty cache, cold workers);
  p95/p99 ride along as phases.
* ``serve.warm`` — the same workload repeated against the now-warm
  service: every request must come straight from the run cache.
* ``serve.speedup`` = cold/warm p50 — the service's warm-path contract
  (budget: warm at least 10x faster than cold).
* ``serve.hitrate`` — run-cache hit rate of the repeated workload
  (dimensionless ``frac``; budget 0.9, and being unit-portable it stays
  gated even when the history baseline moved machines).
* ``serve.throughput`` — warm requests/s under concurrent load
  (informational: no budget, absolute rates are machine-bound).

All three measuring specs share ``digest_group="serve"``: the summaries
the service returns cold, warm and under load must be byte-identical.
Latencies are the *service-side* per-request walls (``meta.latency_s``),
so client/thread overhead never pollutes the series.
"""

from __future__ import annotations

import hashlib
import tempfile

from repro.obs.perf.harness import (
    BenchError,
    BenchSpec,
    RatioSpec,
    Sample,
    register,
)

#: CI smoke grid (quick mode); full mode serves the whole Figure 7 grid
QUICK_SERVE = {"benchmarks": ("adpcm_enc", "mpeg2_dec"),
               "capacities": (64, 256)}
FULL_CAPACITIES = (16, 32, 64, 128, 256, 512, 1024, 2048)
PIPELINES = ("traditional", "aggressive")

#: concurrent client threads the load driver uses
CONCURRENCY = 8
SERVICE_WORKERS = 2


def _digest(obj) -> str:
    return hashlib.sha256(repr(obj).encode()).hexdigest()[:16]


def _percentile(samples: list[float], q: float) -> float:
    from repro.serve.cli import percentile

    return percentile(samples, q)


def _serve_config(mode: str, temperature: str) -> dict:
    from repro.bench import benchmark_names

    if mode == "quick":
        names = list(QUICK_SERVE["benchmarks"])
        capacities = list(QUICK_SERVE["capacities"])
    elif mode == "full":
        names = benchmark_names()
        capacities = list(FULL_CAPACITIES)
    else:
        raise BenchError(f"unknown mode {mode!r} (quick|full)")
    return {"benchmarks": names, "pipelines": list(PIPELINES),
            "capacities": capacities, "temperature": temperature,
            "workers": SERVICE_WORKERS, "concurrency": CONCURRENCY}


def _requests(config: dict) -> list:
    from repro.serve.protocol import Request

    return [
        Request(kind="run", benchmark=name, pipeline=pipeline,
                capacity=capacity)
        for name in config["benchmarks"]
        for pipeline in config["pipelines"]
        for capacity in config["capacities"]
    ]


def _drive(service, requests: list) -> list:
    """Issue the workload concurrently in-process; responses in order."""
    from repro.serve.client import Client, drive

    responses = drive(lambda: Client(service), requests,
                      concurrency=CONCURRENCY)
    failed = [r for r in responses if not r.ok]
    if failed:
        raise BenchError(
            f"serve bench: {len(failed)} request(s) failed, first: "
            f"{failed[0].status}: {failed[0].error}")
    return responses


def _latency_sample(responses: list, config: dict,
                    extra_meta: dict | None = None) -> Sample:
    latencies = sorted(r.meta["latency_s"] for r in responses)
    summaries = [r.summary() for r in responses]
    meta = {"digest": _digest(summaries), "requests": len(responses)}
    if extra_meta:
        meta.update(extra_meta)
    return Sample(
        value=_percentile(latencies, 50),
        phases={"p95": _percentile(latencies, 95),
                "p99": _percentile(latencies, 99)},
        meta=meta,
        check=summaries,
    )


def _fresh_service(tmp: str):
    from repro.serve.service import Service, ServiceConfig

    return Service(ServiceConfig(workers=SERVICE_WORKERS,
                                 cache_dir=tmp))


def _cold_sample(mode: str) -> Sample:
    config = _serve_config(mode, "cold")
    with tempfile.TemporaryDirectory(prefix="repro-serve-cold-") as tmp:
        with _fresh_service(tmp) as service:
            responses = _drive(service, _requests(config))
            if service.stats.run_cache_hits:
                raise BenchError("serve.cold: a cold request hit the "
                                 "run cache")
            return _latency_sample(responses, config)


def _warm_sample(mode: str) -> Sample:
    config = _serve_config(mode, "warm")
    with tempfile.TemporaryDirectory(prefix="repro-serve-warm-") as tmp:
        with _fresh_service(tmp) as service:
            requests = _requests(config)
            _drive(service, requests)  # warm the cache
            before = service.stats.run_cache_hits
            responses = _drive(service, requests)
            hits = service.stats.run_cache_hits - before
            if hits < len(requests):
                raise BenchError(
                    f"serve.warm: only {hits}/{len(requests)} repeated "
                    "requests came from the run cache")
            return _latency_sample(responses, config)


def _hitrate_sample(mode: str) -> Sample:
    """Hit rate over a *repeat* workload: everything the service already
    answered must come from the cache."""
    config = _serve_config(mode, "repeat")
    with tempfile.TemporaryDirectory(prefix="repro-serve-hit-") as tmp:
        with _fresh_service(tmp) as service:
            requests = _requests(config)
            _drive(service, requests)
            before_hits = service.stats.run_cache_hits
            before_reqs = service.stats.requests
            responses = _drive(service, requests)
            hits = service.stats.run_cache_hits - before_hits
            total = service.stats.requests - before_reqs
            sample = _latency_sample(
                responses, config,
                extra_meta={"hits": hits, "repeat_requests": total})
            sample.value = hits / total if total else 0.0
            sample.phases = {}
            return sample


def _throughput_sample(mode: str) -> Sample:
    """Warm requests/s at CONCURRENCY clients (offered-load plateau)."""
    import time

    config = _serve_config(mode, "warm")
    #: repeat the grid so the measured window is long enough to matter
    rounds = 8 if mode == "quick" else 2
    with tempfile.TemporaryDirectory(prefix="repro-serve-tput-") as tmp:
        with _fresh_service(tmp) as service:
            requests = _requests(config)
            _drive(service, requests)  # warm
            load = requests * rounds
            t0 = time.perf_counter()
            responses = _drive(service, load)
            wall = time.perf_counter() - t0
            summaries = [r.summary() for r in responses[:len(requests)]]
            return Sample(
                value=len(load) / wall if wall else 0.0,
                phases={"wall_s": wall},
                meta={"digest": _digest(summaries),
                      "requests": len(load), "rounds": rounds},
                check=summaries,
            )


def ensure_registered() -> None:
    """Register the ``serve.*`` specs (idempotent, like the built-ins)."""
    from repro.obs.perf.harness import _REGISTRY

    if "serve.cold" in _REGISTRY:
        return

    register(BenchSpec(
        "serve.cold", _cold_sample,
        lambda mode: _serve_config(mode, "cold"),
        digest_group="serve",
        help="service p50 request seconds, fresh cache and cold workers"))
    register(BenchSpec(
        "serve.warm", _warm_sample,
        lambda mode: _serve_config(mode, "warm"),
        digest_group="serve",
        help="service p50 request seconds, repeated (fully warm) "
             "workload"))
    register(RatioSpec(
        "serve.speedup", "serve.cold", "serve.warm",
        budgets={"quick": 10.0, "full": 10.0},
        # unlike engine-vs-engine speedups, the two halves measure
        # different work (compile-bound cold vs. cache-lookup warm), so
        # between-run machine noise does not divide out of the ratio;
        # the 10x floor above carries the contract and the gate only
        # needs to catch gross collapses
        gate_budget=0.5,
        help="warm-path speedup (cold/warm p50 request seconds)"))
    register(BenchSpec(
        "serve.hitrate", _hitrate_sample,
        lambda mode: _serve_config(mode, "repeat"),
        unit="frac", direction="higher",
        budgets={"quick": 0.9, "full": 0.9},
        digest_group="serve",
        help="run-cache hit rate over a repeated workload"))
    register(BenchSpec(
        "serve.throughput", _throughput_sample,
        lambda mode: _serve_config(mode, "throughput"),
        unit="rps", direction="higher",
        help="warm requests/s under concurrent load (informational)"))
