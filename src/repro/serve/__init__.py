"""Persistent compile/simulate service over the experiment runner.

The runner (:mod:`repro.runner`) executes a *grid* — a batch of
``(benchmark, pipeline, capacity)`` cells — and exits.  This package
wraps the same cell execution in a long-lived service so the warmth the
grid builds up (compiled bases, the fast engine's shared decode store,
the content-addressed artifact cache) survives between requests and is
shared by thousands of concurrent callers:

- :mod:`repro.serve.protocol` — the request/response schema and its
  JSON-lines wire form (``compile``/``run``/``stats``/``ping``).
- :mod:`repro.serve.shards` — :class:`ShardedArtifactCache`: the runner
  cache's key space partitioned into N shards with per-shard locks and a
  size-bounded LRU gc, layout-compatible with
  :class:`~repro.runner.cache.ArtifactCache` so the service and the
  batch runner warm each other.
- :mod:`repro.serve.pool` — warm worker pool with consistent-hash
  key-affinity routing (``(benchmark, pipeline)`` → worker), bounded
  per-worker queues and same-base request batching.
- :mod:`repro.serve.service` — the :class:`Service` itself: request
  coalescing (concurrent identical requests collapse into one
  computation), backpressure (``overloaded`` responses), per-request
  deadlines, obs spans/metrics on every request, and the asyncio
  JSON-lines front end over a unix or TCP socket.
- :mod:`repro.serve.client` — in-process :class:`Client` plus the
  :class:`SocketClient` wire client and a concurrent workload driver.
- :mod:`repro.serve.benches` — registered ``serve.*`` saturation/load
  benchmarks (requests/s, p50/p95/p99 cold vs. warm, hit rate), gated
  in CI beside ``sim.*``/``sweep.*``.

Start one from the shell with ``python -m repro.serve serve --unix
/tmp/repro.sock`` and drive it with ``python -m repro.serve workload``
(or any JSON-lines speaker).
"""

from repro.serve.client import Client, ServiceError, SocketClient
from repro.serve.protocol import Request, Response
from repro.serve.service import Service, ServiceConfig
from repro.serve.shards import ShardedArtifactCache

__all__ = [
    "Client",
    "Request",
    "Response",
    "Service",
    "ServiceConfig",
    "ServiceError",
    "ShardedArtifactCache",
    "SocketClient",
]
