"""Deterministic synthetic input generation for the benchmarks.

All inputs derive from a fixed-seed linear congruential generator and a
few simple waveform shapes, so every run of every benchmark is exactly
reproducible (the role clinton.pcm / testimg.jpg / mei16v2.m2v play for
the paper).
"""

from __future__ import annotations

from repro.sim.values import saturate, wrap32

LCG_MULTIPLIER = 1103515245
LCG_INCREMENT = 12345
LCG_MASK = (1 << 31) - 1


def lcg_stream(seed: int, count: int, lo: int, hi: int) -> list[int]:
    """``count`` pseudorandom ints uniform-ish in [lo, hi]."""
    span = hi - lo + 1
    state = seed & LCG_MASK
    out = []
    for _ in range(count):
        state = (state * LCG_MULTIPLIER + LCG_INCREMENT) & LCG_MASK
        out.append(lo + (state >> 16) % span)
    return out


def speech_samples(count: int, seed: int = 7) -> list[int]:
    """Speech-like 16-bit samples: a slow 'pitch' wave plus noise bursts."""
    noise = lcg_stream(seed, count, -400, 400)
    samples = []
    phase = 0
    for i, n in enumerate(noise):
        phase = (phase + 3 + (i % 40 == 0)) % 200
        tri = phase - 100 if phase < 150 else 3 * (200 - phase)
        envelope = 40 + 30 * ((i // 160) % 3)
        samples.append(saturate(tri * envelope + n, 16))
    return samples


def image_block(index: int, seed: int = 11) -> list[int]:
    """One 8x8 block of 8-bit pixels with gradient + texture."""
    noise = lcg_stream(seed + index, 64, -12, 12)
    pix = []
    for y in range(8):
        for x in range(8):
            base = 128 + 10 * (x - 4) + 6 * (y - 4) + ((index * 13) % 40) - 20
            value = base + noise[y * 8 + x]
            pix.append(max(0, min(255, value)))
    return pix


def image_blocks(count: int, seed: int = 11) -> list[int]:
    out: list[int] = []
    for b in range(count):
        out.extend(image_block(b, seed))
    return out


def message_words(count: int, seed: int = 23) -> list[int]:
    """Plaintext words for the cipher benchmarks (16-bit values)."""
    return lcg_stream(seed, count, 0, 0xFFFF)


def checksum(chk: int, value: int) -> int:
    """The rolling checksum every benchmark uses: chk*31 + value, wrapped.

    Matches MKC's native 32-bit wraparound so the Python references and
    the simulated programs agree bit for bit.
    """
    return wrap32(wrap32(chk * 31) + wrap32(value))
