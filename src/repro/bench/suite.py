"""Benchmark registry (Table 1 of the paper).

Each benchmark is a complete MKC program implementing the same algorithm
kernels as its MediaBench / telecom counterpart, on a deterministic
synthetic input, returning a rolling checksum.  A pure-Python *reference
implementation* computes the expected checksum, so every benchmark is a
self-checking correctness test for the whole compiler at every
optimization level.

Substitution note (see DESIGN.md): the original C sources and inputs
(clinton.pcm, testimg.jpg, ...) are not redistributable/available here;
what the paper's results depend on is *loop structure* — trip counts,
nest shapes, internal control flow, side exits — which these programs
reproduce per benchmark (e.g. ``mpeg2dec`` contains the exact Figure 2
``Add_Block`` loop, ``g724dec`` a 13-loop ``Post_Filter`` shaped like
Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.frontend import compile_source
from repro.ir.module import Module


@dataclass
class Benchmark:
    """One Table 1 benchmark."""

    name: str
    description: str
    source: str
    reference: Callable[[], int]     # pure-Python expected checksum
    entry: str = "main"
    args: list[int] = field(default_factory=list)

    def build(self) -> Module:
        return compile_source(self.source, name=self.name)

    def expected(self) -> int:
        return self.reference()


_REGISTRY: dict[str, Callable[[], Benchmark]] = {}


def register(name: str):
    def deco(factory: Callable[[], Benchmark]):
        _REGISTRY[name] = factory
        return factory
    return deco


def benchmark(name: str) -> Benchmark:
    _load_all()
    return _REGISTRY[name]()


def benchmark_names() -> list[str]:
    _load_all()
    return sorted(_REGISTRY)


def all_benchmarks() -> list[Benchmark]:
    return [benchmark(name) for name in benchmark_names()]


_loaded = False


def _load_all() -> None:
    global _loaded
    if _loaded:
        return
    from . import programs  # noqa: F401  (registers everything)

    _loaded = True
