"""The Table 1 benchmark suite: MKC media/telecom programs with
pure-Python reference implementations as correctness oracles."""

from .inputs import checksum, image_blocks, lcg_stream, message_words, speech_samples
from .suite import Benchmark, all_benchmarks, benchmark, benchmark_names

__all__ = [
    "Benchmark",
    "all_benchmarks",
    "benchmark",
    "benchmark_names",
    "checksum",
    "image_blocks",
    "lcg_stream",
    "message_words",
    "speech_samples",
]
