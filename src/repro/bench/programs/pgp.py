"""pgp_enc / pgp_dec — PGP-style codec: IDEA-style block cipher + CRC.

PGP's bulk cipher is IDEA; we implement an IDEA-style cipher with the
identical operation mix: 8 rounds of mul-mod-65537 / add-mod-65536 / xor
over 16-bit quarters plus an output transform.  ``mulmod`` has the classic
data-dependent zero-operand hammocks, and the decode side derives
inverse-style subkeys with an extended-Euclid modular inverse (a
data-dependent while loop).  A bitwise CRC over the output adds the
collapsible 8-iteration inner loop the paper's loop-collapsing
transformation targets.  (The round permutation differs slightly from
genuine IDEA, so this is a structural stand-in, not crypto.)
"""

from __future__ import annotations

from repro.sim.values import wrap32

from ..inputs import checksum, message_words
from ..suite import Benchmark, register
from ._util import mkc_array

ROUNDS = 8
N_BLOCKS = 20          # 4 words per block
KEY = [0x1A2B, 0x3C4D, 0x5E6F, 0x7081, 0x92A3, 0xB4C5, 0xD6E7, 0xF809]
CRC_POLY = 0xEDB88320


# -- reference implementation ------------------------------------------------------


def _mulmod_py(a: int, b: int) -> int:
    aa = 0x10000 if a == 0 else a
    bb = 0x10000 if b == 0 else b
    return (aa * bb) % 0x10001 & 0xFFFF


def _mulinv_py(x: int) -> int:
    """Multiplicative inverse mod 65537 (0 represents 65536)."""
    if x <= 1:
        return x
    t1, t0 = 1, 0
    y, x1 = 0x10001, 0x10000 if x == 0 else x
    while x1 != 1:
        q = y // x1
        y, x1 = x1, y - q * x1
        t0, t1 = t1, t0 - q * t1
    return t1 & 0xFFFF


def _expand_key_py(key: list[int]) -> list[int]:
    """52 subkeys via the IDEA 25-bit rotating key schedule."""
    subkeys = list(key)
    while len(subkeys) < 52:
        # rotate the last 8 words' 128 bits left by 25
        base = len(subkeys) - 8
        words = subkeys[base:base + 8]
        rotated = []
        for i in range(8):
            hi = words[(i + 1) % 8]
            lo = words[(i + 2) % 8]
            rotated.append(((hi << 9) | (lo >> 7)) & 0xFFFF)
        subkeys.extend(rotated)
    return subkeys[:52]


def _encrypt_block_py(block: list[int], sk: list[int]) -> list[int]:
    x0, x1, x2, x3 = block
    k = 0
    for _ in range(ROUNDS):
        x0 = _mulmod_py(x0, sk[k])
        x1 = (x1 + sk[k + 1]) & 0xFFFF
        x2 = (x2 + sk[k + 2]) & 0xFFFF
        x3 = _mulmod_py(x3, sk[k + 3])
        t0 = x0 ^ x2
        t1 = x1 ^ x3
        t0 = _mulmod_py(t0, sk[k + 4])
        t1 = (t1 + t0) & 0xFFFF
        t1 = _mulmod_py(t1, sk[k + 5])
        t0 = (t0 + t1) & 0xFFFF
        x0 ^= t1
        x2 ^= t1
        x1 ^= t0
        x3 ^= t0
        x1, x2 = x2, x1
        k += 6
    x1, x2 = x2, x1
    return [
        _mulmod_py(x0, sk[48]),
        (x1 + sk[49]) & 0xFFFF,
        (x2 + sk[50]) & 0xFFFF,
        _mulmod_py(x3, sk[51]),
    ]


def _inverse_keys_py(sk: list[int]) -> list[int]:
    """IDEA-style decryption key schedule (mulinv/addinv of the encrypt
    keys in reverse round order)."""
    inv = [0] * 52
    for r in range(ROUNDS):
        src_t = 6 * (ROUNDS - r)
        dst = 6 * r
        inv[dst + 0] = _mulinv_py(sk[src_t])
        inv[dst + 3] = _mulinv_py(sk[src_t + 3])
        if r == 0:
            inv[dst + 1] = (-sk[src_t + 1]) & 0xFFFF
            inv[dst + 2] = (-sk[src_t + 2]) & 0xFFFF
        else:
            inv[dst + 1] = (-sk[src_t + 2]) & 0xFFFF
            inv[dst + 2] = (-sk[src_t + 1]) & 0xFFFF
        src = 6 * (ROUNDS - 1 - r) + 4
        inv[dst + 4] = sk[src]
        inv[dst + 5] = sk[src + 1]
    inv[48] = _mulinv_py(sk[0])
    inv[49] = (-sk[1]) & 0xFFFF
    inv[50] = (-sk[2]) & 0xFFFF
    inv[51] = _mulinv_py(sk[3])
    return inv


def _crc_py(words: list[int]) -> int:
    crc = 0xFFFFFFFF
    for w in words:
        crc ^= w & 0xFFFF
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ CRC_POLY
            else:
                crc >>= 1
    return wrap32(crc)


def _enc_reference(plain: list[int]) -> int:
    sk = _expand_key_py(KEY)
    out: list[int] = []
    for b in range(N_BLOCKS):
        out.extend(_encrypt_block_py(plain[b * 4:(b + 1) * 4], sk))
    chk = _crc_py(out)
    for w in out[::5]:
        chk = checksum(chk, w)
    return chk


def _dec_reference(cipher: list[int]) -> int:
    sk = _inverse_keys_py(_expand_key_py(KEY))
    out: list[int] = []
    for b in range(N_BLOCKS):
        out.extend(_encrypt_block_py(cipher[b * 4:(b + 1) * 4], sk))
    chk = _crc_py(out)
    for w in out[::5]:
        chk = checksum(chk, w)
    return chk


# -- MKC implementation ------------------------------------------------------------------

_CIPHER_COMMON = """
int subkeys[52];
int out[%(words)d];

int mulmod(int a, int b) {
    if (a == 0) return (0x10001 - b) & 0xFFFF;
    if (b == 0) return (0x10001 - a) & 0xFFFF;
    int p = a * b;
    int lo = p & 0xFFFF;
    int hi = (p >> 16) & 0xFFFF;
    int r = lo - hi;
    if (lo < hi) r += 0x10001;
    return r & 0xFFFF;
}

void expand_key() {
    for (int i = 0; i < 8; i++) subkeys[i] = key[i];
    int n = 8;
    while (n < 52) {
        int base = n - 8;
        for (int i = 0; i < 8 && n + i < 52 + 8; i++) {
            int hi = subkeys[base + ((i + 1) %% 8)];
            int lo = subkeys[base + ((i + 2) %% 8)];
            if (n + i < 52) {
                subkeys[n + i] = ((hi << 9) | (lo >> 7)) & 0xFFFF;
            }
        }
        n += 8;
    }
}

void crypt_block(int *x, int *sk) {
    int x0 = x[0];
    int x1 = x[1];
    int x2 = x[2];
    int x3 = x[3];
    int k = 0;
    for (int round = 0; round < %(rounds)d; round++) {
        x0 = mulmod(x0, sk[k]);
        x1 = (x1 + sk[k + 1]) & 0xFFFF;
        x2 = (x2 + sk[k + 2]) & 0xFFFF;
        x3 = mulmod(x3, sk[k + 3]);
        int t0 = x0 ^ x2;
        int t1 = x1 ^ x3;
        t0 = mulmod(t0, sk[k + 4]);
        t1 = (t1 + t0) & 0xFFFF;
        t1 = mulmod(t1, sk[k + 5]);
        t0 = (t0 + t1) & 0xFFFF;
        x0 ^= t1;
        x2 ^= t1;
        x1 ^= t0;
        x3 ^= t0;
        int swap = x1;
        x1 = x2;
        x2 = swap;
        k += 6;
    }
    int swap = x1;
    x1 = x2;
    x2 = swap;
    x[0] = mulmod(x0, sk[48]);
    x[1] = (x1 + sk[49]) & 0xFFFF;
    x[2] = (x2 + sk[50]) & 0xFFFF;
    x[3] = mulmod(x3, sk[51]);
}

int crc_all() {
    int crc = 0 - 1;
    for (int i = 0; i < %(words)d; i++) {
        crc ^= out[i] & 0xFFFF;
        for (int b = 0; b < 8; b++) {
            int bit = crc & 1;
            crc = (crc >> 1) & 0x7FFFFFFF;
            if (bit) crc ^= 0x%(poly)X;
        }
    }
    return crc;
}

int finish() {
    int chk = crc_all();
    for (int i = 0; i < %(words)d; i += 5)
        chk = chk * 31 + out[i];
    return chk;
}
""" % {"words": N_BLOCKS * 4, "rounds": ROUNDS, "poly": CRC_POLY}

_ENC_MAIN = """
int block[4];

int main() {
    expand_key();
    for (int b = 0; b < %(blocks)d; b++) {
        for (int i = 0; i < 4; i++) block[i] = message[b * 4 + i];
        crypt_block(block, subkeys);
        for (int i = 0; i < 4; i++) out[b * 4 + i] = block[i];
    }
    return finish();
}
""" % {"blocks": N_BLOCKS}

_DEC_MAIN = """
int invkeys[52];
int block[4];

int mulinv(int x) {
    if (x <= 1) return x;
    int t1 = 1;
    int t0 = 0;
    int y = 0x10001;
    int x1 = x;
    while (x1 != 1) {
        int q = y / x1;
        int r = y - q * x1;
        y = x1;
        x1 = r;
        int t = t0 - q * t1;
        t0 = t1;
        t1 = t;
    }
    return t1 & 0xFFFF;
}

void invert_keys() {
    for (int r = 0; r < %(rounds)d; r++) {
        int srct = 6 * (%(rounds)d - r);
        int dst = 6 * r;
        invkeys[dst] = mulinv(subkeys[srct]);
        invkeys[dst + 3] = mulinv(subkeys[srct + 3]);
        if (r == 0) {
            invkeys[dst + 1] = (0 - subkeys[srct + 1]) & 0xFFFF;
            invkeys[dst + 2] = (0 - subkeys[srct + 2]) & 0xFFFF;
        } else {
            invkeys[dst + 1] = (0 - subkeys[srct + 2]) & 0xFFFF;
            invkeys[dst + 2] = (0 - subkeys[srct + 1]) & 0xFFFF;
        }
        int src = 6 * (%(rounds)d - 1 - r) + 4;
        invkeys[dst + 4] = subkeys[src];
        invkeys[dst + 5] = subkeys[src + 1];
    }
    invkeys[48] = mulinv(subkeys[0]);
    invkeys[49] = (0 - subkeys[1]) & 0xFFFF;
    invkeys[50] = (0 - subkeys[2]) & 0xFFFF;
    invkeys[51] = mulinv(subkeys[3]);
}

int main() {
    expand_key();
    invert_keys();
    for (int b = 0; b < %(blocks)d; b++) {
        for (int i = 0; i < 4; i++) block[i] = cipher[b * 4 + i];
        crypt_block(block, invkeys);
        for (int i = 0; i < 4; i++) out[b * 4 + i] = block[i];
    }
    return finish();
}
""" % {"blocks": N_BLOCKS, "rounds": ROUNDS}


@register("pgp_enc")
def pgp_enc() -> Benchmark:
    plain = message_words(N_BLOCKS * 4)
    source = "\n".join([
        mkc_array("key", KEY),
        mkc_array("message", plain),
        _CIPHER_COMMON,
        _ENC_MAIN,
    ])

    def reference() -> int:
        return _enc_reference(plain)

    return Benchmark("pgp_enc", "PGP-style encryptor (IDEA + CRC)",
                     source, reference)


@register("pgp_dec")
def pgp_dec() -> Benchmark:
    plain = message_words(N_BLOCKS * 4)
    sk = _expand_key_py(KEY)
    cipher: list[int] = []
    for b in range(N_BLOCKS):
        cipher.extend(_encrypt_block_py(plain[b * 4:(b + 1) * 4], sk))
    source = "\n".join([
        mkc_array("key", KEY),
        mkc_array("cipher", cipher),
        _CIPHER_COMMON,
        _DEC_MAIN,
    ])

    def reference() -> int:
        return _dec_reference(cipher)

    return Benchmark("pgp_dec", "PGP-style decryptor (IDEA inverse keys + CRC)",
                     source, reference)
