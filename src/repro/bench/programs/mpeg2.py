"""mpeg2_enc / mpeg2_dec — MPEG-2-style video codec kernels (Table 1).

``mpeg2_dec`` contains the exact ``Add_Block`` doubly-nested loop of the
paper's Figure 2 (clip(*bp++ + pred) into a strided frame pointer), fed by
dequantization + integer IDCT and half-pel motion compensation.

``mpeg2_enc`` is dominated by full-search motion estimation — "many
large, highly nested loop structures which only iterate several times" —
the benchmark the paper singles out as resisting loop buffering, plus the
DCT/quantization of the residual.
"""

from __future__ import annotations

from ..inputs import checksum, image_block, lcg_stream
from ..suite import Benchmark, register
from ._util import mkc_array
from .jpeg import COS_TABLE, SCALE_BITS, _fdct_block_py

N_DEC_BLOCKS = 6
STRIDE = 16            # decoded frame is 16 pixels wide: 2x3 blocks
SEARCH = 3             # +/- pixels of motion search
MB = 16                # macroblock size
REF_W = MB + 2 * SEARCH + 1
#: the decoder's reference window covers its 16x24 frame plus motion range
DREF_W = STRIDE + SEARCH + 1
DREF_H = 24 + SEARCH + 1


def _ref_frame_py(width: int = REF_W, height: int = REF_W,
                  seed: int = 31) -> list[int]:
    noise = lcg_stream(seed, width * height, 0, 255)
    return [
        max(0, min(255, (x * 9 + y * 5 + noise[y * width + x] // 4) % 256))
        for y in range(height) for x in range(width)
    ]


def _quant_py(coeffs: list[int], q: int = 16) -> list[int]:
    out = []
    for c in coeffs:
        mag = (abs(c) + (q >> 1)) // q
        out.append(mag if c >= 0 else -mag)
    return out


# -- decoder reference ------------------------------------------------------------


def _decode_py(coded: list[int], ref: list[int], mvs: list[int]) -> int:
    frame = [0] * (STRIDE * 24)
    for b in range(N_DEC_BLOCKS):
        coeffs = [c * 16 for c in coded[b * 64:(b + 1) * 64]]
        diff = _idct_signed_py(coeffs)
        mx, my = mvs[b * 2], mvs[b * 2 + 1]
        bx, by = (b % 2) * 8, (b // 2) * 8
        for i in range(8):
            for j in range(8):
                rx, ry = bx + j + mx, by + i + my
                pred = (ref[ry * DREF_W + rx] + ref[ry * DREF_W + rx + 1] + 1) >> 1
                value = max(0, min(255, diff[i * 8 + j] + pred))
                frame[(by + i) * STRIDE + bx + j] = value
    chk = 0
    for v in frame:
        chk = checksum(chk, v)
    return chk


def _idct_signed_py(coeffs: list[int]) -> list[int]:
    """IDCT without the +128/clip (residual decoding)."""
    tmp = [0] * 64
    for u in range(8):
        for y in range(8):
            acc = 0
            for v in range(8):
                acc += COS_TABLE[v * 8 + y] * coeffs[v * 8 + u]
            tmp[y * 8 + u] = acc >> SCALE_BITS
    out = [0] * 64
    for y in range(8):
        for x in range(8):
            acc = 0
            for u in range(8):
                acc += COS_TABLE[u * 8 + x] * tmp[y * 8 + u]
            out[y * 8 + x] = acc >> SCALE_BITS
    return out


_DEC_SOURCE_MAIN = """
void idct_res(int *coef, int *out) {
    int tmp[64];
    for (int u = 0; u < 8; u++) {
        for (int y = 0; y < 8; y++) {
            int acc = 0;
            for (int v = 0; v < 8; v++)
                acc += costab[v * 8 + y] * coef[v * 8 + u];
            tmp[y * 8 + u] = acc >> %(scale)d;
        }
    }
    for (int y = 0; y < 8; y++) {
        for (int x = 0; x < 8; x++) {
            int acc = 0;
            for (int u = 0; u < 8; u++)
                acc += costab[u * 8 + x] * tmp[y * 8 + u];
            out[y * 8 + x] = acc >> %(scale)d;
        }
    }
}

void mocomp(int *pred, int mx, int my, int bx, int by) {
    for (int i = 0; i < 8; i++) {
        for (int j = 0; j < 8; j++) {
            int r = (by + i + my) * %(drefw)d + bx + j + mx;
            pred[i * 8 + j] = (refframe[r] + refframe[r + 1] + 1) >> 1;
        }
    }
}

/* The Figure 2 Add_Block loop: *rfp++ = Clip[*bp++ + pred]; rfp += incr */
void add_block(int *bp, int *pred, int rfp) {
    int incr = %(stride)d - 8;
    int pp = 0;
    for (int i = 0; i < 8; i++) {
        for (int j = 0; j < 8; j++) {
            frame[rfp] = __clip(bp[pp] + pred[pp], 0, 255);
            rfp++;
            pp++;
        }
        rfp += incr;
    }
}

int main() {
    int coef[64];
    int diff[64];
    int pred[64];
    for (int b = 0; b < %(blocks)d; b++) {
        for (int i = 0; i < 64; i++)
            coef[i] = coded[b * 64 + i] * 16;
        idct_res(coef, diff);
        int bx = (b %% 2) * 8;
        int by = (b / 2) * 8;
        mocomp(pred, mvs[b * 2], mvs[b * 2 + 1], bx, by);
        add_block(diff, pred, by * %(stride)d + bx);
    }
    int chk = 0;
    for (int i = 0; i < %(framesize)d; i++)
        chk = chk * 31 + frame[i];
    return chk;
}
""" % {"scale": SCALE_BITS, "drefw": DREF_W, "stride": STRIDE,
       "blocks": N_DEC_BLOCKS, "framesize": STRIDE * 24}


@register("mpeg2_dec")
def mpeg2_dec() -> Benchmark:
    ref = _ref_frame_py(DREF_W, DREF_H)
    # non-negative motion vectors keep every reference access inside the
    # (REF_W x REF_W) window for both the MKC program and the reference
    mvs: list[int] = []
    for b in range(N_DEC_BLOCKS):
        mvs.extend([(b * 3) % (SEARCH + 1), (b * 5) % (SEARCH + 1)])
    coded: list[int] = []
    for b in range(N_DEC_BLOCKS):
        residual = [((v - 128) * 3) // 4 for v in image_block(b, seed=17)]
        coded.extend(_quant_py(_fdct_block_py([r + 128 for r in residual])))
    source = "\n".join([
        mkc_array("costab", COS_TABLE),
        mkc_array("coded", coded),
        mkc_array("refframe", ref),
        mkc_array("mvs", mvs),
        f"int frame[{STRIDE * 24}];",
        _DEC_SOURCE_MAIN,
    ])

    def reference() -> int:
        return _decode_py(coded, ref, mvs)

    return Benchmark("mpeg2_dec", "MPEG-2-style decoder (IDCT + Add_Block + MC)",
                     source, reference)


# -- encoder ----------------------------------------------------------------------------


def _encode_py(cur: list[int], ref: list[int]) -> int:
    best_sad, best_mx, best_my = 1 << 30, 0, 0
    for my in range(-SEARCH, SEARCH + 1):
        for mx in range(-SEARCH, SEARCH + 1):
            sad = 0
            for y in range(MB):
                if sad >= best_sad:
                    break
                for x in range(MB):
                    r = (y + my + SEARCH) * REF_W + x + mx + SEARCH
                    sad += abs(cur[y * MB + x] - ref[r])
            if sad < best_sad:
                best_sad, best_mx, best_my = sad, mx, my
    chk = checksum(checksum(0, best_mx), best_my)
    chk = checksum(chk, best_sad)
    # residual DCT + quant over the four 8x8 blocks
    for by in (0, 8):
        for bx in (0, 8):
            block = []
            for i in range(8):
                for j in range(8):
                    y, x = by + i, bx + j
                    r = (y + best_my + SEARCH) * REF_W + x + best_mx + SEARCH
                    block.append(cur[y * MB + x] - ref[r] + 128)
            for q in _quant_py(_fdct_block_py(block)):
                chk = checksum(chk, q)
    return chk


_ENC_SOURCE_MAIN = """
void fdct(int *pix, int *out) {
    int tmp[64];
    for (int y = 0; y < 8; y++) {
        for (int u = 0; u < 8; u++) {
            int acc = 0;
            for (int x = 0; x < 8; x++)
                acc += costab[u * 8 + x] * (pix[y * 8 + x] - 128);
            tmp[y * 8 + u] = acc >> %(scale)d;
        }
    }
    for (int u = 0; u < 8; u++) {
        for (int v = 0; v < 8; v++) {
            int acc = 0;
            for (int y = 0; y < 8; y++)
                acc += costab[v * 8 + y] * tmp[y * 8 + u];
            out[v * 8 + u] = acc >> %(scale)d;
        }
    }
}

int main() {
    int best = 1 << 30;
    int bestmx = 0;
    int bestmy = 0;
    for (int my = -%(search)d; my <= %(search)d; my++) {
        for (int mx = -%(search)d; mx <= %(search)d; mx++) {
            int sad = 0;
            for (int y = 0; y < %(mb)d; y++) {
                if (sad >= best) break;
                for (int x = 0; x < %(mb)d; x++) {
                    int r = (y + my + %(search)d) * %(refw)d + x + mx + %(search)d;
                    sad += __abs(cur[y * %(mb)d + x] - refframe[r]);
                }
            }
            if (sad < best) { best = sad; bestmx = mx; bestmy = my; }
        }
    }
    int chk = 31 * bestmx + bestmy;
    chk = chk * 31 + best;
    int block[64];
    int freq[64];
    for (int by = 0; by < %(mb)d; by += 8) {
        for (int bx = 0; bx < %(mb)d; bx += 8) {
            for (int i = 0; i < 8; i++) {
                for (int j = 0; j < 8; j++) {
                    int y = by + i;
                    int x = bx + j;
                    int r = (y + bestmy + %(search)d) * %(refw)d
                            + x + bestmx + %(search)d;
                    block[i * 8 + j] = cur[y * %(mb)d + x] - refframe[r] + 128;
                }
            }
            fdct(block, freq);
            for (int i = 0; i < 64; i++) {
                int c = freq[i];
                int mag = (__abs(c) + 8) / 16;
                int q = c >= 0 ? mag : -mag;
                chk = chk * 31 + q;
            }
        }
    }
    return chk;
}
""" % {"scale": SCALE_BITS, "search": SEARCH, "mb": MB, "refw": REF_W}


@register("mpeg2_enc")
def mpeg2_enc() -> Benchmark:
    ref = _ref_frame_py()
    noise = lcg_stream(41, MB * MB, -6, 6)
    # current macroblock: the reference shifted by (+2, +1) plus noise
    cur = []
    for y in range(MB):
        for x in range(MB):
            v = ref[(y + 1 + SEARCH) * REF_W + (x + 2 + SEARCH)]
            cur.append(max(0, min(255, v + noise[y * MB + x])))
    source = "\n".join([
        mkc_array("costab", COS_TABLE),
        mkc_array("refframe", ref),
        mkc_array("cur", cur),
        _ENC_SOURCE_MAIN,
    ])

    def reference() -> int:
        return _encode_py(cur, ref)

    return Benchmark("mpeg2_enc", "MPEG-2-style encoder (motion est + DCT)",
                     source, reference)
