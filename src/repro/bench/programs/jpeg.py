"""jpeg_enc / jpeg_dec — JPEG-style photo codec (Table 1).

Integer 8x8 separable DCT (fixed-point cosine table), quantization with
rounding, zigzag scan and zero-run-length coding on the encode side;
dezigzag, dequantization, inverse DCT and [0,255] clipping on decode.

The structure mirrors what the paper reports for the IJG codec: "inner-
nest loops for which the iteration counts were generally small, but varied
across different loop invocations" (the RLE zero-run scan), which caps its
loop-buffer issue rate well below the other benchmarks.
"""

from __future__ import annotations

import math

from ..inputs import checksum, image_blocks
from ..suite import Benchmark, register
from ._util import mkc_array

N_BLOCKS = 10
SCALE_BITS = 10

#: fixed-point DCT basis: round(cos((2x+1)u*pi/16) * c(u) * 1024 / 2)
COS_TABLE = [
    round(math.cos((2 * x + 1) * u * math.pi / 16)
          * (math.sqrt(0.125) if u == 0 else 0.5)
          * (1 << SCALE_BITS))
    for u in range(8) for x in range(8)
]

QUANT_TABLE = [
    16, 11, 10, 16, 24, 40, 51, 61,
    12, 12, 14, 19, 26, 58, 60, 55,
    14, 13, 16, 24, 40, 57, 69, 56,
    14, 17, 22, 29, 51, 87, 80, 62,
    18, 22, 37, 56, 68, 109, 103, 77,
    24, 35, 55, 64, 81, 104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101,
    72, 92, 95, 98, 112, 100, 103, 99,
]

ZIGZAG = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6, 7, 14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
]


def _fdct_block_py(pixels: list[int]) -> list[int]:
    tmp = [0] * 64
    for y in range(8):
        for u in range(8):
            acc = 0
            for x in range(8):
                acc += COS_TABLE[u * 8 + x] * (pixels[y * 8 + x] - 128)
            tmp[y * 8 + u] = acc >> SCALE_BITS
    out = [0] * 64
    for u in range(8):
        for v in range(8):
            acc = 0
            for y in range(8):
                acc += COS_TABLE[v * 8 + y] * tmp[y * 8 + u]
            out[v * 8 + u] = acc >> SCALE_BITS
    return out


def _quantize_py(coeffs: list[int]) -> list[int]:
    out = []
    for i, c in enumerate(coeffs):
        q = QUANT_TABLE[i]
        if c >= 0:
            out.append((c + (q >> 1)) // q)
        else:
            out.append(-(((-c) + (q >> 1)) // q))
    return out


def _idct_block_py(coeffs: list[int]) -> list[int]:
    tmp = [0] * 64
    for u in range(8):
        for y in range(8):
            acc = 0
            for v in range(8):
                acc += COS_TABLE[v * 8 + y] * coeffs[v * 8 + u]
            tmp[y * 8 + u] = acc >> SCALE_BITS
    out = [0] * 64
    for y in range(8):
        for x in range(8):
            acc = 0
            for u in range(8):
                acc += COS_TABLE[u * 8 + x] * tmp[y * 8 + u]
            out[y * 8 + x] = max(0, min(255, (acc >> SCALE_BITS) + 128))
    return out


def _encode_py(pixels: list[int]) -> tuple[list[int], int]:
    """Returns (quantized zigzag coefficients of all blocks, checksum)."""
    chk = 0
    coded: list[int] = []
    for b in range(N_BLOCKS):
        block = pixels[b * 64:(b + 1) * 64]
        quant = _quantize_py(_fdct_block_py(block))
        zz = [quant[ZIGZAG[i]] for i in range(64)]
        coded.extend(zz)
        # zero-run-length code: (run, level) pairs
        i = 1
        while i < 64:
            run = 0
            while i < 64 and zz[i] == 0:
                run += 1
                i += 1
            if i < 64:
                chk = checksum(chk, run)
                chk = checksum(chk, zz[i])
                i += 1
        chk = checksum(chk, zz[0])
    return coded, chk


def _decode_py(coded: list[int]) -> int:
    chk = 0
    for b in range(N_BLOCKS):
        zz = coded[b * 64:(b + 1) * 64]
        coeffs = [0] * 64
        for i in range(64):
            coeffs[ZIGZAG[i]] = zz[i] * QUANT_TABLE[ZIGZAG[i]]
        pixels = _idct_block_py(coeffs)
        for p in pixels:
            chk = checksum(chk, p)
    return chk


_COMMON = """
void fdct(int *pix, int *out) {
    int tmp[64];
    for (int y = 0; y < 8; y++) {
        for (int u = 0; u < 8; u++) {
            int acc = 0;
            for (int x = 0; x < 8; x++)
                acc += costab[u * 8 + x] * (pix[y * 8 + x] - 128);
            tmp[y * 8 + u] = acc >> %(scale)d;
        }
    }
    for (int u = 0; u < 8; u++) {
        for (int v = 0; v < 8; v++) {
            int acc = 0;
            for (int y = 0; y < 8; y++)
                acc += costab[v * 8 + y] * tmp[y * 8 + u];
            out[v * 8 + u] = acc >> %(scale)d;
        }
    }
}

void idct(int *coef, int *out) {
    int tmp[64];
    for (int u = 0; u < 8; u++) {
        for (int y = 0; y < 8; y++) {
            int acc = 0;
            for (int v = 0; v < 8; v++)
                acc += costab[v * 8 + y] * coef[v * 8 + u];
            tmp[y * 8 + u] = acc >> %(scale)d;
        }
    }
    for (int y = 0; y < 8; y++) {
        for (int x = 0; x < 8; x++) {
            int acc = 0;
            for (int u = 0; u < 8; u++)
                acc += costab[u * 8 + x] * tmp[y * 8 + u];
            out[y * 8 + x] = __clip((acc >> %(scale)d) + 128, 0, 255);
        }
    }
}
""" % {"scale": SCALE_BITS}

_ENC_MAIN = """
int chkbox[1];

void rle_block(int *zz) {
    int chk = chkbox[0];
    int i = 1;
    while (i < 64) {
        int run = 0;
        while (i < 64 && zz[i] == 0) { run++; i++; }
        if (i < 64) {
            chk = chk * 31 + run;
            chk = chk * 31 + zz[i];
            i++;
        }
    }
    chk = chk * 31 + zz[0];
    chkbox[0] = chk;
}

int main() {
    int freq[64];
    int zz[64];
    chkbox[0] = 0;
    for (int b = 0; b < %(blocks)d; b++) {
        fdct(pixels + b * 64, freq);
        for (int i = 0; i < 64; i++) {
            int c = freq[i];
            int q = qtab[i];
            int mag = __abs(c) + (q >> 1);
            int scaled = mag / q;
            freq[i] = c >= 0 ? scaled : -scaled;
        }
        for (int i = 0; i < 64; i++)
            zz[i] = freq[zigzag[i]];
        rle_block(zz);
    }
    return chkbox[0];
}
""" % {"blocks": N_BLOCKS}

_DEC_MAIN = """
int main() {
    int coef[64];
    int pix[64];
    int chk = 0;
    for (int b = 0; b < %(blocks)d; b++) {
        for (int i = 0; i < 64; i++)
            coef[i] = 0;
        for (int i = 0; i < 64; i++)
            coef[zigzag[i]] = coded[b * 64 + i] * qtab[zigzag[i]];
        idct(coef, pix);
        for (int i = 0; i < 64; i++)
            chk = chk * 31 + pix[i];
    }
    return chk;
}
""" % {"blocks": N_BLOCKS}


@register("jpeg_enc")
def jpeg_enc() -> Benchmark:
    pixels = image_blocks(N_BLOCKS)
    source = "\n".join([
        mkc_array("costab", COS_TABLE),
        mkc_array("qtab", QUANT_TABLE),
        mkc_array("zigzag", ZIGZAG),
        mkc_array("pixels", pixels),
        _COMMON,
        _ENC_MAIN,
    ])

    def reference() -> int:
        return _encode_py(pixels)[1]

    return Benchmark("jpeg_enc", "JPEG-style image encoder (DCT/quant/RLE)",
                     source, reference)


@register("jpeg_dec")
def jpeg_dec() -> Benchmark:
    pixels = image_blocks(N_BLOCKS)
    coded, _ = _encode_py(pixels)
    source = "\n".join([
        mkc_array("costab", COS_TABLE),
        mkc_array("qtab", QUANT_TABLE),
        mkc_array("zigzag", ZIGZAG),
        mkc_array("coded", coded),
        _COMMON,
        _DEC_MAIN,
    ])

    def reference() -> int:
        return _decode_py(coded)

    return Benchmark("jpeg_dec", "JPEG-style image decoder (dequant/IDCT)",
                     source, reference)
