"""mpg123 — MPEG audio (Layer-3-style) decoder synthesis filterbank.

The hot code of mpg123 is the polyphase synthesis filterbank: a 32-point
DCT per granule followed by windowed FIR accumulation against a 512-entry
window table.  The paper notes this benchmark "struggles except for very
large (2048-operation) buffer sizes primarily because its execution time
is concentrated in functions with small trip count loops, which, for
optimal performance, must all remain in the loop buffer simultaneously",
and that its big modulo-scheduled loops need "four modulo variable
expansions".  Fixed-point throughout.
"""

from __future__ import annotations

import math

from repro.sim.values import wrap32

from ..inputs import checksum, lcg_stream
from ..suite import Benchmark, register
from ._util import mkc_array

GRANULES = 8
SUBBANDS = 32
TAPS = 16
WINDOW_SIZE = SUBBANDS * TAPS  # 512

#: 32-point DCT basis, Q12
DCT32 = [
    round(math.cos((2 * k + 1) * n * math.pi / 64) * 4096)
    for n in range(SUBBANDS) for k in range(SUBBANDS)
]

#: synthesis window, Q14 (raised-cosine-ish, deterministic)
WINDOW = [
    round((0.5 - 0.5 * math.cos(2 * math.pi * i / WINDOW_SIZE))
          * math.cos(math.pi * i / (2 * TAPS)) * 16384) >> 2
    for i in range(WINDOW_SIZE)
]


def _synthesize_py(samples: list[int]) -> int:
    chk = 0
    history = [0] * WINDOW_SIZE
    for g in range(GRANULES):
        sub = samples[g * SUBBANDS:(g + 1) * SUBBANDS]
        # 32-point DCT into the history FIFO (shift by 32)
        for i in range(WINDOW_SIZE - 1, SUBBANDS - 1, -1):
            history[i] = history[i - SUBBANDS]
        for n in range(SUBBANDS):
            acc = 0
            for k in range(SUBBANDS):
                acc = wrap32(acc + ((DCT32[n * SUBBANDS + k] * sub[k]) >> 6))
            history[n] = wrap32(acc >> 6)
        # windowed FIR: 32 outputs, 16 taps each
        for n in range(SUBBANDS):
            acc = 0
            for t in range(TAPS):
                acc = wrap32(
                    acc + ((WINDOW[t * SUBBANDS + n]
                            * history[t * SUBBANDS + n]) >> 8)
                )
            out = max(-32768, min(32767, acc >> 6))
            chk = checksum(chk, out)
    return chk


_SOURCE = """
int history[%(window)d];

int main() {
    int chk = 0;
    for (int g = 0; g < %(granules)d; g++) {
        int base = g * %(subbands)d;
        for (int i = %(window)d - 1; i >= %(subbands)d; i--)
            history[i] = history[i - %(subbands)d];
        for (int n = 0; n < %(subbands)d; n++) {
            int acc = 0;
            for (int k = 0; k < %(subbands)d; k++)
                acc += (dct32[n * %(subbands)d + k] * samples[base + k]) >> 6;
            history[n] = acc >> 6;
        }
        for (int n = 0; n < %(subbands)d; n++) {
            int acc = 0;
            for (int t = 0; t < %(taps)d; t++)
                acc += (window[t * %(subbands)d + n]
                        * history[t * %(subbands)d + n]) >> 8;
            int out = __clip(acc >> 6, -32768, 32767);
            chk = chk * 31 + out;
        }
    }
    return chk;
}
""" % {"window": WINDOW_SIZE, "granules": GRANULES,
       "subbands": SUBBANDS, "taps": TAPS}


@register("mpg123")
def mpg123() -> Benchmark:
    samples = lcg_stream(53, GRANULES * SUBBANDS, -9000, 9000)
    source = "\n".join([
        mkc_array("dct32", DCT32),
        mkc_array("window", WINDOW),
        mkc_array("samples", samples),
        _SOURCE,
    ])

    def reference() -> int:
        return _synthesize_py(samples)

    return Benchmark("mpg123", "MPEG audio decoder synthesis filterbank",
                     source, reference)
