"""Shared helpers for authoring benchmark programs."""

from __future__ import annotations


def mkc_array(name: str, values: list[int]) -> str:
    """Render ``int name[N] = {...};`` MKC source for an initialized global."""
    body = ", ".join(str(v) for v in values)
    return f"int {name}[{len(values)}] = {{{body}}};"
