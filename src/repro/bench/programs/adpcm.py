"""adpcm_enc / adpcm_dec — IMA ADPCM speech codec (Table 1).

A faithful IMA ADPCM implementation (the same algorithm as MediaBench's
``adpcm`` and the paper's ``adpcm[enc|dec]``, input clinton.pcm — here a
synthetic speech waveform).  The coder is one main loop over samples with
a cascade of data-dependent hammocks — the paper notes the adpcm
benchmarks "resolve for the most part to a single predicated loop which,
once scheduled into the loop buffer, accounts for over 99% of instruction
issue."
"""

from __future__ import annotations

from ..inputs import checksum, speech_samples
from ..suite import Benchmark, register
from ._util import mkc_array

N_SAMPLES = 480

STEP_TABLE = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37,
    41, 45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143, 157, 173,
    190, 209, 230, 253, 279, 307, 337, 371, 408, 449, 494, 544, 598, 658,
    724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
    2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894,
    6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899, 15289,
    16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
]
INDEX_TABLE = [-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8]


def _encode_py(samples: list[int]) -> tuple[list[int], int]:
    """Reference encoder; returns (codes, checksum)."""
    valpred, index, chk = 0, 0, 0
    codes = []
    for val in samples:
        step = STEP_TABLE[index]
        diff = val - valpred
        sign = 8 if diff < 0 else 0
        if sign:
            diff = -diff
        delta = 0
        vpdiff = step >> 3
        if diff >= step:
            delta = 4
            diff -= step
            vpdiff += step
        step >>= 1
        if diff >= step:
            delta |= 2
            diff -= step
            vpdiff += step
        step >>= 1
        if diff >= step:
            delta |= 1
            vpdiff += step
        if sign:
            valpred -= vpdiff
        else:
            valpred += vpdiff
        valpred = max(-32768, min(32767, valpred))
        delta |= sign
        index += INDEX_TABLE[delta]
        index = max(0, min(88, index))
        codes.append(delta)
        chk = checksum(chk, delta)
    chk = checksum(chk, valpred)
    return codes, chk


def _decode_py(codes: list[int]) -> int:
    valpred, index, chk = 0, 0, 0
    for delta in codes:
        step = STEP_TABLE[index]   # the step BEFORE the index update
        index += INDEX_TABLE[delta]
        index = max(0, min(88, index))
        sign = delta & 8
        vpdiff = step >> 3
        if delta & 4:
            vpdiff += step
        if delta & 2:
            vpdiff += step >> 1
        if delta & 1:
            vpdiff += step >> 2
        if sign:
            valpred -= vpdiff
        else:
            valpred += vpdiff
        valpred = max(-32768, min(32767, valpred))
        chk = checksum(chk, valpred)
    return chk


_ENC_BODY = """
int main() {
    int valpred = 0;
    int index = 0;
    int chk = 0;
    for (int i = 0; i < %(n)d; i++) {
        int val = pcm[i];
        int step = steptab[index];
        int diff = val - valpred;
        int sign = 0;
        if (diff < 0) { sign = 8; diff = -diff; }
        int delta = 0;
        int vpdiff = step >> 3;
        if (diff >= step) { delta = 4; diff -= step; vpdiff += step; }
        step >>= 1;
        if (diff >= step) { delta |= 2; diff -= step; vpdiff += step; }
        step >>= 1;
        if (diff >= step) { delta |= 1; vpdiff += step; }
        if (sign) valpred -= vpdiff;
        else valpred += vpdiff;
        valpred = __clip(valpred, -32768, 32767);
        delta |= sign;
        index += indextab[delta];
        index = __clip(index, 0, 88);
        codes[i] = delta;
        chk = chk * 31 + delta;
    }
    chk = chk * 31 + valpred;
    return chk;
}
"""

_DEC_BODY = """
int main() {
    int valpred = 0;
    int index = 0;
    int chk = 0;
    for (int i = 0; i < %(n)d; i++) {
        int delta = codes[i];
        int step = steptab[index];
        index += indextab[delta];
        index = __clip(index, 0, 88);
        int sign = delta & 8;
        int vpdiff = step >> 3;
        if (delta & 4) vpdiff += step;
        if (delta & 2) vpdiff += step >> 1;
        if (delta & 1) vpdiff += step >> 2;
        if (sign) valpred -= vpdiff;
        else valpred += vpdiff;
        valpred = __clip(valpred, -32768, 32767);
        pcm[i] = valpred;
        chk = chk * 31 + valpred;
    }
    return chk;
}
"""


@register("adpcm_enc")
def adpcm_enc() -> Benchmark:
    samples = speech_samples(N_SAMPLES)
    source = "\n".join([
        mkc_array("steptab", STEP_TABLE),
        mkc_array("indextab", INDEX_TABLE),
        mkc_array("pcm", samples),
        f"int codes[{N_SAMPLES}];",
        _ENC_BODY % {"n": N_SAMPLES},
    ])

    def reference() -> int:
        return _encode_py(samples)[1]

    return Benchmark("adpcm_enc", "IMA ADPCM speech encoder",
                     source, reference)


@register("adpcm_dec")
def adpcm_dec() -> Benchmark:
    samples = speech_samples(N_SAMPLES)
    codes, _ = _encode_py(samples)
    source = "\n".join([
        mkc_array("steptab", STEP_TABLE),
        mkc_array("indextab", INDEX_TABLE),
        mkc_array("codes", codes),
        f"int pcm[{N_SAMPLES}];",
        _DEC_BODY % {"n": N_SAMPLES},
    ])

    def reference() -> int:
        return _decode_py(codes)

    return Benchmark("adpcm_dec", "IMA ADPCM speech decoder",
                     source, reference)
