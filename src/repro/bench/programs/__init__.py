"""Benchmark programs (importing this package registers all of them)."""

from . import adpcm, g724, jpeg, mpeg2, mpg123, pgp  # noqa: F401
