"""g724_enc / g724_dec — GSM-EFR-style speech transcoder (Table 1, [10]).

The paper replaced MediaBench's g721 with "a more up-to-date and more
complex codec" (ETSI GSM 06.60 enhanced full-rate).  We implement the same
computational skeleton in fixed point:

* **encoder**: per-subframe LPC analysis (autocorrelation + Levinson-
  Durbin with data-dependent guards), open-loop pitch search (argmax loop
  with internal control flow), algebraic-codebook pulse search;
* **decoder**: excitation reconstruction (adaptive + fixed codebook),
  10-tap synthesis filter, and a ``Post_Filter()`` shaped like the
  paper's Figure 5: four outer iterations (subframes) over ~a dozen inner
  loops of widely varying trip counts, two of which contain internal
  control flow — the function the paper's Section 6 case study builds on.
"""

from __future__ import annotations

from repro.sim.values import cdiv, saturate, wrap32

from ..inputs import checksum, speech_samples
from ..suite import Benchmark, register
from ._util import mkc_array

SUBFRAMES = 4
SUBLEN = 40
ORDER = 10
FRAME = SUBFRAMES * SUBLEN


# ==== encoder reference ====================================================


def _autocorr_py(samples: list[int], order: int) -> list[int]:
    out = []
    for lag in range(order + 1):
        acc = 0
        for i in range(lag, len(samples)):
            acc += (samples[i] >> 3) * (samples[i - lag] >> 3)
        out.append(acc)
    return out


def _levinson_py(r: list[int], order: int) -> list[int]:
    """Fixed-point Levinson-Durbin, mirroring MKC's 32-bit wraparound
    exactly (the MKC program computes with machine ints, so the oracle
    must too)."""
    a = [0] * (order + 1)
    a[0] = 4096
    err = r[0] if r[0] > 0 else 1
    for m in range(1, order + 1):
        acc = 0
        for i in range(1, m):
            acc = wrap32(acc + wrap32(a[i] * r[m - i]))
        k = 0
        if err != 0:
            k = wrap32(cdiv(wrap32(wrap32(r[m] << 12) - acc), err))
        k = max(-3900, min(3900, k))
        new_a = list(a)
        new_a[m] = k
        for i in range(1, m):
            new_a[i] = wrap32(a[i] - (wrap32(k * a[m - i]) >> 12))
        a = new_a
        err = wrap32(err - (wrap32(wrap32(k * k) * (err >> 12)) >> 12))
        if err <= 0:
            err = 1
    return a


def _pitch_py(samples: list[int], lo: int = 20, hi: int = 120) -> tuple[int, int]:
    best_lag, best_corr = lo, -(1 << 60)
    for lag in range(lo, hi + 1):
        corr = 0
        for i in range(lag, FRAME):
            corr += (samples[i] >> 4) * (samples[i - lag] >> 4)
        if corr > best_corr:
            best_corr, best_lag = corr, lag
    return best_lag, saturate(best_corr >> 8, 31)


def _pulse_search_py(target: list[int]) -> tuple[list[int], int]:
    positions = []
    chk = 0
    work = list(target)
    for _pulse in range(10):
        best_i, best_v = 0, -1
        for i, v in enumerate(work):
            mag = v if v >= 0 else -v
            if mag > best_v:
                best_v, best_i = mag, i
        positions.append(best_i)
        chk = checksum(chk, best_i)
        work[best_i] = 0
    return positions, chk


def _enc_reference(samples: list[int]) -> int:
    chk = 0
    for sf in range(SUBFRAMES):
        sub = samples[sf * SUBLEN:(sf + 1) * SUBLEN]
        r = _autocorr_py(sub, ORDER)
        a = _levinson_py(r, ORDER)
        for coef in a[1:]:
            chk = checksum(chk, coef)
        _, pos_chk = _pulse_search_py(sub)
        chk = checksum(chk, pos_chk)
    lag, corr = _pitch_py(samples)
    chk = checksum(chk, lag)
    chk = checksum(chk, corr)
    return chk


_ENC_SOURCE = """
int acc_r[%(orderp1)d];
int lpc_a[%(orderp1)d];
int lpc_tmp[%(orderp1)d];
int work[%(sublen)d];

int main() {
    int chk = 0;
    for (int sf = 0; sf < %(subframes)d; sf++) {
        int base = sf * %(sublen)d;
        /* autocorrelation */
        for (int lag = 0; lag <= %(order)d; lag++) {
            int acc = 0;
            for (int i = lag; i < %(sublen)d; i++)
                acc += (pcm[base + i] >> 3) * (pcm[base + i - lag] >> 3);
            acc_r[lag] = acc;
        }
        /* Levinson-Durbin */
        lpc_a[0] = 4096;
        for (int i = 1; i <= %(order)d; i++) lpc_a[i] = 0;
        int err = acc_r[0] > 0 ? acc_r[0] : 1;
        for (int m = 1; m <= %(order)d; m++) {
            int acc = 0;
            for (int i = 1; i < m; i++)
                acc += lpc_a[i] * acc_r[m - i];
            int k = 0;
            if (err != 0) k = ((acc_r[m] << 12) - acc) / err;
            k = __clip(k, -3900, 3900);
            for (int i = 0; i <= %(order)d; i++) lpc_tmp[i] = lpc_a[i];
            lpc_tmp[m] = k;
            for (int i = 1; i < m; i++)
                lpc_tmp[i] = lpc_a[i] - ((k * lpc_a[m - i]) >> 12);
            for (int i = 0; i <= %(order)d; i++) lpc_a[i] = lpc_tmp[i];
            err = err - ((k * k * (err >> 12)) >> 12);
            if (err <= 0) err = 1;
        }
        for (int i = 1; i <= %(order)d; i++)
            chk = chk * 31 + lpc_a[i];
        /* algebraic codebook: ten strongest pulses */
        int pchk = 0;
        for (int i = 0; i < %(sublen)d; i++) work[i] = pcm[base + i];
        for (int pulse = 0; pulse < 10; pulse++) {
            int besti = 0;
            int bestv = -1;
            for (int i = 0; i < %(sublen)d; i++) {
                int mag = __abs(work[i]);
                if (mag > bestv) { bestv = mag; besti = i; }
            }
            pchk = pchk * 31 + besti;
            work[besti] = 0;
        }
        chk = chk * 31 + pchk;
    }
    /* open-loop pitch over the whole frame */
    int bestlag = 20;
    int bestcorr = 0 - (1 << 30);
    for (int lag = 20; lag <= 120; lag++) {
        int corr = 0;
        for (int i = lag; i < %(frame)d; i++)
            corr += (pcm[i] >> 4) * (pcm[i - lag] >> 4);
        if (corr > bestcorr) { bestcorr = corr; bestlag = lag; }
    }
    chk = chk * 31 + bestlag;
    chk = chk * 31 + __sat(bestcorr >> 8, 31);
    return chk;
}
""" % {"subframes": SUBFRAMES, "sublen": SUBLEN, "order": ORDER,
       "orderp1": ORDER + 1, "frame": FRAME}


@register("g724_enc")
def g724_enc() -> Benchmark:
    samples = speech_samples(FRAME, seed=13)
    source = "\n".join([
        mkc_array("pcm", samples),
        _ENC_SOURCE,
    ])

    def reference() -> int:
        return _enc_reference(samples)

    return Benchmark("g724_enc", "GSM-EFR-style speech encoder",
                     source, reference)


# ==== decoder reference ====================================================

LPC_Q12 = [4096, -3276, 1892, -804, 512, -310, 180, -96, 48, -20, 8]
GAMMA_N = [3276, 2621, 2097, 1677, 1342, 1073, 858, 687, 549, 439]   # 0.8^i
GAMMA_D = [2457, 1474, 884, 530, 318, 191, 114, 68, 41, 24]          # 0.6^i


def _synth_py(exc: list[int]) -> list[int]:
    out = [0] * len(exc)
    for i in range(len(exc)):
        acc = exc[i] << 12
        for j in range(1, ORDER + 1):
            if i - j >= 0:
                acc -= LPC_Q12[j] * out[i - j]
        out[i] = saturate(acc >> 12, 16)
    return out


def _post_filter_py(syn: list[int]) -> int:
    """Thirteen-loop Post_Filter over four subframes (the Figure 5 shape)."""
    chk = 0
    prev = [0] * SUBLEN
    for _sf in range(SUBFRAMES):
        sub = syn[_sf * SUBLEN:(_sf + 1) * SUBLEN]
        # A: residual through the weighted numerator (40 x 10)
        res = [0] * SUBLEN
        for i in range(SUBLEN):
            acc = sub[i] << 12
            for j in range(1, ORDER + 1):
                src = sub[i - j] if i - j >= 0 else prev[SUBLEN + i - j]
                acc += ((LPC_Q12[j] * GAMMA_N[j - 1]) >> 12) * src
            res[i] = saturate(acc >> 12, 16)
        # B: long-term lag search with internal control flow (loop "C")
        best_lag, best_corr = 20, 0
        for lag in range(20, 40):
            corr = 0
            energy = 1
            for i in range(lag, SUBLEN):
                corr += res[i] * res[i - lag]
                energy += res[i - lag] * res[i - lag]
            if corr > 0 and corr * 4 > energy:
                if corr > best_corr:
                    best_corr, best_lag = corr, lag
        chk = checksum(chk, best_lag)
        # C: harmonic emphasis
        emph = [0] * SUBLEN
        for i in range(SUBLEN):
            tap = res[i - best_lag] if i - best_lag >= 0 else 0
            emph[i] = saturate(res[i] + (tap >> 2), 16)
        # D: gain numerator/denominator (two 40-loops)
        num, den = 1, 1
        for i in range(SUBLEN):
            num += abs(sub[i])
        for i in range(SUBLEN):
            den += abs(emph[i])
        gain = (num << 10) // den
        chk = checksum(chk, gain)
        # E: tilt compensation with a clip hammock (loop "J")
        tilt = [0] * SUBLEN
        for i in range(SUBLEN):
            v = (emph[i] * gain) >> 10
            if v > 32000:
                v = 32000
            elif v < -32000:
                v = -32000
            tilt[i] = v - ((tilt[i - 1] if i > 0 else 0) >> 3)
        # F: denominator smoothing (40 x 10)
        smooth = [0] * SUBLEN
        for i in range(SUBLEN):
            acc = tilt[i] << 12
            for j in range(1, ORDER + 1):
                src = smooth[i - j] if i - j >= 0 else 0
                acc -= ((LPC_Q12[j] * GAMMA_D[j - 1]) >> 12) * src
            smooth[i] = saturate(acc >> 12, 16)
        # G: energy + checksum loops
        for i in range(SUBLEN):
            chk = checksum(chk, smooth[i])
        prev = sub
    return chk


def _dec_reference(codes: list[int], pitch: int) -> int:
    exc = [0] * FRAME
    for sf in range(SUBFRAMES):
        base = sf * SUBLEN
        for i in range(SUBLEN):
            adaptive = exc[base + i - pitch] >> 1 if base + i - pitch >= 0 else 0
            fixed = codes[base + i]
            exc[base + i] = saturate(adaptive + fixed, 16)
    syn = _synth_py(exc)
    chk = _post_filter_py(syn)
    for i in range(0, FRAME, 7):
        chk = checksum(chk, syn[i])
    return chk


_DEC_SOURCE = """
int exc[%(frame)d];
int syn[%(frame)d];
int res[%(sublen)d];
int emph[%(sublen)d];
int tilt[%(sublen)d];
int smooth[%(sublen)d];
int prev[%(sublen)d];

int post_filter() {
    int chk = 0;
    for (int sf = 0; sf < %(subframes)d; sf++) {
        int base = sf * %(sublen)d;
        for (int i = 0; i < %(sublen)d; i++) {
            int acc = syn[base + i] << 12;
            for (int j = 1; j <= %(order)d; j++) {
                int src;
                if (i - j >= 0) src = syn[base + i - j];
                else src = prev[%(sublen)d + i - j];
                acc += ((lpc[j] * gamma_n[j - 1]) >> 12) * src;
            }
            res[i] = __sat(acc >> 12, 16);
        }
        int bestlag = 20;
        int bestcorr = 0;
        for (int lag = 20; lag < 40; lag++) {
            int corr = 0;
            int energy = 1;
            for (int i = lag; i < %(sublen)d; i++) {
                corr += res[i] * res[i - lag];
                energy += res[i - lag] * res[i - lag];
            }
            if (corr > 0 && corr * 4 > energy) {
                if (corr > bestcorr) { bestcorr = corr; bestlag = lag; }
            }
        }
        chk = chk * 31 + bestlag;
        for (int i = 0; i < %(sublen)d; i++) {
            int tap = 0;
            if (i - bestlag >= 0) tap = res[i - bestlag];
            emph[i] = __sat(res[i] + (tap >> 2), 16);
        }
        int num = 1;
        int den = 1;
        for (int i = 0; i < %(sublen)d; i++)
            num += __abs(syn[base + i]);
        for (int i = 0; i < %(sublen)d; i++)
            den += __abs(emph[i]);
        int gain = (num << 10) / den;
        chk = chk * 31 + gain;
        for (int i = 0; i < %(sublen)d; i++) {
            int v = (emph[i] * gain) >> 10;
            if (v > 32000) v = 32000;
            else if (v < -32000) v = -32000;
            int carry = 0;
            if (i > 0) carry = tilt[i - 1] >> 3;
            tilt[i] = v - carry;
        }
        for (int i = 0; i < %(sublen)d; i++) {
            int acc = tilt[i] << 12;
            for (int j = 1; j <= %(order)d; j++) {
                int src = 0;
                if (i - j >= 0) src = smooth[i - j];
                acc -= ((lpc[j] * gamma_d[j - 1]) >> 12) * src;
            }
            smooth[i] = __sat(acc >> 12, 16);
        }
        for (int i = 0; i < %(sublen)d; i++)
            chk = chk * 31 + smooth[i];
        for (int i = 0; i < %(sublen)d; i++)
            prev[i] = syn[base + i];
    }
    return chk;
}

int main() {
    for (int sf = 0; sf < %(subframes)d; sf++) {
        int base = sf * %(sublen)d;
        for (int i = 0; i < %(sublen)d; i++) {
            int adaptive = 0;
            if (base + i - %(pitch)d >= 0)
                adaptive = exc[base + i - %(pitch)d] >> 1;
            exc[base + i] = __sat(adaptive + codes[base + i], 16);
        }
    }
    for (int i = 0; i < %(frame)d; i++) {
        int acc = exc[i] << 12;
        for (int j = 1; j <= %(order)d; j++) {
            if (i - j >= 0) acc -= lpc[j] * syn[i - j];
        }
        syn[i] = __sat(acc >> 12, 16);
    }
    int chk = post_filter();
    for (int i = 0; i < %(frame)d; i += 7)
        chk = chk * 31 + syn[i];
    return chk;
}
"""


@register("g724_dec")
def g724_dec() -> Benchmark:
    codes = [v >> 6 for v in speech_samples(FRAME, seed=29)]
    pitch = 47
    source = "\n".join([
        mkc_array("lpc", LPC_Q12),
        mkc_array("gamma_n", GAMMA_N),
        mkc_array("gamma_d", GAMMA_D),
        mkc_array("codes", codes),
        _DEC_SOURCE % {"frame": FRAME, "sublen": SUBLEN, "order": ORDER,
                       "subframes": SUBFRAMES, "pitch": pitch},
    ])

    def reference() -> int:
        return _dec_reference(codes, pitch)

    return Benchmark("g724_dec", "GSM-EFR-style speech decoder with Post_Filter",
                     source, reference)
