"""Global dead-code elimination (predicate-aware liveness based).

Also provides the paper's *partial dead-code removal* flavour
(Section 3 / Figure 2(d)): an operation whose value is consumed only by
operations guarded under a single predicate can itself be guarded under
that predicate, making it dead (nullified) on the executions where its
result was unused — turning fully-sequential code into parallelizable
disjoint-predicate code.
"""

from __future__ import annotations

from repro.analysis.liveness import liveness, op_unconditional_writes
from repro.ir.function import Function
from repro.ir.opcodes import NON_SPECULABLE, Opcode
from repro.ir.registers import VReg


def eliminate_dead_code(func: Function) -> int:
    """Remove side-effect-free ops whose destinations are all dead.

    Iterates to a fixed point (removing one op can kill its inputs).
    Returns the number of operations removed.
    """
    removed_total = 0
    while True:
        removed = _dce_once(func)
        removed_total += removed
        if removed == 0:
            return removed_total


def _dce_once(func: Function) -> int:
    info = liveness(func)
    removed = 0
    for block in func.blocks:
        live = set(info.live_out[block.label])
        keep: list = []
        for op in reversed(block.ops):
            # a mid-block side exit revives whatever is live on its taken
            # path: kills *below* the branch do not hold on the exit path
            if op.is_branch and op.target is not None \
                    and func.has_block(op.target):
                live |= info.live_in[op.target]
            removable = (
                not op.has_side_effects
                and not op.is_branch
                and op.opcode != Opcode.NOP
                and op.dests
                and all(dst not in live for dst in op.dests)
            )
            if op.opcode == Opcode.NOP:
                removed += 1
                continue
            if removable:
                removed += 1
                continue
            keep.append(op)
            live -= set(op_unconditional_writes(op))
            live |= set(op.reads())
        keep.reverse()
        block.ops = keep
    return removed


def sink_partially_dead(func: Function) -> int:
    """Partial dead-code removal by predication (block-local).

    If an unguarded, speculation-safe operation's destination is read only
    by operations all guarded by the same predicate ``p`` (before any
    unconditional redefinition), guard the defining operation by ``p``.
    The definition then no longer executes on iterations where ``p`` is
    false, and disjoint-guard scheduling can overlap it with the ``!p``
    work (the Figure 2(d) ``mov r2 = 0`` / ``add r2 = r2, 1`` pattern).
    """
    changed = 0
    info = liveness(func)
    for block in func.blocks:
        exit_live: set = set()
        for op in block.ops:
            if op.is_branch and op.target is not None \
                    and func.has_block(op.target) and op.target != block.label:
                exit_live |= info.live_in[op.target]
        for i, op in enumerate(block.ops):
            if op.guard is not None or len(op.dests) != 1:
                continue
            if op.opcode in NON_SPECULABLE or op.has_side_effects or op.is_branch:
                continue
            dest = op.dests[0]
            if dest.is_predicate or dest in exit_live:
                continue
            guard = _sole_consumer_guard(block.ops, i, dest,
                                         info.live_out[block.label])
            if guard is not None and guard not in op.dests:
                defined_after = any(
                    guard in later.dests for later in block.ops[i + 1:]
                )
                defined_before = any(
                    guard in earlier.dests for earlier in block.ops[:i]
                )
                if not defined_after and defined_before:
                    op.guard = guard
                    changed += 1
    return changed


def _sole_consumer_guard(ops, def_index, dest: VReg, block_live_out) -> VReg | None:
    """The unique guard predicate of all consumers of ``dest`` after
    ``def_index``, or None when consumers vary / dest escapes the block."""
    guard: VReg | None = None
    found = False
    for op in ops[def_index + 1:]:
        if dest in op.reads():
            if op.guard is None:
                return None
            if guard is None:
                guard = op.guard
            elif guard != op.guard:
                return None
            found = True
        if dest in op_unconditional_writes(op):
            if dest in block_live_out:
                # the redefinition masks the escape; the value cannot leak
                pass
            return guard if found else None
    if dest in block_live_out:
        return None  # value escapes the block; must stay unconditional
    return guard if found else None
