"""Global dead-code elimination (predicate-aware liveness based).

Also provides the paper's *partial dead-code removal* flavour
(Section 3 / Figure 2(d)): an operation whose value is consumed only by
operations guarded under a single predicate can itself be guarded under
that predicate, making it dead (nullified) on the executions where its
result was unused — turning fully-sequential code into parallelizable
disjoint-predicate code.
"""

from __future__ import annotations

from repro.analysis.liveness import liveness, op_unconditional_writes
from repro.analysis.predweb import PredicateWeb
from repro.ir.function import Function
from repro.ir.opcodes import NON_SPECULABLE, Opcode
from repro.ir.registers import VReg


def eliminate_dead_code(func: Function) -> int:
    """Remove side-effect-free ops whose destinations are all dead.

    Iterates to a fixed point (removing one op can kill its inputs).
    Returns the number of operations removed.
    """
    removed_total = 0
    while True:
        removed = _dce_once(func)
        removed_total += removed
        if removed == 0:
            return removed_total


def _dce_once(func: Function) -> int:
    info = liveness(func)
    removed = 0
    for block in func.blocks:
        live = set(info.live_out[block.label])
        keep: list = []
        for op in reversed(block.ops):
            # a mid-block side exit revives whatever is live on its taken
            # path: kills *below* the branch do not hold on the exit path
            if op.is_branch and op.target is not None \
                    and func.has_block(op.target):
                live |= info.live_in[op.target]
            removable = (
                not op.has_side_effects
                and not op.is_branch
                and op.opcode != Opcode.NOP
                and op.dests
                and all(dst not in live for dst in op.dests)
            )
            if op.opcode == Opcode.NOP:
                removed += 1
                continue
            if removable:
                removed += 1
                continue
            keep.append(op)
            live -= set(op_unconditional_writes(op))
            live |= set(op.reads())
        keep.reverse()
        block.ops = keep
    return removed


def sink_partially_dead(func: Function, web: PredicateWeb | None = None) -> int:
    """Partial dead-code removal by predication.

    If an unguarded, speculation-safe operation's destination is read
    only by guarded operations (before any unconditional redefinition),
    and one consumer's guard ``p`` is implied by every other consumer's
    guard, guard the defining operation by ``p``.  The definition then no
    longer executes on iterations where ``p`` is false, and
    disjoint-guard scheduling can overlap it with the ``!p`` work (the
    Figure 2(d) ``mov r2 = 0`` / ``add r2 = r2, 1`` pattern).

    Consumers under a *single* shared guard need no relation facts; mixed
    guards are accepted when the predicate web proves the implications
    (``g ⊆ p`` at each consumer), and web-proven definedness of ``p`` at
    the define replaces the old requirement that ``p`` be assigned
    earlier in the same block.
    """
    changed = 0
    info = liveness(func)
    if web is None:
        web = PredicateWeb(func)
    for block in func.blocks:
        exit_live: set = set()
        for op in block.ops:
            if op.is_branch and op.target is not None \
                    and func.has_block(op.target) and op.target != block.label:
                exit_live |= info.live_in[op.target]
        points = None
        for i, op in enumerate(block.ops):
            if op.guard is not None or len(op.dests) != 1:
                continue
            if op.opcode in NON_SPECULABLE or op.has_side_effects or op.is_branch:
                continue
            dest = op.dests[0]
            if dest.is_predicate or dest in exit_live:
                continue
            consumers = _guarded_consumers(block.ops, i, dest,
                                           info.live_out[block.label])
            if not consumers:
                continue
            if points is None:
                points = web.points(block.label)
            guard = _covering_guard(op, i, consumers, block.ops, points)
            if guard is not None:
                op.guard = guard
                changed += 1
    return changed


def _guarded_consumers(ops, def_index, dest: VReg,
                       block_live_out) -> list[tuple[int, VReg]] | None:
    """The ``(index, guard)`` consumers of ``dest`` after ``def_index``,
    or None when a consumer is unguarded / dest escapes the block."""
    consumers: list[tuple[int, VReg]] = []
    for j, op in enumerate(ops[def_index + 1:], start=def_index + 1):
        if dest in op.reads():
            if op.guard is None:
                return None
            consumers.append((j, op.guard))
        if dest in op_unconditional_writes(op):
            # the redefinition masks any escape; the value cannot leak
            return consumers or None
    if dest in block_live_out:
        return None  # value escapes the block; must stay unconditional
    return consumers or None


def _covering_guard(op, def_index, consumers, ops, points) -> VReg | None:
    """A consumer guard ``p`` that every consumer's guard implies, stable
    and defined at the define's position — or None."""
    candidates: list[VReg] = []
    for _j, guard in consumers:
        if guard not in candidates:
            candidates.append(guard)
    for p in candidates:
        if p in op.dests:
            continue
        # p must keep its value from the define to the last consumer; a
        # later write anywhere in the block disqualifies it
        if any(p in later.dests for later in ops[def_index + 1:]):
            continue
        if points[def_index].possibly_undefined(p):
            continue
        if all(g == p or points[j].implies(g, p) for j, g in consumers):
            return p
    return None
