"""Classic and ILP scalar optimizations.

- :mod:`repro.opt.simplify_cfg` — unreachable-block removal, jump
  threading, straight-line merging.
- :mod:`repro.opt.local` — constant folding/propagation, copy propagation,
  algebraic simplification, local CSE.
- :mod:`repro.opt.dce` — global predicate-aware dead-code elimination and
  predication-based partial dead-code removal.
- :mod:`repro.opt.reassoc` — expression reassociation (height reduction).
- :mod:`repro.opt.inline` — profile-guided inlining with a static code
  expansion budget.
"""

from .dce import eliminate_dead_code, sink_partially_dead
from .inline import inline_call, inline_module
from .local import optimize_block, optimize_function
from .reassoc import reassociate_block, reassociate_function
from .simplify_cfg import simplify_cfg

__all__ = [
    "eliminate_dead_code",
    "inline_call",
    "inline_module",
    "optimize_block",
    "optimize_function",
    "reassociate_block",
    "reassociate_function",
    "simplify_cfg",
    "sink_partially_dead",
]
