"""CFG cleanup: unreachable-code removal, jump threading, block merging.

Run between major transforms; the loop transforms and if-conversion leave
behind forwarding blocks and unreachable remnants that these passes fold
away, keeping block counts (and therefore analysis cost) down.
"""

from __future__ import annotations

from repro.analysis.cfgview import CFGView
from repro.ir.function import Function
from repro.ir.opcodes import Opcode


def remove_unreachable(func: Function) -> int:
    """Delete blocks unreachable from the entry; returns removal count."""
    cfg = CFGView(func)
    reachable = cfg.reachable()
    doomed = [block.label for block in func.blocks if block.label not in reachable]
    for label in doomed:
        func.remove_block(label)
    return len(doomed)


def _retarget(func: Function, old: str, new: str) -> None:
    for block in func.blocks:
        for op in block.ops:
            if op.target == old:
                op.attrs["target"] = new


def thread_jumps(func: Function) -> int:
    """Redirect branches that target a block containing only ``jump X``."""
    changed = 0
    again = True
    while again:
        again = False
        for block in func.blocks:
            if len(block.ops) != 1:
                continue
            op = block.ops[0]
            if op.opcode != Opcode.JUMP or op.guard is not None:
                continue
            target = op.target
            if target == block.label:
                continue  # self loop
            referenced = any(
                other.label != block.label and b.target == block.label
                for other in func.blocks
                for b in other.branch_ops()
            )
            if referenced:
                _retarget(func, block.label, target)
                changed += 1
                again = True
    return changed


def merge_straightline(func: Function) -> int:
    """Merge B into A when A's sole successor is B and B's sole pred is A."""
    merged = 0
    again = True
    while again:
        again = False
        cfg = CFGView(func)
        for block in list(func.blocks):
            succs = cfg.succs.get(block.label)
            if not succs or len(succs) != 1:
                continue
            succ_label = succs[0]
            if succ_label == block.label or succ_label == func.entry.label:
                continue
            if len(cfg.preds[succ_label]) != 1:
                continue
            succ = func.block(succ_label)
            term = block.terminator
            # the ONLY reference to B may be A's terminator jump (or pure
            # fallthrough).  A mid-block side exit targeting B — e.g. a
            # guarded hyperblock exit — cannot be retargeted to A's start.
            refs = sum(
                1
                for other in func.blocks
                for op in other.branch_ops()
                if op.target == succ_label
            )
            if term is not None and term.opcode == Opcode.JUMP and term.guard is None:
                if refs != 1:
                    continue
                block.ops.pop()
            elif term is not None:
                continue  # conditional terminator with one successor: leave it
            elif refs != 0:
                continue
            # preserve B's fallthrough: after the merge, A's layout successor
            # may differ from B's, so make B's fallthrough explicit.
            succ_idx = func.blocks.index(succ)
            fall_target = None
            if succ.falls_through and succ_idx + 1 < len(func.blocks):
                fall_target = func.blocks[succ_idx + 1].label
            block.ops.extend(succ.ops)
            block.hyperblock = block.hyperblock or succ.hyperblock
            func.remove_block(succ_label)
            if fall_target is not None:
                from repro.ir.operation import Operation

                block.append(Operation(Opcode.JUMP, attrs={"target": fall_target}))
            merged += 1
            again = True
            break
    return merged


def drop_redundant_jumps(func: Function) -> int:
    """Remove ``jump next`` where ``next`` is the fallthrough block."""
    removed = 0
    for i, block in enumerate(func.blocks[:-1]):
        term = block.terminator
        if (
            term is not None
            and term.opcode == Opcode.JUMP
            and term.guard is None
            and term.target == func.blocks[i + 1].label
        ):
            block.ops.pop()
            removed += 1
    return removed


def split_at_branches(func: Function) -> int:
    """Re-normalize to branch-terminated blocks.

    Merging creates blocks with mid-block side exits; if-conversion's
    region model wants control transfers only at block ends (allowing the
    trailing BR+JUMP pair).  Splitting after each interior branch restores
    that shape; the split points become plain fallthrough edges.
    """
    splits = 0
    changed = True
    while changed:
        changed = False
        for index, block in enumerate(func.blocks):
            cut = None
            for i, op in enumerate(block.ops[:-1]):
                if not op.is_branch:
                    continue
                # a BR immediately before a final JUMP is a legal ending
                if (i == len(block.ops) - 2 and op.opcode == Opcode.BR
                        and block.ops[-1].opcode == Opcode.JUMP):
                    continue
                cut = i
                break
            if cut is None:
                continue
            rest = block.ops[cut + 1:]
            block.ops = block.ops[: cut + 1]
            tail = func.add_block(func.new_label(f"{block.label}_t"),
                                  index=index + 1)
            tail.ops = rest
            tail.hyperblock = block.hyperblock
            splits += 1
            changed = True
            break
    return splits


def simplify_cfg(func: Function) -> int:
    """Run all cleanups to a fixed point; returns total change count."""
    total = 0
    while True:
        changed = remove_unreachable(func)
        changed += thread_jumps(func)
        changed += remove_unreachable(func)
        changed += merge_straightline(func)
        changed += drop_redundant_jumps(func)
        total += changed
        if not changed:
            return total
