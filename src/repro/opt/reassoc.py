"""Expression reassociation for dependence-height reduction.

Section 3: "Height-reducing transformations ... help to ensure a benefit.
Here, in particular, we see expression reassociation (allowing the upward
motion of the predicate define) ..."

A linear chain ``t1 = a + b; t2 = t1 + c; t3 = t2 + d`` has dependence
height 3; rebalancing into ``(a + b) + (c + d)`` gives height 2, freeing
the final value (often a comparison input feeding a predicate define or a
branch) earlier in the schedule.  We rebalance block-local chains of a
single associative opcode whose intermediate results have exactly one use.
"""

from __future__ import annotations

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.opcodes import Opcode
from repro.ir.operation import Operation
from repro.ir.registers import Operand, VReg

_ASSOCIATIVE = {Opcode.ADD, Opcode.MUL, Opcode.AND, Opcode.OR, Opcode.XOR,
                Opcode.MIN, Opcode.MAX}


def _use_counts(block: BasicBlock) -> dict[VReg, int]:
    counts: dict[VReg, int] = {}
    for op in block.ops:
        for reg in op.reads():
            counts[reg] = counts.get(reg, 0) + 1
    return counts


def reassociate_block(
    block: BasicBlock, func: Function, live_out: set[VReg] | None = None
) -> int:
    """Rebalance associative chains in one block; returns chains rewritten.

    ``live_out`` (from :func:`repro.analysis.liveness.liveness`) prevents
    deleting chain intermediates whose values escape the block; without it
    the pass only rewrites chains whose intermediates are block-local by
    conservative default (no deletions of escaping temps).
    """
    if live_out is None:
        from repro.analysis.liveness import liveness

        live_out = liveness(func).live_out[block.label]
    uses = _use_counts(block)
    rewritten = 0
    index_of = {id(op): i for i, op in enumerate(block.ops)}

    defs: dict[VReg, Operation] = {}
    for op in block.ops:
        for dst in op.dests:
            defs[dst] = op  # last def wins; chains use single-def temps

    def chain_leaves(op: Operation, code: Opcode, members: list[Operation]) -> list[Operand] | None:
        """Collect the leaf operands of a single-use chain rooted at ``op``."""
        leaves: list[Operand] = []
        for src in op.srcs:
            sub = defs.get(src) if isinstance(src, VReg) else None
            if (
                sub is not None
                and sub.opcode == code
                and sub.guard is None
                and uses.get(src, 0) == 1
                and len(sub.dests) == 1
                and src not in live_out
                and index_of[id(sub)] < index_of[id(op)]
                and _single_def_in_block(block, src)
            ):
                inner = chain_leaves(sub, code, members)
                if inner is None:
                    return None
                members.append(sub)
                leaves.extend(inner)
            else:
                leaves.append(src)
        return leaves

    for op in list(block.ops):
        if op.opcode not in _ASSOCIATIVE or op.guard is not None:
            continue
        if len(op.dests) != 1 or id(op) not in index_of:
            continue
        # only rewrite *maximal* chains: skip ops feeding a same-opcode
        # single-use consumer (the bigger root will collect this one)
        dest = op.dests[0]
        if uses.get(dest, 0) == 1 and dest not in live_out:
            consumer = next(
                (o for o in block.ops if dest in o.reads()), None
            )
            if (consumer is not None and consumer.opcode == op.opcode
                    and consumer.guard is None):
                continue
        members: list[Operation] = []
        leaves = chain_leaves(op, op.opcode, members)
        if leaves is None or len(members) < 2 or len(leaves) < 4:
            continue
        if _tree_height(op, defs, uses, block, live_out) <= _balanced_height(len(leaves)):
            continue  # already balanced
        _rewrite_balanced(block, func, op, members, leaves)
        rewritten += 1
        # recompute bookkeeping after a structural rewrite
        uses = _use_counts(block)
        index_of = {id(o): i for i, o in enumerate(block.ops)}
        defs = {}
        for o in block.ops:
            for dst in o.dests:
                defs[dst] = o
    return rewritten


def _single_def_in_block(block: BasicBlock, reg: VReg) -> bool:
    return sum(1 for op in block.ops if reg in op.dests) == 1


def _balanced_height(nleaves: int) -> int:
    return max(1, (nleaves - 1).bit_length())


def _tree_height(op: Operation, defs, uses, block: BasicBlock, live_out) -> int:
    """Height of the single-use chain/tree rooted at ``op``."""
    best = 0
    for src in op.srcs:
        sub = defs.get(src) if isinstance(src, VReg) else None
        if (
            sub is not None
            and sub.opcode == op.opcode
            and sub.guard is None
            and uses.get(src, 0) == 1
            and src not in live_out
            and len(sub.dests) == 1
            and _single_def_in_block(block, src)
        ):
            best = max(best, _tree_height(sub, defs, uses, block, live_out))
    return best + 1


def _rewrite_balanced(
    block: BasicBlock,
    func: Function,
    root: Operation,
    members: list[Operation],
    leaves: list[Operand],
) -> None:
    """Replace the chain ops with a balanced tree ending at root's dest."""
    code = root.opcode
    position = block.ops.index(root)
    dead = {id(m) for m in members}
    block.ops = [op for op in block.ops if id(op) not in dead]
    position = block.ops.index(root)

    level: list[Operand] = list(leaves)
    new_ops: list[Operation] = []
    while len(level) > 2:
        nxt: list[Operand] = []
        it = iter(range(0, len(level) - 1, 2))
        for i in it:
            temp = func.new_reg()
            new_ops.append(Operation(code, [temp], [level[i], level[i + 1]]))
            nxt.append(temp)
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    root.srcs = list(level)
    block.ops[position:position] = new_ops


def reassociate_function(func: Function) -> int:
    from repro.analysis.liveness import liveness

    info = liveness(func)
    return sum(
        reassociate_block(block, func, info.live_out[block.label])
        for block in func.blocks
    )
