"""Profile-guided function inlining.

Section 3: "Profiling also directs function inlining, which is performed to
enhance formation of loop regions, since loop regions in our implementation
may not contain calls to subroutines.  ... profile-guided inlining was
performed up to an estimated limit of 50% static code expansion."

Call sites are ranked by dynamic call count (hottest first, with a bonus
for sites inside loops, which block loop-region formation) and inlined
until the module grows past the expansion budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.loops import find_loops
from repro.analysis.profile import Profile
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.opcodes import Opcode
from repro.ir.operation import Operation
from repro.ir.registers import VReg

DEFAULT_EXPANSION_LIMIT = 0.5


@dataclass
class InlineStats:
    sites_inlined: int = 0
    ops_added: int = 0


@dataclass
class _Site:
    caller: str
    block_label: str
    op_uid: int
    callee: str
    weight: int
    in_loop: bool


def _call_sites(module: Module, profile: Profile) -> list[_Site]:
    sites: list[_Site] = []
    for func in module.functions.values():
        loops = find_loops(func)
        loop_blocks = set()
        for loop in loops:
            loop_blocks |= loop.body
        for block in func.blocks:
            for op in block.ops:
                if op.opcode != Opcode.CALL:
                    continue
                sites.append(
                    _Site(
                        caller=func.name,
                        block_label=block.label,
                        op_uid=op.uid,
                        callee=op.attrs["callee"],
                        weight=profile.op_count(func.name, op.uid),
                        in_loop=block.label in loop_blocks,
                    )
                )
    return sites


def _is_recursive(module: Module, callee: str, caller: str) -> bool:
    """Does ``callee`` (transitively) call ``caller`` or itself?"""
    seen: set[str] = set()
    stack = [callee]
    while stack:
        name = stack.pop()
        if name in seen:
            continue
        seen.add(name)
        func = module.functions.get(name)
        if func is None:
            continue
        for op in func.ops():
            if op.opcode == Opcode.CALL:
                target = op.attrs["callee"]
                if target == caller or target == callee:
                    return True
                stack.append(target)
    return False


def inline_call(module: Module, caller: Function, block_label: str,
                call_op: Operation) -> int:
    """Inline one call site; returns the number of ops added."""
    callee = module.function(call_op.attrs["callee"])
    block = caller.block(block_label)
    call_index = block.ops.index(call_op)

    # fresh registers for every callee register
    reg_map: dict[VReg, VReg] = {}

    def fresh(reg: VReg) -> VReg:
        if reg not in reg_map:
            reg_map[reg] = caller.new_reg(reg.kind)
        return reg_map[reg]

    # fresh labels for every callee block
    label_map = {
        blk.label: caller.new_label(f"inl_{callee.name}_") for blk in callee.blocks
    }
    cont_label = caller.new_label("cont")

    # split the call block: [0, call) stays; (call, end] moves to cont block
    tail_ops = block.ops[call_index + 1:]
    block.ops = block.ops[:call_index]

    # marshal arguments
    for param, arg in zip(callee.params, call_op.srcs):
        block.append(Operation(Opcode.MOV, [fresh(param)], [arg]))

    # frame merging: callee locals live at the end of the caller's frame
    if callee.frame_words:
        if caller.frame_base is None:
            caller.frame_base = caller.new_reg()
        offset = caller.frame_words
        caller.frame_words += callee.frame_words
        if callee.frame_base is not None:
            from repro.ir.registers import Imm

            block.append(
                Operation(Opcode.ADD, [fresh(callee.frame_base)],
                          [caller.frame_base, Imm(offset)])
            )

    block.append(Operation(Opcode.JUMP, attrs={"target": label_map[callee.entry.label]}))

    # clone callee blocks
    insert_at = caller.blocks.index(block) + 1
    added_ops = 0
    for blk in callee.blocks:
        clone = caller.add_block(label_map[blk.label], index=insert_at)
        insert_at += 1
        for op in blk.ops:
            new_op = op.copy()
            new_op.replace_reads(
                {reg: fresh(reg) for reg in op.reads()}
            )
            new_op.replace_writes({reg: fresh(reg) for reg in op.writes()})
            if new_op.target is not None:
                new_op.attrs["target"] = label_map[new_op.target]
            if new_op.opcode == Opcode.RET:
                if call_op.dests and new_op.srcs:
                    clone.append(
                        Operation(Opcode.MOV, [call_op.dests[0]],
                                  [new_op.srcs[0]], new_op.guard)
                    )
                    added_ops += 1
                clone.append(
                    Operation(Opcode.JUMP, [], [], new_op.guard,
                              {"target": cont_label})
                )
                added_ops += 1
                continue
            clone.append(new_op)
            added_ops += 1
        # callee fallthrough between blocks must be preserved explicitly,
        # because clones may interleave with caller layout
        if blk.falls_through:
            idx = callee.blocks.index(blk)
            if idx + 1 < len(callee.blocks):
                clone.append(
                    Operation(Opcode.JUMP,
                              attrs={"target": label_map[callee.blocks[idx + 1].label]})
                )
                added_ops += 1

    # continuation block receives the rest of the original call block
    cont = caller.add_block(cont_label, index=insert_at)
    cont.ops = tail_ops
    caller.sync_reg_counters()
    return added_ops


def inline_module(
    module: Module,
    profile: Profile,
    expansion_limit: float = DEFAULT_EXPANSION_LIMIT,
) -> InlineStats:
    """Inline hot call sites until the static-expansion budget is spent."""
    stats = InlineStats()
    original_size = module.op_count()
    budget = int(original_size * expansion_limit)

    while True:
        sites = _call_sites(module, profile)
        sites = [
            s for s in sites
            if s.weight > 0
            and s.callee in module.functions
            and not _is_recursive(module, s.callee, s.caller)
        ]
        if not sites:
            return stats
        sites.sort(key=lambda s: (s.in_loop, s.weight), reverse=True)
        progressed = False
        for site in sites:
            callee = module.function(site.callee)
            cost = callee.op_count()
            if stats.ops_added + cost > budget:
                continue
            caller = module.function(site.caller)
            block = caller.block(site.block_label)
            call_op = next(op for op in block.ops if op.uid == site.op_uid)
            added = inline_call(module, caller, site.block_label, call_op)
            stats.sites_inlined += 1
            stats.ops_added += added
            progressed = True
            break  # re-rank: inlining creates new sites and changes weights
        if not progressed:
            return stats
