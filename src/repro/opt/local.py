"""Block-local optimization: constant folding/propagation, copy propagation,
algebraic simplification, and common-subexpression elimination by local
value numbering.

Facts are predicate-aware in the conservative direction: a *guarded* write
invalidates what we knew about its destination but establishes nothing
(the write may be nullified at run time).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.opcodes import Opcode
from repro.ir.operation import Operation
from repro.ir.registers import Imm, Operand, VReg
from repro.sim.values import cdiv, compare, crem, saturate, wrap32

_FOLDABLE = {
    Opcode.ADD: lambda a, b: wrap32(a + b),
    Opcode.SUB: lambda a, b: wrap32(a - b),
    Opcode.MUL: lambda a, b: wrap32(a * b),
    Opcode.MULH: lambda a, b: wrap32((a * b) >> 32),
    Opcode.AND: lambda a, b: wrap32(a & b),
    Opcode.OR: lambda a, b: wrap32(a | b),
    Opcode.XOR: lambda a, b: wrap32(a ^ b),
    Opcode.SHL: lambda a, b: wrap32(a << (b & 31)),
    Opcode.SHR: lambda a, b: wrap32((a & 0xFFFFFFFF) >> (b & 31)),
    Opcode.SAR: lambda a, b: wrap32(a >> (b & 31)),
    Opcode.MIN: min,
    Opcode.MAX: max,
    Opcode.SADD: lambda a, b: saturate(a + b, 16),
    Opcode.SSUB: lambda a, b: saturate(a - b, 16),
    Opcode.SAT: lambda a, b: saturate(a, b),
}

_FOLDABLE_UNARY = {
    Opcode.NEG: lambda a: wrap32(-a),
    Opcode.NOT: lambda a: wrap32(~a),
    Opcode.ABS: lambda a: wrap32(abs(a)),
}


@dataclass
class LocalOptStats:
    folded: int = 0
    copies_propagated: int = 0
    cse_hits: int = 0
    branches_folded: int = 0

    @property
    def total(self) -> int:
        return self.folded + self.copies_propagated + self.cse_hits + self.branches_folded


class _ValueTable:
    """Local value numbers for registers, constants, and expressions."""

    def __init__(self) -> None:
        self._fresh = itertools.count()
        self.reg_vn: dict[VReg, int] = {}
        self.const_vn: dict[int, int] = {}
        self.vn_const: dict[int, int] = {}
        self.vn_reg: dict[int, VReg] = {}  # a register currently holding the vn
        self.expr: dict[tuple, int] = {}
        self.mem_version = 0

    def fresh(self) -> int:
        return next(self._fresh)

    def vn_of(self, operand: Operand) -> int | None:
        if isinstance(operand, Imm):
            if operand.value not in self.const_vn:
                vn = self.fresh()
                self.const_vn[operand.value] = vn
                self.vn_const[vn] = operand.value
            return self.const_vn[operand.value]
        if isinstance(operand, VReg):
            if operand not in self.reg_vn:
                vn = self.fresh()
                self.reg_vn[operand] = vn
                # the register itself is the canonical holder of its value
                self.vn_reg.setdefault(vn, operand)
            return self.reg_vn[operand]
        return None

    def const_of(self, operand: Operand) -> int | None:
        vn = self.vn_of(operand)
        if vn is None:
            return None
        return self.vn_const.get(vn)

    def _drop_holder(self, reg: VReg) -> None:
        stale = [vn for vn, holder in self.vn_reg.items() if holder == reg]
        for vn in stale:
            del self.vn_reg[vn]

    def set_reg(self, reg: VReg, vn: int) -> None:
        self._drop_holder(reg)
        self.reg_vn[reg] = vn
        if vn not in self.vn_reg:
            self.vn_reg[vn] = reg

    def invalidate_reg(self, reg: VReg) -> None:
        self._drop_holder(reg)
        self.reg_vn[reg] = self.fresh()


def _attrs_signature(op: Operation) -> tuple:
    return (op.attrs.get("cmp"),)


def optimize_block(block: BasicBlock, func: Function) -> LocalOptStats:
    """One forward pass of folding / copy-prop / CSE over a block."""
    stats = LocalOptStats()
    table = _ValueTable()
    new_ops: list[Operation] = []

    for op in block.ops:
        # propagate known constants / copies into sources
        new_srcs: list[Operand] = []
        for src in op.srcs:
            if isinstance(src, VReg):
                const = table.const_of(src)
                if const is not None and not src.is_predicate:
                    new_srcs.append(Imm(const))
                    stats.copies_propagated += 1
                    continue
                vn = table.vn_of(src)
                holder = table.vn_reg.get(vn)
                if holder is not None and holder != src and holder.kind == src.kind:
                    new_srcs.append(holder)
                    stats.copies_propagated += 1
                    continue
            new_srcs.append(src)
        op.srcs = new_srcs

        op = _try_fold(op, table, stats)

        # branch folding on constant conditions
        if op.opcode == Opcode.BR and all(isinstance(s, Imm) for s in op.srcs) \
                and op.guard is None:
            taken = compare(op.attrs["cmp"], op.srcs[0].value, op.srcs[1].value)
            stats.branches_folded += 1
            if taken:
                new_ops.append(Operation(Opcode.JUMP, attrs={"target": op.target}))
                break  # everything after an unconditional jump is dead
            continue  # never taken: drop the branch

        replacement = _update_table(op, table, stats)
        if replacement is not None:
            new_ops.append(replacement)
        if (replacement is not None and replacement.opcode == Opcode.JUMP
                and replacement.guard is None):
            break

    block.ops = new_ops
    return stats


def _try_fold(op: Operation, table: _ValueTable, stats: LocalOptStats) -> Operation:
    """Fold constants and apply algebraic identities; returns the op or a
    replacement for it."""
    code = op.opcode
    consts = [src.value if isinstance(src, Imm) else None for src in op.srcs]

    def as_mov(src: Operand) -> Operation:
        stats.folded += 1
        return Operation(Opcode.MOV, list(op.dests), [src], op.guard)

    if code in _FOLDABLE and None not in consts:
        if code in (Opcode.DIV, Opcode.REM) and consts[1] == 0:
            return op
        return as_mov(Imm(_FOLDABLE[code](consts[0], consts[1])))
    if code in _FOLDABLE_UNARY and consts[0] is not None:
        return as_mov(Imm(_FOLDABLE_UNARY[code](consts[0])))
    if code == Opcode.DIV and None not in consts and consts[1] != 0:
        return as_mov(Imm(wrap32(cdiv(consts[0], consts[1]))))
    if code == Opcode.REM and None not in consts and consts[1] != 0:
        return as_mov(Imm(wrap32(crem(consts[0], consts[1]))))
    if code == Opcode.CMP and None not in consts:
        return as_mov(Imm(compare(op.attrs["cmp"], consts[0], consts[1])))
    if code == Opcode.CLIP and None not in consts:
        return as_mov(Imm(max(consts[1], min(consts[2], consts[0]))))
    if code == Opcode.SELECT and consts[0] is not None:
        return as_mov(op.srcs[1] if consts[0] else op.srcs[2])

    # algebraic identities
    if code == Opcode.ADD:
        if consts[1] == 0:
            return as_mov(op.srcs[0])
        if consts[0] == 0:
            return as_mov(op.srcs[1])
    if code == Opcode.SUB and consts[1] == 0:
        return as_mov(op.srcs[0])
    if code == Opcode.MUL:
        if consts[1] == 1:
            return as_mov(op.srcs[0])
        if consts[0] == 1:
            return as_mov(op.srcs[1])
        if consts[1] == 0 or consts[0] == 0:
            return as_mov(Imm(0))
        for i, other in ((1, 0), (0, 1)):
            value = consts[i]
            if value is not None and value > 1 and (value & (value - 1)) == 0:
                stats.folded += 1
                return Operation(
                    Opcode.SHL, list(op.dests),
                    [op.srcs[other], Imm(value.bit_length() - 1)], op.guard,
                )
    if code in (Opcode.SHL, Opcode.SHR, Opcode.SAR) and consts[1] == 0:
        return as_mov(op.srcs[0])
    if code == Opcode.OR and consts[1] == 0:
        return as_mov(op.srcs[0])
    if code == Opcode.AND and consts[1] == 0:
        return as_mov(Imm(0))
    if code == Opcode.DIV and consts[1] == 1:
        return as_mov(op.srcs[0])
    return op


def _update_table(
    op: Operation, table: _ValueTable, stats: LocalOptStats
) -> Operation | None:
    """Record the op's effects; may rewrite it into a MOV on a CSE hit.

    Returns the operation to emit (possibly replaced), or ``None``.
    """
    if op.opcode in (Opcode.ST, Opcode.CALL):
        table.mem_version += 1

    guarded = op.guard is not None

    if op.opcode == Opcode.MOV and not guarded and not op.dests[0].is_predicate:
        vn = table.vn_of(op.srcs[0])
        if vn is not None:
            table.set_reg(op.dests[0], vn)
            return op
        table.invalidate_reg(op.dests[0])
        return op

    cse_ok = (
        not guarded
        and len(op.dests) == 1
        and not op.dests[0].is_predicate
        and not op.has_side_effects
        and not op.is_branch
        and op.opcode not in (Opcode.PRED_DEF, Opcode.PRED_SET, Opcode.NOP)
    )
    if cse_ok:
        vns = tuple(table.vn_of(src) for src in op.srcs)
        if None not in vns:
            key = (op.opcode, _attrs_signature(op), vns,
                   table.mem_version if op.opcode == Opcode.LD else None)
            hit = table.expr.get(key)
            if hit is not None and hit in table.vn_reg:
                stats.cse_hits += 1
                holder = table.vn_reg[hit]
                table.set_reg(op.dests[0], hit)
                return Operation(Opcode.MOV, [op.dests[0]], [holder])
            vn = table.fresh()
            table.expr[key] = vn
            table.set_reg(op.dests[0], vn)
            return op

    for dst in op.dests:
        table.invalidate_reg(dst)
    return op


def optimize_function(func: Function) -> LocalOptStats:
    """Run local optimization over every block of ``func``."""
    stats = LocalOptStats()
    for block in func.blocks:
        got = optimize_block(block, func)
        stats.folded += got.folded
        stats.copies_propagated += got.copies_propagated
        stats.cse_hits += got.cse_hits
        stats.branches_folded += got.branches_folded
    if stats.branches_folded:
        # folding a constant branch deletes a CFG edge; whatever that edge
        # alone kept alive must go too, or the verifier (rightly) rejects
        # the function
        from repro.opt.simplify_cfg import remove_unreachable

        remove_unreachable(func)
    return stats
