"""repro — reproduction of Sias, Hunter & Hwu, "Enhancing loop buffering of
media and telecommunications applications using low-overhead predication"
(MICRO 2001).

The package is organized as the paper's system is:

- :mod:`repro.ir` — predicated register IR (Lcode-like).
- :mod:`repro.frontend` — the MKC mini-C language the benchmarks are written in.
- :mod:`repro.analysis` — dominators, loops, liveness, dependences, profiles.
- :mod:`repro.opt` — classic and ILP scalar optimizations.
- :mod:`repro.predication` — if-conversion, branch combining, promotion,
  predicate coloring and the paper's slot-based predication allocation.
- :mod:`repro.looptrans` — loop peeling, predicated loop collapsing,
  counted-loop conversion.
- :mod:`repro.sched` — VLIW machine model, list and modulo schedulers.
- :mod:`repro.loopbuffer` — the compiler-managed loop buffer and its
  assignment pass.
- :mod:`repro.sim` — functional interpreter and cycle-level VLIW simulator
  with fetch-energy model.
- :mod:`repro.pipeline` — end-to-end traditional and aggressive pipelines.
- :mod:`repro.bench` — the six media/telecom benchmark programs.
- :mod:`repro.experiments` — regeneration of every table and figure.
"""

__version__ = "1.1.0"
