"""The compiler-managed loop buffer: hardware model (Table 3) and the
compiler's buffer-assignment pass (the Figure 5 scheduling problem)."""

from .assign import (
    Assignment,
    AssignmentResult,
    LoopCandidate,
    assign_buffer,
    collect_candidates,
)
from .model import BufferedLoop, BufferStats, LoopBuffer, LoopState

__all__ = [
    "Assignment",
    "AssignmentResult",
    "BufferStats",
    "BufferedLoop",
    "LoopBuffer",
    "LoopCandidate",
    "LoopState",
    "assign_buffer",
    "collect_candidates",
]
