"""Compiler-side loop-buffer assignment (the Figure 5 scheduling problem).

"The compiler manages the buffer as a resource, scheduling loop bodies
into segments of the buffer as required ... the goal of scheduling loops
into the buffer is to minimize the total number of bundles fetched from
the global memory.  The compiler must choose locations for each buffered
loop, such that needed loops will not conflict with each other."

Heuristic implemented (mirroring the paper's Figure 5(d) discussion):

1. Candidate loops are simple loops whose buffer footprint (kernel ops
   times the MVE expansion factor) fits the buffer.
2. Candidates are ranked by *buffer benefit* — the dynamic operations they
   would issue from the buffer (iterations beyond each recording pass,
   times body size).
3. Each loop is placed first-fit into free buffer space.  When no gap
   fits, the loop is placed over the range whose current occupants carry
   the least benefit — displacement then happens dynamically through
   re-recording, which the hardware residency table makes cheap.
4. Ties between cohabitation candidates are broken by *recording
   overhead* (Figure 5(d): loop "F" stays resident over "E" because its
   recording overhead, 14 ops vs 12, is larger); with
   ``overhead_aware=False`` this tie-break is disabled for ablation.

The pass then rewrites the IR: each assigned counted loop's ``cloop_set``
becomes ``rec_cloop buf_addr, num, count``; other assigned loops get a
``rec_wloop`` in their preheader.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cfgview import CFGView
from repro.analysis.loops import find_loops, is_simple_loop
from repro.analysis.profile import Profile
from repro.ir.module import Module
from repro.ir.opcodes import Opcode
from repro.ir.operation import Operation


@dataclass
class LoopCandidate:
    func: str
    header: str
    ops: int                  # buffer footprint in operations
    iterations: int           # dynamic iterations (profile)
    entries: int              # times the loop is entered (recordings lower bound)
    counted: bool             # ends in br_cloop

    @property
    def benefit(self) -> int:
        """Dynamic ops issued from the buffer once resident."""
        if self.iterations <= 0:
            return 0
        recorded = max(self.entries, 1)
        return max(0, self.iterations - recorded) * self.ops

    @property
    def recording_overhead(self) -> int:
        return self.ops


@dataclass
class Assignment:
    func: str
    header: str
    offset: int
    length: int
    counted: bool


@dataclass
class AssignmentResult:
    assigned: list[Assignment] = field(default_factory=list)
    unassigned: list[str] = field(default_factory=list)

    def lookup(self, func: str, header: str) -> Assignment | None:
        for a in self.assigned:
            if a.func == func and a.header == header:
                return a
        return None


def collect_candidates(
    module: Module,
    profile: Profile,
    capacity: int,
    footprint: dict[tuple[str, str], int] | None = None,
) -> list[LoopCandidate]:
    """Enumerate bufferable loops with their footprints and weights.

    ``footprint`` optionally overrides a loop's op count with its
    modulo-scheduled, MVE-expanded kernel size.
    """
    candidates = []
    for func in module.functions.values():
        cfg = CFGView(func)
        for loop in find_loops(func, cfg):
            if not is_simple_loop(func, loop):
                continue
            block = func.block(loop.header)
            ops = sum(1 for op in block.ops if op.opcode != Opcode.NOP)
            if footprint is not None:
                ops = footprint.get((func.name, loop.header), ops)
            if ops == 0 or ops > capacity:
                continue
            pre = loop.preheader(cfg)
            iterations = profile.block_count(func.name, loop.header)
            entries = (profile.edge_count(func.name, pre, loop.header)
                       if pre is not None else 0)
            counted = block.terminator is not None and \
                block.terminator.opcode == Opcode.BR_CLOOP
            candidates.append(
                LoopCandidate(func.name, loop.header, ops, iterations,
                              max(entries, 1 if iterations else 0), counted)
            )
    return candidates


def assign_buffer(
    module: Module,
    profile: Profile,
    capacity: int = 256,
    footprint: dict[tuple[str, str], int] | None = None,
    overhead_aware: bool = True,
    tracer=None,
    get_block=None,
) -> AssignmentResult:
    """Choose buffer offsets for the module's loops and rewrite the IR.

    ``get_block`` redirects the rewrite: ``get_block(func_name, label)``
    returns the block whose op list the ``rec`` directives land in.  The
    default edits ``module`` in place; a capacity-symbolic overlay
    (:mod:`repro.loopbuffer.overlay`) passes a copy-on-write getter so
    the shared base module is analyzed but never mutated.
    """
    if tracer is None:
        from repro.obs import get_tracer
        tracer = get_tracer()
    if not tracer.enabled:
        return _assign_buffer(module, profile, capacity, footprint,
                              overhead_aware, get_block)
    with tracer.span("assign_buffer", category="pass",
                     capacity=capacity) as span:
        result = _assign_buffer(module, profile, capacity, footprint,
                                overhead_aware, get_block)
        span.annotate(
            assigned=len(result.assigned),
            unassigned=len(result.unassigned),
            footprint_ops=sum(a.length for a in result.assigned),
        )
        return result


def _assign_buffer(module, profile, capacity, footprint, overhead_aware,
                   get_block=None):
    candidates = collect_candidates(module, profile, capacity, footprint)
    if overhead_aware:
        candidates.sort(key=lambda c: (c.benefit, c.recording_overhead),
                        reverse=True)
    else:
        candidates.sort(key=lambda c: c.benefit, reverse=True)

    result = AssignmentResult()
    placed: list[tuple[Assignment, LoopCandidate]] = []

    for cand in candidates:
        if cand.benefit <= 0:
            result.unassigned.append(f"{cand.func}/{cand.header}")
            continue
        offset = _first_fit(placed, cand.ops, capacity)
        if offset is None:
            offset = _cheapest_overlap(placed, cand.ops, capacity)
        assignment = Assignment(cand.func, cand.header, offset, cand.ops,
                                cand.counted)
        placed.append((assignment, cand))
        result.assigned.append(assignment)

    _rewrite_ir(module, result, get_block)
    return result


def _first_fit(placed, length: int, capacity: int) -> int | None:
    """Lowest offset whose [offset, offset+length) hits no placed loop."""
    taken = sorted(
        (a.offset, a.offset + a.length) for a, _ in placed
    )
    offset = 0
    for start, end in taken:
        if offset + length <= start:
            return offset
        offset = max(offset, end)
    if offset + length <= capacity:
        return offset
    return None


def _cheapest_overlap(placed, length: int, capacity: int) -> int:
    """Offset minimizing the total benefit of overlapped occupants."""
    best_offset, best_cost = 0, None
    starts = sorted({0} | {a.offset for a, _ in placed}
                    | {a.offset + a.length for a, _ in placed})
    for offset in starts:
        if offset + length > capacity:
            continue
        cost = sum(
            cand.benefit
            for a, cand in placed
            if a.offset < offset + length and offset < a.offset + a.length
        )
        if best_cost is None or cost < best_cost:
            best_offset, best_cost = offset, cost
    return best_offset


def _rewrite_ir(module: Module, result: AssignmentResult,
                get_block=None) -> None:
    """Install rec_cloop / rec_wloop operations for assigned loops.

    A loop that offers no place to record (no preheader, or a counted loop
    whose ``cloop_set`` cannot be found) is dropped from the assignment
    table rather than left as an orphan entry the hardware residency table
    would never match.

    Loop analysis always reads ``module``; the block actually edited comes
    from ``get_block`` (defaulting to in-place).  Successive assignments
    sharing a preheader see each other's edits either way, because the
    getter must return the same (copied) block for the same key.
    """
    if get_block is None:
        def get_block(fname, label):
            return module.function(fname).block(label)
    orphans: list[Assignment] = []
    for assignment in result.assigned:
        func = module.function(assignment.func)
        cfg = CFGView(func)
        loop = next(
            lp for lp in find_loops(func, cfg)
            if lp.header == assignment.header
        )
        pre_label = loop.preheader(cfg)
        if pre_label is None:
            orphans.append(assignment)
            continue
        pre = get_block(assignment.func, pre_label)
        block = func.block(assignment.header)
        term = block.terminator

        if assignment.counted and term is not None and \
                term.opcode == Opcode.BR_CLOOP:
            lc = term.attrs["lc"]
            # replace the matching cloop_set with rec_cloop (same count)
            for i, op in enumerate(pre.ops):
                if op.opcode == Opcode.CLOOP_SET and op.attrs.get("lc") == lc:
                    pre.ops[i] = Operation(
                        Opcode.REC_CLOOP, [], list(op.srcs), op.guard,
                        {"lc": lc, "buf_addr": assignment.offset,
                         "num": assignment.length,
                         "loop": assignment.header},
                    )
                    break
            else:
                orphans.append(assignment)
        else:
            insert_at = len(pre.ops)
            if pre.terminator is not None:
                insert_at -= 1
            pre.insert(
                insert_at,
                Operation(Opcode.REC_WLOOP, [], [], None,
                          {"buf_addr": assignment.offset,
                           "num": assignment.length,
                           "loop": assignment.header}),
            )

    for assignment in orphans:
        result.assigned.remove(assignment)
        result.unassigned.append(f"{assignment.func}/{assignment.header}")
