"""Capacity-symbolic retarget overlays (zero-copy ``with_buffer``).

Schedules, profiles, and modulo schedules are capacity-independent; the
only thing a buffer capacity changes is which preheaders gain ``rec``
directives.  Retargeting a compiled program to a new capacity therefore
does not need to deep-copy the module: this module plans the buffer
assignment against the shared immutable base, copies *only* the
preheader blocks the rewrite touches (copy-on-write at block
granularity), and wraps them in shallow ``Function``/``Module`` clones
that share every untouched block, operation, and global with the base.

The clones are real IR objects, so lint, the reference simulators, and
the fast engine all work on an overlay unchanged — and because untouched
``BasicBlock`` objects are shared across capacities, the fast engine's
shared decode store (:mod:`repro.sim.engine`) decodes them once for an
entire capacity sweep.

List schedules are recomputed only for the copied blocks; every shared
block reuses the base artifact's ``Schedule`` object, which is what the
legacy full reschedule would have produced anyway (``schedule_block`` is
content-deterministic, and the ``rec`` rewrite never changes liveness:
``rec_cloop`` keeps its ``cloop_set``'s sources and ``rec_wloop`` has
none).  The legacy deep-copy path remains selectable via
``REPRO_RETARGET=legacy`` as the differential reference.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.module import Module
from repro.loopbuffer.assign import assign_buffer

#: environment variable selecting the retarget implementation
ENV_RETARGET = "REPRO_RETARGET"

RETARGET_MODES = ("overlay", "legacy")
DEFAULT_RETARGET = "overlay"


class RetargetError(ValueError):
    """Invalid retarget request (e.g. re-buffering a buffered artifact)."""


def retarget_choice(mode: str | None = None) -> str:
    """Resolve the retarget mode: explicit arg, else env, else overlay."""
    if mode is None:
        mode = os.environ.get(ENV_RETARGET, DEFAULT_RETARGET)
    if mode not in RETARGET_MODES:
        raise ValueError(
            f"unknown retarget mode {mode!r} (expected one of {RETARGET_MODES})"
        )
    return mode


@dataclass(frozen=True)
class CapacityOverlay:
    """Record of what a zero-copy retarget materialized.

    ``materialized`` lists the ``(function, label)`` keys of the blocks
    that were copied to receive ``rec`` directives; every other block
    (``shared_blocks`` of them) is the base module's own object.
    """

    capacity: int | None
    materialized: tuple[tuple[str, str], ...]
    shared_blocks: int

    @property
    def materialized_blocks(self) -> int:
        return len(self.materialized)


def _clone_function(func: Function, replacements: dict[str, BasicBlock]) -> Function:
    """Shallow clone of ``func`` with some blocks swapped for copies.

    Untouched blocks (and all operations) are shared with the original.
    The clone records its origin so the fast engine can key its shared
    decode layout by the base function: the rec rewrite never introduces
    or removes virtual registers, so base and clone have identical
    register populations and slot layouts.
    """
    clone = Function.__new__(Function)
    clone.name = func.name
    clone.params = list(func.params)
    clone.blocks = [replacements.get(b.label, b) for b in func.blocks]
    clone._by_label = {b.label: b for b in clone.blocks}
    clone._next_reg = dict(func._next_reg)
    clone._next_label = func._next_label
    clone.frame_words = func.frame_words
    clone.frame_base = func.frame_base
    clone._decode_origin = getattr(func, "_decode_origin", func)
    return clone


def overlay_module(
    base: Module, replacements: dict[tuple[str, str], BasicBlock]
) -> Module:
    """Shallow module view: shared globals, shared untouched functions."""
    view = Module.__new__(Module)
    view.name = base.name
    view.globals = base.globals
    per_func: dict[str, dict[str, BasicBlock]] = {}
    for (fname, label), block in replacements.items():
        per_func.setdefault(fname, {})[label] = block
    view.functions = {
        fname: (_clone_function(func, per_func[fname])
                if fname in per_func else func)
        for fname, func in base.functions.items()
    }
    return view


def retarget_overlay(compiled, capacity: int | None,
                     overhead_aware: bool = True, tracer=None,
                     assign=None):
    """Retarget ``compiled`` to ``capacity`` without copying the module.

    ``compiled`` is an unbuffered base artifact (``repro.pipeline``'s
    ``Compiled``; duck-typed here to keep the dependency one-way).
    ``assign`` overrides the assignment entry point (the pipeline passes
    its own module-level reference so instrumentation patched there
    applies to both retarget paths).  Returns ``(module, assignment,
    schedules, overlay)`` for the caller to wrap in a new ``Compiled``.
    """
    if assign is None:
        assign = assign_buffer
    base_module = compiled.module
    materialized: dict[tuple[str, str], BasicBlock] = {}

    def cow_block(fname: str, label: str) -> BasicBlock:
        key = (fname, label)
        block = materialized.get(key)
        if block is None:
            src = base_module.function(fname).block(label)
            block = BasicBlock(src.label, src.ops)
            block.hyperblock = src.hyperblock
            materialized[key] = block
        return block

    assignment = None
    if capacity:
        footprint = {key: sched.buffered_op_count
                     for key, sched in compiled.modulo.items()}
        assignment = assign(
            base_module, compiled.profile, capacity, footprint=footprint,
            overhead_aware=overhead_aware, tracer=tracer,
            get_block=cow_block,
        )

    module = (overlay_module(base_module, materialized)
              if materialized else base_module)
    schedules = {fname: scheds for fname, scheds in compiled.schedules.items()}
    if materialized:
        from repro.analysis.liveness import liveness
        from repro.sched.list_sched import exit_live_map, schedule_block

        by_func: dict[str, list[str]] = {}
        for fname, label in materialized:
            by_func.setdefault(fname, []).append(label)
        for fname, labels in by_func.items():
            func = module.function(fname)
            live = liveness(func)
            fsched = dict(schedules.get(fname, {}))
            for label in labels:
                block = func.block(label)
                fsched[label] = schedule_block(
                    block, compiled.machine,
                    exit_live=exit_live_map(func, block, live),
                )
            schedules[fname] = fsched

    total_blocks = sum(len(f.blocks) for f in base_module.functions.values())
    overlay = CapacityOverlay(
        capacity=capacity,
        materialized=tuple(sorted(materialized)),
        shared_blocks=total_blocks - len(materialized),
    )
    return module, assignment, schedules, overlay
