"""The compiler-managed loop buffer (Section 5, Table 3).

The buffer is a small on-chip operation store "mapped architecturally into
the instruction address space, but residing on-chip in a physically
different location".  The compiler manages it as a resource: ``rec_*``
operations record a loop's body at a chosen buffer offset while the first
iteration executes from global fetch; subsequent iterations issue from the
buffer.  A small hardware table maps buffer offsets of *active* loops to
the addresses of their ``rec`` operations, so re-encountering a ``rec``
whose loop is still intact skips re-recording entirely ("the hardware is
simply given a small memory to avoid useless work").

This module models the hardware state machine; fetch/cycle accounting
lives in the VLIW simulator, and offset selection in
:mod:`repro.loopbuffer.assign`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class LoopState(str, Enum):
    ABSENT = "absent"        # not in the buffer
    RECORDING = "recording"  # first iteration: fetch from memory, store
    RESIDENT = "resident"    # issue from the buffer


@dataclass
class BufferedLoop:
    """One loop's residency claim: [offset, offset+length) in the buffer."""

    key: str                 # identity of the rec op (loop label)
    offset: int
    length: int
    counted: bool            # rec_cloop vs rec_wloop
    state: LoopState = LoopState.RECORDING

    def overlaps(self, other: "BufferedLoop") -> bool:
        return self.offset < other.offset + other.length and \
            other.offset < self.offset + self.length


@dataclass
class BufferStats:
    records_started: int = 0
    records_skipped: int = 0   # residency table hit: loop still intact
    invalidations: int = 0

    def as_tuple(self) -> tuple[int, int, int]:
        """Canonical value form, for differential comparison and hashing."""
        return (self.records_started, self.records_skipped,
                self.invalidations)


class LoopBuffer:
    """Hardware state of one loop buffer.

    ``listener``, when set, observes lifecycle transitions the caller
    cannot see from ``rec``'s return value alone — currently only
    ``listener("evict", victim_key, by=recording_key)`` when a recording
    overwrites another loop's buffer range.
    """

    def __init__(self, capacity: int = 256, listener=None) -> None:
        if capacity <= 0:
            raise ValueError("buffer capacity must be positive")
        self.capacity = capacity
        self.loops: dict[str, BufferedLoop] = {}
        self.stats = BufferStats()
        self.listener = listener

    # -- Table 3 operations ---------------------------------------------------

    def rec(self, key: str, offset: int, length: int, counted: bool) -> LoopState:
        """``rec_cloop`` / ``rec_wloop``: begin buffering ``length`` ops at
        ``offset`` unless the loop is already intact in the buffer.

        Returns the state the loop enters: RESIDENT on a residency-table
        hit, RECORDING otherwise.
        """
        if length > self.capacity or offset < 0 or offset + length > self.capacity:
            raise ValueError(
                f"loop {key}: [{offset}, {offset + length}) exceeds "
                f"{self.capacity}-op buffer"
            )
        existing = self.loops.get(key)
        if (existing is not None and existing.offset == offset
                and existing.length == length
                and existing.state is LoopState.RESIDENT):
            self.stats.records_skipped += 1
            return LoopState.RESIDENT

        claim = BufferedLoop(key, offset, length, counted)
        # recording overwrites anything sharing buffer space
        for other_key, other in list(self.loops.items()):
            if other_key != key and other.overlaps(claim):
                del self.loops[other_key]
                self.stats.invalidations += 1
                if self.listener is not None:
                    self.listener("evict", other_key, by=key)
        self.loops[key] = claim
        self.stats.records_started += 1
        return LoopState.RECORDING

    def exec_loop(self, key: str) -> LoopState:
        """``exec_cloop`` / ``exec_wloop``: run a loop assumed buffered."""
        loop = self.loops.get(key)
        if loop is None or loop.state is not LoopState.RESIDENT:
            raise LookupError(f"exec of non-resident loop {key!r}")
        return LoopState.RESIDENT

    # -- state transitions driven by the fetch engine ----------------------------

    def state_of(self, key: str) -> LoopState:
        loop = self.loops.get(key)
        return loop.state if loop is not None else LoopState.ABSENT

    def finish_recording(self, key: str) -> None:
        """The first iteration completed: the loop image is now intact."""
        loop = self.loops.get(key)
        if loop is not None and loop.state is LoopState.RECORDING:
            loop.state = LoopState.RESIDENT

    def resident_loops(self) -> list[BufferedLoop]:
        return sorted(
            (lp for lp in self.loops.values()
             if lp.state is LoopState.RESIDENT),
            key=lambda lp: lp.offset,
        )

    def occupancy(self) -> int:
        """Buffer words currently claimed by any loop."""
        claimed = [False] * self.capacity
        for loop in self.loops.values():
            for i in range(loop.offset, loop.offset + loop.length):
                claimed[i] = True
        return sum(claimed)
