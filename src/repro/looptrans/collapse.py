"""Predicated loop collapsing (Figure 1(b) / Figure 2).

A doubly-nested loop whose outer body is small relative to its inner loop
is flattened into a *single* loop: the outer-loop code is pulled into the
inner iteration body and guarded under a predicate that fires only on
inner-loop-completion boundaries, "so that it executes no more frequently
than it originally did."  The result is one simple loop executing
``outer_trips * inner_trips`` iterations — bufferable in its entirety,
where before only the inner loop could be buffered (paying buffer
entry/exit and outer-branch overhead every sweep).

Canonical shape handled (the Figure 2 / mpeg2dec ``Add_Block`` shape)::

    PRE:                       # outer preheader
    H:    <head ops>           # outer header: straight-line, falls into B
    B:    <inner body> ; br cc r, bound, B       # simple inner loop
    T:    <tail ops>  ; br cc2 a, b, H           # outer latch
    EXIT:

becomes::

    PRE:  <head ops copy> ; pred_set pT = 0
    L:    (pT) <head ops>
          <inner body>
          pred_def !cc pT<ut> = r, bound          # "inner sweep complete"
          (pT) <tail ops>
          (pT) br !cc2 a, b -> EXIT               # outer exit, infrequent
          jump L

When both trip counts are constant the loop-back jump is annotated with
the total iteration count so the counted-loop pass can install a
``br_cloop`` (Figure 2(d)) and let fetch fall out of the loop buffer on
the final iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cfgview import CFGView
from repro.analysis.loops import Loop, analyze_trip_count, find_loops
from repro.ir.function import Function
from repro.ir.opcodes import Opcode
from repro.ir.operation import Operation
from repro.ir.registers import Imm

_INVERT = {"lt": "ge", "ge": "lt", "le": "gt", "gt": "le",
           "eq": "ne", "ne": "eq", "ltu": "geu", "geu": "ltu"}

#: outer-code size limit: "the number of instructions in the outer loop is
#: small relative to the inner loop"
DEFAULT_MAX_OUTER_OPS = 12
#: "the number of iterations of the inner loop in any given iteration of
#: the outer loop is not excessive"
DEFAULT_MAX_INNER_TRIPS = 64


@dataclass
class CollapseStats:
    collapsed: list[str] = field(default_factory=list)
    rejected: dict[str, str] = field(default_factory=dict)

    @property
    def loops_collapsed(self) -> int:
        return len(self.collapsed)


@dataclass
class _Shape:
    head: str
    body: str
    tail: str
    inner: Loop


def _match_shape(func: Function, outer: Loop, cfg: CFGView) -> _Shape | str:
    """Recognize the canonical H/B/T doubly-nested shape; returns a reason
    string on mismatch."""
    if len(outer.children) != 1:
        return "outer loop must contain exactly one inner loop"
    inner = outer.children[0]
    if len(inner.body) != 1:
        return "inner loop is not simple"
    if inner.children:
        return "inner loop itself contains a loop"
    rest = outer.body - inner.body
    if len(rest) != 2:
        return "outer body is not head+tail around the inner loop"
    head = outer.header
    if head not in rest:
        return "outer header inside inner loop"
    (tail,) = rest - {head}
    body = inner.header

    head_blk = func.block(head)
    # head: straight-line, flowing only into the inner loop
    if cfg.succs[head] != [body]:
        return "outer header does not flow straight into the inner loop"
    for op in head_blk.ops[:-1]:
        if op.is_branch:
            return "branch inside outer header"
    if head_blk.terminator is not None and head_blk.terminator.opcode != Opcode.JUMP:
        return "outer header has a conditional terminator"
    if any(op.guard is not None for op in head_blk.ops):
        return "guarded op in outer header"

    # inner block: single-block loop exiting only to the tail
    body_blk = func.block(body)
    term = body_blk.terminator
    if term is None or term.opcode != Opcode.BR or term.target != body:
        return "inner loop lacks a plain conditional loop-back branch"
    if term.guard is not None:
        return "guarded inner loop-back branch"
    exits = inner.exit_edges(cfg)
    if exits != [(body, tail)]:
        return "inner loop has side exits"

    # tail: straight-line ops + conditional back branch to the header
    tail_blk = func.block(tail)
    tterm = tail_blk.terminator
    if tterm is None or tterm.opcode != Opcode.BR or tterm.target != head:
        return "outer latch lacks a plain conditional back branch"
    if tterm.guard is not None:
        return "guarded outer back branch"
    for op in tail_blk.ops[:-1]:
        if op.is_branch:
            return "branch inside outer latch"
    if any(op.guard is not None for op in tail_blk.ops):
        return "guarded op in outer latch"
    if cfg.succs[tail][0] != head:
        return "unexpected latch successors"
    return _Shape(head, body, tail, inner)


def collapse_loop(func: Function, outer: Loop, cfg: CFGView,
                  max_outer_ops: int = DEFAULT_MAX_OUTER_OPS,
                  max_inner_trips: int = DEFAULT_MAX_INNER_TRIPS) -> str | None:
    """Collapse one doubly-nested loop; returns a rejection reason or None."""
    shape = _match_shape(func, outer, cfg)
    if isinstance(shape, str):
        return shape

    head_blk = func.block(shape.head)
    body_blk = func.block(shape.body)
    tail_blk = func.block(shape.tail)

    head_ops = (head_blk.ops[:-1]
                if head_blk.terminator is not None else list(head_blk.ops))
    tail_ops = tail_blk.ops[:-1]
    outer_op_count = len(head_ops) + len(tail_ops)
    inner_op_count = len(body_blk.ops) - 1
    # "when the number of instructions in the outer loop is small relative
    # to the inner loop": the absorbed ops issue (nullified) on *every*
    # collapsed iteration, so they must be cheap next to the inner body
    if outer_op_count > max_outer_ops:
        return f"outer code too large ({outer_op_count} ops)"
    if outer_op_count > max(4, inner_op_count):
        return (f"outer code ({outer_op_count} ops) not small relative to "
                f"inner loop ({inner_op_count} ops)")

    inner_trip = analyze_trip_count(func, shape.inner, cfg)
    if inner_trip is None:
        return "inner trip count not analyzable"
    if inner_trip.count is not None and inner_trip.count > max_inner_trips:
        return f"inner trip count {inner_trip.count} too large"

    inner_term = body_blk.terminator
    outer_term = tail_blk.terminator
    assert inner_term is not None and outer_term is not None
    exit_target = _fallthrough_label(func, tail_blk)
    if exit_target is None:
        return "outer latch has no fall-through exit"

    # --- build the collapsed loop -------------------------------------------
    sweep_done = func.new_pred()
    new_label = func.new_label(f"{shape.head}_clp")

    merged: list[Operation] = []
    for op in head_ops:
        op.guard = sweep_done
        merged.append(op)
    merged.extend(body_blk.ops[:-1])
    merged.append(
        Operation(Opcode.PRED_DEF, [sweep_done], list(inner_term.srcs), None,
                  {"cmp": _INVERT[inner_term.attrs["cmp"]], "ptypes": ["ut"]})
    )
    for op in tail_ops:
        op.guard = sweep_done
        merged.append(op)
    exit_br = Operation(
        Opcode.BR, [], list(outer_term.srcs), sweep_done,
        {"cmp": _INVERT[outer_term.attrs["cmp"]], "target": exit_target,
         "outer_exit": True},
    )
    merged.append(exit_br)
    backjump = Operation(Opcode.JUMP, [], [], None, {"target": new_label})
    merged.append(backjump)

    # total iteration count for the counted-loop pass (Figure 2(d))
    outer_count = _outer_constant_count(func, outer, tail_blk, cfg)
    if inner_trip.count is not None and outer_count is not None:
        backjump.attrs["collapse_total"] = inner_trip.count * outer_count

    # --- splice --------------------------------------------------------------
    # the old header label becomes the new preheader: run the first sweep's
    # head code once and clear the sweep predicate
    pre_ops = [op.copy() for op in head_ops]
    for op in pre_ops:
        op.guard = None
    pre_ops.append(Operation(Opcode.PRED_SET, [sweep_done], [Imm(0)]))

    position = func.block_index(shape.head)
    func.remove_block(shape.head)
    func.remove_block(shape.body)
    func.remove_block(shape.tail)

    pre = func.add_block(shape.head, index=position)
    pre.ops = pre_ops
    loop_blk = func.add_block(new_label, index=position + 1)
    loop_blk.ops = merged
    loop_blk.hyperblock = True

    # keep the fall-out path correct: if the exit target is not the layout
    # successor, the exit branch handles it; the br_cloop fall-out (added
    # later) needs adjacency, which the cloop pass checks itself.
    return None


def _fallthrough_label(func: Function, block) -> str | None:
    idx = func.blocks.index(block)
    if idx + 1 < len(func.blocks):
        return func.blocks[idx + 1].label
    return None


def _outer_constant_count(func: Function, outer: Loop, tail_blk, cfg) -> int | None:
    """Constant outer trip count for the H/B/T shape.

    The generic analyzer wants single-block loops, so re-derive directly:
    the latch branch tests an induction register incremented once in the
    tail, initialized by a constant mov in the outer preheader.
    """
    term = tail_blk.terminator
    src0, src1 = term.srcs
    from repro.ir.registers import Imm as _Imm, VReg

    if not (isinstance(src0, VReg) and isinstance(src1, _Imm)):
        return None
    induction, bound, cmp = src0, src1.value, term.attrs["cmp"]
    incs = [op for label in outer.body
            for op in func.block(label).ops if induction in op.dests]
    if len(incs) != 1 or incs[0].opcode != Opcode.ADD:
        return None
    a, b = incs[0].srcs
    if a == induction and isinstance(b, _Imm):
        step = b.value
    elif b == induction and isinstance(a, _Imm):
        step = a.value
    else:
        return None
    if step == 0:
        return None
    pre = outer.preheader(cfg)
    if pre is None:
        return None
    init = None
    for op in reversed(func.block(pre).ops):
        if induction in op.dests:
            if op.opcode == Opcode.MOV and isinstance(op.srcs[0], _Imm):
                init = op.srcs[0].value
            break
    if init is None:
        return None
    from repro.sim.values import compare

    count, value = 0, init
    while count < 1_000_000:
        count += 1
        value += step
        if not compare(cmp, value, bound):
            return count
    return None


def collapse_nested_loops(
    func: Function,
    max_outer_ops: int = DEFAULT_MAX_OUTER_OPS,
    max_inner_trips: int = DEFAULT_MAX_INNER_TRIPS,
) -> CollapseStats:
    """Collapse every eligible doubly-nested loop (deepest nests first)."""
    stats = CollapseStats()
    progress = True
    while progress:
        progress = False
        cfg = CFGView(func)
        loops = find_loops(func, cfg)
        for outer in sorted(loops, key=lambda lp: -lp.depth):
            if not outer.children or outer.header in stats.rejected:
                continue
            reason = collapse_loop(func, outer, cfg, max_outer_ops,
                                   max_inner_trips)
            if reason is None:
                stats.collapsed.append(outer.header)
                progress = True
                break
            stats.rejected[outer.header] = reason
    return stats
