"""Counted-loop conversion: install ``br_cloop`` loop-back branches.

Section 3 / Figure 2(d): "the loop-back branch is transformed to a special
counted loop form, eliminating the inductor, and directing instruction
fetch to fall out of the loop buffer on the last iteration."

A simple loop whose trip count is available at entry gets:

* ``cloop_set <count>`` in its preheader (the hardware loop counter the
  ``rec_cloop`` buffer operation of Table 3 later takes over);
* its conditional loop-back branch replaced by ``br_cloop``;
* collapsed loops (loop-back ``jump`` annotated with ``collapse_total``)
  are handled too, deleting the now-redundant final-iteration outer-exit
  branch when the exit target is the layout fall-out block.

The induction increment frequently becomes dead afterwards; run DCE to
reap it ("eliminating the inductor").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.analysis.cfgview import CFGView
from repro.analysis.loops import analyze_trip_count, find_loops
from repro.ir.function import Function
from repro.ir.opcodes import Opcode
from repro.ir.operation import Operation
from repro.ir.registers import Imm, Operand


@dataclass
class CloopStats:
    converted: list[str] = field(default_factory=list)
    rejected: dict[str, str] = field(default_factory=dict)

    @property
    def loops_converted(self) -> int:
        return len(self.converted)


def convert_counted_loops(func: Function) -> CloopStats:
    """Convert every eligible simple loop of ``func`` to br_cloop form."""
    stats = CloopStats()
    lc_ids = itertools.count()
    progress = True
    while progress:
        progress = False
        cfg = CFGView(func)
        loops = find_loops(func, cfg)
        for loop in sorted(loops, key=lambda lp: -lp.depth):
            if loop.header in stats.rejected or len(loop.body) != 1:
                continue
            block = func.block(loop.header)
            term = block.terminator
            if term is None or term.target != loop.header:
                continue
            if term.opcode == Opcode.BR_CLOOP:
                continue  # already converted
            pre_label = loop.preheader(cfg)
            if pre_label is None:
                stats.rejected[loop.header] = "no unique preheader"
                continue

            if term.opcode == Opcode.JUMP and "collapse_total" in term.attrs:
                _convert_collapsed(func, block, term, pre_label,
                                   f"lc{next(lc_ids)}")
                stats.converted.append(loop.header)
                progress = True
                break

            if term.opcode != Opcode.BR or term.guard is not None:
                stats.rejected[loop.header] = "irregular loop-back branch"
                continue
            trip = analyze_trip_count(func, loop, cfg)
            if trip is None or not trip.runtime_countable:
                stats.rejected[loop.header] = "count not available at entry"
                continue
            count_operand: Operand
            count_operand = (Imm(trip.count) if trip.count is not None
                             else trip.bound)
            _install(func, block, term, pre_label, count_operand,
                     f"lc{next(lc_ids)}")
            stats.converted.append(loop.header)
            progress = True
            break
    return stats


def _install(func: Function, block, term: Operation, pre_label: str,
             count: Operand, lc: str) -> None:
    pre = func.block(pre_label)
    insert_at = len(pre.ops)
    if pre.terminator is not None:
        insert_at -= 1
    pre.insert(insert_at,
               Operation(Opcode.CLOOP_SET, [], [count], None, {"lc": lc}))
    block.ops[-1] = Operation(Opcode.BR_CLOOP, [], [], None,
                              {"target": block.label, "lc": lc})


def _convert_collapsed(func: Function, block, term: Operation,
                       pre_label: str, lc: str) -> None:
    """Figure 2(d): collapsed loop with constant total iteration count."""
    total = term.attrs["collapse_total"]
    _install(func, block, term, pre_label, Imm(total), lc)
    # the guarded outer-exit branch is redundant on the final iteration if
    # its target is exactly where br_cloop falls out (the layout successor)
    idx = func.blocks.index(block)
    fall = func.blocks[idx + 1].label if idx + 1 < len(func.blocks) else None
    for i in range(len(block.ops) - 2, -1, -1):
        op = block.ops[i]
        if op.attrs.get("outer_exit") and op.target == fall:
            del block.ops[i]
            break
