"""Loop transformations enabling buffering: complete peeling of short
counted loops, predicated loop collapsing of nests, and counted-loop
(``br_cloop``) conversion."""

from .cloop import CloopStats, convert_counted_loops
from .collapse import CollapseStats, collapse_loop, collapse_nested_loops
from .peel import PeelStats, peel_loop, peel_short_loops

__all__ = [
    "CloopStats",
    "CollapseStats",
    "PeelStats",
    "collapse_loop",
    "collapse_nested_loops",
    "convert_counted_loops",
    "peel_loop",
    "peel_short_loops",
]
