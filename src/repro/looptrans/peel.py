"""Complete peeling of short counted inner loops (Figure 1(a)).

Section 3: "Provided that the inner loop contains a reasonable number of
instructions, it can be eliminated by peeling it completely.  We
heuristically peel any counted loop of less than six iterations, so long
as peeling would create less than 36 instructions."

Peeling replaces a single-block counted loop with N straight-line copies
of its body (the loop-back branch deleted), dissolving the inner level of
a nest so the outer loop becomes an acyclic region eligible for
if-conversion and, ultimately, the loop buffer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cfgview import CFGView
from repro.analysis.loops import analyze_trip_count, find_loops
from repro.ir.function import Function
from repro.ir.opcodes import Opcode

#: the paper's heuristics
DEFAULT_MAX_ITERATIONS = 6     # peel loops of *less than* this many iterations
DEFAULT_MAX_NEW_OPS = 36       # so long as fewer than this many ops appear


@dataclass
class PeelStats:
    peeled: list[str] = field(default_factory=list)
    rejected: dict[str, str] = field(default_factory=dict)

    @property
    def loops_peeled(self) -> int:
        return len(self.peeled)


def peel_loop(func: Function, header: str, count: int) -> None:
    """Replace the single-block loop at ``header`` with ``count`` copies."""
    block = func.block(header)
    term = block.terminator
    assert term is not None and term.target == header
    body_ops = block.ops[:-1]

    new_ops = []
    for iteration in range(count):
        for op in body_ops:
            new_ops.append(op if iteration == 0 else op.copy())
    block.ops = new_ops


def peel_short_loops(
    func: Function,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    max_new_ops: int = DEFAULT_MAX_NEW_OPS,
) -> PeelStats:
    """Peel every eligible counted loop of ``func`` (innermost first)."""
    stats = PeelStats()
    progress = True
    while progress:
        progress = False
        cfg = CFGView(func)
        loops = find_loops(func, cfg)
        for loop in sorted(loops, key=lambda lp: -lp.depth):
            if loop.header in stats.rejected:
                continue
            if len(loop.body) != 1:
                stats.rejected[loop.header] = "not a single-block loop"
                continue
            block = func.block(loop.header)
            term = block.terminator
            if term is None or term.target != loop.header or term.guard is not None:
                stats.rejected[loop.header] = "irregular loop-back branch"
                continue
            if term.opcode != Opcode.BR:
                stats.rejected[loop.header] = "already counted/collapsed"
                continue
            if any(op.target == loop.header for op in block.ops[:-1]):
                stats.rejected[loop.header] = "multiple loop-back branches"
                continue
            trip = analyze_trip_count(func, loop, cfg)
            if trip is None or trip.count is None:
                stats.rejected[loop.header] = "trip count unknown"
                continue
            if trip.count >= max_iterations:
                stats.rejected[loop.header] = f"{trip.count} iterations too many"
                continue
            new_ops = (trip.count - 1) * (len(block.ops) - 1)
            if new_ops >= max_new_ops:
                stats.rejected[loop.header] = f"{new_ops} new ops too many"
                continue
            # a side exit inside the body makes copies diverge from the
            # counted model only if it can re-enter; exits leaving the
            # function/loop are fine and are preserved in each copy
            peel_loop(func, loop.header, trip.count)
            stats.peeled.append(loop.header)
            progress = True
            break
    return stats
