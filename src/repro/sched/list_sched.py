"""Acyclic (prepass) list scheduling of blocks onto the VLIW.

Classic critical-path list scheduling: operations become ready when all
their dependence predecessors have issued and their latencies elapsed;
each cycle, ready operations are placed highest-priority-first into
compatible free slots (scarcest-unit slots preferred, so an IALU op does
not squat on the lone branch slot).

The dependence graph is predicate-aware (disjoint-guard relaxation) and,
when liveness is supplied, allows speculable operations to hoist above
hyperblock side exits (Section 3's control-speculation support).
"""

from __future__ import annotations

from repro.analysis.dependence import DependenceGraph, build_dependence_graph
from repro.analysis.predrel import PredicateRelations
from repro.ir.block import BasicBlock
from repro.ir.opcodes import Opcode

from .bundle import Schedule
from .machine import DEFAULT_MACHINE, MachineDescription


def _priorities(graph: DependenceGraph) -> list[int]:
    """Latency-weighted height of each op (longest path to a leaf)."""
    n = len(graph.ops)
    height = [0] * n
    order = _topo(graph)
    for i in reversed(order):
        best = 0
        for edge in graph.succs[i]:
            if edge.distance == 0:
                best = max(best, max(edge.latency, 1) + height[edge.dst])
        height[i] = best
    return height


def _topo(graph: DependenceGraph) -> list[int]:
    n = len(graph.ops)
    indeg = [0] * n
    for edge in graph.edges:
        if edge.distance == 0:
            indeg[edge.dst] += 1
    stack = [i for i in range(n) if indeg[i] == 0]
    order: list[int] = []
    while stack:
        node = stack.pop()
        order.append(node)
        for edge in graph.succs[node]:
            if edge.distance == 0:
                indeg[edge.dst] -= 1
                if indeg[edge.dst] == 0:
                    stack.append(edge.dst)
    if len(order) != n:
        raise RuntimeError("dependence graph has a zero-distance cycle")
    return order


def schedule_block(
    block: BasicBlock,
    machine: MachineDescription = DEFAULT_MACHINE,
    exit_live: dict[int, set] | None = None,
    relations: PredicateRelations | None = None,
) -> Schedule:
    """List-schedule one block; returns the bundle schedule."""
    ops = [op for op in block.ops if op.opcode != Opcode.NOP]
    if relations is None:
        relations = PredicateRelations(block)
    graph = build_dependence_graph(ops, relations=relations,
                                   exit_live=exit_live)
    priority = _priorities(graph)

    n = len(ops)
    earliest = [0] * n
    unscheduled = set(range(n))
    issue_time: dict[int, int] = {}
    schedule = Schedule()
    cycle = 0

    preds_remaining = [0] * n
    for edge in graph.edges:
        if edge.distance == 0:
            preds_remaining[edge.dst] += 1

    ready: list[int] = [i for i in range(n) if preds_remaining[i] == 0]

    while unscheduled:
        # candidates whose earliest start has arrived
        candidates = [i for i in ready if earliest[i] <= cycle]
        candidates.sort(key=lambda i: (-priority[i], i))
        occupied: set[int] = {
            slot for slot, _ in schedule.bundles[cycle].in_slot_order()
        } if cycle < len(schedule.bundles) else set()

        placed_any = False
        for i in candidates:
            op = ops[i]
            slot = next(
                (s for s in machine.slots_for_op(op.opcode)
                 if s not in occupied),
                None,
            )
            if slot is None:
                continue
            schedule.place(op, cycle, slot)
            occupied.add(slot)
            issue_time[i] = cycle
            unscheduled.discard(i)
            ready.remove(i)
            placed_any = True
            for edge in graph.succs[i]:
                if edge.distance != 0:
                    continue
                preds_remaining[edge.dst] -= 1
                earliest[edge.dst] = max(
                    earliest[edge.dst], cycle + edge.latency
                )
                if preds_remaining[edge.dst] == 0:
                    ready.append(edge.dst)
        cycle += 1
        if cycle > 10 * (n + 8) + 64:
            raise RuntimeError(
                f"list scheduler failed to converge on {block.label}"
            )
    return schedule


def schedule_function(
    func,
    machine: MachineDescription = DEFAULT_MACHINE,
    liveness_info=None,
    tracer=None,
) -> dict[str, Schedule]:
    """List-schedule every block; returns label -> Schedule."""
    from repro.analysis.liveness import liveness

    if tracer is None:
        from repro.obs import get_tracer
        tracer = get_tracer()
    if liveness_info is None:
        liveness_info = liveness(func)
    schedules: dict[str, Schedule] = {}
    if not tracer.enabled:
        for block in func.blocks:
            exit_live = exit_live_map(func, block, liveness_info)
            schedules[block.label] = schedule_block(
                block, machine, exit_live=exit_live
            )
        return schedules
    with tracer.span(f"list:{func.name}", category="sched",
                     func=func.name) as span:
        for block in func.blocks:
            exit_live = exit_live_map(func, block, liveness_info)
            schedules[block.label] = schedule_block(
                block, machine, exit_live=exit_live
            )
        bundles = sum(len(s.bundles) for s in schedules.values())
        slots_used = sum(
            sum(1 for _ in bundle.in_slot_order())
            for s in schedules.values() for bundle in s.bundles
        )
        span.annotate(
            blocks=len(schedules),
            bundles=bundles,
            slots_used=slots_used,
            slots_total=bundles * machine.width,
        )
    return schedules


def exit_live_map(func, block, liveness_info) -> dict[int, set]:
    """Map op-list index of each branch to registers live on its taken path.

    Public because schedule-legality checking (:mod:`repro.analysis.lint`)
    must rebuild the *same* dependence graph the scheduler used, including
    the side-exit hoisting relaxation this map enables.
    """
    ops = [op for op in block.ops if op.opcode != Opcode.NOP]
    result: dict[int, set] = {}
    for i, op in enumerate(ops):
        if op.is_branch and op.target is not None and func.has_block(op.target):
            result[i] = set(liveness_info.live_in.get(op.target, set()))
    return result
