"""Acyclic (prepass) list scheduling of blocks onto the VLIW.

Classic critical-path list scheduling: operations become ready when all
their dependence predecessors have issued and their latencies elapsed;
each cycle, ready operations are placed highest-priority-first into
compatible free slots (scarcest-unit slots preferred, so an IALU op does
not squat on the lone branch slot).

The dependence graph is predicate-aware (disjoint-guard relaxation) and,
when liveness is supplied, allows speculable operations to hoist above
hyperblock side exits (Section 3's control-speculation support).
"""

from __future__ import annotations

from repro.analysis.dependence import (
    DependenceGraph,
    build_dependence_graph,
    dependence_graph,
    exit_live_fingerprint,
    ops_fingerprint,
)
from repro.analysis.predrel import PredicateRelations
from repro.ir.block import BasicBlock
from repro.ir.opcodes import Opcode

from . import cache as sched_cache
from .bundle import Schedule
from .machine import DEFAULT_MACHINE, MachineDescription


def _priorities(graph: DependenceGraph) -> list[int]:
    """Latency-weighted height of each op (longest path to a leaf)."""
    n = len(graph.ops)
    height = [0] * n
    order = _topo(graph)
    for i in reversed(order):
        best = 0
        for edge in graph.succs[i]:
            if edge.distance == 0:
                best = max(best, max(edge.latency, 1) + height[edge.dst])
        height[i] = best
    return height


def _topo(graph: DependenceGraph) -> list[int]:
    n = len(graph.ops)
    indeg = [0] * n
    for edge in graph.edges:
        if edge.distance == 0:
            indeg[edge.dst] += 1
    stack = [i for i in range(n) if indeg[i] == 0]
    order: list[int] = []
    while stack:
        node = stack.pop()
        order.append(node)
        for edge in graph.succs[node]:
            if edge.distance == 0:
                indeg[edge.dst] -= 1
                if indeg[edge.dst] == 0:
                    stack.append(edge.dst)
    if len(order) != n:
        raise RuntimeError("dependence graph has a zero-distance cycle")
    return order


def schedule_block(
    block: BasicBlock,
    machine: MachineDescription = DEFAULT_MACHINE,
    exit_live: dict[int, set] | None = None,
    relations: PredicateRelations | None = None,
) -> Schedule:
    """List-schedule one block; returns the bundle schedule.

    Placements are memoized by block content (see :mod:`repro.sched.cache`):
    re-scheduling an identical block — a capacity-sweep deep copy, the same
    program under another pipeline config — replays the stored placements
    instead of re-running the scheduling search.
    """
    ops = [op for op in block.ops if op.opcode != Opcode.NOP]
    with sched_cache.timed("list"):
        legacy = sched_cache.legacy_enabled()
        key = None
        if not legacy:
            fingerprint = ops_fingerprint(ops)
            key = (fingerprint, machine, exit_live_fingerprint(exit_live))
            placements = sched_cache.list_placements_get(key)
            if placements is not None:
                return _replay(ops, placements)
        if relations is None:
            relations = PredicateRelations(block)
        if legacy:
            graph = build_dependence_graph(ops, relations=relations,
                                           exit_live=exit_live)
        else:
            graph = dependence_graph(ops, relations=relations,
                                     exit_live=exit_live,
                                     fingerprint=fingerprint)
        schedule = _schedule_ops(ops, graph, machine, block.label, legacy)
        if key is not None:
            sched_cache.list_placements_put(key, tuple(
                (i, place.cycle, place.slot)
                for i, op in enumerate(ops)
                for place in (schedule.placement[op.uid],)
            ))
        return schedule


def _replay(ops, placements) -> Schedule:
    """Rebuild a schedule from memoized (index, cycle, slot) placements."""
    schedule = Schedule()
    for i, cycle, slot in sorted(placements, key=lambda p: (p[1], p[2])):
        schedule.place(ops[i], cycle, slot)
    return schedule


def _schedule_ops(ops, graph, machine, label, legacy) -> Schedule:
    """The critical-path list-scheduling loop.

    ``legacy`` selects the original linear free-slot probe; the default
    probes a per-cycle free-slot bitmask through the machine's pick
    tables.  Both probe slots in identical (scarcest-capability-first)
    order, so the resulting schedules are identical.
    """
    priority = _priorities(graph)

    n = len(ops)
    earliest = [0] * n
    unscheduled = set(range(n))
    schedule = Schedule()
    cycle = 0
    full_mask = machine.full_mask

    preds_remaining = [0] * n
    for edge in graph.edges:
        if edge.distance == 0:
            preds_remaining[edge.dst] += 1

    ready: list[int] = [i for i in range(n) if preds_remaining[i] == 0]

    while unscheduled:
        # candidates whose earliest start has arrived
        candidates = [i for i in ready if earliest[i] <= cycle]
        candidates.sort(key=lambda i: (-priority[i], i))
        occupied: set[int] = set()
        free = full_mask

        for i in candidates:
            op = ops[i]
            if legacy:
                slot = next(
                    (s for s in machine.slots_for_op(op.opcode)
                     if s not in occupied),
                    None,
                )
            else:
                slot = machine.pick_slot(op.opcode, free)
            if slot is None:
                continue
            schedule.place(op, cycle, slot)
            occupied.add(slot)
            free &= ~(1 << slot)
            unscheduled.discard(i)
            ready.remove(i)
            for edge in graph.succs[i]:
                if edge.distance != 0:
                    continue
                preds_remaining[edge.dst] -= 1
                earliest[edge.dst] = max(
                    earliest[edge.dst], cycle + edge.latency
                )
                if preds_remaining[edge.dst] == 0:
                    ready.append(edge.dst)
        cycle += 1
        if cycle > 10 * (n + 8) + 64:
            raise RuntimeError(
                f"list scheduler failed to converge on {label}"
            )
    return schedule


def schedule_function(
    func,
    machine: MachineDescription = DEFAULT_MACHINE,
    liveness_info=None,
    tracer=None,
) -> dict[str, Schedule]:
    """List-schedule every block; returns label -> Schedule."""
    from repro.analysis.liveness import liveness

    if tracer is None:
        from repro.obs import get_tracer
        tracer = get_tracer()
    if liveness_info is None:
        liveness_info = liveness(func)
    schedules: dict[str, Schedule] = {}
    if not tracer.enabled:
        for block in func.blocks:
            exit_live = exit_live_map(func, block, liveness_info)
            schedules[block.label] = schedule_block(
                block, machine, exit_live=exit_live
            )
        return schedules
    with tracer.span(f"list:{func.name}", category="sched",
                     func=func.name) as span:
        hits0 = sched_cache.STATS.list_hits
        misses0 = sched_cache.STATS.list_misses
        for block in func.blocks:
            exit_live = exit_live_map(func, block, liveness_info)
            schedules[block.label] = schedule_block(
                block, machine, exit_live=exit_live
            )
        bundles = sum(len(s.bundles) for s in schedules.values())
        slots_used = sum(
            sum(1 for _ in bundle.in_slot_order())
            for s in schedules.values() for bundle in s.bundles
        )
        span.annotate(
            blocks=len(schedules),
            bundles=bundles,
            slots_used=slots_used,
            slots_total=bundles * machine.width,
            cache_hits=sched_cache.STATS.list_hits - hits0,
            cache_misses=sched_cache.STATS.list_misses - misses0,
        )
    return schedules


def exit_live_map(func, block, liveness_info) -> dict[int, set]:
    """Map op-list index of each branch to registers live on its taken path.

    Public because schedule-legality checking (:mod:`repro.analysis.lint`)
    must rebuild the *same* dependence graph the scheduler used, including
    the side-exit hoisting relaxation this map enables.
    """
    ops = [op for op in block.ops if op.opcode != Opcode.NOP]
    result: dict[int, set] = {}
    for i, op in enumerate(ops):
        if op.is_branch and op.target is not None and func.has_block(op.target):
            result[i] = set(liveness_info.live_in.get(op.target, set()))
    return result
