"""Register binding checks.

The modeled machine provides 64 integer registers and 8 predicates
(Section 7).  The compiler schedules with virtual registers and then
verifies bindability: integer pressure must not exceed the file size
(spilling would be required — we report rather than spill, since the
benchmark kernels stay far below 64, as the paper's do), and predicates
are actually colored (see :mod:`repro.predication.coloring`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.liveness import liveness, max_register_pressure
from repro.ir.function import Function
from repro.predication.coloring import (
    PredicateSpillRequired,
    color_predicates,
)

from .machine import DEFAULT_MACHINE, MachineDescription


@dataclass
class BindReport:
    function: str
    int_pressure: int
    float_pressure: int
    predicate_colors: int
    int_fits: bool
    predicates_fit: bool


def check_bindability(
    func: Function, machine: MachineDescription = DEFAULT_MACHINE
) -> BindReport:
    """Measure register pressure and predicate colorability."""
    info = liveness(func)
    int_pressure = max_register_pressure(func, "i", info)
    float_pressure = max_register_pressure(func, "f", info)

    colors_needed = 0
    predicates_fit = True
    for block in func.blocks:
        try:
            coloring = color_predicates(block, machine.predicate_registers)
        except PredicateSpillRequired:
            predicates_fit = False
            continue
        if coloring:
            colors_needed = max(colors_needed, max(coloring.values()) + 1)

    return BindReport(
        function=func.name,
        int_pressure=int_pressure,
        float_pressure=float_pressure,
        predicate_colors=colors_needed,
        int_fits=int_pressure <= machine.int_registers,
        predicates_fit=predicates_fit,
    )
