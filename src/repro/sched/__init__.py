"""VLIW scheduling: machine description, list scheduling, iterative modulo
scheduling with modulo variable expansion, and register-binding checks."""

from .bundle import Bundle, Placement, Schedule
from .list_sched import schedule_block, schedule_function
from .machine import DEFAULT_MACHINE, MachineDescription
from .modulo import (
    ModuloSchedule,
    ModuloSchedulingFailed,
    modulo_schedule,
    recurrence_mii,
    resource_mii,
)
from .regbind import BindReport, check_bindability

__all__ = [
    "BindReport",
    "Bundle",
    "DEFAULT_MACHINE",
    "MachineDescription",
    "ModuloSchedule",
    "ModuloSchedulingFailed",
    "Placement",
    "Schedule",
    "check_bindability",
    "modulo_schedule",
    "recurrence_mii",
    "resource_mii",
    "schedule_block",
    "schedule_function",
]
