"""The modeled 8-wide VLIW machine (Section 7, Figure 6).

"Our experimental machine is an 8-wide unified VLIW with resources loosely
modeled after the TI 'C6x series microprocessors. ... The processor has
eight integer ALUs, two of which can issue integer multiplies; three
memory units; one branch unit; two floating-point units; and four units
capable of generating predicate values."

The per-slot capability table in Figure 6 is typographically garbled in
the available text; we reconstruct it from the prose (every slot has an
IALU; the multiply-capable ALUs share their slots with the FPUs as the
figure's "Imul/F" units):

====  ==========================
slot  units
====  ==========================
0     IALU, PRED
1     IALU, PRED
2     IALU, IMUL, FPU
3     IALU, IMUL, FPU
4     IALU, MEM, PRED
5     IALU, MEM, PRED
6     IALU, MEM
7     IALU, BRANCH
====  ==========================

Latencies (Section 7): arithmetic 1, multiplies 2, divides 8, loads 3,
floating point 2.  Branch resolution costs a 3-cycle taken-branch bubble
when fetching from global memory (Section 2 cites 3-5 cycle penalties);
the loop buffer's loop-back prediction removes it.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.ir.opcodes import Opcode, Unit, unit_of

_DEFAULT_SLOTS: tuple[frozenset, ...] = (
    frozenset({Unit.IALU, Unit.PRED}),
    frozenset({Unit.IALU, Unit.PRED}),
    frozenset({Unit.IALU, Unit.IMUL, Unit.FPU}),
    frozenset({Unit.IALU, Unit.IMUL, Unit.FPU}),
    frozenset({Unit.IALU, Unit.MEM, Unit.PRED}),
    frozenset({Unit.IALU, Unit.MEM, Unit.PRED}),
    frozenset({Unit.IALU, Unit.MEM}),
    frozenset({Unit.IALU, Unit.BRANCH}),
)


@dataclass(frozen=True)
class MachineDescription:
    """Issue-slot capabilities and fetch-side parameters."""

    slot_units: tuple[frozenset, ...] = _DEFAULT_SLOTS
    branch_penalty: int = 3       # taken-branch bubble, global fetch
    int_registers: int = 64
    predicate_registers: int = 8
    operation_bits: int = 32      # each operation is 32 bits (Section 7)

    @property
    def width(self) -> int:
        return len(self.slot_units)

    def slots_for(self, unit: Unit) -> list[int]:
        """Issue slots that can execute ``unit``, scarcest-capability first."""
        return list(_slots_for(self, unit))

    def slots_for_op(self, opcode: Opcode) -> list[int]:
        return self.slots_for(unit_of(opcode))

    def unit_count(self, unit: Unit) -> int:
        return sum(1 for units in self.slot_units if unit in units)

    # -- free-slot bitmasks --------------------------------------------------
    #
    # Slot occupancy fits an int bitmask (bit i = slot i taken), so the
    # schedulers' per-cycle "first capable free slot" probe becomes two
    # integer ops and a table lookup instead of a list scan.  The pick
    # tables preserve the scarcest-capability-first probe order exactly,
    # so mask-probed schedules are identical to linearly probed ones.

    @property
    def full_mask(self) -> int:
        """Bitmask with one bit per issue slot."""
        return (1 << self.width) - 1

    def slot_mask(self, unit: Unit) -> int:
        """Bitmask of the slots that can execute ``unit``."""
        mask = 0
        for i, units in enumerate(self.slot_units):
            if unit in units:
                mask |= 1 << i
        return mask

    def slot_mask_for_op(self, opcode: Opcode) -> int:
        return self.slot_mask(unit_of(opcode))

    def pick_slot(self, opcode: Opcode, free_mask: int) -> int | None:
        """First capable slot (scarcest-capability order) in ``free_mask``.

        Equivalent to probing :meth:`slots_for_op` in order and returning
        the first slot whose bit is set, via a precomputed 2^width table.
        """
        table = _pick_table(self, unit_of(opcode))
        if table is not None:
            return table[free_mask & (len(table) - 1)]
        for slot in _slots_for(self, unit_of(opcode)):
            if free_mask >> slot & 1:
                return slot
        return None


@lru_cache(maxsize=None)
def _slots_for(machine: MachineDescription, unit: Unit) -> tuple[int, ...]:
    slots = [i for i, units in enumerate(machine.slot_units) if unit in units]
    return tuple(sorted(slots, key=lambda i: len(machine.slot_units[i])))


#: precompute full pick tables only for realistic widths (2^width entries)
_PICK_TABLE_MAX_WIDTH = 12


@lru_cache(maxsize=None)
def _pick_table(machine: MachineDescription,
                unit: Unit) -> tuple[int | None, ...] | None:
    """``table[free_mask] -> slot`` for every possible free-slot subset."""
    if machine.width > _PICK_TABLE_MAX_WIDTH:
        return None
    ordered = _slots_for(machine, unit)
    table: list[int | None] = []
    for free in range(1 << machine.width):
        table.append(next((s for s in ordered if free >> s & 1), None))
    return tuple(table)


DEFAULT_MACHINE = MachineDescription()
