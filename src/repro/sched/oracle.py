"""Exact modulo-scheduling oracle: certify the heuristic's II, or beat it.

Iterative modulo scheduling (:mod:`repro.sched.modulo`) is a heuristic —
it can settle on an II above the true minimum when eviction-based
placement paints itself into a corner.  This module answers, per loop,
the question the heuristic cannot: *what is the smallest feasible II?*

For each candidate II (from MinII upward) the oracle solves the exact
constraint program

* ``t[j] - t[i] >= latency(e) - II * distance(e)`` for every dependence
  edge ``e : i -> j`` (the modulo precedence system), and
* the operations mapped to each modulo residue ``t[i] % II`` must admit a
  perfect matching into capable issue slots (the modulo reservation
  table, solved as bipartite matching rather than greedy slot probing),

by depth-first search over issue times with interval propagation
(Bellman-Ford tightening of every unassigned operation's time window
after each assignment).  Slot assignment is *not* branched on: a time
assignment is accepted only if the per-residue matching extends, which
keeps the search complete without enumerating slot permutations.

Completeness is relative to a finite time horizon.  The default horizon
is safe: any feasible modulo schedule can be normalized to fit within
``sum(latencies) + n * II`` cycles — shift each strongly-connected
component of the dependence graph earlier by multiples of II (which
preserves every residue, hence the reservation table) until it sits
within II cycles of its precedence-forced earliest start; the residual
spread is bounded by longest dependence paths, i.e. by the latency sum.
A search that exhausts this horizon has therefore *proved* the II
infeasible.  The only escape hatch is the node budget: when the search
trips it, the oracle reports honestly that the result is uncertified.

Everything here is pure Python over the existing dependence graph and
machine model — no solver dependency.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace

from repro.analysis.dependence import (
    DependenceGraph,
    dependence_graph,
    ops_fingerprint,
)
from repro.analysis.predrel import PredicateRelations
from repro.ir.block import BasicBlock
from repro.ir.opcodes import Opcode, latency_of
from repro.obs import get_tracer

from . import cache as sched_cache
from .machine import DEFAULT_MACHINE, MachineDescription
from .modulo import (
    ModuloSchedule,
    ModuloSchedulingFailed,
    recurrence_mii,
    required_mve_factor,
    resource_mii,
)

#: default DFS node budget per loop (across all candidate IIs)
DEFAULT_NODE_BUDGET = 200_000

#: loops larger than this are skipped (reported ``"too-large"``) — the
#: exact search is exponential in the worst case and the certification
#: claim is only interesting for loop *kernels*, which are small
DEFAULT_MAX_OPS = 24


class _BudgetExceeded(Exception):
    """The DFS node budget ran out mid-search."""


@dataclass(frozen=True)
class OracleResult:
    """Outcome of the exact II search for one loop.

    ``status``:

    * ``"optimal"`` — ``ii`` is the proven-minimal initiation interval
      (every smaller candidate was exhaustively refuted).
    * ``"feasible"`` — a schedule at ``ii`` was found, but some smaller
      candidate's refutation hit the node budget: ``ii`` is an upper
      bound on the optimum, not a certificate.
    * ``"infeasible"`` — no schedule exists at any ``II <= max_ii``
      (proven); ``ii`` is ``None``.
    * ``"unknown"`` — the budget ran out before any schedule was found.
    * ``"too-large"`` — the loop exceeds ``max_ops``; no search was run.
    """

    block: str
    n_ops: int
    res_mii: int
    rec_mii: int
    min_ii: int
    ii: int | None
    status: str
    nodes: int
    times: tuple[int, ...] | None = None   # per op index, original order
    slots: tuple[int, ...] | None = None

    @property
    def certified(self) -> bool:
        return self.status == "optimal"

    def as_dict(self) -> dict:
        return {
            "block": self.block, "ops": self.n_ops,
            "res_mii": self.res_mii, "rec_mii": self.rec_mii,
            "min_ii": self.min_ii, "ii": self.ii,
            "status": self.status, "nodes": self.nodes,
        }


# --------------------------------------------------------------------------
# the exact search at one fixed II


def _windows(graph: DependenceGraph, ii: int,
             horizon: int) -> tuple[list[int], list[int]] | None:
    """Initial [est, lst] per op, or ``None`` on a positive cycle."""
    n = len(graph.ops)
    est = [0] * n
    for _ in range(n + 1):
        changed = False
        for edge in graph.edges:
            weight = edge.latency - ii * edge.distance
            if est[edge.src] + weight > est[edge.dst]:
                est[edge.dst] = est[edge.src] + weight
                changed = True
        if not changed:
            break
    else:
        return None  # positive cycle: II infeasible at *any* horizon
    height = [0] * n
    for _ in range(n + 1):
        changed = False
        for edge in graph.edges:
            weight = edge.latency - ii * edge.distance
            if height[edge.dst] + weight > height[edge.src]:
                height[edge.src] = height[edge.dst] + weight
                changed = True
        if not changed:
            break
    lst = [min(horizon - 1, horizon - 1 - height[i]) for i in range(n)]
    return est, lst


class _ResidueMatcher:
    """Bipartite op-to-slot matching for one modulo residue class.

    Keeps ``slot_of[op_index]`` / ``op_at[slot]`` for the ops currently
    mapped to this residue.  ``add`` tries to extend the matching with a
    Hopcroft-Karp-style augmenting path; on failure the residue provably
    cannot host the op and the matching is left untouched.
    """

    def __init__(self, width: int):
        self.op_at: list[int | None] = [None] * width
        self.slot_of: dict[int, int] = {}

    def add(self, op: int, capable_mask: int, masks: dict[int, int]) -> bool:
        seen = 0

        def augment(op_index: int, mask: int) -> bool:
            nonlocal seen
            probe = mask & ~seen
            while probe:
                bit = probe & -probe
                probe &= probe - 1
                slot = bit.bit_length() - 1
                seen |= bit
                holder = self.op_at[slot]
                if holder is None or augment(holder, masks[holder]):
                    self.op_at[slot] = op_index
                    self.slot_of[op_index] = slot
                    return True
            return False

        return augment(op, capable_mask)

    def remove(self, op: int, masks: dict[int, int]) -> None:
        # rebuild from the remaining ops: augmenting-path removal is
        # fiddlier than re-matching <= width ops
        remaining = [i for i in self.slot_of if i != op]
        self.op_at = [None] * len(self.op_at)
        self.slot_of = {}
        for i in remaining:
            if not self.add(i, masks[i], masks):  # pragma: no cover
                raise AssertionError("matching shrank on removal")


def _search(ops, graph: DependenceGraph, machine: MachineDescription,
            ii: int, horizon: int, budget: list[int]):
    """Exact search at a fixed II.

    Returns ``("sat", times, slots)``, ``("unsat",)`` (exhausted — proof
    relative to ``horizon``), or ``("cycle",)`` (positive recurrence
    cycle — proof at any horizon).  Raises :class:`_BudgetExceeded` when
    ``budget[0]`` runs out; ``budget[0]`` is decremented per DFS node so
    one budget spans several candidate IIs.
    """
    n = len(ops)
    windows = _windows(graph, ii, horizon)
    if windows is None:
        return ("cycle",)
    est, lst = windows
    if any(est[i] > lst[i] for i in range(n)):
        return ("unsat",)

    masks = {i: machine.slot_mask_for_op(op.opcode) for i, op in
             enumerate(ops)}
    matchers = [_ResidueMatcher(machine.width) for _ in range(ii)]
    lb, ub = list(est), list(lst)
    assigned: dict[int, int] = {}

    def propagate() -> bool:
        """Bellman-Ford tightening of [lb, ub]; False on an empty window."""
        for _ in range(n + 1):
            changed = False
            for edge in graph.edges:
                weight = edge.latency - ii * edge.distance
                if lb[edge.src] + weight > lb[edge.dst]:
                    lb[edge.dst] = lb[edge.src] + weight
                    changed = True
                if ub[edge.dst] - weight < ub[edge.src]:
                    ub[edge.src] = ub[edge.dst] - weight
                    changed = True
            if not changed:
                break
        return all(lb[i] <= ub[i] for i in range(n))

    if not propagate():
        return ("unsat",)

    def dfs() -> bool:
        if len(assigned) == n:
            return True
        budget[0] -= 1
        if budget[0] < 0:
            raise _BudgetExceeded
        # most-constrained variable: smallest remaining time window
        i = min((j for j in range(n) if j not in assigned),
                key=lambda j: (ub[j] - lb[j], j))
        saved_lb, saved_ub = list(lb), list(ub)
        for t in range(lb[i], ub[i] + 1):
            if not matchers[t % ii].add(i, masks[i], masks):
                continue
            assigned[i] = t
            lb[i] = ub[i] = t
            if propagate() and dfs():
                return True
            matchers[t % ii].remove(i, masks)
            del assigned[i]
            lb[:], ub[:] = saved_lb, saved_ub
        return False

    if dfs():
        times = tuple(assigned[i] for i in range(n))
        slots = tuple(matchers[assigned[i] % ii].slot_of[i]
                      for i in range(n))
        return ("sat", times, slots)
    return ("unsat",)


# --------------------------------------------------------------------------
# the II sweep


def safe_horizon(ops, ii: int) -> int:
    """Horizon that provably contains a normalized feasible schedule."""
    total_latency = sum(latency_of(op.opcode) for op in ops)
    return total_latency + len(ops) * ii + 1


def oracle_schedule(
    block: BasicBlock,
    machine: MachineDescription = DEFAULT_MACHINE,
    max_ii: int = 64,
    node_budget: int = DEFAULT_NODE_BUDGET,
    max_ops: int = DEFAULT_MAX_OPS,
    tracer=None,
) -> OracleResult:
    """Exact minimal-II search over ``II in [MinII, max_ii]`` for a loop."""
    if tracer is None:
        tracer = get_tracer()
    ops = [op for op in block.ops if op.opcode != Opcode.NOP]
    with sched_cache.timed("oracle"):
        relations = PredicateRelations(block)
        if sched_cache.legacy_enabled():
            from repro.analysis.dependence import build_dependence_graph
            graph = build_dependence_graph(ops, relations=relations,
                                           loop_carried=True)
        else:
            graph = dependence_graph(ops, relations=relations,
                                     loop_carried=True,
                                     fingerprint=ops_fingerprint(ops))
        res_mii = resource_mii(ops, machine)
        try:
            rec_mii = recurrence_mii(graph)
        except ModuloSchedulingFailed:
            rec_mii = max_ii + 1
        mii = max(res_mii, rec_mii)

        def done(result: OracleResult) -> OracleResult:
            if tracer.enabled:
                tracer.instant("oracle", category="sched",
                               block=block.label, **result.as_dict())
            return result

        if max_ii < mii:
            # the MinII bound alone refutes every candidate — no search
            # (and no size limit) needed for this certificate
            return done(OracleResult(block.label, len(ops), res_mii,
                                     rec_mii, mii, None, "infeasible", 0))
        if len(ops) > max_ops:
            return done(OracleResult(block.label, len(ops), res_mii,
                                     rec_mii, mii, None, "too-large", 0))
        budget = [node_budget]
        refuted_all_below = True
        for ii in range(mii, max_ii + 1):
            horizon = safe_horizon(ops, ii)
            try:
                outcome = _search(ops, graph, machine, ii, horizon, budget)
            except _BudgetExceeded:
                refuted_all_below = False
                continue
            if outcome[0] == "sat":
                _tag, times, slots = outcome
                status = "optimal" if refuted_all_below else "feasible"
                return done(OracleResult(
                    block.label, len(ops), res_mii, rec_mii, mii, ii,
                    status, node_budget - budget[0], times, slots))
            # "unsat" at the safe horizon and "cycle" are both proofs
        if refuted_all_below:
            return done(OracleResult(block.label, len(ops), res_mii,
                                     rec_mii, mii, None, "infeasible",
                                     node_budget - budget[0]))
        return done(OracleResult(block.label, len(ops), res_mii, rec_mii,
                                 mii, None, "unknown",
                                 node_budget - budget[0]))


def as_modulo_schedule(block: BasicBlock, result: OracleResult,
                       machine: MachineDescription = DEFAULT_MACHINE,
                       ) -> ModuloSchedule:
    """Materialize an oracle solution as a :class:`ModuloSchedule`.

    The MVE factor is recomputed from the oracle's own issue times — a
    tighter II can need *more* kernel copies, and the loop-buffer
    footprint must reflect the schedule actually installed.
    """
    if result.ii is None or result.times is None:
        raise ValueError(f"oracle found no schedule for {block.label}")
    ops = [op for op in block.ops if op.opcode != Opcode.NOP]
    relations = PredicateRelations(block)
    graph = dependence_graph(ops, relations=relations, loop_carried=True,
                             fingerprint=ops_fingerprint(ops))
    times_by_index = dict(enumerate(result.times))
    sched = ModuloSchedule(
        ii=result.ii,
        times={op.uid: result.times[i] for i, op in enumerate(ops)},
        slots={op.uid: result.slots[i] for i, op in enumerate(ops)},
        ops=list(ops),
    )
    sched.mve_factor = required_mve_factor(ops, graph, times_by_index,
                                           result.ii)
    return sched


# --------------------------------------------------------------------------
# heuristic-vs-oracle gap reporting


@dataclass(frozen=True)
class LoopGap:
    """One row of the heuristic-vs-optimal gap table.

    ``oracle`` holds the result of searching ``II < heuristic II`` only
    — the heuristic's own schedule is already a feasibility witness at
    its II, so certification only requires refuting everything below it.
    """

    function: str
    block: str
    n_ops: int
    min_ii: int
    heuristic_ii: int
    oracle: OracleResult

    @property
    def optimal_ii(self) -> int | None:
        """The proven-minimal II, when known."""
        if self.oracle.status == "infeasible":
            return self.heuristic_ii        # nothing below it is feasible
        if self.oracle.status == "optimal":
            return self.oracle.ii
        return None

    @property
    def gap(self) -> int | None:
        """Cycles of II the heuristic left on the table (None = unknown)."""
        if self.oracle.status == "infeasible":
            return 0
        if self.oracle.ii is not None:      # found something below heur.ii
            return self.heuristic_ii - self.oracle.ii
        return None                         # unknown / too-large

    @property
    def certified(self) -> bool:
        """The gap value is a proof, not just an observed bound."""
        return self.oracle.status in ("infeasible", "optimal")

    def as_dict(self) -> dict:
        data = self.oracle.as_dict()
        data.update(function=self.function, block=self.block,
                    heuristic_ii=self.heuristic_ii,
                    optimal_ii=self.optimal_ii, gap=self.gap,
                    certified=self.certified)
        return data


def certify_compiled(compiled, node_budget: int = DEFAULT_NODE_BUDGET,
                     max_ops: int = DEFAULT_MAX_OPS) -> list[LoopGap]:
    """Gap table for every modulo-scheduled loop of a compiled program.

    Searches ``II in [MinII, heuristic II - 1]``: a heuristic already at
    MinII is certified optimal with zero search nodes (the bound proof
    suffices), and otherwise either every smaller II is refuted (gap 0,
    certified) or a better schedule quantifies the gap.
    """
    rows: list[LoopGap] = []
    for (fname, header), heur in sorted(compiled.modulo.items()):
        block = compiled.module.functions[fname].block(header)
        result = oracle_schedule(block, compiled.machine,
                                 max_ii=heur.ii - 1,
                                 node_budget=node_budget, max_ops=max_ops)
        rows.append(LoopGap(fname, header, result.n_ops, result.min_ii,
                            heur.ii, result))
    return rows


def swap_oracle_schedules(compiled, node_budget: int = DEFAULT_NODE_BUDGET,
                          max_ops: int = DEFAULT_MAX_OPS):
    """Replace heuristic modulo schedules with oracle ones where found.

    Returns ``(new_compiled, swapped)`` where ``swapped`` maps
    ``(function, header)`` to the oracle's II.  The original ``Compiled``
    is untouched; loops the oracle could not solve keep their heuristic
    schedules.  Used by the fuzz oracle to check that a semantically
    independent scheduler produces semantically identical programs.
    """
    new_modulo = dict(compiled.modulo)
    swapped: dict[tuple[str, str], int] = {}
    for (fname, header), heur in sorted(compiled.modulo.items()):
        block = compiled.module.functions[fname].block(header)
        result = oracle_schedule(block, compiled.machine, max_ii=heur.ii,
                                 node_budget=node_budget, max_ops=max_ops)
        if result.ii is None:
            continue
        new_modulo[(fname, header)] = as_modulo_schedule(
            block, result, compiled.machine)
        swapped[(fname, header)] = result.ii
    return dc_replace(compiled, modulo=new_modulo), swapped
