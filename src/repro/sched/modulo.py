"""Iterative modulo scheduling (Rau [2]) for simple loops.

Computes the minimum initiation interval (ResMII from unit counts, RecMII
from dependence recurrences) and places the loop body's operations into a
modulo reservation table, bumping conflicting operations as in classic IMS
until the schedule converges or the II is raised.

Modulo variable expansion (MVE): register lifetimes that exceed the II
overlap their own next-iteration definitions; without rotating registers
the kernel must be unrolled by ``ceil(max_lifetime / II)`` copies.  The
paper leans on exactly this effect when explaining mpg123's buffer
behaviour ("a number of large loops ... require four modulo variable
expansions, thus increasing their code size"), so the expansion factor and
the expanded kernel size are first-class outputs here — they determine a
loop's loop-buffer footprint.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

from repro.analysis.dependence import (
    DependenceGraph,
    build_dependence_graph,
    dependence_graph,
    ops_fingerprint,
)
from repro.analysis.predrel import PredicateRelations
from repro.ir.block import BasicBlock
from repro.ir.opcodes import Opcode, Unit, unit_of
from repro.ir.registers import VReg

from . import cache as sched_cache
from .machine import DEFAULT_MACHINE, MachineDescription


class ModuloSchedulingFailed(Exception):
    """No schedule found within the II search budget."""


@dataclass
class ModuloSchedule:
    ii: int
    times: dict[int, int]            # op uid -> issue time
    slots: dict[int, int]            # op uid -> issue slot
    ops: list                        # scheduled operations, original order
    mve_factor: int = 1

    @property
    def schedule_length(self) -> int:
        """Flat length of one iteration (the pipeline fill time)."""
        return max(self.times.values(), default=0) + 1

    @property
    def stages(self) -> int:
        return max(1, ceil(self.schedule_length / self.ii))

    @property
    def kernel_op_count(self) -> int:
        """Operations in one kernel copy (NOPs excluded)."""
        return sum(1 for op in self.ops if op.opcode != Opcode.NOP)

    @property
    def buffered_op_count(self) -> int:
        """Loop-buffer footprint: kernel ops times the MVE unroll factor."""
        return self.kernel_op_count * self.mve_factor


def resource_mii(ops, machine: MachineDescription) -> int:
    """ResMII: each unit class's op count over its slot count."""
    demand: dict[Unit, int] = {}
    for op in ops:
        if op.opcode == Opcode.NOP:
            continue
        unit = unit_of(op.opcode)
        demand[unit] = demand.get(unit, 0) + 1
    mii = 1
    for unit, count in demand.items():
        slots = machine.unit_count(unit)
        mii = max(mii, ceil(count / slots))
    # IALU ops can spill into any slot, but every op consumes *some* slot
    total = sum(demand.values())
    mii = max(mii, ceil(total / machine.width))
    return mii


#: RecMII search ceiling — a recurrence this long means the loop is not
#: profitably pipelineable on the modeled machine anyway
MAX_REC_MII = 512


def recurrence_mii(graph: DependenceGraph) -> int:
    """RecMII: smallest II with no positive cycle of weight lat - II*dist.

    Checked by Bellman-Ford-style relaxation on longest paths; the II is
    feasible when relaxation converges (no positive-weight cycle).
    Feasibility is monotone in II (raising II only lowers edge weights),
    so the smallest feasible II is found by doubling to an upper bound
    and bisecting — the legacy path scans IIs one by one instead.
    A graph with no loop-carried edge has no cycle at all: RecMII is 1
    without any relaxation.
    """
    if not any(edge.distance for edge in graph.edges):
        return 1
    if sched_cache.legacy_enabled():
        ii = 1
        while ii < MAX_REC_MII:
            if _feasible(graph, ii):
                return ii
            ii += 1
        raise ModuloSchedulingFailed("recurrence MII exceeds search budget")
    if _feasible(graph, 1):
        return 1
    lo, hi = 1, 2  # lo is always infeasible, hi the candidate bound
    while not _feasible(graph, hi):
        lo, hi = hi, min(hi * 2, MAX_REC_MII - 1)
        if lo >= MAX_REC_MII - 1:
            raise ModuloSchedulingFailed(
                "recurrence MII exceeds search budget")
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if _feasible(graph, mid):
            hi = mid
        else:
            lo = mid
    return hi


def _feasible(graph: DependenceGraph, ii: int) -> bool:
    n = len(graph.ops)
    dist = [0] * n
    for _ in range(n + 1):
        changed = False
        for edge in graph.edges:
            weight = edge.latency - ii * edge.distance
            if dist[edge.src] + weight > dist[edge.dst]:
                dist[edge.dst] = dist[edge.src] + weight
                changed = True
        if not changed:
            return True
    return False


def modulo_schedule(
    block: BasicBlock,
    machine: MachineDescription = DEFAULT_MACHINE,
    max_ii: int = 256,
    budget_factor: int = 8,
    tracer=None,
) -> ModuloSchedule:
    """Iteratively modulo-schedule a simple loop body."""
    if tracer is None:
        from repro.obs import get_tracer
        tracer = get_tracer()
    if not tracer.enabled:
        return _modulo_schedule(block, machine, max_ii, budget_factor)
    with tracer.span(f"modulo:{block.label}", category="sched",
                     block=block.label) as span:
        sched = _modulo_schedule(block, machine, max_ii, budget_factor,
                                 span=span)
        span.annotate(
            ii=sched.ii,
            mve_factor=sched.mve_factor,
            kernel_ops=sched.kernel_op_count,
            buffered_ops=sched.buffered_op_count,
            schedule_length=sched.schedule_length,
            stages=sched.stages,
        )
        return sched


def _modulo_schedule(block, machine, max_ii, budget_factor, span=None):
    ops = [op for op in block.ops if op.opcode != Opcode.NOP]
    with sched_cache.timed("modulo"):
        legacy = sched_cache.legacy_enabled()
        key = None
        if not legacy:
            fingerprint = ops_fingerprint(ops)
            key = (fingerprint, machine, max_ii, budget_factor)
            cached = sched_cache.modulo_result_get(key)
            if cached is not None:
                return _modulo_from_cache(block, ops, cached, span)
        relations = PredicateRelations(block)
        if legacy:
            graph = build_dependence_graph(ops, relations=relations,
                                           loop_carried=True)
        else:
            graph = dependence_graph(ops, relations=relations,
                                     loop_carried=True,
                                     fingerprint=fingerprint)
        # both lower bounds are known before any candidate schedule is
        # attempted: the II search never starts below max(ResMII, RecMII)
        res_mii = resource_mii(ops, machine)
        rec_mii = recurrence_mii(graph)
        mii = max(res_mii, rec_mii)
        if span is not None:
            span.annotate(min_ii=mii, resource_mii=res_mii,
                          recurrence_mii=rec_mii, ops=len(ops))

        for ii in range(mii, max_ii + 1):
            result = _try_schedule(ops, graph, machine, ii,
                                   budget_factor * len(ops) + 32,
                                   legacy)
            if result is not None:
                times, slots = result
                sched = ModuloSchedule(
                    ii=ii,
                    times={ops[i].uid: t for i, t in times.items()},
                    slots={ops[i].uid: s for i, s in slots.items()},
                    ops=list(ops),
                )
                sched.mve_factor = required_mve_factor(ops, graph, times, ii)
                if key is not None:
                    sched_cache.modulo_result_put(key, (
                        "ok", ii,
                        tuple(times[i] for i in range(len(ops))),
                        tuple(slots[i] for i in range(len(ops))),
                        sched.mve_factor,
                        (mii, res_mii, rec_mii),
                    ))
                return sched
        message = f"no II <= {max_ii} for {block.label}"
        if key is not None:
            sched_cache.modulo_result_put(key, ("fail", f"no II <= {max_ii}"))
        raise ModuloSchedulingFailed(message)


def _modulo_from_cache(block, ops, cached, span):
    """Rebind a memoized modulo outcome onto this block's operations."""
    if cached[0] == "fail":
        raise ModuloSchedulingFailed(f"{cached[1]} for {block.label}")
    _tag, ii, times, slots, mve, bounds = cached
    if span is not None:
        mii, res_mii, rec_mii = bounds
        span.annotate(min_ii=mii, resource_mii=res_mii,
                      recurrence_mii=rec_mii, ops=len(ops), cached=True)
    sched = ModuloSchedule(
        ii=ii,
        times={op.uid: times[i] for i, op in enumerate(ops)},
        slots={op.uid: slots[i] for i, op in enumerate(ops)},
        ops=list(ops),
        mve_factor=mve,
    )
    return sched


def _try_schedule(ops, graph, machine, ii, budget, legacy=False):
    """One IMS attempt at a fixed II; returns (times, slots) or None.

    The modulo reservation table is mirrored in per-modulo-cycle
    free-slot bitmasks so the placement probe is mask arithmetic instead
    of a per-slot dict scan; ``legacy`` keeps the original linear probe
    (the probe order — and hence the schedule — is identical).
    """
    n = len(ops)
    height = _heights(graph, ii)
    order = sorted(range(n), key=lambda i: (-height[i], i))
    times: dict[int, int] = {}
    slots: dict[int, int] = {}
    # modulo reservation table: (slot, time mod ii) -> op index
    mrt: dict[tuple[int, int], int] = {}
    # occupancy mirror: time mod ii -> bitmask of taken slots
    mrt_mask = [0] * ii
    full_mask = machine.full_mask
    worklist = list(order)
    attempts = 0

    while worklist:
        attempts += 1
        if attempts > budget:
            return None
        i = worklist.pop(0)
        lo = 0
        for edge in graph.preds[i]:
            if edge.src in times:
                lo = max(lo, times[edge.src] + edge.latency - ii * edge.distance)
        lo = max(lo, 0)
        hi = lo + ii - 1

        placed = False
        for t in range(lo, hi + 1):
            if legacy:
                slot = _free_slot_linear(ops[i], t % ii, mrt, machine)
            else:
                slot = machine.pick_slot(ops[i].opcode,
                                         full_mask & ~mrt_mask[t % ii])
            if slot is not None:
                _place(i, t, slot, times, slots, mrt, mrt_mask, ii)
                placed = True
                break
        if not placed:
            # forced placement at lo: evict whatever conflicts (classic IMS)
            t = lo
            slot_candidates = machine.slots_for_op(ops[i].opcode)
            slot = slot_candidates[0]
            evicted = [
                j for (s, m), j in list(mrt.items())
                if s == slot and m == t % ii
            ]
            for j in evicted:
                _unplace(j, times, slots, mrt, mrt_mask, ii)
                worklist.append(j)
            _place(i, t, slot, times, slots, mrt, mrt_mask, ii)

        # displace successors whose constraints broke
        for edge in graph.succs[i]:
            j = edge.dst
            if j in times and j != i:
                if times[i] + edge.latency - ii * edge.distance > times[j]:
                    _unplace(j, times, slots, mrt, mrt_mask, ii)
                    worklist.append(j)

    if _valid(graph, times, ii):
        return times, slots
    return None


def _heights(graph, ii):
    n = len(graph.ops)
    height = [0] * n
    for _ in range(n + 1):
        changed = False
        for edge in graph.edges:
            weight = edge.latency - ii * edge.distance
            if height[edge.src] < height[edge.dst] + weight:
                height[edge.src] = height[edge.dst] + weight
                changed = True
        if not changed:
            break
    return height


def _free_slot_linear(op, mslot_time, mrt, machine):
    for slot in machine.slots_for_op(op.opcode):
        if (slot, mslot_time) not in mrt:
            return slot
    return None


def _place(i, t, slot, times, slots, mrt, mrt_mask, ii):
    times[i] = t
    slots[i] = slot
    mrt[(slot, t % ii)] = i
    mrt_mask[t % ii] |= 1 << slot


def _unplace(i, times, slots, mrt, mrt_mask, ii):
    t = times.pop(i)
    slot = slots.pop(i)
    mrt.pop((slot, t % ii), None)
    mrt_mask[t % ii] &= ~(1 << slot)


def _valid(graph, times, ii):
    if len(times) != len(graph.ops):
        return False
    for edge in graph.edges:
        if times[edge.src] + edge.latency - ii * edge.distance > times[edge.dst]:
            return False
    return True


def required_mve_factor(ops, graph, times, ii) -> int:
    """Kernel unroll factor required by register lifetimes (no rotating
    register file on the modeled machine).  ``times`` maps op *index* (into
    ``ops``) to issue time.  Public so modulo-schedule legality checking
    can recompute the factor a stored schedule claims."""
    lifetime: dict[VReg, int] = {}
    for edge in graph.edges:
        if edge.kind != "flow":
            continue
        src_op = ops[edge.src]
        span = times[edge.dst] + ii * edge.distance - times[edge.src]
        for reg in src_op.dests:
            lifetime[reg] = max(lifetime.get(reg, 0), span)
    factor = 1
    for span in lifetime.values():
        if span > 0:
            factor = max(factor, ceil(span / ii))
    return factor
