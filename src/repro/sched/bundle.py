"""Scheduled-code representation: bundles and per-block schedules.

A :class:`Schedule` binds every operation of one block to an (issue cycle,
issue slot) pair; a :class:`Bundle` is the set of operations issuing in one
cycle.  Operation bundles are stored in the compressed format of the
modeled machine (Section 7): NOPs consume no space, so a bundle's fetch
cost is the number of real operations in it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.opcodes import Opcode
from repro.ir.operation import Operation


@dataclass
class Placement:
    cycle: int
    slot: int


@dataclass
class Bundle:
    """Operations issuing in a single cycle, keyed by slot."""

    cycle: int
    ops: dict[int, Operation] = field(default_factory=dict)

    def add(self, slot: int, op: Operation) -> None:
        if slot in self.ops:
            raise ValueError(f"slot {slot} already occupied in cycle {self.cycle}")
        self.ops[slot] = op

    @property
    def op_count(self) -> int:
        """Fetchable operations (compressed encoding: NOPs are free)."""
        return sum(1 for op in self.ops.values() if op.opcode != Opcode.NOP)

    def in_slot_order(self) -> list[tuple[int, Operation]]:
        return sorted(self.ops.items())


@dataclass
class Schedule:
    """A complete schedule of one block's operations."""

    bundles: list[Bundle] = field(default_factory=list)
    placement: dict[int, Placement] = field(default_factory=dict)  # op uid ->

    @property
    def length(self) -> int:
        """Schedule length in cycles."""
        if not self.bundles:
            return 0
        return self.bundles[-1].cycle + 1

    @property
    def op_count(self) -> int:
        return sum(bundle.op_count for bundle in self.bundles)

    def place(self, op: Operation, cycle: int, slot: int) -> None:
        while len(self.bundles) <= cycle:
            self.bundles.append(Bundle(len(self.bundles)))
        self.bundles[cycle].add(slot, op)
        self.placement[op.uid] = Placement(cycle, slot)

    def cycle_of(self, op: Operation) -> int:
        return self.placement[op.uid].cycle

    def slot_of(self, op: Operation) -> int:
        return self.placement[op.uid].slot

    def utilization(self, width: int) -> float:
        """Fraction of issue capacity used (real ops / slots available)."""
        if not self.bundles:
            return 0.0
        return self.op_count / (len(self.bundles) * width)

    def dump(self) -> str:
        lines = []
        for bundle in self.bundles:
            entries = ", ".join(
                f"s{slot}:{op!r}" for slot, op in bundle.in_slot_order()
            )
            lines.append(f"  cycle {bundle.cycle}: {entries}")
        return "\n".join(lines)
