"""Content-addressed memoization and timing for the schedulers.

The list and modulo schedulers are deterministic functions of an op
list's *content* plus the machine description (and, for list scheduling,
the side-exit liveness map).  A Figure 7 capacity sweep re-list-schedules
a deep copy of the same module once per buffer size, the fuzz oracle
compiles one program once per grid config, and checked mode re-derives
the same dependence systems the schedulers just used — all identical
work.  This module memoizes *placements* by content: a hit replays the
stored (index, cycle, slot) assignments onto the caller's operations,
skipping dependence-graph construction and the scheduling search
entirely, while producing a byte-identical schedule.

``REPRO_SCHED_LEGACY=1`` (or :func:`set_legacy`) switches both schedulers
back to the unmemoized linear-probe baseline; ``scripts/bench_sched.py``
uses it to measure the optimized path against the original one with
identical-schedule verification.

All scheduling time (cold builds *and* cache replays) is accumulated per
phase in :data:`STATS`, so benchmarks can report scheduler-phase seconds
without tracing overhead.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.analysis.dependence import (
    clear_dependence_cache,
    dependence_cache_stats,
    set_dependence_cache_enabled,
)

ENV_LEGACY = "REPRO_SCHED_LEGACY"

#: bounded LRU size for each placement cache
CACHE_LIMIT = 4096


@dataclass
class SchedCacheStats:
    """Hit/miss accounting plus scheduler-phase wall time per kind."""

    list_hits: int = 0
    list_misses: int = 0
    modulo_hits: int = 0
    modulo_misses: int = 0
    evictions: int = 0
    #: phase -> accumulated seconds ("list" | "modulo" | "oracle")
    seconds: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "list_hits": self.list_hits,
            "list_misses": self.list_misses,
            "modulo_hits": self.modulo_hits,
            "modulo_misses": self.modulo_misses,
            "evictions": self.evictions,
            "seconds": {k: round(v, 6) for k, v in sorted(
                self.seconds.items())},
            "dependence": dependence_cache_stats().as_dict(),
        }


STATS = SchedCacheStats()

_list_cache: "OrderedDict[tuple, tuple]" = OrderedDict()
_modulo_cache: "OrderedDict[tuple, tuple]" = OrderedDict()

_legacy = os.environ.get(ENV_LEGACY, "").strip().lower() not in (
    "", "0", "false", "no")
set_dependence_cache_enabled(not _legacy)


def set_legacy(legacy: bool) -> None:
    """Select the unmemoized linear-probe baseline (for benchmarking)."""
    global _legacy
    _legacy = bool(legacy)
    set_dependence_cache_enabled(not _legacy)


def legacy_enabled() -> bool:
    return _legacy


@contextmanager
def legacy_mode(legacy: bool = True):
    """Temporarily force the legacy (or optimized) scheduler path."""
    previous = _legacy
    set_legacy(legacy)
    try:
        yield
    finally:
        set_legacy(previous)


def clear_caches() -> None:
    """Drop every memoized placement and dependence graph."""
    _list_cache.clear()
    _modulo_cache.clear()
    clear_dependence_cache()


@contextmanager
def timed(kind: str):
    """Accumulate wall seconds against ``STATS.seconds[kind]``."""
    t0 = time.perf_counter()
    try:
        yield
    finally:
        STATS.seconds[kind] = (STATS.seconds.get(kind, 0.0)
                               + time.perf_counter() - t0)


def _lookup(cache: OrderedDict, key: tuple):
    value = cache.get(key)
    if value is not None:
        cache.move_to_end(key)
    return value


def _store(cache: OrderedDict, key: tuple, value: tuple) -> None:
    cache[key] = value
    if len(cache) > CACHE_LIMIT:
        cache.popitem(last=False)
        STATS.evictions += 1


# -- list-schedule placements ------------------------------------------------


def list_placements_get(key: tuple):
    """Stored ``((index, cycle, slot), ...)`` for a block, or ``None``."""
    if _legacy:
        return None
    value = _lookup(_list_cache, key)
    if value is None:
        STATS.list_misses += 1
    else:
        STATS.list_hits += 1
    return value


def list_placements_put(key: tuple, placements: tuple) -> None:
    if not _legacy:
        _store(_list_cache, key, placements)


# -- modulo-schedule placements ----------------------------------------------


def modulo_result_get(key: tuple):
    """Stored modulo outcome: ``("ok", ii, times, slots, mve)`` with
    times/slots as index-keyed tuples, or ``("fail", message)``."""
    if _legacy:
        return None
    value = _lookup(_modulo_cache, key)
    if value is None:
        STATS.modulo_misses += 1
    else:
        STATS.modulo_hits += 1
    return value


def modulo_result_put(key: tuple, value: tuple) -> None:
    if not _legacy:
        _store(_modulo_cache, key, value)
